//! Dashboard rendering latency: the "interactive exploration" claim (§V)
//! depends on pages building fast enough to serve on demand.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pga_viz::{
    detail_chart, fleet_overview_page, machine_page, sparkline, ChartConfig, FleetOverview, Health,
    MachinePage, SensorPanel, UnitStatus,
};

fn points(n: u64) -> Vec<(u64, f64)> {
    (0..n)
        .map(|t| (t, 50.0 + ((t * 37) % 17) as f64 * 0.3))
        .collect()
}

fn page(panels: usize, pts: u64) -> MachinePage {
    MachinePage {
        unit: 80,
        status: UnitStatus {
            unit: 80,
            health: Health::Warning,
            flagged_sensors: 3,
            last_anomaly: Some(pts / 2),
        },
        panels: (0..panels)
            .map(|s| SensorPanel {
                sensor: s as u32,
                points: points(pts),
                anomalies: if s % 4 == 0 {
                    vec![pts / 2, pts / 2 + 1]
                } else {
                    vec![]
                },
            })
            .collect(),
        detail: Some(0),
    }
}

fn bench_render(c: &mut Criterion) {
    let cfg = ChartConfig::default();

    let mut group = c.benchmark_group("charts");
    group.sample_size(30);
    for n in [100u64, 500] {
        let pts = points(n);
        group.bench_with_input(BenchmarkId::new("sparkline", n), &pts, |b, pts| {
            b.iter(|| black_box(sparkline(black_box(pts), &[50, 51], 340, 48, &cfg)))
        });
        group.bench_with_input(BenchmarkId::new("detail_chart", n), &pts, |b, pts| {
            b.iter(|| {
                black_box(detail_chart(
                    "sensor",
                    black_box(pts),
                    &[50],
                    900,
                    260,
                    &cfg,
                ))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("pages");
    group.sample_size(20);
    for panels in [24usize, 96] {
        let p = page(panels, 300);
        group.bench_with_input(BenchmarkId::new("machine_page", panels), &p, |b, p| {
            b.iter(|| black_box(machine_page(black_box(p))))
        });
    }
    let overview = FleetOverview {
        units: (0..100)
            .map(|u| UnitStatus {
                unit: u,
                health: if u % 7 == 0 {
                    Health::Critical
                } else {
                    Health::Good
                },
                flagged_sensors: (u % 7) as usize,
                last_anomaly: Some(u as u64),
            })
            .collect(),
        ingest_rate: 399_000.0,
        eval_rate: 939_000.0,
    };
    group.bench_function("fleet_overview_100_units", |b| {
        b.iter(|| black_box(fleet_overview_page(black_box(&overview))))
    });
    group.finish();
}

criterion_group!(benches, bench_render);
criterion_main!(benches);
