//! Background scrub, quarantine, and replica-backed repair.
//!
//! Closes the corruption loop the storage tier only half-had: sealed
//! blocks and store files *detect* bit rot (CRC-32 everywhere), but a
//! detected-corrupt span used to stay broken forever even when a
//! byte-identical healthy copy sat on a follower one RPC away. The
//! pieces here:
//!
//! * [`CellVerifier`] — pluggable integrity check for stored cells. The
//!   storage tier cannot decode sealed blocks itself (the block codec
//!   lives a layer up in `pga-tsdb`), so the verifier is injected, the
//!   same inversion as [`crate::rewrite::CompactionRewriter`].
//! * [`ScrubState`] — the shared quarantine set and counters. Fed from
//!   two sides: the read path (a query that trips over a corrupt block)
//!   and the background scrub walk.
//! * [`scrub_tick`] — one low-priority pass, designed to ride the
//!   compaction cadence: walk every hosted copy verifying covered cells,
//!   then try to repair each quarantined span from the best healthy copy
//!   ([`pga_repl::rank_repair_sources`]): fetch via the epoch-fenced
//!   `RepairFetch` RPC, re-verify the fetched bytes (repairs must
//!   round-trip the checksum **before** install — skipping this is
//!   seeded mutant F), install on every stale copy, and only then clear
//!   the quarantine entry. A span with no healthy copy stays quarantined
//!   and is retried next tick; reads of it keep returning typed errors,
//!   never silent holes.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::client::Client;
use crate::fault::FaultHandle;
use crate::kv::{KeyValue, RowRange};
use crate::master::{locate, Master};

/// Pluggable integrity checker for stored cells. Implementations must be
/// cheap, deterministic and side-effect free — they run inside scrub
/// walks and repair installs.
pub trait CellVerifier: Send + Sync + std::fmt::Debug {
    /// Does this verifier understand the cell (e.g. a sealed block)?
    /// Uncovered cells are skipped, not counted.
    fn covers(&self, kv: &KeyValue) -> bool;
    /// Is a covered cell's payload intact? `false` quarantines it.
    fn verify(&self, kv: &KeyValue) -> bool;
}

/// Shared handle to a cell verifier.
pub type VerifierHandle = Arc<dyn CellVerifier>;

/// What one region scrub pass found.
#[derive(Debug, Default)]
pub struct ScrubFinding {
    /// Covered cells checked.
    pub scanned: u64,
    /// Keys whose payload failed verification.
    pub corrupt: Vec<(Bytes, Bytes)>,
}

/// `(row, qualifier)` of a quarantined cell. Rows are globally unique
/// across regions (regions partition the row space), so no region id is
/// needed — and must not be, because a key stays quarantined across
/// splits and moves.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct QuarantineKey {
    /// Row key.
    pub row: Bytes,
    /// Column qualifier.
    pub qualifier: Bytes,
}

/// Shared quarantine set plus monotonic scrub counters. One per
/// deployment, shared between the read path (which quarantines on a
/// corrupt read) and the background scrubber (which detects and
/// repairs).
#[derive(Debug, Default)]
pub struct ScrubState {
    quarantine: Mutex<BTreeSet<QuarantineKey>>,
    /// Covered cells verified across all scrub walks.
    pub cells_scrubbed: AtomicU64,
    /// Distinct corrupt keys ever quarantined.
    pub corrupt_found: AtomicU64,
    /// Repairs installed after checksum round-trip.
    pub repairs_ok: AtomicU64,
    /// Fetched payloads rejected by pre-install verification.
    pub repairs_rejected: AtomicU64,
    /// Scrub ticks run.
    pub scrub_ticks: AtomicU64,
}

impl ScrubState {
    /// Fresh shared state.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Quarantine a key. Returns `true` when newly added. Never retries
    /// the corrupt bytes blindly and never forgets: only a verified
    /// repair install ([`ScrubState::clear`]) removes an entry.
    pub fn quarantine(&self, row: Bytes, qualifier: Bytes) -> bool {
        let newly = self
            .quarantine
            .lock()
            .insert(QuarantineKey { row, qualifier });
        if newly {
            self.corrupt_found.fetch_add(1, Ordering::Relaxed);
        }
        newly
    }

    /// Remove a repaired key.
    pub fn clear(&self, key: &QuarantineKey) {
        self.quarantine.lock().remove(key);
    }

    /// Is the key currently quarantined?
    pub fn is_quarantined(&self, row: &[u8], qualifier: &[u8]) -> bool {
        self.quarantine
            .lock()
            .iter()
            .any(|k| k.row == row && k.qualifier == qualifier)
    }

    /// Snapshot of the current quarantine set, sorted.
    pub fn quarantined(&self) -> Vec<QuarantineKey> {
        self.quarantine.lock().iter().cloned().collect()
    }

    /// Number of quarantined keys.
    pub fn len(&self) -> usize {
        self.quarantine.lock().len()
    }

    /// Whether the quarantine is empty.
    pub fn is_empty(&self) -> bool {
        self.quarantine.lock().is_empty()
    }
}

/// Outcome of one [`scrub_tick`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScrubTickReport {
    /// Covered cells verified this tick.
    pub cells_scrubbed: u64,
    /// Keys newly quarantined by this walk.
    pub newly_quarantined: u64,
    /// Quarantined keys repaired and cleared this tick.
    pub repairs_installed: u64,
    /// Fetched payloads rejected by pre-install verification.
    pub repairs_rejected: u64,
    /// Quarantined keys with no verifiable copy reachable this tick
    /// (left quarantined for the next tick).
    pub repairs_unavailable: u64,
    /// Quarantine size after the tick.
    pub quarantined_after: u64,
}

/// The smallest range containing exactly `row`: `[row, row ++ 0x00)`.
fn single_row_range(row: &[u8]) -> RowRange {
    let mut end = row.to_vec();
    end.push(0);
    RowRange::new(row.to_vec(), end)
}

/// One background scrub pass over the whole deployment: detect, then
/// repair. See the module docs for the protocol; the fault plane is
/// consulted only at the seeded-mutant hooks and the repair-install
/// observation tap, so production callers pass [`crate::no_faults`].
pub fn scrub_tick(
    master: &Master,
    client: &Client,
    verifier: &VerifierHandle,
    state: &ScrubState,
    fault: &FaultHandle,
) -> ScrubTickReport {
    let mut report = ScrubTickReport::default();
    state.scrub_ticks.fetch_add(1, Ordering::Relaxed);

    // Detect: walk every hosted copy on every live node. Dead nodes are
    // skipped — their copies are the failover machinery's problem.
    for node in master.live_nodes() {
        let Some(server) = master.server(node) else {
            continue;
        };
        for rid in server.hosted_regions() {
            let Some(finding) = server.scrub_region(rid, verifier.as_ref()) else {
                continue;
            };
            report.cells_scrubbed += finding.scanned;
            for (row, qualifier) in finding.corrupt {
                if state.quarantine(row, qualifier) {
                    report.newly_quarantined += 1;
                }
            }
        }
    }
    state
        .cells_scrubbed
        .fetch_add(report.cells_scrubbed, Ordering::Relaxed);

    // Repair: for each quarantined key, fetch the span from every copy
    // (epoch-fenced), rank the answers, and take the first payload that
    // survives re-verification. Install on every stale copy, then clear.
    for key in state.quarantined() {
        let range = single_row_range(&key.row);
        let info = locate(&master.directory(), &key.row);
        let Some(info) = info else {
            report.repairs_unavailable += 1;
            continue;
        };
        let copies = client.repair_fetch(&range);
        let ranked = pga_repl::rank_repair_sources(
            copies
                .iter()
                .map(|c| pga_repl::RepairSource {
                    node: u64::from(c.node.0),
                    applied_seq: c.applied_seq,
                    primary: c.node == info.server,
                })
                .collect(),
        );
        let mut candidate: Option<Bytes> = None;
        for source in ranked.iter().take(pga_repl::MAX_REPAIR_ATTEMPTS_PER_TICK) {
            let Some(copy) = copies.iter().find(|c| u64::from(c.node.0) == source.node) else {
                continue;
            };
            let Some(cell) = copy
                .cells
                .iter()
                .find(|kv| kv.row == key.row && kv.qualifier == key.qualifier)
            else {
                continue;
            };
            // The in-flight corruption window between fetch and install.
            let mut value = cell.value.to_vec();
            fault.scribble_repair(info.id, &mut value);
            let patched = KeyValue {
                value: Bytes::from(value),
                ..cell.clone()
            };
            // Repairs must round-trip the checksum before install —
            // skipping this re-verification is seeded mutant F.
            if fault.skip_repair_verify(info.id) || verifier.verify(&patched) {
                candidate = Some(patched.value);
                break;
            }
            report.repairs_rejected += 1;
            state.repairs_rejected.fetch_add(1, Ordering::Relaxed);
        }
        match candidate {
            Some(value) => {
                // Fence the install: a promotion between fetch and
                // install makes `info` stale — the payload was fetched
                // under `info.epoch`, and installing it onto a replica
                // set chosen under a newer epoch could resurrect bytes
                // the promoted primary never served. Leave the key
                // quarantined and retry next tick under the fresh view.
                let current = locate(&master.directory(), &key.row);
                if current.map(|c| c.epoch) != Some(info.epoch) {
                    report.repairs_unavailable += 1;
                    continue;
                }
                fault.observe_repair_install(info.id, &value);
                for node in info.replicas() {
                    if let Some(server) = master.server(node) {
                        server.repair_region_cell(info.id, &key.row, &key.qualifier, &value);
                    }
                }
                state.clear(&key);
                state.repairs_ok.fetch_add(1, Ordering::Relaxed);
                report.repairs_installed += 1;
            }
            None => report.repairs_unavailable += 1,
        }
    }
    report.quarantined_after = state.len() as u64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarantine_set_semantics() {
        let state = ScrubState::new();
        assert!(state.is_empty());
        assert!(state.quarantine(Bytes::copy_from_slice(b"r1"), Bytes::copy_from_slice(b"q1")));
        assert!(
            !state.quarantine(Bytes::copy_from_slice(b"r1"), Bytes::copy_from_slice(b"q1")),
            "re-quarantine is idempotent"
        );
        assert!(state.quarantine(Bytes::copy_from_slice(b"r2"), Bytes::copy_from_slice(b"q1")));
        assert_eq!(state.len(), 2);
        assert_eq!(state.corrupt_found.load(Ordering::Relaxed), 2);
        assert!(state.is_quarantined(b"r1", b"q1"));
        assert!(!state.is_quarantined(b"r1", b"q2"));
        let key = QuarantineKey {
            row: Bytes::copy_from_slice(b"r1"),
            qualifier: Bytes::copy_from_slice(b"q1"),
        };
        state.clear(&key);
        assert_eq!(state.len(), 1);
        assert!(!state.is_quarantined(b"r1", b"q1"));
    }

    #[test]
    fn single_row_range_contains_only_that_row() {
        let r = single_row_range(b"abc");
        assert!(r.contains(b"abc"));
        assert!(!r.contains(b"abd"));
        assert!(!r.contains(b"ab"));
        // The zero-extended successor is excluded too.
        assert!(!r.contains(b"abc\x00"));
    }
}
