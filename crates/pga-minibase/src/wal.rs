//! Write-ahead log.
//!
//! Every put is appended here before touching the memstore, so a region
//! whose server dies can be rebuilt by replay (the master's reassignment
//! path exercises this). The log lives in shared memory — the stand-in for
//! the paper's HDFS — so it survives the serving thread.

use parking_lot::Mutex;
use std::sync::Arc;

use bytes::Bytes;

use pga_repl::ShipOutcome;

use crate::kv::KeyValue;

/// Sequence number assigned to each appended batch.
pub type SequenceId = u64;

/// Magic prefix of an encoded WAL image.
const WAL_MAGIC: &[u8; 4] = b"PGWL";
/// Encoded-format version.
const WAL_VERSION: u8 = 1;

/// What [`WriteAheadLog::decode_report`] found while parsing an encoded
/// WAL image. Used by recovery oracles: a torn tail is survivable (the
/// durable prefix is recovered), a non-monotone sequence id is a protocol
/// violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalDecodeReport {
    /// Complete batch records recovered.
    pub records: usize,
    /// Cells recovered across those records.
    pub cells: usize,
    /// Trailing bytes were discarded (torn/corrupt tail).
    pub torn: bool,
    /// Batch sequence ids were strictly increasing over the recovered
    /// prefix and all above the flush mark. `false` indicates a protocol
    /// violation, not a crash artifact.
    pub monotone: bool,
}

#[derive(Debug, Default)]
struct WalInner {
    entries: Vec<(SequenceId, KeyValue)>,
    next_seq: SequenceId,
    /// Sequence ids at or below this mark are durably flushed to store
    /// files and can be discarded.
    flushed_through: SequenceId,
}

/// A shareable write-ahead log for one region.
#[derive(Debug, Clone, Default)]
pub struct WriteAheadLog {
    inner: Arc<Mutex<WalInner>>,
}

impl WriteAheadLog {
    /// Empty log.
    pub fn new() -> Self {
        WriteAheadLog::default()
    }

    /// Append a batch atomically; returns the batch's sequence id.
    pub fn append_batch(&self, kvs: &[KeyValue]) -> SequenceId {
        let mut inner = self.inner.lock();
        inner.next_seq += 1;
        let seq = inner.next_seq;
        inner.entries.reserve(kvs.len());
        for kv in kvs {
            inner.entries.push((seq, kv.clone()));
        }
        seq
    }

    /// Append a batch under a sequence id assigned elsewhere — the
    /// replication path, where a follower replays WAL records shipped by
    /// the primary under the primary's sequence numbering. Accepted only
    /// when `seq` is the **next** sequence (`last_sequence() + 1`): a
    /// duplicate or stale ship is [`ShipOutcome::Stale`] (already durable
    /// here), and a ship that would leave a hole is [`ShipOutcome::Gap`]
    /// and applies nothing. Contiguity is what lets failover promotion
    /// read `last_sequence()` as "holds every batch up to here" — a
    /// gapped WAL would report the position of its newest batch while
    /// silently missing earlier acked ones.
    pub fn append_batch_with_seq(&self, seq: SequenceId, kvs: &[KeyValue]) -> ShipOutcome {
        let mut inner = self.inner.lock();
        if seq <= inner.next_seq {
            return ShipOutcome::Stale;
        }
        if seq != inner.next_seq + 1 {
            return ShipOutcome::Gap;
        }
        inner.next_seq = seq;
        inner.entries.reserve(kvs.len());
        for kv in kvs {
            inner.entries.push((seq, kv.clone()));
        }
        ShipOutcome::Applied
    }

    /// [`WriteAheadLog::append_batch_with_seq`] without the contiguity
    /// check: any sequence beyond the last is accepted, holes included.
    /// This is the *broken* pre-backfill semantics, kept solely as the
    /// injection target for the gap-tolerant-follower mutant — the
    /// faithful stack must never call it.
    pub fn append_batch_with_seq_allow_gap(
        &self,
        seq: SequenceId,
        kvs: &[KeyValue],
    ) -> ShipOutcome {
        let mut inner = self.inner.lock();
        if seq <= inner.next_seq {
            return ShipOutcome::Stale;
        }
        inner.next_seq = seq;
        inner.entries.reserve(kvs.len());
        for kv in kvs {
            inner.entries.push((seq, kv.clone()));
        }
        ShipOutcome::Applied
    }

    /// Retained batches with sequence ids strictly greater than `after`,
    /// in append order — the tail a primary serves to backfill a gapped
    /// follower. Only covers what [`WriteAheadLog::mark_flushed`] has not
    /// discarded: a tail that no longer reaches back to `after + 1` means
    /// the follower cannot be caught up from this log and must stay
    /// behind (safe — its applied sequence honestly reports its prefix).
    pub fn batches_after(&self, after: SequenceId) -> Vec<(SequenceId, Vec<KeyValue>)> {
        let inner = self.inner.lock();
        let mut out: Vec<(SequenceId, Vec<KeyValue>)> = Vec::new();
        for (seq, kv) in inner.entries.iter() {
            if *seq <= after {
                continue;
            }
            match out.last_mut() {
                Some((s, kvs)) if *s == *seq => kvs.push(kv.clone()),
                _ => out.push((*seq, vec![kv.clone()])),
            }
        }
        out
    }

    /// Empty log whose sequence numbering starts after `seq`. Used when
    /// forking a fresh follower from a primary snapshot: the snapshot
    /// covers everything through `seq`, so the follower's WAL must accept
    /// shipped batches from `seq + 1` onward and reject anything older.
    pub fn with_start_sequence(seq: SequenceId) -> Self {
        WriteAheadLog {
            inner: Arc::new(Mutex::new(WalInner {
                entries: Vec::new(),
                next_seq: seq,
                flushed_through: seq,
            })),
        }
    }

    /// Entries newer than the flush mark, in append order — the data a
    /// recovering server must replay into a fresh memstore.
    pub fn replay(&self) -> Vec<KeyValue> {
        let inner = self.inner.lock();
        inner
            .entries
            .iter()
            .filter(|(seq, _)| *seq > inner.flushed_through)
            .map(|(_, kv)| kv.clone())
            .collect()
    }

    /// Mark everything up to `seq` as flushed and drop those entries.
    pub fn mark_flushed(&self, seq: SequenceId) {
        let mut inner = self.inner.lock();
        inner.flushed_through = inner.flushed_through.max(seq);
        let cutoff = inner.flushed_through;
        inner.entries.retain(|(s, _)| *s > cutoff);
    }

    /// Number of unflushed entries.
    pub fn unflushed_len(&self) -> usize {
        let inner = self.inner.lock();
        inner
            .entries
            .iter()
            .filter(|(seq, _)| *seq > inner.flushed_through)
            .count()
    }

    /// Latest assigned sequence id.
    pub fn last_sequence(&self) -> SequenceId {
        self.inner.lock().next_seq
    }

    /// Serialise the unflushed tail to bytes — the on-"HDFS" image a
    /// recovering server reads back. Format (little-endian):
    ///
    /// ```text
    /// magic "PGWL" | version u8 | flushed_through u64
    /// repeat per batch record:
    ///   seq u64 | cell_count u32 | cells | checksum u64 (over seq..cells)
    /// cell: row_len u16 | row | qual_len u16 | qual | ts u64 | val_len u32 | value
    /// ```
    pub fn encode(&self) -> Vec<u8> {
        let inner = self.inner.lock();
        let mut out = Vec::with_capacity(32 + inner.entries.len() * 48);
        out.extend_from_slice(WAL_MAGIC);
        out.push(WAL_VERSION);
        out.extend_from_slice(&inner.flushed_through.to_le_bytes());
        let mut i = 0;
        while i < inner.entries.len() {
            let seq = match inner.entries.get(i) {
                Some(&(s, _)) => s,
                None => break,
            };
            let mut record = Vec::new();
            record.extend_from_slice(&seq.to_le_bytes());
            let batch: Vec<&KeyValue> = inner.entries[i..]
                .iter()
                .take_while(|(s, _)| *s == seq)
                .map(|(_, kv)| kv)
                .collect();
            record.extend_from_slice(&(batch.len() as u32).to_le_bytes());
            for kv in &batch {
                record.extend_from_slice(&(kv.row.len() as u16).to_le_bytes());
                record.extend_from_slice(&kv.row);
                record.extend_from_slice(&(kv.qualifier.len() as u16).to_le_bytes());
                record.extend_from_slice(&kv.qualifier);
                record.extend_from_slice(&kv.timestamp.to_le_bytes());
                record.extend_from_slice(&(kv.value.len() as u32).to_le_bytes());
                record.extend_from_slice(&kv.value);
            }
            let sum = wal_checksum(&record);
            out.extend_from_slice(&record);
            out.extend_from_slice(&sum.to_le_bytes());
            i += batch.len();
        }
        out
    }

    /// Rebuild a WAL from an encoded image, tolerating a torn or corrupt
    /// tail: parsing stops at the first incomplete record, checksum
    /// mismatch, or sequence-id regression, and everything before that
    /// point — exactly the durable prefix of batches — is recovered.
    /// Never panics, whatever the input bytes.
    pub fn from_encoded(bytes: &[u8]) -> WriteAheadLog {
        let (inner, _) = decode_inner(bytes);
        WriteAheadLog {
            inner: Arc::new(Mutex::new(inner)),
        }
    }

    /// Parse an encoded image and report what was found, without building
    /// a log. Recovery oracles use this to distinguish a survivable torn
    /// tail from a sequence-id protocol violation.
    pub fn decode_report(bytes: &[u8]) -> WalDecodeReport {
        let (_, report) = decode_inner(bytes);
        report
    }

    /// Distinct batch sequence ids currently retained, in append order.
    pub fn batch_sequences(&self) -> Vec<SequenceId> {
        let inner = self.inner.lock();
        let mut out = Vec::new();
        for &(seq, _) in &inner.entries {
            if out.last() != Some(&seq) {
                out.push(seq);
            }
        }
        out
    }
}

fn wal_checksum(bytes: &[u8]) -> u64 {
    // Same xor-fold FNV-style accumulator as the store-file format:
    // cheap, order-sensitive, catches truncation and bit rot.
    let mut acc = 0xcbf29ce484222325u64;
    for &b in bytes {
        acc ^= b as u64;
        acc = acc.wrapping_mul(0x100000001b3);
    }
    acc
}

/// Cursor-based reader that returns `None` instead of slicing past the
/// end — a torn tail must surface as "record incomplete", never a panic.
struct WalReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WalReader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| {
            let mut a = [0u8; 2];
            a.copy_from_slice(b);
            u16::from_le_bytes(a)
        })
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| {
            let mut a = [0u8; 4];
            a.copy_from_slice(b);
            u32::from_le_bytes(a)
        })
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| {
            let mut a = [0u8; 8];
            a.copy_from_slice(b);
            u64::from_le_bytes(a)
        })
    }
}

/// One record parsed from the image, or `None` when the tail is torn.
fn decode_record(r: &mut WalReader<'_>) -> Option<(SequenceId, Vec<KeyValue>)> {
    let start = r.pos;
    let seq = r.u64()?;
    let count = r.u32()?;
    let mut kvs = Vec::with_capacity(count.min(4096) as usize);
    for _ in 0..count {
        let row_len = r.u16()? as usize;
        let row = Bytes::copy_from_slice(r.take(row_len)?);
        let qual_len = r.u16()? as usize;
        let qualifier = Bytes::copy_from_slice(r.take(qual_len)?);
        let timestamp = r.u64()?;
        let val_len = r.u32()? as usize;
        let value = Bytes::copy_from_slice(r.take(val_len)?);
        kvs.push(KeyValue {
            row,
            qualifier,
            timestamp,
            value,
        });
    }
    let body_end = r.pos;
    let stored = r.u64()?;
    let computed = r
        .bytes
        .get(start..body_end)
        .map(wal_checksum)
        .unwrap_or_default();
    if stored != computed {
        return None;
    }
    Some((seq, kvs))
}

fn decode_inner(bytes: &[u8]) -> (WalInner, WalDecodeReport) {
    let mut report = WalDecodeReport {
        records: 0,
        cells: 0,
        torn: false,
        monotone: true,
    };
    let mut inner = WalInner::default();
    let mut r = WalReader { bytes, pos: 0 };
    let header_ok = r.take(4).map(|m| m == WAL_MAGIC).unwrap_or(false)
        && r.take(1).map(|v| v == [WAL_VERSION]).unwrap_or(false);
    if !header_ok {
        report.torn = !bytes.is_empty();
        return (inner, report);
    }
    let Some(flushed_through) = r.u64() else {
        report.torn = true;
        return (inner, report);
    };
    inner.flushed_through = flushed_through;
    inner.next_seq = flushed_through;
    let mut last_seq = flushed_through;
    while r.pos < bytes.len() {
        match decode_record(&mut r) {
            Some((seq, kvs)) => {
                if seq <= last_seq {
                    // Sequence regression: a protocol violation, not a
                    // torn tail. Keep the valid prefix, flag it.
                    report.monotone = false;
                    break;
                }
                last_seq = seq;
                report.records += 1;
                report.cells += kvs.len();
                for kv in kvs {
                    inner.entries.push((seq, kv));
                }
            }
            None => {
                report.torn = true;
                break;
            }
        }
    }
    inner.next_seq = last_seq;
    (inner, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(row: &str, ts: u64) -> KeyValue {
        KeyValue::new(row.as_bytes().to_vec(), b"q".to_vec(), ts, b"v".to_vec())
    }

    #[test]
    fn append_and_replay_in_order() {
        let wal = WriteAheadLog::new();
        wal.append_batch(&[kv("a", 1), kv("b", 1)]);
        wal.append_batch(&[kv("c", 2)]);
        let replayed = wal.replay();
        assert_eq!(replayed.len(), 3);
        assert_eq!(&replayed[0].row[..], b"a");
        assert_eq!(&replayed[2].row[..], b"c");
    }

    #[test]
    fn flush_mark_truncates_replay() {
        let wal = WriteAheadLog::new();
        let s1 = wal.append_batch(&[kv("a", 1)]);
        let _s2 = wal.append_batch(&[kv("b", 1)]);
        wal.mark_flushed(s1);
        let replayed = wal.replay();
        assert_eq!(replayed.len(), 1);
        assert_eq!(&replayed[0].row[..], b"b");
        assert_eq!(wal.unflushed_len(), 1);
    }

    #[test]
    fn clones_share_state() {
        let wal = WriteAheadLog::new();
        let clone = wal.clone();
        wal.append_batch(&[kv("a", 1)]);
        assert_eq!(clone.replay().len(), 1);
        clone.mark_flushed(clone.last_sequence());
        assert_eq!(wal.unflushed_len(), 0);
    }

    #[test]
    fn flush_mark_is_monotone() {
        let wal = WriteAheadLog::new();
        let s1 = wal.append_batch(&[kv("a", 1)]);
        let s2 = wal.append_batch(&[kv("b", 1)]);
        wal.mark_flushed(s2);
        wal.mark_flushed(s1); // stale mark must not resurrect entries
        assert_eq!(wal.unflushed_len(), 0);
    }

    /// Build a WAL holding `batches` batches (batch `b` has `b + 1` cells
    /// with distinguishable rows) and return it.
    fn wal_with_batches(batches: usize) -> WriteAheadLog {
        let wal = WriteAheadLog::new();
        for b in 0..batches {
            let kvs: Vec<KeyValue> = (0..=b)
                .map(|c| kv(&format!("b{b}c{c}"), b as u64))
                .collect();
            wal.append_batch(&kvs);
        }
        wal
    }

    #[test]
    fn encode_decode_roundtrip_preserves_replay_and_sequences() {
        let wal = wal_with_batches(4);
        wal.mark_flushed(1); // first batch flushed: must not be encoded
        let decoded = WriteAheadLog::from_encoded(&wal.encode());
        assert_eq!(decoded.replay(), wal.replay());
        assert_eq!(decoded.batch_sequences(), wal.batch_sequences());
        assert_eq!(decoded.last_sequence(), wal.last_sequence());
        // Appends continue from the recovered sequence.
        let next = decoded.append_batch(&[kv("post", 9)]);
        assert_eq!(next, wal.last_sequence() + 1);
        let report = WriteAheadLog::decode_report(&wal.encode());
        assert_eq!(report.records, 3);
        assert_eq!(report.cells, 2 + 3 + 4);
        assert!(!report.torn);
        assert!(report.monotone);
    }

    /// Satellite: truncate mid-record at **every** byte boundary of the
    /// last record. `replay()` must return exactly the durable prefix of
    /// batches and must never panic.
    #[test]
    fn torn_tail_at_every_byte_boundary_recovers_exact_prefix() {
        let batches = 3;
        let full = wal_with_batches(batches);
        let prefix = wal_with_batches(batches - 1);
        let full_bytes = full.encode();
        let prefix_bytes = prefix.encode();
        assert!(
            full_bytes.starts_with(&prefix_bytes),
            "records are append-only, so the shorter log is a byte prefix"
        );
        let expected_prefix = prefix.replay();
        // Start one byte into the last record: at exactly `prefix_len` the
        // image is complete (not torn), which is covered by the roundtrip
        // test above.
        for cut in prefix_bytes.len() + 1..full_bytes.len() {
            let torn = &full_bytes[..cut];
            let recovered = WriteAheadLog::from_encoded(torn);
            assert_eq!(
                recovered.replay(),
                expected_prefix,
                "cut at byte {cut} must yield exactly the durable prefix"
            );
            let report = WriteAheadLog::decode_report(torn);
            assert!(report.torn, "cut at byte {cut} must be reported torn");
            assert!(report.monotone);
        }
        // The untruncated image recovers everything.
        assert_eq!(
            WriteAheadLog::from_encoded(&full_bytes).replay(),
            full.replay()
        );
    }

    #[test]
    fn corrupt_byte_in_tail_record_is_discarded_by_checksum() {
        let full = wal_with_batches(2);
        let prefix_len = wal_with_batches(1).encode().len();
        let mut bytes = full.encode();
        for flip in prefix_len..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[flip] ^= 0xA5;
            let recovered = WriteAheadLog::from_encoded(&corrupted);
            // Either the checksum catches it (prefix recovered) or the
            // corrupted length field makes the record incomplete — in no
            // case may garbage cells or a panic escape.
            assert!(recovered.replay().len() <= full.replay().len());
            let report = WriteAheadLog::decode_report(&corrupted);
            assert!(report.records <= 2);
        }
        // Truncating to nothing, garbage, or a bad magic is survivable.
        bytes.truncate(3);
        assert!(WriteAheadLog::from_encoded(&bytes).replay().is_empty());
        assert!(WriteAheadLog::from_encoded(b"not-a-wal")
            .replay()
            .is_empty());
        assert!(WriteAheadLog::from_encoded(&[]).replay().is_empty());
    }

    #[test]
    fn append_with_seq_is_contiguous_and_idempotent() {
        let wal = WriteAheadLog::new();
        assert_eq!(
            wal.append_batch_with_seq(1, &[kv("a", 1)]),
            ShipOutcome::Applied
        );
        assert_eq!(
            wal.append_batch_with_seq(1, &[kv("a", 1)]),
            ShipOutcome::Stale,
            "duplicate ship must be rejected"
        );
        assert_eq!(
            wal.append_batch_with_seq(2, &[kv("b", 2)]),
            ShipOutcome::Applied
        );
        assert_eq!(
            wal.append_batch_with_seq(1, &[kv("stale", 1)]),
            ShipOutcome::Stale,
            "stale ship must be rejected"
        );
        assert_eq!(wal.batch_sequences(), vec![1, 2]);
        assert_eq!(wal.last_sequence(), 2);
        // Local appends continue after the shipped numbering.
        assert_eq!(wal.append_batch(&[kv("c", 3)]), 3);
    }

    #[test]
    fn append_with_seq_rejects_holes_and_applies_nothing() {
        let wal = WriteAheadLog::new();
        assert_eq!(
            wal.append_batch_with_seq(1, &[kv("a", 1)]),
            ShipOutcome::Applied
        );
        // Batch 2 was lost in transit; batch 3 must not open a hole.
        assert_eq!(
            wal.append_batch_with_seq(3, &[kv("c", 3)]),
            ShipOutcome::Gap
        );
        assert_eq!(wal.last_sequence(), 1, "a rejected gap advances nothing");
        assert_eq!(wal.batch_sequences(), vec![1]);
        assert_eq!(wal.replay().len(), 1);
        // Backfilling the missing batch unblocks the tail.
        assert_eq!(
            wal.append_batch_with_seq(2, &[kv("b", 2)]),
            ShipOutcome::Applied
        );
        assert_eq!(
            wal.append_batch_with_seq(3, &[kv("c", 3)]),
            ShipOutcome::Applied
        );
        assert_eq!(wal.batch_sequences(), vec![1, 2, 3]);
    }

    #[test]
    fn allow_gap_variant_reproduces_the_holey_wal() {
        // The mutant hook's semantics: the gap lands, last_sequence lies.
        let wal = WriteAheadLog::new();
        assert_eq!(
            wal.append_batch_with_seq_allow_gap(1, &[kv("a", 1)]),
            ShipOutcome::Applied
        );
        assert_eq!(
            wal.append_batch_with_seq_allow_gap(3, &[kv("c", 3)]),
            ShipOutcome::Applied
        );
        assert_eq!(wal.last_sequence(), 3);
        assert_eq!(wal.batch_sequences(), vec![1, 3], "hole retained");
        assert_eq!(
            wal.append_batch_with_seq_allow_gap(2, &[kv("b", 2)]),
            ShipOutcome::Stale,
            "the hole can never be healed afterwards"
        );
    }

    #[test]
    fn batches_after_serves_the_retained_tail() {
        let wal = wal_with_batches(4); // seqs 1..=4, batch b has b+1 cells
        let tail = wal.batches_after(2);
        assert_eq!(tail.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(tail[0].1.len(), 3);
        assert_eq!(tail[1].1.len(), 4);
        assert!(wal.batches_after(4).is_empty());
        // Flushing bounds what backfill can serve.
        wal.mark_flushed(3);
        assert_eq!(wal.batches_after(0).len(), 1, "only batch 4 retained");
    }

    #[test]
    fn start_sequence_rejects_pre_snapshot_ships() {
        let wal = WriteAheadLog::with_start_sequence(7);
        assert_eq!(wal.last_sequence(), 7);
        assert_eq!(
            wal.append_batch_with_seq(7, &[kv("old", 1)]),
            ShipOutcome::Stale
        );
        assert_eq!(
            wal.append_batch_with_seq(8, &[kv("new", 1)]),
            ShipOutcome::Applied
        );
        assert_eq!(wal.replay().len(), 1);
        // Encode/decode keeps the start mark.
        let back = WriteAheadLog::from_encoded(&wal.encode());
        assert_eq!(back.last_sequence(), 8);
        assert_eq!(
            back.append_batch_with_seq(8, &[kv("dup", 1)]),
            ShipOutcome::Stale
        );
    }

    #[test]
    fn sequence_regression_is_flagged_not_panicked() {
        // Hand-craft an image whose second record repeats the first seq.
        let wal = wal_with_batches(1);
        let bytes = wal.encode();
        let record = &bytes[13..]; // skip magic(4) + version(1) + flushed(8)
        let mut doubled = bytes.clone();
        doubled.extend_from_slice(record);
        let report = WriteAheadLog::decode_report(&doubled);
        assert!(!report.monotone, "duplicated seq must break monotonicity");
        assert_eq!(report.records, 1, "only the valid prefix is kept");
        let recovered = WriteAheadLog::from_encoded(&doubled);
        assert_eq!(recovered.replay(), wal.replay());
    }
}
