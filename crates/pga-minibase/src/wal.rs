//! Write-ahead log.
//!
//! Every put is appended here before touching the memstore, so a region
//! whose server dies can be rebuilt by replay (the master's reassignment
//! path exercises this). The log lives in shared memory — the stand-in for
//! the paper's HDFS — so it survives the serving thread.

use parking_lot::Mutex;
use std::sync::Arc;

use crate::kv::KeyValue;

/// Sequence number assigned to each appended batch.
pub type SequenceId = u64;

#[derive(Debug, Default)]
struct WalInner {
    entries: Vec<(SequenceId, KeyValue)>,
    next_seq: SequenceId,
    /// Sequence ids at or below this mark are durably flushed to store
    /// files and can be discarded.
    flushed_through: SequenceId,
}

/// A shareable write-ahead log for one region.
#[derive(Debug, Clone, Default)]
pub struct WriteAheadLog {
    inner: Arc<Mutex<WalInner>>,
}

impl WriteAheadLog {
    /// Empty log.
    pub fn new() -> Self {
        WriteAheadLog::default()
    }

    /// Append a batch atomically; returns the batch's sequence id.
    pub fn append_batch(&self, kvs: &[KeyValue]) -> SequenceId {
        let mut inner = self.inner.lock();
        inner.next_seq += 1;
        let seq = inner.next_seq;
        inner.entries.reserve(kvs.len());
        for kv in kvs {
            inner.entries.push((seq, kv.clone()));
        }
        seq
    }

    /// Entries newer than the flush mark, in append order — the data a
    /// recovering server must replay into a fresh memstore.
    pub fn replay(&self) -> Vec<KeyValue> {
        let inner = self.inner.lock();
        inner
            .entries
            .iter()
            .filter(|(seq, _)| *seq > inner.flushed_through)
            .map(|(_, kv)| kv.clone())
            .collect()
    }

    /// Mark everything up to `seq` as flushed and drop those entries.
    pub fn mark_flushed(&self, seq: SequenceId) {
        let mut inner = self.inner.lock();
        inner.flushed_through = inner.flushed_through.max(seq);
        let cutoff = inner.flushed_through;
        inner.entries.retain(|(s, _)| *s > cutoff);
    }

    /// Number of unflushed entries.
    pub fn unflushed_len(&self) -> usize {
        let inner = self.inner.lock();
        inner
            .entries
            .iter()
            .filter(|(seq, _)| *seq > inner.flushed_through)
            .count()
    }

    /// Latest assigned sequence id.
    pub fn last_sequence(&self) -> SequenceId {
        self.inner.lock().next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(row: &str, ts: u64) -> KeyValue {
        KeyValue::new(row.as_bytes().to_vec(), b"q".to_vec(), ts, b"v".to_vec())
    }

    #[test]
    fn append_and_replay_in_order() {
        let wal = WriteAheadLog::new();
        wal.append_batch(&[kv("a", 1), kv("b", 1)]);
        wal.append_batch(&[kv("c", 2)]);
        let replayed = wal.replay();
        assert_eq!(replayed.len(), 3);
        assert_eq!(&replayed[0].row[..], b"a");
        assert_eq!(&replayed[2].row[..], b"c");
    }

    #[test]
    fn flush_mark_truncates_replay() {
        let wal = WriteAheadLog::new();
        let s1 = wal.append_batch(&[kv("a", 1)]);
        let _s2 = wal.append_batch(&[kv("b", 1)]);
        wal.mark_flushed(s1);
        let replayed = wal.replay();
        assert_eq!(replayed.len(), 1);
        assert_eq!(&replayed[0].row[..], b"b");
        assert_eq!(wal.unflushed_len(), 1);
    }

    #[test]
    fn clones_share_state() {
        let wal = WriteAheadLog::new();
        let clone = wal.clone();
        wal.append_batch(&[kv("a", 1)]);
        assert_eq!(clone.replay().len(), 1);
        clone.mark_flushed(clone.last_sequence());
        assert_eq!(wal.unflushed_len(), 0);
    }

    #[test]
    fn flush_mark_is_monotone() {
        let wal = WriteAheadLog::new();
        let s1 = wal.append_batch(&[kv("a", 1)]);
        let s2 = wal.append_batch(&[kv("b", 1)]);
        wal.mark_flushed(s2);
        wal.mark_flushed(s1); // stale mark must not resurrect entries
        assert_eq!(wal.unflushed_len(), 0);
    }
}
