//! K-way merge scans across the memstore and store files.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::kv::KeyValue;

/// Merge already-sorted cell streams into one sorted stream, deduplicating
/// exact `(row, qualifier, timestamp)` collisions in favour of the source
/// with the highest priority (the memstore, then newer store files).
///
/// `sources` must each be sorted; `priorities[i]` ranks source `i` (higher
/// wins collisions).
pub fn merge_scan(sources: Vec<Vec<KeyValue>>, priorities: Vec<u64>) -> Vec<KeyValue> {
    assert_eq!(sources.len(), priorities.len());
    struct HeapItem {
        kv: KeyValue,
        source: usize,
        priority: u64,
    }
    impl PartialEq for HeapItem {
        fn eq(&self, other: &Self) -> bool {
            self.kv == other.kv && self.priority == other.priority
        }
    }
    impl Eq for HeapItem {}
    impl Ord for HeapItem {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // BinaryHeap is a max-heap; we want the smallest cell first, and
            // among equal cell keys the highest priority first.
            other
                .kv
                .cmp(&self.kv)
                .then_with(|| self.priority.cmp(&other.priority))
        }
    }
    impl PartialOrd for HeapItem {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut iters: Vec<std::vec::IntoIter<KeyValue>> =
        sources.into_iter().map(|s| s.into_iter()).collect();
    let mut heap = BinaryHeap::new();
    for (i, it) in iters.iter_mut().enumerate() {
        if let Some(kv) = it.next() {
            heap.push(HeapItem {
                kv,
                source: i,
                priority: priorities[i],
            });
        }
    }
    let mut out: Vec<KeyValue> = Vec::new();
    let mut last_key: Option<(bytes::Bytes, bytes::Bytes, Reverse<u64>)> = None;
    while let Some(item) = heap.pop() {
        let key = (
            item.kv.row.clone(),
            item.kv.qualifier.clone(),
            Reverse(item.kv.timestamp),
        );
        let duplicate = last_key.as_ref() == Some(&key);
        if !duplicate {
            out.push(item.kv);
            last_key = Some(key);
        }
        if let Some(next) = iters[item.source].next() {
            heap.push(HeapItem {
                kv: next,
                source: item.source,
                priority: item.priority,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(row: &str, ts: u64, val: &str) -> KeyValue {
        KeyValue::new(
            row.as_bytes().to_vec(),
            b"q".to_vec(),
            ts,
            val.as_bytes().to_vec(),
        )
    }

    #[test]
    fn merges_disjoint_sources_in_order() {
        let a = vec![kv("a", 1, "1"), kv("c", 1, "1")];
        let b = vec![kv("b", 1, "1"), kv("d", 1, "1")];
        let merged = merge_scan(vec![a, b], vec![1, 0]);
        let rows: Vec<_> = merged.iter().map(|k| k.row.clone()).collect();
        assert_eq!(rows, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn duplicate_cells_resolved_by_priority() {
        let memstore = vec![kv("a", 5, "newer-source")];
        let file = vec![kv("a", 5, "older-source")];
        let merged = merge_scan(vec![file, memstore], vec![0, 10]);
        assert_eq!(merged.len(), 1);
        assert_eq!(&merged[0].value[..], b"newer-source");
    }

    #[test]
    fn versions_of_same_cell_newest_first() {
        let f1 = vec![kv("a", 1, "v1")];
        let f2 = vec![kv("a", 9, "v9")];
        let merged = merge_scan(vec![f1, f2], vec![0, 1]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].timestamp, 9);
        assert_eq!(merged[1].timestamp, 1);
    }

    #[test]
    fn empty_sources_are_fine() {
        assert!(merge_scan(vec![], vec![]).is_empty());
        assert_eq!(
            merge_scan(vec![vec![], vec![kv("a", 1, "v")]], vec![0, 1]).len(),
            1
        );
    }

    #[test]
    fn three_way_merge_with_collisions() {
        let s0 = vec![kv("a", 1, "s0"), kv("b", 1, "s0")];
        let s1 = vec![kv("a", 1, "s1"), kv("c", 1, "s1")];
        let s2 = vec![kv("b", 1, "s2"), kv("c", 1, "s2")];
        let merged = merge_scan(vec![s0, s1, s2], vec![0, 1, 2]);
        assert_eq!(merged.len(), 3);
        let winners: Vec<_> = merged
            .iter()
            .map(|k| String::from_utf8(k.value.to_vec()).unwrap())
            .collect();
        assert_eq!(winners, vec!["s1", "s2", "s2"]);
    }
}
