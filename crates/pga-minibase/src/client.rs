//! Routing client: groups batches by region, retries on stale directory.

use std::collections::HashMap;

use crate::kv::{KeyValue, RowRange};
use crate::master::{locate, Directory, Master};
use crate::region::RegionId;
use crate::server::{Request, Response};
use pga_cluster::rpc::{RpcError, RpcHandle};
use pga_cluster::NodeId;

/// Client-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// No region covers the row (directory empty or table missing).
    NoRegionForRow(Vec<u8>),
    /// RPC to a region server failed.
    Rpc(RpcError),
    /// Routing kept failing after directory refreshes.
    RetriesExhausted,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::NoRegionForRow(r) => write!(f, "no region for row {r:?}"),
            ClientError::Rpc(e) => write!(f, "rpc error: {e}"),
            ClientError::RetriesExhausted => write!(f, "routing retries exhausted"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A MiniBase client bound to one in-process cluster.
///
/// Holds the shared directory plus each server's RPC handle. Batched puts
/// are grouped per region so one RPC carries many cells — the behaviour
/// OpenTSDB relies on for throughput.
pub struct Client {
    directory: Directory,
    handles: HashMap<NodeId, RpcHandle<Request, Response>>,
    max_retries: usize,
}

impl Client {
    /// Build a client from a master (grabs every live server handle).
    pub fn connect(master: &Master) -> Self {
        let mut handles = HashMap::new();
        for node in master.live_nodes() {
            if let Some(s) = master.server(node) {
                handles.insert(node, s.handle());
            }
        }
        Client {
            directory: master.directory(),
            handles,
            max_retries: 3,
        }
    }

    /// Write a batch of cells, routing each to its region. Returns the
    /// number of cells written.
    pub fn put(&self, kvs: Vec<KeyValue>) -> Result<usize, ClientError> {
        let total = kvs.len();
        let mut pending = kvs;
        for _attempt in 0..=self.max_retries {
            if pending.is_empty() {
                return Ok(total);
            }
            // Group by (region, server) under the current directory.
            let mut groups: HashMap<(RegionId, NodeId), Vec<KeyValue>> = HashMap::new();
            for kv in pending.drain(..) {
                let info = locate(&self.directory, &kv.row)
                    .ok_or_else(|| ClientError::NoRegionForRow(kv.row.to_vec()))?;
                groups.entry((info.id, info.server)).or_default().push(kv);
            }
            let mut retry = Vec::new();
            for ((region, node), batch) in groups {
                let handle = self
                    .handles
                    .get(&node)
                    .ok_or(ClientError::Rpc(RpcError::Stopped))?;
                match handle.call(Request::Put {
                    region,
                    kvs: batch.clone(),
                }) {
                    Ok(Response::Ok) => {}
                    Ok(Response::WrongRegion) => retry.extend(batch),
                    Ok(_) => return Err(ClientError::Rpc(RpcError::Stopped)),
                    Err(e) => return Err(ClientError::Rpc(e)),
                }
            }
            pending = retry;
        }
        if pending.is_empty() {
            Ok(total)
        } else {
            Err(ClientError::RetriesExhausted)
        }
    }

    /// Scan a row range across every overlapping region, merged in order.
    pub fn scan(&self, range: &RowRange) -> Result<Vec<KeyValue>, ClientError> {
        let infos: Vec<_> = {
            let dir = self.directory.read();
            dir.iter()
                .filter(|i| i.range.overlaps(range))
                .cloned()
                .collect()
        };
        let mut out = Vec::new();
        for info in infos {
            let handle = self
                .handles
                .get(&info.server)
                .ok_or(ClientError::Rpc(RpcError::Stopped))?;
            match handle.call(Request::Scan {
                region: info.id,
                range: range.clone(),
            }) {
                Ok(Response::Cells(cells)) => out.extend(cells),
                Ok(Response::WrongRegion) => {} // split raced us; daughters cover it
                Ok(_) => return Err(ClientError::Rpc(RpcError::Stopped)),
                Err(e) => return Err(ClientError::Rpc(e)),
            }
        }
        out.sort();
        Ok(out)
    }

    /// Flush every region (test/bench hygiene).
    pub fn flush_all(&self) -> Result<(), ClientError> {
        let infos: Vec<_> = self.directory.read().clone();
        for info in infos {
            if let Some(handle) = self.handles.get(&info.server) {
                match handle.call(Request::Flush { region: info.id }) {
                    Ok(_) => {}
                    Err(e) => return Err(ClientError::Rpc(e)),
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master::TableDescriptor;
    use crate::region::RegionConfig;
    use crate::server::ServerConfig;
    use bytes::Bytes;
    use pga_cluster::coordinator::Coordinator;

    fn cluster(nodes: usize, splits: &[&[u8]]) -> (Master, Client) {
        let coord = Coordinator::new(1000);
        let mut m = Master::bootstrap(nodes, ServerConfig::default(), coord, 0);
        m.create_table(&TableDescriptor {
            name: "t".into(),
            split_points: splits.iter().map(|s| Bytes::from(s.to_vec())).collect(),
            region_config: RegionConfig::default(),
        });
        let c = Client::connect(&m);
        (m, c)
    }

    fn kv(row: &str, ts: u64) -> KeyValue {
        KeyValue::new(row.as_bytes().to_vec(), b"q".to_vec(), ts, b"v".to_vec())
    }

    #[test]
    fn put_and_scan_across_regions() {
        let (m, c) = cluster(3, &[b"h", b"q"]);
        c.put(vec![kv("a", 1), kv("m", 1), kv("z", 1)]).unwrap();
        let cells = c.scan(&RowRange::all()).unwrap();
        assert_eq!(cells.len(), 3);
        let rows: Vec<_> = cells.iter().map(|c| c.row.clone()).collect();
        assert_eq!(rows, vec!["a", "m", "z"]);
        m.shutdown();
    }

    #[test]
    fn scan_subrange_touches_only_matching_regions() {
        let (m, c) = cluster(2, &[b"m"]);
        c.put(vec![kv("a", 1), kv("b", 1), kv("x", 1)]).unwrap();
        let cells = c
            .scan(&RowRange::new(b"a".to_vec(), b"c".to_vec()))
            .unwrap();
        assert_eq!(cells.len(), 2);
        m.shutdown();
    }

    #[test]
    fn put_retries_after_split() {
        let (mut m, c) = cluster(2, &[]);
        for i in 0..60 {
            c.put(vec![kv(&format!("row{i:03}"), 1)]).unwrap();
        }
        let rid = m.directory().read()[0].id;
        m.split_region(rid).unwrap();
        // Directory changed under the client; puts must still route.
        c.put(vec![kv("row000", 2), kv("row059", 2)]).unwrap();
        let cells = c.scan(&RowRange::all()).unwrap();
        assert_eq!(cells.len(), 62);
        m.shutdown();
    }

    #[test]
    fn empty_directory_reports_no_region() {
        let coord = Coordinator::new(1000);
        let m = Master::bootstrap(1, ServerConfig::default(), coord, 0);
        let c = Client::connect(&m);
        let err = c.put(vec![kv("a", 1)]).unwrap_err();
        assert!(matches!(err, ClientError::NoRegionForRow(_)));
        m.shutdown();
    }

    #[test]
    fn flush_all_keeps_data_visible() {
        let (m, c) = cluster(2, &[b"m"]);
        c.put(vec![kv("a", 1), kv("z", 1)]).unwrap();
        c.flush_all().unwrap();
        assert_eq!(c.scan(&RowRange::all()).unwrap().len(), 2);
        m.shutdown();
    }
}
