//! Routing client: groups batches by region, retries on stale directory.

use std::collections::HashMap;

use crate::kv::{KeyValue, RowRange};
use crate::master::{locate, Directory, Master};
use crate::region::RegionId;
use crate::server::{Request, Response};
use pga_cluster::rpc::{RequestClass, RpcError, RpcHandle};
use pga_cluster::NodeId;

/// Client-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// No region covers the row (directory empty or table missing).
    NoRegionForRow(Vec<u8>),
    /// RPC to a region server failed.
    Rpc(RpcError),
    /// Admission control shed the request; retry after the hinted delay.
    /// The batch is safe to resubmit whole: duplicate cells are idempotent
    /// (same row/qualifier/timestamp) and readers dedup by timestamp.
    Busy {
        /// Suggested minimum backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The request's deadline expired before the server served it.
    DeadlineExpired,
    /// Routing kept failing after directory refreshes.
    RetriesExhausted,
}

impl ClientError {
    /// Retry hint if this is a `Busy` rejection.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ClientError::Busy { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::NoRegionForRow(r) => write!(f, "no region for row {r:?}"),
            ClientError::Rpc(e) => write!(f, "rpc error: {e}"),
            ClientError::Busy { retry_after_ms } => {
                write!(f, "server busy, retry after {retry_after_ms}ms")
            }
            ClientError::DeadlineExpired => write!(f, "deadline expired before service"),
            ClientError::RetriesExhausted => write!(f, "routing retries exhausted"),
        }
    }
}

impl std::error::Error for ClientError {}

fn map_rpc(e: RpcError) -> ClientError {
    match e {
        RpcError::Busy { retry_after_ms } => ClientError::Busy { retry_after_ms },
        RpcError::DeadlineExpired => ClientError::DeadlineExpired,
        other => ClientError::Rpc(other),
    }
}

/// A MiniBase client bound to one in-process cluster.
///
/// Holds the shared directory plus each server's RPC handle. Batched puts
/// are grouped per region so one RPC carries many cells — the behaviour
/// OpenTSDB relies on for throughput.
pub struct Client {
    directory: Directory,
    handles: HashMap<NodeId, RpcHandle<Request, Response>>,
    max_retries: usize,
}

#[derive(Clone, Copy)]
enum PutMode {
    /// Seed semantics: wait for queue space (producer-side backpressure).
    Blocking,
    /// Overload-control semantics: typed `Busy` shed + deadline tag.
    Admitted {
        /// Absolute server-clock deadline in milliseconds.
        deadline_ms: Option<u64>,
    },
}

impl Client {
    /// Build a client from a master (grabs every live server handle).
    pub fn connect(master: &Master) -> Self {
        let mut handles = HashMap::new();
        for node in master.live_nodes() {
            if let Some(s) = master.server(node) {
                handles.insert(node, s.handle());
            }
        }
        Client {
            directory: master.directory(),
            handles,
            max_retries: 3,
        }
    }

    /// Write a batch of cells, routing each to its region. Returns the
    /// number of cells written. Blocking path (seed semantics): a full
    /// server queue applies backpressure by making this call wait.
    pub fn put(&self, kvs: Vec<KeyValue>) -> Result<usize, ClientError> {
        self.put_inner(kvs, PutMode::Blocking)
    }

    /// Admission-controlled write: never blocks on a saturated server.
    /// Over-watermark queues reject with [`ClientError::Busy`] and an
    /// optional absolute deadline (server-clock ms) rides with the batch
    /// so the server drops it as [`ClientError::DeadlineExpired`] instead
    /// of serving dead work. On `Busy`, resubmit the whole batch: cells
    /// already written are idempotent and readers dedup by timestamp.
    pub fn put_admitted(
        &self,
        kvs: Vec<KeyValue>,
        deadline_ms: Option<u64>,
    ) -> Result<usize, ClientError> {
        self.put_inner(kvs, PutMode::Admitted { deadline_ms })
    }

    fn put_inner(&self, kvs: Vec<KeyValue>, mode: PutMode) -> Result<usize, ClientError> {
        let total = kvs.len();
        let mut pending = kvs;
        for _attempt in 0..=self.max_retries {
            if pending.is_empty() {
                return Ok(total);
            }
            // Group by (region, server) under the current directory.
            let mut groups: HashMap<(RegionId, NodeId), Vec<KeyValue>> = HashMap::new();
            for kv in pending.drain(..) {
                let info = locate(&self.directory, &kv.row)
                    .ok_or_else(|| ClientError::NoRegionForRow(kv.row.to_vec()))?;
                groups.entry((info.id, info.server)).or_default().push(kv);
            }
            let mut retry = Vec::new();
            for ((region, node), batch) in groups {
                let handle = self
                    .handles
                    .get(&node)
                    .ok_or(ClientError::Rpc(RpcError::Stopped))?;
                let req = Request::Put {
                    region,
                    kvs: batch.clone(),
                };
                let sent = match mode {
                    PutMode::Blocking => handle.call(req),
                    PutMode::Admitted { deadline_ms } => {
                        handle.call_with(req, RequestClass::Write, deadline_ms)
                    }
                };
                match sent {
                    Ok(Response::Ok) => {}
                    Ok(Response::WrongRegion) => retry.extend(batch),
                    Ok(_) => return Err(ClientError::Rpc(RpcError::Stopped)),
                    Err(e) => return Err(map_rpc(e)),
                }
            }
            pending = retry;
        }
        if pending.is_empty() {
            Ok(total)
        } else {
            Err(ClientError::RetriesExhausted)
        }
    }

    /// Admission-controlled scan: sheds with [`ClientError::Busy`] only
    /// past the *read* watermark — higher than the write watermark, so the
    /// fleet view outlives ingest under overload.
    pub fn scan_admitted(
        &self,
        range: &RowRange,
        deadline_ms: Option<u64>,
    ) -> Result<Vec<KeyValue>, ClientError> {
        self.scan_inner(range, Some(deadline_ms))
    }

    /// Scan a row range across every overlapping region, merged in order.
    pub fn scan(&self, range: &RowRange) -> Result<Vec<KeyValue>, ClientError> {
        self.scan_inner(range, None)
    }

    fn scan_inner(
        &self,
        range: &RowRange,
        admitted: Option<Option<u64>>,
    ) -> Result<Vec<KeyValue>, ClientError> {
        let infos: Vec<_> = {
            let dir = self.directory.read();
            dir.iter()
                .filter(|i| i.range.overlaps(range))
                .cloned()
                .collect()
        };
        let mut out = Vec::new();
        for info in infos {
            let handle = self
                .handles
                .get(&info.server)
                .ok_or(ClientError::Rpc(RpcError::Stopped))?;
            let req = Request::Scan {
                region: info.id,
                range: range.clone(),
            };
            let sent = match admitted {
                None => handle.call(req),
                Some(deadline_ms) => handle.call_with(req, RequestClass::Read, deadline_ms),
            };
            match sent {
                Ok(Response::Cells(cells)) => out.extend(cells),
                Ok(Response::WrongRegion) => {} // split raced us; daughters cover it
                Ok(_) => return Err(ClientError::Rpc(RpcError::Stopped)),
                Err(e) => return Err(map_rpc(e)),
            }
        }
        out.sort();
        Ok(out)
    }

    /// Flush every region (test/bench hygiene).
    pub fn flush_all(&self) -> Result<(), ClientError> {
        let infos: Vec<_> = self.directory.read().clone();
        for info in infos {
            if let Some(handle) = self.handles.get(&info.server) {
                match handle.call(Request::Flush { region: info.id }) {
                    Ok(_) => {}
                    Err(e) => return Err(ClientError::Rpc(e)),
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master::TableDescriptor;
    use crate::region::RegionConfig;
    use crate::server::ServerConfig;
    use bytes::Bytes;
    use pga_cluster::coordinator::Coordinator;

    fn cluster(nodes: usize, splits: &[&[u8]]) -> (Master, Client) {
        let coord = Coordinator::new(1000);
        let mut m = Master::bootstrap(nodes, ServerConfig::default(), coord, 0);
        m.create_table(&TableDescriptor {
            name: "t".into(),
            split_points: splits.iter().map(|s| Bytes::from(s.to_vec())).collect(),
            region_config: RegionConfig::default(),
        });
        let c = Client::connect(&m);
        (m, c)
    }

    fn kv(row: &str, ts: u64) -> KeyValue {
        KeyValue::new(row.as_bytes().to_vec(), b"q".to_vec(), ts, b"v".to_vec())
    }

    #[test]
    fn put_and_scan_across_regions() {
        let (m, c) = cluster(3, &[b"h", b"q"]);
        c.put(vec![kv("a", 1), kv("m", 1), kv("z", 1)]).unwrap();
        let cells = c.scan(&RowRange::all()).unwrap();
        assert_eq!(cells.len(), 3);
        let rows: Vec<_> = cells.iter().map(|c| c.row.clone()).collect();
        assert_eq!(rows, vec!["a", "m", "z"]);
        m.shutdown();
    }

    #[test]
    fn scan_subrange_touches_only_matching_regions() {
        let (m, c) = cluster(2, &[b"m"]);
        c.put(vec![kv("a", 1), kv("b", 1), kv("x", 1)]).unwrap();
        let cells = c
            .scan(&RowRange::new(b"a".to_vec(), b"c".to_vec()))
            .unwrap();
        assert_eq!(cells.len(), 2);
        m.shutdown();
    }

    #[test]
    fn put_retries_after_split() {
        let (mut m, c) = cluster(2, &[]);
        for i in 0..60 {
            c.put(vec![kv(&format!("row{i:03}"), 1)]).unwrap();
        }
        let rid = m.directory().read()[0].id;
        m.split_region(rid).unwrap();
        // Directory changed under the client; puts must still route.
        c.put(vec![kv("row000", 2), kv("row059", 2)]).unwrap();
        let cells = c.scan(&RowRange::all()).unwrap();
        assert_eq!(cells.len(), 62);
        m.shutdown();
    }

    #[test]
    fn empty_directory_reports_no_region() {
        let coord = Coordinator::new(1000);
        let m = Master::bootstrap(1, ServerConfig::default(), coord, 0);
        let c = Client::connect(&m);
        let err = c.put(vec![kv("a", 1)]).unwrap_err();
        assert!(matches!(err, ClientError::NoRegionForRow(_)));
        m.shutdown();
    }

    #[test]
    fn flush_all_keeps_data_visible() {
        let (m, c) = cluster(2, &[b"m"]);
        c.put(vec![kv("a", 1), kv("z", 1)]).unwrap();
        c.flush_all().unwrap();
        assert_eq!(c.scan(&RowRange::all()).unwrap().len(), 2);
        m.shutdown();
    }
}
