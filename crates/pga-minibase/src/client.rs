//! Routing client: groups batches by region, retries on stale directory.
//!
//! When a directory entry carries follower copies, the client runs the
//! replication protocol transparently inside [`Client::put`]: the batch
//! goes to the primary (one durable vote), ships to every follower under
//! the primary-assigned WAL sequence, and the put is acknowledged only
//! once a write quorum of copies is durable. Epoch fencing keeps a
//! deposed primary's acks out of the quorum. Read-side, followers serve
//! bounded-staleness scans ([`Client::scan_bounded`]) and hedged scans
//! fail over to a replica when the primary is slow or gone
//! ([`Client::scan_hedged`]).

use std::collections::HashMap;
use std::sync::Arc;

use crate::kv::{KeyValue, RowRange};
use crate::master::{locate, Directory, Master, RegionInfo};
use crate::region::RegionId;
use crate::server::{Request, Response};
use pga_cluster::rpc::{RequestClass, RpcError, RpcHandle};
use pga_cluster::NodeId;
use pga_repl::{FollowerReadPolicy, LagBook, QuorumDecision, QuorumTracker};

/// Client-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// No region covers the row (directory empty or table missing).
    NoRegionForRow(Vec<u8>),
    /// RPC to a region server failed.
    Rpc(RpcError),
    /// Admission control shed the request; retry after the hinted delay.
    /// The batch is safe to resubmit whole: duplicate cells are idempotent
    /// (same row/qualifier/timestamp) and readers dedup by timestamp.
    Busy {
        /// Suggested minimum backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The request's deadline expired before the server served it.
    DeadlineExpired,
    /// Routing kept failing after directory refreshes.
    RetriesExhausted,
    /// A replicated put could not reach its write quorum (replicas dead,
    /// fenced, or unreachable) even after directory refreshes. The batch
    /// was NOT acknowledged; resubmitting it whole is safe — any copies
    /// that did land are idempotent (same row/qualifier/timestamp).
    NoQuorum,
}

impl ClientError {
    /// Retry hint if this is a `Busy` rejection.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ClientError::Busy { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::NoRegionForRow(r) => write!(f, "no region for row {r:?}"),
            ClientError::Rpc(e) => write!(f, "rpc error: {e}"),
            ClientError::Busy { retry_after_ms } => {
                write!(f, "server busy, retry after {retry_after_ms}ms")
            }
            ClientError::DeadlineExpired => write!(f, "deadline expired before service"),
            ClientError::RetriesExhausted => write!(f, "routing retries exhausted"),
            ClientError::NoQuorum => write!(f, "replicated put failed to reach write quorum"),
        }
    }
}

impl std::error::Error for ClientError {}

fn map_rpc(e: RpcError) -> ClientError {
    match e {
        RpcError::Busy { retry_after_ms } => ClientError::Busy { retry_after_ms },
        RpcError::DeadlineExpired => ClientError::DeadlineExpired,
        other => ClientError::Rpc(other),
    }
}

/// What a bounded-staleness read learned about a region's primary when it
/// asked for the replication position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PrimaryView {
    /// The primary answered: its last assigned WAL sequence.
    At(u64),
    /// The primary is gone for good (server stopped or crashed). Only
    /// here may a follower answer bypass the staleness check —
    /// availability over freshness, the documented failover-read mode.
    Gone,
    /// The primary is alive but could not answer right now (admission
    /// shed, deadline miss, saturated queue, or a nonsense reply). The
    /// staleness bound must NOT be waived — under overload an unchecked
    /// follower could be arbitrarily stale while the primary is healthy —
    /// so the read goes to the primary path and surfaces its typed error.
    Transient,
}

/// Classify the primary's answer to a `ReplicaStatus` probe. Split out of
/// [`Client::scan_bounded`] so the gone-vs-transient distinction is unit
/// testable without staging real admission shedding.
fn classify_primary_status(result: Result<Response, RpcError>) -> PrimaryView {
    match result {
        Ok(Response::Status { last_seq, .. }) => PrimaryView::At(last_seq),
        Err(RpcError::Stopped | RpcError::Crashed) => PrimaryView::Gone,
        // Busy / DeadlineExpired / Overloaded, or a mis-routed answer:
        // the primary exists, it just did not answer this probe.
        Err(_) | Ok(_) => PrimaryView::Transient,
    }
}

/// A MiniBase client bound to one in-process cluster.
///
/// Holds the shared directory plus each server's RPC handle. Batched puts
/// are grouped per region so one RPC carries many cells — the behaviour
/// OpenTSDB relies on for throughput.
pub struct Client {
    directory: Directory,
    handles: HashMap<NodeId, RpcHandle<Request, Response>>,
    max_retries: usize,
    /// Replication health observed by this client (lag per region,
    /// fence rejections, follower/hedged reads) — telemetry scrapes it.
    repl: Arc<LagBook>,
}

/// One copy's answer to a scrub repair fetch ([`Client::repair_fetch`]).
#[derive(Debug, Clone)]
pub struct RepairCopy {
    /// Node hosting the copy.
    pub node: NodeId,
    /// The copy's last durable WAL sequence (source-ranking input).
    pub applied_seq: u64,
    /// Cells in the requested span on this copy.
    pub cells: Vec<KeyValue>,
}

/// Outcome of one replicated-put attempt (internal).
enum ReplPut {
    /// Quorum durable; the batch is acknowledged.
    Done,
    /// Stale view — re-locate and retry. `quorum` marks a genuine
    /// quorum shortfall (dead/unreachable followers) as opposed to
    /// fencing or mis-routing, so exhaustion can report `NoQuorum`.
    Refresh {
        /// Whether the failure was a quorum shortfall.
        quorum: bool,
    },
}

#[derive(Clone, Copy)]
enum PutMode {
    /// Seed semantics: wait for queue space (producer-side backpressure).
    Blocking,
    /// Overload-control semantics: typed `Busy` shed + deadline tag.
    Admitted {
        /// Absolute server-clock deadline in milliseconds.
        deadline_ms: Option<u64>,
    },
}

impl Client {
    /// Build a client from a master (grabs every live server handle).
    pub fn connect(master: &Master) -> Self {
        let mut handles = HashMap::new();
        for node in master.live_nodes() {
            if let Some(s) = master.server(node) {
                handles.insert(node, s.handle());
            }
        }
        Client {
            directory: master.directory(),
            handles,
            max_retries: 3,
            repl: Arc::new(LagBook::new()),
        }
    }

    /// The replication-health ledger this client maintains (shared with
    /// telemetry exporters).
    pub fn repl_book(&self) -> Arc<LagBook> {
        self.repl.clone()
    }

    /// Write a batch of cells, routing each to its region. Returns the
    /// number of cells written. Blocking path (seed semantics): a full
    /// server queue applies backpressure by making this call wait.
    pub fn put(&self, kvs: Vec<KeyValue>) -> Result<usize, ClientError> {
        self.put_inner(kvs, PutMode::Blocking)
    }

    /// Admission-controlled write: never blocks on a saturated server.
    /// Over-watermark queues reject with [`ClientError::Busy`] and an
    /// optional absolute deadline (server-clock ms) rides with the batch
    /// so the server drops it as [`ClientError::DeadlineExpired`] instead
    /// of serving dead work. On `Busy`, resubmit the whole batch: cells
    /// already written are idempotent and readers dedup by timestamp.
    pub fn put_admitted(
        &self,
        kvs: Vec<KeyValue>,
        deadline_ms: Option<u64>,
    ) -> Result<usize, ClientError> {
        self.put_inner(kvs, PutMode::Admitted { deadline_ms })
    }

    fn put_inner(&self, kvs: Vec<KeyValue>, mode: PutMode) -> Result<usize, ClientError> {
        let total = kvs.len();
        let mut pending = kvs;
        let mut quorum_failed = false;
        for _attempt in 0..=self.max_retries {
            if pending.is_empty() {
                return Ok(total);
            }
            // Group by region under the current directory (the entry
            // carries the primary and any follower copies).
            let mut groups: HashMap<RegionId, (RegionInfo, Vec<KeyValue>)> = HashMap::new();
            for kv in pending.drain(..) {
                let info = locate(&self.directory, &kv.row)
                    .ok_or_else(|| ClientError::NoRegionForRow(kv.row.to_vec()))?;
                groups
                    .entry(info.id)
                    .or_insert_with(|| (info, Vec::new()))
                    .1
                    .push(kv);
            }
            let mut retry = Vec::new();
            quorum_failed = false;
            for (region, (info, batch)) in groups {
                if !info.followers.is_empty() {
                    match self.put_replicated(&info, &batch, mode)? {
                        ReplPut::Done => {}
                        ReplPut::Refresh { quorum } => {
                            quorum_failed |= quorum;
                            retry.extend(batch);
                        }
                    }
                    continue;
                }
                let handle = self
                    .handles
                    .get(&info.server)
                    .ok_or(ClientError::Rpc(RpcError::Stopped))?;
                let req = Request::Put {
                    region,
                    kvs: batch.clone(),
                };
                let sent = match mode {
                    PutMode::Blocking => handle.call(req),
                    PutMode::Admitted { deadline_ms } => {
                        handle.call_with(req, RequestClass::Write, deadline_ms)
                    }
                };
                match sent {
                    Ok(Response::Ok) => {}
                    Ok(Response::WrongRegion) => retry.extend(batch),
                    Ok(_) => return Err(ClientError::Rpc(RpcError::Stopped)),
                    Err(e) => return Err(map_rpc(e)),
                }
            }
            pending = retry;
        }
        if pending.is_empty() {
            Ok(total)
        } else if quorum_failed {
            Err(ClientError::NoQuorum)
        } else {
            Err(ClientError::RetriesExhausted)
        }
    }

    /// One replicated-put attempt under the directory's current view of
    /// the region: primary append (one vote), follower ships, quorum
    /// decision. `Refresh` means the view was stale (fenced, mis-routed,
    /// or quorum short) — the caller re-locates and retries the batch,
    /// which is safe because shipped copies are idempotent.
    fn put_replicated(
        &self,
        info: &RegionInfo,
        batch: &[KeyValue],
        mode: PutMode,
    ) -> Result<ReplPut, ClientError> {
        // The effective write quorum was resolved from the deployment's
        // ReplicationConfig when the table was created and rides on the
        // directory entry — an explicit quorum == factor must bind here,
        // not be silently replaced by the default majority.
        let quorum = info.write_quorum.max(1);
        let mut tracker = QuorumTracker::new(quorum);
        let handle = self
            .handles
            .get(&info.server)
            .ok_or(ClientError::Rpc(RpcError::Stopped))?;
        let req = Request::PutReplicated {
            region: info.id,
            epoch: info.epoch,
            kvs: batch.to_vec(),
        };
        let sent = match mode {
            PutMode::Blocking => handle.call(req),
            PutMode::Admitted { deadline_ms } => {
                handle.call_with(req, RequestClass::Write, deadline_ms)
            }
        };
        let seq = match sent {
            Ok(Response::Appended { seq }) => {
                tracker.record_ack(info.server);
                seq
            }
            Ok(Response::Fenced { .. }) => {
                self.repl.record_fence_rejection();
                return Ok(ReplPut::Refresh { quorum: false });
            }
            Ok(Response::WrongRegion) => return Ok(ReplPut::Refresh { quorum: false }),
            Ok(_) => return Err(ClientError::Rpc(RpcError::Stopped)),
            Err(e) => return Err(map_rpc(e)),
        };
        let mut applied = Vec::with_capacity(info.followers.len());
        for &follower in &info.followers {
            let Some(h) = self.handles.get(&follower) else {
                continue;
            };
            let req = Request::Ship {
                region: info.id,
                epoch: info.epoch,
                seq,
                kvs: batch.to_vec(),
            };
            let sent = match mode {
                PutMode::Blocking => h.call(req),
                PutMode::Admitted { deadline_ms } => {
                    h.call_with(req, RequestClass::Write, deadline_ms)
                }
            };
            match sent {
                Ok(Response::ShipAck { applied_seq }) => {
                    tracker.record_ack(follower);
                    applied.push(applied_seq);
                }
                Ok(Response::ShipGap { applied_seq }) => {
                    // The follower refused to open a WAL hole: an earlier
                    // ship to it was lost (shed, partitioned, dropped).
                    // Backfill the missing batches from the primary's
                    // retained tail — a caught-up follower still earns
                    // its quorum vote for this batch.
                    if let Some(pos) =
                        self.backfill_follower(info, follower, applied_seq, seq, mode)
                    {
                        tracker.record_ack(follower);
                        applied.push(pos);
                    }
                }
                Ok(Response::Fenced { epoch }) => {
                    tracker.record_fenced(epoch);
                    self.repl.record_fence_rejection();
                }
                // A mis-routed or otherwise unusable answer is no vote.
                Ok(_) => {}
                // A dead, partitioned, or saturated follower is no vote;
                // the quorum decision below settles the outcome.
                Err(_) => {}
            }
        }
        match tracker.decision() {
            QuorumDecision::Committed => {
                if let Some(&min_applied) = applied.iter().min() {
                    self.repl.observe(info.id.0, seq, min_applied);
                }
                Ok(ReplPut::Done)
            }
            QuorumDecision::Fenced(_) => Ok(ReplPut::Refresh { quorum: false }),
            QuorumDecision::Pending => Ok(ReplPut::Refresh { quorum: true }),
        }
    }

    /// Catch a gapped follower up from the primary's retained WAL tail.
    ///
    /// `follower_at` is the follower's contiguous position, `target_seq`
    /// the batch whose ship was refused as a gap. Reads the primary's
    /// tail past `follower_at` (a read-class repair RPC, so it survives
    /// the write-side shedding that likely caused the gap), verifies it
    /// runs contiguously from `follower_at + 1` through at least
    /// `target_seq`, and re-ships every batch in order. Returns the
    /// follower's new position once caught up; `None` when backfill
    /// could not complete — the tail was flushed away, the follower died
    /// or re-gapped mid-stream, or a promotion fenced the epoch. Failing
    /// is safe: the follower's WAL stays a contiguous prefix, so its
    /// applied sequence keeps honestly reporting what it holds and it
    /// simply casts no vote for this put.
    fn backfill_follower(
        &self,
        info: &RegionInfo,
        follower: NodeId,
        follower_at: u64,
        target_seq: u64,
        mode: PutMode,
    ) -> Option<u64> {
        let primary = self.handles.get(&info.server)?;
        let req = Request::WalTail {
            region: info.id,
            epoch: info.epoch,
            from_seq: follower_at,
        };
        let sent = match mode {
            PutMode::Blocking => primary.call(req),
            PutMode::Admitted { deadline_ms } => {
                primary.call_with(req, RequestClass::Read, deadline_ms)
            }
        };
        let batches = match sent {
            Ok(Response::WalBatches { batches }) => batches,
            _ => return None,
        };
        // The tail must cover (follower_at, target_seq] without holes;
        // anything short means the primary already flushed part of it.
        // Batches past target_seq (concurrent writers) ship too — their
        // own writers just collect Stale acks, which is harmless.
        let mut expect = follower_at + 1;
        for (s, _) in &batches {
            if *s != expect {
                return None;
            }
            expect += 1;
        }
        if expect <= target_seq {
            return None;
        }
        let h = self.handles.get(&follower)?;
        let mut position = follower_at;
        for (s, kvs) in batches {
            let req = Request::Ship {
                region: info.id,
                epoch: info.epoch,
                seq: s,
                kvs,
            };
            let sent = match mode {
                PutMode::Blocking => h.call(req),
                PutMode::Admitted { deadline_ms } => {
                    h.call_with(req, RequestClass::Write, deadline_ms)
                }
            };
            match sent {
                Ok(Response::ShipAck { applied_seq }) => position = applied_seq,
                _ => return None,
            }
        }
        (position >= target_seq).then_some(position)
    }

    /// Admission-controlled scan: sheds with [`ClientError::Busy`] only
    /// past the *read* watermark — higher than the write watermark, so the
    /// fleet view outlives ingest under overload.
    pub fn scan_admitted(
        &self,
        range: &RowRange,
        deadline_ms: Option<u64>,
    ) -> Result<Vec<KeyValue>, ClientError> {
        self.scan_inner(range, Some(deadline_ms))
    }

    /// Scan a row range across every overlapping region, merged in order.
    pub fn scan(&self, range: &RowRange) -> Result<Vec<KeyValue>, ClientError> {
        self.scan_inner(range, None)
    }

    fn scan_inner(
        &self,
        range: &RowRange,
        admitted: Option<Option<u64>>,
    ) -> Result<Vec<KeyValue>, ClientError> {
        let infos: Vec<_> = {
            let dir = self.directory.read();
            dir.iter()
                .filter(|i| i.range.overlaps(range))
                .cloned()
                .collect()
        };
        let mut out = Vec::new();
        for info in infos {
            let handle = self
                .handles
                .get(&info.server)
                .ok_or(ClientError::Rpc(RpcError::Stopped))?;
            let req = Request::Scan {
                region: info.id,
                range: range.clone(),
            };
            let sent = match admitted {
                None => handle.call(req),
                Some(deadline_ms) => handle.call_with(req, RequestClass::Read, deadline_ms),
            };
            match sent {
                Ok(Response::Cells(cells)) => out.extend(cells),
                Ok(Response::WrongRegion) => {} // split raced us; daughters cover it
                Ok(_) => return Err(ClientError::Rpc(RpcError::Stopped)),
                Err(e) => return Err(map_rpc(e)),
            }
        }
        out.sort();
        Ok(out)
    }

    /// Hedged scan: try each region's primary under `primary_deadline_ms`
    /// (set near the fleet's scan p99 — the hedge trigger), and when the
    /// primary is saturated, late, or gone, fail the shard over to its
    /// follower copies under `deadline_ms`. Unreplicated regions
    /// propagate the primary's error unchanged. A hedged answer may
    /// trail the primary by in-flight ships; callers that need bounded
    /// staleness use [`Client::scan_bounded`].
    pub fn scan_hedged(
        &self,
        range: &RowRange,
        primary_deadline_ms: Option<u64>,
        deadline_ms: Option<u64>,
    ) -> Result<Vec<KeyValue>, ClientError> {
        let infos: Vec<_> = {
            let dir = self.directory.read();
            dir.iter()
                .filter(|i| i.range.overlaps(range))
                .cloned()
                .collect()
        };
        let mut out = Vec::new();
        for info in infos {
            let primary = match self.handles.get(&info.server) {
                Some(h) => h.call_with(
                    Request::Scan {
                        region: info.id,
                        range: range.clone(),
                    },
                    RequestClass::Read,
                    primary_deadline_ms,
                ),
                None => Err(RpcError::Stopped),
            };
            match primary {
                Ok(Response::Cells(cells)) => {
                    out.extend(cells);
                    continue;
                }
                Ok(Response::WrongRegion) => continue, // split raced us
                Ok(_) => return Err(ClientError::Rpc(RpcError::Stopped)),
                Err(e) if info.followers.is_empty() => return Err(map_rpc(e)),
                Err(primary_err) => {
                    // Hedge: first follower copy that answers wins.
                    let mut hedged = None;
                    for &f in &info.followers {
                        let Some(h) = self.handles.get(&f) else {
                            continue;
                        };
                        if let Ok(Response::FollowerCells { cells, .. }) = h.call_with(
                            Request::FollowerScan {
                                region: info.id,
                                range: range.clone(),
                            },
                            RequestClass::Read,
                            deadline_ms,
                        ) {
                            hedged = Some(cells);
                            break;
                        }
                    }
                    match hedged {
                        Some(cells) => {
                            self.repl.record_hedged_scan();
                            out.extend(cells);
                        }
                        None => return Err(map_rpc(primary_err)),
                    }
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Bounded-staleness follower read: serve each region's shard from a
    /// follower copy when its applied WAL sequence trails the primary by
    /// at most `policy.max_lag` batches (checked against the primary's
    /// live position), falling back to the primary otherwise. Only when
    /// the primary is gone for good (stopped or crashed) is a follower
    /// answer accepted without the check — availability over freshness,
    /// the documented failover-read mode. A merely *transient* status
    /// failure (admission shed, deadline miss) does not waive the bound:
    /// the shard is read from the primary path instead, surfacing its
    /// typed `Busy`/`DeadlineExpired` error rather than stale data.
    pub fn scan_bounded(
        &self,
        range: &RowRange,
        policy: &FollowerReadPolicy,
        deadline_ms: Option<u64>,
    ) -> Result<Vec<KeyValue>, ClientError> {
        let infos: Vec<_> = {
            let dir = self.directory.read();
            dir.iter()
                .filter(|i| i.range.overlaps(range))
                .cloned()
                .collect()
        };
        let mut out = Vec::new();
        for info in infos {
            let mut served = false;
            if !info.followers.is_empty() {
                let view = match self.handles.get(&info.server) {
                    // No handle at all: the server is gone from this
                    // client's world, same as stopped.
                    None => PrimaryView::Gone,
                    Some(h) => classify_primary_status(h.call_with(
                        Request::ReplicaStatus { region: info.id },
                        RequestClass::Read,
                        deadline_ms,
                    )),
                };
                // A transient status failure skips follower serving
                // entirely — the primary-path fallback below surfaces
                // the typed error instead of waiving the bound.
                if view != PrimaryView::Transient {
                    for &f in &info.followers {
                        let Some(h) = self.handles.get(&f) else {
                            continue;
                        };
                        if let Ok(Response::FollowerCells { cells, applied_seq }) = h.call_with(
                            Request::FollowerScan {
                                region: info.id,
                                range: range.clone(),
                            },
                            RequestClass::Read,
                            deadline_ms,
                        ) {
                            let fresh_enough = match view {
                                PrimaryView::At(p) => policy.allow(p, applied_seq),
                                // Primary gone for good: availability mode.
                                PrimaryView::Gone => true,
                                PrimaryView::Transient => false,
                            };
                            if fresh_enough {
                                if let PrimaryView::At(p) = view {
                                    self.repl.observe(info.id.0, p, applied_seq);
                                }
                                self.repl.record_follower_read();
                                out.extend(cells);
                                served = true;
                                break;
                            }
                        }
                    }
                }
            }
            if !served {
                let handle = self
                    .handles
                    .get(&info.server)
                    .ok_or(ClientError::Rpc(RpcError::Stopped))?;
                match handle.call_with(
                    Request::Scan {
                        region: info.id,
                        range: range.clone(),
                    },
                    RequestClass::Read,
                    deadline_ms,
                ) {
                    Ok(Response::Cells(cells)) => out.extend(cells),
                    Ok(Response::WrongRegion) => {} // split raced us
                    Ok(_) => return Err(ClientError::Rpc(RpcError::Stopped)),
                    Err(e) => return Err(map_rpc(e)),
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Fetch a span from **every reachable copy** of the region(s)
    /// overlapping `range`, for scrub repair. Infallible by design: an
    /// unreachable, fenced, or mis-routed copy is simply absent from the
    /// answer — the scrubber treats "no verifiable copy" as
    /// repair-unavailable and retries next tick rather than erroring.
    /// Each fetch is epoch-fenced at the replica; on a fence the client
    /// refreshes its view from the shared directory and retries that
    /// copy once under the new epoch.
    pub fn repair_fetch(&self, range: &RowRange) -> Vec<RepairCopy> {
        let infos: Vec<_> = {
            let dir = self.directory.read();
            dir.iter()
                .filter(|i| i.range.overlaps(range))
                .cloned()
                .collect()
        };
        let mut copies = Vec::new();
        for info in infos {
            let mut epoch = info.epoch;
            for node in info.replicas() {
                let Some(handle) = self.handles.get(&node) else {
                    continue;
                };
                let mut attempts = 0;
                loop {
                    attempts += 1;
                    match handle.call_with(
                        Request::RepairFetch {
                            region: info.id,
                            range: range.clone(),
                            epoch,
                        },
                        RequestClass::Read,
                        None,
                    ) {
                        Ok(Response::RepairCells { cells, applied_seq }) => {
                            copies.push(RepairCopy {
                                node,
                                applied_seq,
                                cells,
                            });
                            break;
                        }
                        // Our epoch is stale (a promotion raced us):
                        // refresh from the master-updated directory and
                        // retry this copy once under the current epoch.
                        Ok(Response::Fenced { .. }) if attempts < 2 => {
                            let dir = self.directory.read();
                            if let Some(fresh) = dir.iter().find(|i| i.id == info.id) {
                                epoch = fresh.epoch;
                            } else {
                                break;
                            }
                        }
                        Ok(_) | Err(_) => break,
                    }
                }
            }
        }
        copies
    }

    /// Flush every region (test/bench hygiene).
    pub fn flush_all(&self) -> Result<(), ClientError> {
        let infos: Vec<_> = self.directory.read().clone();
        for info in infos {
            if let Some(handle) = self.handles.get(&info.server) {
                match handle.call(Request::Flush { region: info.id }) {
                    Ok(_) => {}
                    Err(e) => return Err(ClientError::Rpc(e)),
                }
            }
        }
        Ok(())
    }

    /// Flush then major-compact every region copy — with a compaction
    /// rewriter installed this is what seals finished rows into columnar
    /// blocks. Follower copies compact too (the rewriter is deterministic,
    /// so copies holding the same cells seal byte-identical blocks): that
    /// keeps caught-up replicas comparable cell-for-cell *and* gives the
    /// scrub repair path block-for-block healthy sources to fetch from.
    pub fn compact_all(&self) -> Result<(), ClientError> {
        let infos: Vec<_> = self.directory.read().clone();
        for info in infos {
            for node in info.replicas() {
                if let Some(handle) = self.handles.get(&node) {
                    match handle.call(Request::Flush { region: info.id }) {
                        Ok(_) => {}
                        Err(e) => return Err(ClientError::Rpc(e)),
                    }
                    match handle.call(Request::Compact { region: info.id }) {
                        Ok(_) => {}
                        Err(e) => return Err(ClientError::Rpc(e)),
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master::TableDescriptor;
    use crate::region::RegionConfig;
    use crate::server::{Request, Response, ServerConfig};
    use bytes::Bytes;
    use pga_cluster::coordinator::Coordinator;

    fn cluster(nodes: usize, splits: &[&[u8]]) -> (Master, Client) {
        let coord = Coordinator::new(1000);
        let mut m = Master::bootstrap(nodes, ServerConfig::default(), coord, 0);
        m.create_table(&TableDescriptor {
            name: "t".into(),
            split_points: splits.iter().map(|s| Bytes::from(s.to_vec())).collect(),
            region_config: RegionConfig::default(),
        });
        let c = Client::connect(&m);
        (m, c)
    }

    fn kv(row: &str, ts: u64) -> KeyValue {
        KeyValue::new(row.as_bytes().to_vec(), b"q".to_vec(), ts, b"v".to_vec())
    }

    #[test]
    fn put_and_scan_across_regions() {
        let (m, c) = cluster(3, &[b"h", b"q"]);
        c.put(vec![kv("a", 1), kv("m", 1), kv("z", 1)]).unwrap();
        let cells = c.scan(&RowRange::all()).unwrap();
        assert_eq!(cells.len(), 3);
        let rows: Vec<_> = cells.iter().map(|c| c.row.clone()).collect();
        assert_eq!(rows, vec!["a", "m", "z"]);
        m.shutdown();
    }

    #[test]
    fn scan_subrange_touches_only_matching_regions() {
        let (m, c) = cluster(2, &[b"m"]);
        c.put(vec![kv("a", 1), kv("b", 1), kv("x", 1)]).unwrap();
        let cells = c
            .scan(&RowRange::new(b"a".to_vec(), b"c".to_vec()))
            .unwrap();
        assert_eq!(cells.len(), 2);
        m.shutdown();
    }

    #[test]
    fn put_retries_after_split() {
        let (mut m, c) = cluster(2, &[]);
        for i in 0..60 {
            c.put(vec![kv(&format!("row{i:03}"), 1)]).unwrap();
        }
        let rid = m.directory().read()[0].id;
        m.split_region(rid).unwrap();
        // Directory changed under the client; puts must still route.
        c.put(vec![kv("row000", 2), kv("row059", 2)]).unwrap();
        let cells = c.scan(&RowRange::all()).unwrap();
        assert_eq!(cells.len(), 62);
        m.shutdown();
    }

    #[test]
    fn empty_directory_reports_no_region() {
        let coord = Coordinator::new(1000);
        let m = Master::bootstrap(1, ServerConfig::default(), coord, 0);
        let c = Client::connect(&m);
        let err = c.put(vec![kv("a", 1)]).unwrap_err();
        assert!(matches!(err, ClientError::NoRegionForRow(_)));
        m.shutdown();
    }

    #[test]
    fn flush_all_keeps_data_visible() {
        let (m, c) = cluster(2, &[b"m"]);
        c.put(vec![kv("a", 1), kv("z", 1)]).unwrap();
        c.flush_all().unwrap();
        assert_eq!(c.scan(&RowRange::all()).unwrap().len(), 2);
        m.shutdown();
    }

    fn replicated_cluster(
        nodes: usize,
        factor: usize,
        splits: &[&[u8]],
        lease_ms: u64,
    ) -> (Master, Client) {
        let coord = Coordinator::new(lease_ms);
        let mut m = Master::bootstrap(nodes, ServerConfig::default(), coord, 0);
        m.create_replicated_table(
            &TableDescriptor {
                name: "t".into(),
                split_points: splits.iter().map(|s| Bytes::from(s.to_vec())).collect(),
                region_config: RegionConfig::default(),
            },
            factor,
        );
        let c = Client::connect(&m);
        (m, c)
    }

    #[test]
    fn replicated_put_ships_to_quorum_and_followers_mirror() {
        let (m, c) = replicated_cluster(3, 3, &[], 1000);
        c.put(vec![kv("a", 1), kv("b", 1)]).unwrap();
        let info = m.directory().read()[0].clone();
        assert_eq!(info.followers.len(), 2);
        // Every follower applied the shipped batch.
        for &f in &info.followers {
            match m
                .server(f)
                .unwrap()
                .handle()
                .call(Request::FollowerScan {
                    region: info.id,
                    range: RowRange::all(),
                })
                .unwrap()
            {
                Response::FollowerCells { cells, applied_seq } => {
                    assert_eq!(cells.len(), 2);
                    assert_eq!(applied_seq, 1);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        let snap = c.repl_book().snapshot();
        assert_eq!(snap.replicated_regions, 1);
        assert_eq!(snap.max_lag_batches, 0);
        m.shutdown();
    }

    #[test]
    fn dead_follower_denies_quorum_at_factor_two() {
        let (m, c) = replicated_cluster(2, 2, &[], 1000);
        let info = m.directory().read()[0].clone();
        // Kill the only follower: quorum is 2, the primary alone has 1 vote.
        m.server(info.followers[0]).unwrap().shutdown();
        let err = c.put(vec![kv("a", 1)]).unwrap_err();
        assert!(matches!(err, ClientError::NoQuorum), "got {err:?}");
        m.shutdown();
    }

    #[test]
    fn explicit_full_quorum_is_enforced_on_the_write_path() {
        let coord = Coordinator::new(1000);
        let mut m = Master::bootstrap(3, ServerConfig::default(), coord, 0);
        m.create_replicated_table_cfg(
            &TableDescriptor {
                name: "t".into(),
                split_points: vec![],
                region_config: RegionConfig::default(),
            },
            &pga_repl::ReplicationConfig {
                factor: 3,
                write_quorum: 3,
                ..pga_repl::ReplicationConfig::default()
            },
        );
        let c = Client::connect(&m);
        // All copies live: a full-quorum write commits.
        c.put(vec![kv("a", 1)]).unwrap();
        // One dead follower leaves 2 of 3 copies — a majority, which the
        // old default-quorum path would happily ack. The configured
        // quorum of 3 must refuse instead.
        let info = m.directory().read()[0].clone();
        m.server(info.followers[1]).unwrap().shutdown();
        let err = c.put(vec![kv("b", 1)]).unwrap_err();
        assert!(matches!(err, ClientError::NoQuorum), "got {err:?}");
        m.shutdown();
    }

    /// Fault plane that loses the next `n` replication ships in transit.
    #[derive(Debug)]
    struct DropNextShips(std::sync::atomic::AtomicI64);
    impl crate::fault::FaultPlane for DropNextShips {
        fn drop_ship(&self, _region: RegionId) -> bool {
            self.0.fetch_sub(1, std::sync::atomic::Ordering::SeqCst) > 0
        }
    }

    #[test]
    fn lost_ship_gaps_the_follower_and_backfill_restores_the_vote() {
        let coord = Coordinator::new(1000);
        let mut m = Master::bootstrap(3, ServerConfig::default(), coord, 0);
        m.create_replicated_table(
            &TableDescriptor {
                name: "t".into(),
                split_points: vec![],
                region_config: RegionConfig::default(),
            },
            2,
        );
        let c = Client::connect(&m);
        c.put(vec![kv("a", 1)]).unwrap();
        // Lose exactly one ship: the follower misses that batch while
        // staying live, so the next ship arrives non-contiguous.
        m.set_fault_plane(std::sync::Arc::new(DropNextShips(
            std::sync::atomic::AtomicI64::new(1),
        )));
        c.put(vec![kv("b", 1)]).unwrap();
        c.put(vec![kv("c", 1)]).unwrap();
        // The quorum held throughout (backfill re-earned the follower's
        // vote) and the follower holds every batch with no hole — its
        // position matches the primary's exactly.
        let info = m.directory().read()[0].clone();
        let report = m.replication_report();
        assert_eq!(report.len(), 1);
        assert_eq!(
            report[0].followers[0].1, report[0].primary_seq,
            "follower caught up contiguously"
        );
        match m
            .server(info.followers[0])
            .unwrap()
            .handle()
            .call(Request::FollowerScan {
                region: info.id,
                range: RowRange::all(),
            })
            .unwrap()
        {
            Response::FollowerCells { cells, .. } => {
                assert_eq!(cells.len(), 3, "no acked write missing on the follower");
            }
            other => panic!("unexpected {other:?}"),
        }
        m.shutdown();
    }

    #[test]
    fn primary_status_classification_distinguishes_gone_from_transient() {
        // Dead-for-good errors waive the staleness bound...
        assert_eq!(
            classify_primary_status(Err(RpcError::Stopped)),
            PrimaryView::Gone
        );
        assert_eq!(
            classify_primary_status(Err(RpcError::Crashed)),
            PrimaryView::Gone
        );
        // ...transient overload must NOT (the read falls back to the
        // primary path and surfaces the typed error instead).
        assert_eq!(
            classify_primary_status(Err(RpcError::Busy { retry_after_ms: 5 })),
            PrimaryView::Transient
        );
        assert_eq!(
            classify_primary_status(Err(RpcError::DeadlineExpired)),
            PrimaryView::Transient
        );
        assert_eq!(
            classify_primary_status(Err(RpcError::Overloaded)),
            PrimaryView::Transient
        );
        assert_eq!(
            classify_primary_status(Ok(Response::WrongRegion)),
            PrimaryView::Transient
        );
        assert_eq!(
            classify_primary_status(Ok(Response::Status {
                last_seq: 7,
                epoch: 1
            })),
            PrimaryView::At(7)
        );
    }

    #[test]
    fn scan_hedged_serves_from_follower_when_primary_is_down() {
        let (m, c) = replicated_cluster(3, 2, &[], 1000);
        c.put(vec![kv("a", 1), kv("z", 1)]).unwrap();
        let info = m.directory().read()[0].clone();
        m.server(info.server).unwrap().shutdown();
        // Deadlines are absolute on the servers' shared clock.
        let wall = pga_cluster::rpc::default_clock_ms();
        let cells = c
            .scan_hedged(&RowRange::all(), Some(wall + 1000), Some(wall + 1000))
            .unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(c.repl_book().snapshot().hedged_scans, 1);
        m.shutdown();
    }

    #[test]
    fn bounded_staleness_read_prefers_follower_within_lag_budget() {
        let (m, c) = replicated_cluster(3, 2, &[], 1000);
        c.put(vec![kv("a", 1)]).unwrap();
        // Fresh follower: served from the replica. Deadlines are absolute
        // on the servers' shared clock.
        let deadline = || Some(pga_cluster::rpc::default_clock_ms() + 1000);
        let policy = FollowerReadPolicy { max_lag: 0 };
        let cells = c
            .scan_bounded(&RowRange::all(), &policy, deadline())
            .unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(c.repl_book().snapshot().follower_reads, 1);
        // Write straight to the primary (bypassing replication) so the
        // follower trails by one batch; a zero-lag policy must fall back
        // to the primary and observe the new row.
        let info = m.directory().read()[0].clone();
        match m
            .server(info.server)
            .unwrap()
            .handle()
            .call(Request::Put {
                region: info.id,
                kvs: vec![kv("b", 1)],
            })
            .unwrap()
        {
            Response::Ok => {}
            other => panic!("unexpected {other:?}"),
        }
        let cells = c
            .scan_bounded(&RowRange::all(), &policy, deadline())
            .unwrap();
        assert_eq!(
            cells.len(),
            2,
            "stale follower must not serve zero-lag read"
        );
        assert_eq!(c.repl_book().snapshot().follower_reads, 1);
        // A lag budget of one batch accepts the trailing follower again.
        let relaxed = FollowerReadPolicy { max_lag: 1 };
        let cells = c
            .scan_bounded(&RowRange::all(), &relaxed, deadline())
            .unwrap();
        assert_eq!(cells.len(), 1, "follower view trails by the direct write");
        assert_eq!(c.repl_book().snapshot().follower_reads, 2);
        m.shutdown();
    }

    #[test]
    fn acked_writes_survive_primary_crash_and_failover() {
        let (mut m, c) = replicated_cluster(3, 2, &[], 100);
        for i in 0..20 {
            c.put(vec![kv(&format!("row{i:02}"), 1)]).unwrap();
        }
        let info = m.directory().read()[0].clone();
        let old_primary = info.server;
        let follower = info.followers[0];
        m.server(old_primary).unwrap().shutdown();
        // Survivors heartbeat; the dead primary's lease expires.
        for n in m.nodes() {
            if n != old_primary {
                m.heartbeat(n, 500);
            }
        }
        m.tick(500);
        let promoted = m.directory().read()[0].clone();
        assert_eq!(
            promoted.server, follower,
            "most-caught-up follower promoted"
        );
        assert!(
            promoted.epoch > info.epoch,
            "promotion must fence the old epoch"
        );
        // Every acked write is still readable through the ordinary path.
        let cells = c.scan(&RowRange::all()).unwrap();
        assert_eq!(cells.len(), 20);
        assert_eq!(m.failovers(), 1);
        m.shutdown();
    }
}
