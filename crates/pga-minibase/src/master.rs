//! The master: region directory, table creation with pre-splits, liveness
//! and reassignment.
//!
//! Mirrors the paper's deployment: "HDFS was set up with one NameNode
//! (co-running HBase master), … and 29 Regionservers that communicate
//! through the built-in Apache Zookeeper coordination service" (§III-A).
//! The master tracks which server hosts which row range, pre-splits tables
//! so "each region handle\[s\] an equal proportion of the writes" (§III-B),
//! and uses coordinator leases to detect dead servers and reassign their
//! regions.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use pga_cluster::coordinator::{Coordinator, SessionId};
use pga_cluster::NodeId;
use pga_repl::{choose_promotee, ReplicationConfig};

use crate::fault::{no_faults, FaultHandle};
use crate::kv::RowRange;
use crate::region::{Region, RegionConfig, RegionId};
use crate::server::{RegionServer, ServerConfig};

/// Descriptor used to create a table.
#[derive(Debug, Clone)]
pub struct TableDescriptor {
    /// Table name (one table per deployment is enough for TSDB).
    pub name: String,
    /// Pre-split points: region boundaries, ascending. `n` split points
    /// make `n + 1` regions.
    pub split_points: Vec<Bytes>,
    /// Region tuning applied to every region.
    pub region_config: RegionConfig,
}

/// One directory entry: a region and the node hosting it.
#[derive(Debug, Clone)]
pub struct RegionInfo {
    /// Region id.
    pub id: RegionId,
    /// Row range served.
    pub range: RowRange,
    /// Hosting node (the primary copy when `followers` is non-empty).
    pub server: NodeId,
    /// Nodes hosting follower copies (empty = unreplicated). The
    /// replication driver ships every primary-acked WAL batch here.
    pub followers: Vec<NodeId>,
    /// Replication-group epoch. Writes and ships stamped with any other
    /// epoch are rejected by the replicas (fencing); bumped on every
    /// promotion.
    pub epoch: u64,
    /// Copies that must hold a batch durably before the client may ack
    /// it — the *effective* write quorum resolved from the deployment's
    /// [`ReplicationConfig`] at table creation (1 for unreplicated
    /// regions). Deliberately **not** reduced when copies die: a
    /// `quorum == factor` deployment keeps failing writes honestly until
    /// re-replication restores the factor.
    pub write_quorum: usize,
}

impl RegionInfo {
    /// Every node hosting a copy of this region (primary first).
    pub fn replicas(&self) -> impl Iterator<Item = NodeId> + '_ {
        std::iter::once(self.server).chain(self.followers.iter().copied())
    }

    /// Whether `node` hosts any copy of this region.
    pub fn hosts_copy(&self, node: NodeId) -> bool {
        self.server == node || self.followers.contains(&node)
    }
}

/// One failover performed by [`Master::tick`]: a dead primary's region
/// promoted onto its most-caught-up surviving follower.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverEvent {
    /// The region that failed over.
    pub region: RegionId,
    /// The dead primary.
    pub from: NodeId,
    /// The promoted follower.
    pub to: NodeId,
    /// The epoch installed by the promotion.
    pub epoch: u64,
    /// Master-clock time of the sweep that promoted.
    pub at_ms: u64,
}

/// Replication position of one region: the primary's last assigned WAL
/// sequence against each follower's applied sequence.
#[derive(Debug, Clone)]
pub struct RegionReplicationStatus {
    /// Region id.
    pub region: RegionId,
    /// Primary node.
    pub primary: NodeId,
    /// Current epoch.
    pub epoch: u64,
    /// Primary's last assigned WAL sequence.
    pub primary_seq: u64,
    /// `(follower node, applied sequence)` per follower copy.
    pub followers: Vec<(NodeId, u64)>,
}

impl RegionReplicationStatus {
    /// Batches the slowest follower trails the primary by.
    pub fn max_lag(&self) -> u64 {
        self.followers
            .iter()
            .map(|&(_, seq)| self.primary_seq.saturating_sub(seq))
            .max()
            .unwrap_or(0)
    }
}

/// Shared region directory — the `hbase:meta` analog. Clients hold a clone
/// and refresh after `WrongRegion` responses.
pub type Directory = Arc<RwLock<Vec<RegionInfo>>>;

/// The cluster master. Owns the region servers for this in-process
/// deployment and the authoritative directory.
pub struct Master {
    servers: HashMap<NodeId, RegionServer>,
    sessions: HashMap<NodeId, SessionId>,
    /// Nodes whose sessions have expired — never assignment targets again.
    dead: std::collections::HashSet<NodeId>,
    directory: Directory,
    coordinator: Coordinator,
    next_region: u64,
    fault: FaultHandle,
    /// Optional compaction rewriter installed on every region (existing
    /// and future), mirroring the fault-plane propagation.
    rewriter: Option<crate::rewrite::RewriterHandle>,
    /// Copies per region the master maintains (1 = unreplicated). Set by
    /// [`Master::create_replicated_table`]; re-replication after a
    /// failover restores this factor when spare nodes exist.
    desired_factor: usize,
    /// Round-robin cursor for re-replication placement.
    repl_rr: usize,
    /// Promotions performed across all ticks.
    failovers: u64,
    /// Every promotion, in sweep order.
    failover_log: Vec<FailoverEvent>,
}

impl Master {
    /// Boot a cluster of `nodes` region servers registered with the
    /// coordinator at time `now_ms`.
    pub fn bootstrap(
        nodes: usize,
        server_config: ServerConfig,
        coordinator: Coordinator,
        now_ms: u64,
    ) -> Self {
        let mut servers = HashMap::new();
        let mut sessions = HashMap::new();
        for i in 0..nodes {
            let node = NodeId(i as u32);
            let server = RegionServer::spawn(node, server_config);
            let session = coordinator.connect(now_ms);
            coordinator
                .create_ephemeral(
                    &format!("/rs/{}", node.0),
                    node.0.to_le_bytes().to_vec(),
                    session,
                )
                // pga-allow(panic-path): bootstrap-time only — the /rs namespace is empty before any node registers
                .expect("fresh namespace");
            servers.insert(node, server);
            sessions.insert(node, session);
        }
        Master {
            servers,
            sessions,
            dead: std::collections::HashSet::new(),
            directory: Arc::new(RwLock::new(Vec::new())),
            coordinator,
            next_region: 0,
            fault: no_faults(),
            rewriter: None,
            desired_factor: 1,
            repl_rr: 0,
            failovers: 0,
            failover_log: Vec::new(),
        }
    }

    /// Install a fault plane on the master and every hosted region
    /// (simulation harnesses only; the default plane is a no-op). Regions
    /// created or split later inherit the handle.
    pub fn set_fault_plane(&mut self, fault: FaultHandle) {
        self.fault = fault.clone();
        for server in self.servers.values() {
            server.set_fault_plane(fault.clone());
        }
    }

    /// Install a compaction rewriter on every hosted region; regions
    /// created or split later inherit it, mirroring
    /// [`Master::set_fault_plane`].
    pub fn set_compaction_rewriter(&mut self, rewriter: crate::rewrite::RewriterHandle) {
        self.rewriter = Some(rewriter.clone());
        for server in self.servers.values() {
            server.set_compaction_rewriter(rewriter.clone());
        }
    }

    /// Create a table: build regions from the split points and assign them
    /// round-robin across servers.
    pub fn create_table(&mut self, desc: &TableDescriptor) {
        assert!(
            desc.split_points
                .iter()
                .zip(desc.split_points.iter().skip(1))
                .all(|(a, b)| a < b),
            "split points must be ascending and unique"
        );
        let mut boundaries: Vec<Bytes> = Vec::with_capacity(desc.split_points.len() + 2);
        boundaries.push(Bytes::new());
        boundaries.extend(desc.split_points.iter().cloned());
        boundaries.push(Bytes::new());
        let nodes: Vec<NodeId> = {
            let mut v: Vec<NodeId> = self.servers.keys().copied().collect();
            v.sort();
            v
        };
        assert!(!nodes.is_empty(), "create_table needs a live server pool");
        let mut dir = Vec::new();
        let ranges = boundaries.iter().zip(boundaries.iter().skip(1));
        for ((start, end), &node) in ranges.zip(nodes.iter().cycle()) {
            self.next_region += 1;
            let id = RegionId(self.next_region);
            let range = RowRange {
                start: start.clone(),
                end: end.clone(),
            };
            let mut region = Region::new(id, range.clone(), desc.region_config);
            region.set_fault_plane(self.fault.clone());
            if let Some(rewriter) = &self.rewriter {
                region.set_compaction_rewriter(rewriter.clone());
            }
            // pga-allow(panic-path): node is drawn from servers.keys(), so the entry exists
            self.servers[&node].assign(region);
            dir.push(RegionInfo {
                id,
                range,
                server: node,
                followers: Vec::new(),
                epoch: 1,
                write_quorum: 1,
            });
        }
        *self.directory.write() = dir;
    }

    /// Create a table with `factor` copies of every region: the primary
    /// is assigned round-robin exactly as [`Master::create_table`] does,
    /// and `factor - 1` follower copies (forked empty from the primary)
    /// land on the next distinct nodes in the rotation. Requires at
    /// least `factor` live servers so every copy sits on its own node —
    /// the region map is keyed by id, so two copies on one server would
    /// silently collide. `factor <= 1` degenerates to an unreplicated
    /// table.
    pub fn create_replicated_table(&mut self, desc: &TableDescriptor, factor: usize) {
        self.create_replicated_table_cfg(
            desc,
            &ReplicationConfig {
                factor,
                ..ReplicationConfig::default()
            },
        );
    }

    /// [`Master::create_replicated_table`] with the full replication
    /// config: the config's **effective write quorum** (majority by
    /// default, or the explicit `write_quorum` knob) is stamped on every
    /// directory entry, so clients enforce the deployment's configured
    /// durability on the write path rather than re-deriving a default.
    pub fn create_replicated_table_cfg(&mut self, desc: &TableDescriptor, cfg: &ReplicationConfig) {
        self.create_table(desc);
        let factor = cfg.factor;
        if factor <= 1 {
            self.desired_factor = 1;
            return;
        }
        let nodes = self.live_nodes();
        assert!(
            nodes.len() >= factor,
            "replication factor {factor} needs at least that many live servers, have {}",
            nodes.len()
        );
        self.desired_factor = factor;
        let quorum = cfg.effective_quorum();
        let mut dir = self.directory.write();
        for info in dir.iter_mut() {
            info.write_quorum = quorum;
            // pga-allow(panic-path): create_table just assigned this region to info.server
            let primary_pos = nodes.iter().position(|&n| n == info.server).unwrap();
            for k in 1..factor {
                // pga-allow(panic-path): index is taken modulo nodes.len(), non-empty at bootstrap
                let target = nodes[(primary_pos + k) % nodes.len()];
                // pga-allow(panic-path): the primary server hosts the region it was just assigned
                let fork = self.servers[&info.server]
                    // pga-allow(lock-discipline): bootstrap-time; directory → server-regions is the global lock order
                    .fork_region_follower(info.id)
                    // pga-allow(panic-path): the primary server hosts the region it was just assigned
                    .expect("primary hosts the region");
                // pga-allow(panic-path, lock-discipline): target ∈ nodes ⊆ servers.keys(); directory → server-regions is the global lock order
                self.servers[&target].assign(fork);
                info.followers.push(target);
            }
        }
    }

    /// The shared directory handle for clients.
    pub fn directory(&self) -> Directory {
        self.directory.clone()
    }

    /// The region server hosting `node`, if alive.
    pub fn server(&self, node: NodeId) -> Option<&RegionServer> {
        self.servers.get(&node)
    }

    /// All node ids, sorted (including nodes that have since died).
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.servers.keys().copied().collect();
        v.sort();
        v
    }

    /// Live node ids, sorted — the only valid assignment targets.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .servers
            .keys()
            .copied()
            .filter(|n| !self.dead.contains(n))
            .collect();
        v.sort();
        v
    }

    /// Heartbeat one server's coordinator session (driven by the harness).
    /// The timestamp passes through the fault plane's clock-skew hook, so
    /// a skewed node stamps stale heartbeats and can lose its lease.
    pub fn heartbeat(&self, node: NodeId, now_ms: u64) {
        let stamped = self.fault.skew_ms(node, now_ms);
        if let Some(&session) = self.sessions.get(&node) {
            let _ = self.coordinator.heartbeat(session, stamped);
        }
    }

    /// Liveness sweep at `now_ms`: expire silent servers and reassign
    /// their regions to the remaining live ones (recovering unflushed data
    /// through each region's shared WAL). Returns reassigned region ids.
    pub fn tick(&mut self, now_ms: u64) -> Vec<RegionId> {
        let removed = self.coordinator.expire_stale_sessions(now_ms);
        let mut reassigned = Vec::new();
        let mut dead_nodes = Vec::new();
        for path in removed {
            if let Some(rest) = path.strip_prefix("/rs/") {
                if let Ok(n) = rest.parse::<u32>() {
                    dead_nodes.push(NodeId(n));
                }
            }
        }
        if dead_nodes.is_empty() {
            return reassigned;
        }
        // Deterministic sweep order regardless of coordinator/session map
        // iteration order — fault-simulation traces must be replayable.
        dead_nodes.sort();
        self.dead.extend(dead_nodes.iter().copied());
        let live = self.live_nodes();
        assert!(!live.is_empty(), "entire cluster died");
        // The directory write lock is deliberately held across the whole
        // unassign → recover → assign sweep: clients must never observe a
        // directory entry pointing at a dead server mid-reassignment. The
        // server-side locks acquired inside these calls (each server's
        // region map, each region's WAL) always nest *under* the directory
        // lock, here and in move_region — one global order, no cycle.
        let dead_set: std::collections::HashSet<NodeId> = dead_nodes.iter().copied().collect();
        let mut dir = self.directory.write();
        let mut rr = 0usize;
        // Phase 1 — replicated regions. A dead primary is *promoted
        // around*, not recovered: the most-caught-up surviving follower
        // (which holds every quorum-acked write by construction) becomes
        // primary under a bumped epoch, fencing the deposed primary's
        // writer out of future quorums. Dead follower copies are pruned.
        // No WAL replay happens on this path — the survivor's memstore is
        // intact, which is exactly the availability win over lease
        // recovery.
        let mut handled: std::collections::HashSet<RegionId> = std::collections::HashSet::new();
        for info in dir.iter_mut() {
            if info.followers.is_empty() {
                continue;
            }
            let primary_dead = dead_set.contains(&info.server);
            let dead_followers: Vec<NodeId> = info
                .followers
                .iter()
                .copied()
                .filter(|n| dead_set.contains(n))
                .collect();
            if !primary_dead && dead_followers.is_empty() {
                continue;
            }
            handled.insert(info.id);
            for &n in &dead_followers {
                if let Some(s) = self.servers.get(&n) {
                    // pga-allow(lock-discipline): directory → server-regions is the global lock order (see above)
                    s.unassign(info.id);
                }
            }
            info.followers.retain(|n| !dead_set.contains(n));
            if !primary_dead {
                reassigned.push(info.id);
                continue;
            }
            let survivors: Vec<(NodeId, u64)> = info
                .followers
                .iter()
                .filter_map(|&n| {
                    self.servers
                        .get(&n)
                        // pga-allow(lock-discipline): directory → server-regions is the global lock order (see above)
                        .and_then(|s| s.region_applied_seq(info.id))
                        .map(|seq| (n, seq))
                })
                .collect();
            let new_epoch = info.epoch + 1;
            if let Some(promotee) = choose_promotee(&survivors) {
                if let Some(s) = self.servers.get(&info.server) {
                    // pga-allow(lock-discipline): directory → server-regions is the global lock order (see above)
                    s.unassign(info.id);
                }
                // pga-allow(panic-path, lock-discipline): promotee ∈ info.followers ⊆ servers.keys(); directory → server-regions is the global lock order
                self.servers[&promotee].promote_region(info.id, new_epoch);
                for &(n, _) in &survivors {
                    if n != promotee {
                        // pga-allow(panic-path, lock-discipline): survivor nodes were just read from servers; directory → server-regions is the global lock order
                        self.servers[&n].set_region_epoch(info.id, new_epoch);
                    }
                }
                self.failovers += 1;
                self.failover_log.push(FailoverEvent {
                    region: info.id,
                    from: info.server,
                    to: promotee,
                    epoch: new_epoch,
                    at_ms: now_ms,
                });
                info.server = promotee;
                info.followers.retain(|&n| n != promotee);
                info.epoch = new_epoch;
                reassigned.push(info.id);
            } else if let Some(mut region) = self
                .servers
                .get(&info.server)
                // pga-allow(lock-discipline): directory → server-regions is the global lock order (see above)
                .and_then(|s| s.unassign(info.id))
            {
                // Every copy died in one sweep: fall back to single-copy
                // lease recovery from the primary's shared WAL, still
                // under a bumped epoch so stragglers stay fenced.
                // pga-allow(lock-discipline): directory → region-WAL is the global lock order (see above)
                region.crash_recover();
                region.set_epoch(new_epoch);
                // pga-allow(panic-path): live is asserted non-empty above
                let target = live[rr % live.len()];
                rr += 1;
                // pga-allow(panic-path, lock-discipline): target ∈ live ⊆ servers.keys(); directory → server-regions is the global lock order
                self.servers[&target].assign(region);
                info.server = target;
                info.followers.clear();
                info.epoch = new_epoch;
                reassigned.push(info.id);
            }
        }
        // Phase 1b — re-replication: restore the desired factor by
        // forking fresh follower copies from each primary onto live
        // nodes not yet hosting a copy.
        if self.desired_factor > 1 {
            for info in dir.iter_mut() {
                while 1 + info.followers.len() < self.desired_factor {
                    let mut target = None;
                    for i in 0..live.len() {
                        // pga-allow(panic-path): index is taken modulo live.len(), non-zero inside this loop
                        let cand = live[(self.repl_rr + i) % live.len()];
                        if !info.hosts_copy(cand) {
                            target = Some(cand);
                            self.repl_rr += i + 1;
                            break;
                        }
                    }
                    let Some(target) = target else { break };
                    let Some(fork) = self
                        .servers
                        .get(&info.server)
                        // pga-allow(lock-discipline): directory → server-regions is the global lock order (see above)
                        .and_then(|s| s.fork_region_follower(info.id))
                    else {
                        break;
                    };
                    // pga-allow(panic-path, lock-discipline): target ∈ live ⊆ servers.keys(); directory → server-regions is the global lock order
                    self.servers[&target].assign(fork);
                    info.followers.push(target);
                }
            }
        }
        // Phase 2 — unreplicated regions: the original crash-recovery
        // sweep (drop memstore, replay the shared WAL through its byte
        // encoding, reassign round-robin).
        for dead in &dead_nodes {
            let dead_server = match self.servers.get(dead) {
                Some(s) => s,
                None => continue,
            };
            // pga-allow(lock-discipline): directory → server-regions is the global lock order (see above)
            for rid in dead_server.hosted_regions() {
                if handled.contains(&rid) {
                    continue;
                }
                // pga-allow(lock-discipline): directory → server-regions is the global lock order (see above)
                if let Some(mut region) = dead_server.unassign(rid) {
                    // A real crash loses the memstore with the process:
                    // crash_recover drops it, reads the WAL back through
                    // its byte encoding (where the fault plane may tear
                    // the tail) and replays the surviving records.
                    // pga-allow(lock-discipline): directory → region-WAL is the global lock order (see above)
                    region.crash_recover();
                    // pga-allow(panic-path): live is asserted non-empty above
                    let target = live[rr % live.len()];
                    rr += 1;
                    // pga-allow(panic-path, lock-discipline): target ∈ live ⊆ servers.keys(); directory → server-regions order (see above)
                    self.servers[&target].assign(region);
                    for info in dir.iter_mut() {
                        if info.id == rid {
                            info.server = target;
                        }
                    }
                    reassigned.push(rid);
                }
            }
        }
        for dead in dead_nodes {
            if let Some(s) = self.servers.get(&dead) {
                s.shutdown();
            }
        }
        reassigned
    }

    /// Split one region in place: unassign, split at the median row,
    /// assign daughters (left stays, right goes to the next node round-
    /// robin), update the directory. Returns the daughter ids on success.
    pub fn split_region(&mut self, rid: RegionId) -> Option<(RegionId, RegionId)> {
        let info = {
            let dir = self.directory.read();
            dir.iter().find(|i| i.id == rid)?.clone()
        };
        if !info.followers.is_empty() {
            // Splitting a replicated region would need a coordinated
            // multi-copy split (every replica at the same WAL point);
            // refuse rather than diverge the copies.
            return None;
        }
        let server = self.servers.get(&info.server)?;
        let region = server.unassign(rid)?;
        self.next_region += 1;
        let left_id = RegionId(self.next_region);
        self.next_region += 1;
        let right_id = RegionId(self.next_region);
        match region.split(left_id, right_id) {
            Ok((left, right)) => {
                let nodes = self.live_nodes();
                let pos = nodes.iter().position(|&n| n == info.server).unwrap_or(0);
                // pga-allow(panic-path): the hosting server just answered unassign, so the live set is non-empty
                let right_node = nodes[(pos + 1) % nodes.len()];
                let left_info = RegionInfo {
                    id: left_id,
                    range: left.range().clone(),
                    server: info.server,
                    followers: Vec::new(),
                    epoch: 1,
                    write_quorum: 1,
                };
                let right_info = RegionInfo {
                    id: right_id,
                    range: right.range().clone(),
                    server: right_node,
                    followers: Vec::new(),
                    epoch: 1,
                    write_quorum: 1,
                };
                server.assign(left);
                // pga-allow(panic-path): right_node is drawn from live_nodes() ⊆ servers.keys()
                self.servers[&right_node].assign(right);
                let mut dir = self.directory.write();
                dir.retain(|i| i.id != rid);
                dir.push(left_info);
                dir.push(right_info);
                dir.sort_by(|a, b| a.range.start.cmp(&b.range.start));
                Some((left_id, right_id))
            }
            Err(region) => {
                // Could not split: put it back untouched.
                server.assign(region);
                None
            }
        }
    }

    /// Add a fresh region server at time `now_ms` and register it with the
    /// coordinator. Returns the new node id. This is the scale-out actuator
    /// the elastic control plane drives; the node starts empty and receives
    /// regions through [`Master::move_region`] (or future reassignment).
    pub fn add_server(&mut self, server_config: ServerConfig, now_ms: u64) -> NodeId {
        let next = self.servers.keys().map(|n| n.0 + 1).max().unwrap_or(0);
        let node = NodeId(next);
        let server = RegionServer::spawn(node, server_config);
        let session = self.coordinator.connect(now_ms);
        self.coordinator
            .create_ephemeral(
                &format!("/rs/{}", node.0),
                node.0.to_le_bytes().to_vec(),
                session,
            )
            // pga-allow(panic-path): node id is max(existing)+1, so its znode cannot pre-exist
            .expect("node id is fresh");
        self.servers.insert(node, server);
        self.sessions.insert(node, session);
        node
    }

    /// Migrate one region to `target` while clients keep writing.
    ///
    /// The directory write lock is held across unassign → assign → update,
    /// so clients either see the old entry (and get `WrongRegion` from the
    /// source, triggering their retry-with-refresh loop) or the new entry
    /// pointing at a server that already hosts the region. The in-process
    /// `Region` struct moves with its memstore and files, so no datapoint
    /// is lost or double-served.
    pub fn move_region(&mut self, rid: RegionId, target: NodeId) -> bool {
        if self.dead.contains(&target) || !self.servers.contains_key(&target) {
            return false;
        }
        let source = {
            let dir = self.directory.read();
            match dir.iter().find(|i| i.id == rid) {
                Some(info) => {
                    if info.followers.contains(&target) {
                        // The target already hosts a follower copy; the
                        // region map is keyed by id, so assigning the
                        // primary there would silently overwrite it.
                        return false;
                    }
                    info.server
                }
                None => return false,
            }
        };
        if source == target {
            return true;
        }
        let mut dir = self.directory.write();
        // pga-allow(lock-discipline): directory → server-regions is the global lock order (see tick)
        let mut region = match self.servers.get(&source).and_then(|s| s.unassign(rid)) {
            Some(r) => r,
            None => return false,
        };
        // Deliberate injection site: mutant C drops the memstore during
        // migration; the faithful plane ships the region intact.
        if self.fault.drop_memstore_on_move(rid) {
            region.clear_memstore();
        }
        // pga-allow(panic-path, lock-discipline): target checked in servers above; directory → server-regions order
        self.servers[&target].assign(region);
        for info in dir.iter_mut() {
            if info.id == rid {
                info.server = target;
            }
        }
        true
    }

    /// Drain and retire a server: migrate every hosted region to the
    /// remaining live nodes (round-robin), delete its coordinator znode
    /// (an explicit `Deleted` event, distinct from the `SessionExpired`
    /// a crash produces), and stop the RPC thread. Returns the migrated
    /// region ids, or `None` if the node is unknown, already dead, or the
    /// last live node.
    pub fn decommission_server(&mut self, node: NodeId) -> Option<Vec<RegionId>> {
        if self.dead.contains(&node) || !self.servers.contains_key(&node) {
            return None;
        }
        if self
            .directory
            .read()
            .iter()
            .any(|i| !i.followers.is_empty() && i.hosts_copy(node))
        {
            // Draining a node that hosts replicated copies would need
            // follower hand-off; the elastic tier runs unreplicated, so
            // refuse rather than orphan copies.
            return None;
        }
        let targets: Vec<NodeId> = self
            .live_nodes()
            .into_iter()
            .filter(|&n| n != node)
            .collect();
        if targets.is_empty() {
            return None;
        }
        // pga-allow(panic-path): node membership checked on entry
        let rids = self.servers[&node].hosted_regions();
        let mut moved = Vec::with_capacity(rids.len());
        for (i, rid) in rids.into_iter().enumerate() {
            // pga-allow(panic-path): targets checked non-empty above
            if self.move_region(rid, targets[i % targets.len()]) {
                moved.push(rid);
            }
        }
        self.dead.insert(node);
        let _ = self.coordinator.delete(&format!("/rs/{}", node.0));
        self.sessions.remove(&node);
        if let Some(s) = self.servers.get(&node) {
            s.shutdown();
        }
        Some(moved)
    }

    /// Promotions performed across all liveness sweeps.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Every promotion performed, in sweep order.
    pub fn failover_events(&self) -> &[FailoverEvent] {
        &self.failover_log
    }

    /// The replication factor the master maintains (1 = unreplicated).
    pub fn replication_factor(&self) -> usize {
        self.desired_factor
    }

    /// Replication position of every replicated region: the primary's
    /// last WAL sequence against each follower's applied sequence. Feeds
    /// telemetry (max lag) and the fault harness's divergence oracle.
    pub fn replication_report(&self) -> Vec<RegionReplicationStatus> {
        let dir = self.directory.read();
        dir.iter()
            .filter(|info| !info.followers.is_empty())
            .map(|info| RegionReplicationStatus {
                region: info.id,
                primary: info.server,
                epoch: info.epoch,
                primary_seq: self
                    .servers
                    .get(&info.server)
                    // pga-allow(lock-discipline): directory → server-regions is the global lock order (see tick)
                    .and_then(|s| s.region_applied_seq(info.id))
                    .unwrap_or(0),
                followers: info
                    .followers
                    .iter()
                    .map(|&n| {
                        (
                            n,
                            self.servers
                                .get(&n)
                                // pga-allow(lock-discipline): directory → server-regions is the global lock order (see tick)
                                .and_then(|s| s.region_applied_seq(info.id))
                                .unwrap_or(0),
                        )
                    })
                    .collect(),
            })
            .collect()
    }

    /// The coordinator this master registers servers with.
    pub fn coordinator(&self) -> &Coordinator {
        &self.coordinator
    }

    /// The coordinator session a node registered under, if still tracked.
    /// Telemetry publishers bind stat znodes to this session so a node's
    /// stats expire with its lease.
    pub fn session(&self, node: NodeId) -> Option<SessionId> {
        self.sessions.get(&node).copied()
    }

    /// Shut every server down.
    pub fn shutdown(&self) {
        for s in self.servers.values() {
            s.shutdown();
        }
    }
}

/// Find the directory entry serving `row`.
pub fn locate(directory: &Directory, row: &[u8]) -> Option<RegionInfo> {
    let dir = directory.read();
    dir.iter().find(|info| info.range.contains(row)).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::KeyValue;
    use crate::server::{Request, Response};

    fn table(splits: &[&[u8]]) -> TableDescriptor {
        TableDescriptor {
            name: "tsdb".into(),
            split_points: splits.iter().map(|s| Bytes::from(s.to_vec())).collect(),
            region_config: RegionConfig::default(),
        }
    }

    #[test]
    fn create_table_assigns_round_robin() {
        let coord = Coordinator::new(1000);
        let mut m = Master::bootstrap(3, ServerConfig::default(), coord, 0);
        m.create_table(&table(&[b"g", b"p"]));
        let dir = m.directory();
        let d = dir.read();
        assert_eq!(d.len(), 3);
        // Each of 3 regions on a distinct node.
        let mut nodes: Vec<u32> = d.iter().map(|i| i.server.0).collect();
        nodes.sort();
        assert_eq!(nodes, vec![0, 1, 2]);
        m.shutdown();
    }

    #[test]
    fn locate_routes_rows_to_ranges() {
        let coord = Coordinator::new(1000);
        let mut m = Master::bootstrap(2, ServerConfig::default(), coord, 0);
        m.create_table(&table(&[b"m"]));
        let dir = m.directory();
        let first = locate(&dir, b"a").unwrap();
        let second = locate(&dir, b"z").unwrap();
        assert_ne!(first.id, second.id);
        assert!(first.range.contains(b"a"));
        assert!(second.range.contains(b"z"));
        m.shutdown();
    }

    #[test]
    fn dead_server_regions_are_reassigned_with_data() {
        let coord = Coordinator::new(100);
        let mut m = Master::bootstrap(2, ServerConfig::default(), coord, 0);
        m.create_table(&table(&[b"m"]));
        let dir = m.directory();
        // Find the region on node 0 and write into it.
        let info = dir
            .read()
            .iter()
            .find(|i| i.server == NodeId(0))
            .unwrap()
            .clone();
        let server = m.server(NodeId(0)).unwrap();
        let row: &[u8] = if info.range.contains(b"a") {
            b"a"
        } else {
            b"z"
        };
        match server
            .handle()
            .call(Request::Put {
                region: info.id,
                kvs: vec![KeyValue::new(row.to_vec(), b"q".to_vec(), 1, b"v".to_vec())],
            })
            .unwrap()
        {
            Response::Ok => {}
            other => panic!("unexpected {other:?}"),
        }
        // Node 1 heartbeats; node 0 goes silent past the lease.
        m.heartbeat(NodeId(1), 500);
        let reassigned = m.tick(500);
        assert_eq!(reassigned, vec![info.id]);
        // Directory now points at node 1 and the data is there.
        let moved = locate(&dir, row).unwrap();
        assert_eq!(moved.server, NodeId(1));
        match m
            .server(NodeId(1))
            .unwrap()
            .handle()
            .call(Request::Scan {
                region: info.id,
                range: RowRange::all(),
            })
            .unwrap()
        {
            Response::Cells(cells) => assert_eq!(cells.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        m.shutdown();
    }

    #[test]
    fn split_region_updates_directory() {
        let coord = Coordinator::new(1000);
        let mut m = Master::bootstrap(2, ServerConfig::default(), coord, 0);
        m.create_table(&table(&[]));
        let dir = m.directory();
        let rid = dir.read()[0].id;
        let info = dir.read()[0].clone();
        let server = m.server(info.server).unwrap();
        for i in 0..50 {
            server
                .handle()
                .call(Request::Put {
                    region: rid,
                    kvs: vec![KeyValue::new(
                        format!("row{i:03}").into_bytes(),
                        b"q".to_vec(),
                        1,
                        b"v".to_vec(),
                    )],
                })
                .unwrap();
        }
        let (l, r) = m.split_region(rid).unwrap();
        let d = dir.read();
        assert_eq!(d.len(), 2);
        assert!(d.iter().any(|i| i.id == l));
        assert!(d.iter().any(|i| i.id == r));
        // Ranges partition the keyspace.
        assert!(locate(&dir, b"row000").is_some());
        assert!(locate(&dir, b"row049").is_some());
        m.shutdown();
    }

    #[test]
    fn move_region_carries_data_and_updates_directory() {
        let coord = Coordinator::new(1000);
        let mut m = Master::bootstrap(2, ServerConfig::default(), coord, 0);
        m.create_table(&table(&[]));
        let dir = m.directory();
        let info = dir.read()[0].clone();
        let source = info.server;
        m.server(source)
            .unwrap()
            .handle()
            .call(Request::Put {
                region: info.id,
                kvs: vec![KeyValue::new(
                    b"k".to_vec(),
                    b"q".to_vec(),
                    1,
                    b"v".to_vec(),
                )],
            })
            .unwrap();
        let target = m.nodes().into_iter().find(|&n| n != source).unwrap();
        assert!(m.move_region(info.id, target));
        assert_eq!(locate(&dir, b"k").unwrap().server, target);
        // Source now answers WrongRegion; target serves the datapoint.
        match m.server(source).unwrap().handle().call(Request::Scan {
            region: info.id,
            range: RowRange::all(),
        }) {
            Ok(Response::WrongRegion) => {}
            other => panic!("unexpected {other:?}"),
        }
        match m.server(target).unwrap().handle().call(Request::Scan {
            region: info.id,
            range: RowRange::all(),
        }) {
            Ok(Response::Cells(cells)) => assert_eq!(cells.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        m.shutdown();
    }

    #[test]
    fn add_server_then_decommission_round_trips_regions() {
        let coord = Coordinator::new(1000);
        let mut m = Master::bootstrap(1, ServerConfig::default(), coord, 0);
        m.create_table(&table(&[b"m"]));
        let added = m.add_server(ServerConfig::default(), 10);
        assert_eq!(added, NodeId(1));
        assert_eq!(m.live_nodes(), vec![NodeId(0), NodeId(1)]);
        let dir = m.directory();
        let rid = dir.read()[0].id;
        assert!(m.move_region(rid, added));
        // Draining the new node sends its region back to node 0.
        let moved = m.decommission_server(added).unwrap();
        assert_eq!(moved, vec![rid]);
        assert_eq!(m.live_nodes(), vec![NodeId(0)]);
        assert!(dir.read().iter().all(|i| i.server == NodeId(0)));
        // Cannot drain the last node.
        assert!(m.decommission_server(NodeId(0)).is_none());
        m.shutdown();
    }

    #[test]
    fn split_of_empty_region_is_refused_and_region_survives() {
        let coord = Coordinator::new(1000);
        let mut m = Master::bootstrap(1, ServerConfig::default(), coord, 0);
        m.create_table(&table(&[]));
        let rid = m.directory().read()[0].id;
        assert!(m.split_region(rid).is_none());
        assert_eq!(m.directory().read().len(), 1);
        assert!(m.server(NodeId(0)).unwrap().hosted_regions().contains(&rid));
        m.shutdown();
    }

    /// Ship `seq` directly to a follower copy so replicas diverge in lag.
    fn ship_to(m: &Master, node: NodeId, info: &RegionInfo, seq: u64, row: &[u8]) {
        match m
            .server(node)
            .unwrap()
            .handle()
            .call(Request::Ship {
                region: info.id,
                epoch: info.epoch,
                seq,
                kvs: vec![KeyValue::new(row.to_vec(), b"q".to_vec(), 1, b"v".to_vec())],
            })
            .unwrap()
        {
            Response::ShipAck { applied_seq } => assert_eq!(applied_seq, seq),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn failover_promotes_most_caught_up_follower_and_fences_epoch() {
        let coord = Coordinator::new(100);
        let mut m = Master::bootstrap(4, ServerConfig::default(), coord, 0);
        m.create_replicated_table(&table(&[]), 3);
        let info = m.directory().read()[0].clone();
        let (lagging, ahead) = (info.followers[0], info.followers[1]);
        // One follower applies two shipped batches, the other only one.
        ship_to(&m, lagging, &info, 1, b"a");
        ship_to(&m, ahead, &info, 1, b"a");
        ship_to(&m, ahead, &info, 2, b"b");
        m.server(info.server).unwrap().shutdown();
        for n in m.nodes() {
            if n != info.server {
                m.heartbeat(n, 500);
            }
        }
        m.tick(500);
        let promoted = m.directory().read()[0].clone();
        assert_eq!(
            promoted.server, ahead,
            "promotion must pick max applied seq"
        );
        assert_eq!(promoted.epoch, info.epoch + 1);
        assert_eq!(m.failovers(), 1);
        let ev = &m.failover_events()[0];
        assert_eq!(
            (ev.from, ev.to, ev.epoch),
            (info.server, ahead, info.epoch + 1)
        );
        // The surviving (now lagging) follower was fenced to the new epoch:
        // a ship stamped with the old epoch is rejected.
        match m
            .server(lagging)
            .unwrap()
            .handle()
            .call(Request::Ship {
                region: info.id,
                epoch: info.epoch,
                seq: 2,
                kvs: vec![KeyValue::new(
                    b"c".to_vec(),
                    b"q".to_vec(),
                    1,
                    b"v".to_vec(),
                )],
            })
            .unwrap()
        {
            Response::Fenced { epoch } => assert_eq!(epoch, info.epoch + 1),
            other => panic!("unexpected {other:?}"),
        }
        m.shutdown();
    }

    #[test]
    fn failover_rereplicates_back_to_desired_factor() {
        let coord = Coordinator::new(100);
        let mut m = Master::bootstrap(3, ServerConfig::default(), coord, 0);
        m.create_replicated_table(&table(&[]), 2);
        let info = m.directory().read()[0].clone();
        m.server(info.server).unwrap().shutdown();
        for n in m.nodes() {
            if n != info.server {
                m.heartbeat(n, 500);
            }
        }
        m.tick(500);
        // The follower was promoted and a fresh copy forked onto the spare
        // node, restoring the replication factor.
        let report = m.replication_report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].primary, info.followers[0]);
        assert_eq!(report[0].followers.len(), 1);
        assert_ne!(
            report[0].followers[0].0, info.server,
            "dead node not reused"
        );
        assert_ne!(report[0].followers[0].0, report[0].primary);
        m.shutdown();
    }

    #[test]
    fn replicated_table_cfg_stamps_effective_quorum_on_directory() {
        let coord = Coordinator::new(100);
        let mut m = Master::bootstrap(3, ServerConfig::default(), coord, 0);
        m.create_replicated_table_cfg(
            &table(&[b"m"]),
            &ReplicationConfig {
                factor: 3,
                write_quorum: 3,
                ..ReplicationConfig::default()
            },
        );
        for info in m.directory().read().iter() {
            assert_eq!(info.write_quorum, 3, "explicit quorum threads through");
            assert_eq!(info.followers.len(), 2);
        }
        // The factor-only path resolves to a majority quorum, and the
        // stamp survives promotion (directory entries mutate in place).
        let coord = Coordinator::new(100);
        let mut m2 = Master::bootstrap(3, ServerConfig::default(), coord, 0);
        m2.create_replicated_table(&table(&[]), 3);
        let info = m2.directory().read()[0].clone();
        assert_eq!(info.write_quorum, 2, "majority of 3");
        m2.server(info.server).unwrap().shutdown();
        for n in m2.nodes() {
            if n != info.server {
                m2.heartbeat(n, 500);
            }
        }
        m2.tick(500);
        let promoted = m2.directory().read()[0].clone();
        assert_ne!(promoted.server, info.server);
        assert_eq!(promoted.write_quorum, 2, "quorum survives failover");
        m.shutdown();
        m2.shutdown();
    }

    #[test]
    fn replicated_regions_refuse_split_and_follower_targeted_moves() {
        let coord = Coordinator::new(1000);
        let mut m = Master::bootstrap(3, ServerConfig::default(), coord, 0);
        m.create_replicated_table(&table(&[]), 2);
        let info = m.directory().read()[0].clone();
        assert!(m.split_region(info.id).is_none());
        assert!(!m.move_region(info.id, info.followers[0]));
        assert!(m.decommission_server(info.followers[0]).is_none());
        m.shutdown();
    }
}
