//! The cell model: HBase-style `(row, qualifier, timestamp) → value`.

use bytes::Bytes;
use std::cmp::Ordering;

/// One cell. The implicit column family is OpenTSDB's single `t` family.
///
/// Ordering matches HBase: row ascending, qualifier ascending, timestamp
/// **descending** (newest first), so a scan naturally yields the most
/// recent version of a cell first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyValue {
    /// Row key (binary; for TSDB rows: salt + metric UID + base time + tags).
    pub row: Bytes,
    /// Column qualifier (for TSDB: encoded offset-in-row + flags).
    pub qualifier: Bytes,
    /// Version timestamp in milliseconds.
    pub timestamp: u64,
    /// Cell payload.
    pub value: Bytes,
}

impl KeyValue {
    /// Construct a cell from anything byte-like.
    pub fn new(
        row: impl Into<Bytes>,
        qualifier: impl Into<Bytes>,
        timestamp: u64,
        value: impl Into<Bytes>,
    ) -> Self {
        KeyValue {
            row: row.into(),
            qualifier: qualifier.into(),
            timestamp,
            value: value.into(),
        }
    }

    /// Approximate heap footprint, used for memstore flush accounting.
    pub fn heap_size(&self) -> usize {
        self.row.len() + self.qualifier.len() + self.value.len() + 8 + 3 * 16
    }

    /// The sort key of this cell (excludes the value).
    pub fn cell_key(&self) -> (&[u8], &[u8], std::cmp::Reverse<u64>) {
        (
            &self.row,
            &self.qualifier,
            std::cmp::Reverse(self.timestamp),
        )
    }
}

impl Ord for KeyValue {
    fn cmp(&self, other: &Self) -> Ordering {
        self.row
            .cmp(&other.row)
            .then_with(|| self.qualifier.cmp(&other.qualifier))
            .then_with(|| other.timestamp.cmp(&self.timestamp))
    }
}

impl PartialOrd for KeyValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A half-open row range `[start, end)`; an empty `end` means unbounded
/// (HBase's convention for the last region).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowRange {
    /// Inclusive start row; empty = from the beginning.
    pub start: Bytes,
    /// Exclusive end row; empty = to the end.
    pub end: Bytes,
}

impl RowRange {
    /// The full table.
    pub fn all() -> Self {
        RowRange {
            start: Bytes::new(),
            end: Bytes::new(),
        }
    }

    /// Range `[start, end)`.
    pub fn new(start: impl Into<Bytes>, end: impl Into<Bytes>) -> Self {
        RowRange {
            start: start.into(),
            end: end.into(),
        }
    }

    /// Does `row` fall inside this range?
    #[inline]
    pub fn contains(&self, row: &[u8]) -> bool {
        (self.start.is_empty() || row >= &self.start[..])
            && (self.end.is_empty() || row < &self.end[..])
    }

    /// Do two ranges overlap?
    pub fn overlaps(&self, other: &RowRange) -> bool {
        let starts_before_other_ends =
            other.end.is_empty() || self.start.is_empty() || self.start < other.end;
        let other_starts_before_self_ends =
            self.end.is_empty() || other.start.is_empty() || other.start < self.end;
        starts_before_other_ends && other_starts_before_self_ends
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(row: &str, qual: &str, ts: u64) -> KeyValue {
        KeyValue::new(
            row.as_bytes().to_vec(),
            qual.as_bytes().to_vec(),
            ts,
            vec![],
        )
    }

    #[test]
    fn ordering_is_row_qual_then_newest_first() {
        let a = kv("a", "q", 5);
        let b = kv("a", "q", 9);
        let c = kv("a", "r", 1);
        let d = kv("b", "a", 1);
        // Same row+qual: newer timestamp sorts first.
        assert!(b < a);
        // Qualifier breaks ties after row.
        assert!(a < c);
        // Row dominates.
        assert!(c < d);
    }

    #[test]
    fn range_contains_half_open() {
        let r = RowRange::new(b"b".to_vec(), b"d".to_vec());
        assert!(!r.contains(b"a"));
        assert!(r.contains(b"b"));
        assert!(r.contains(b"c"));
        assert!(!r.contains(b"d"));
    }

    #[test]
    fn unbounded_range_contains_everything() {
        let r = RowRange::all();
        assert!(r.contains(b""));
        assert!(r.contains(b"\xff\xff"));
    }

    #[test]
    fn last_region_style_range() {
        let r = RowRange::new(b"m".to_vec(), Bytes::new());
        assert!(!r.contains(b"l"));
        assert!(r.contains(b"m"));
        assert!(r.contains(b"\xff"));
    }

    #[test]
    fn overlap_detection() {
        let ab = RowRange::new(b"a".to_vec(), b"b".to_vec());
        let bc = RowRange::new(b"b".to_vec(), b"c".to_vec());
        let ac = RowRange::new(b"a".to_vec(), b"c".to_vec());
        assert!(
            !ab.overlaps(&bc),
            "half-open ranges do not overlap at the boundary"
        );
        assert!(ab.overlaps(&ac));
        assert!(ac.overlaps(&bc));
        assert!(RowRange::all().overlaps(&ab));
    }

    #[test]
    fn heap_size_tracks_payload() {
        let small = kv("r", "q", 0);
        let big = KeyValue::new(vec![0u8; 100], vec![0u8; 100], 0, vec![0u8; 1000]);
        assert!(big.heap_size() > small.heap_size() + 1000);
    }
}
