//! MiniBase — an HBase-analog distributed, sorted key-value store.
//!
//! The paper stores all sensor data in OpenTSDB, which "leverages HBase …
//! to manage data in a distributed manner and provide horizontal
//! scalability" (§III). This crate is that substrate, built from scratch:
//!
//! * [`kv`] — the cell model: `(row, qualifier, timestamp) → value`, with
//!   HBase's ordering (rows ascending, newest timestamp first).
//! * [`memstore`] — the in-memory sorted write buffer.
//! * [`wal`] — a write-ahead log enabling crash recovery of unflushed data.
//! * [`storefile`] — immutable sorted runs with a sparse seek index (the
//!   HFile analog).
//! * [`scanner`] — k-way merge scans across the memstore and store files.
//! * [`region`] — a contiguous row range: WAL + memstore + store files,
//!   with flush, compaction and midpoint splits.
//! * [`rewrite`] — pluggable compaction rewriters (HBase-coprocessor
//!   style); `pga-tsdb` uses this to seal finished rows into columnar
//!   blocks.
//! * [`server`] — a region server: an RPC thread (bounded queue, crash
//!   semantics from [`pga_cluster::rpc`]) serving puts/scans over the
//!   regions assigned to it.
//! * [`master`] — region directory, table creation with pre-splits
//!   (§III-B: "HBase regions were manually split to ensure each region
//!   handled an equal proportion of the writes"), liveness via the
//!   coordinator and reassignment of regions from dead servers.
//! * [`client`] — routing client with retry-on-stale-directory.
//! * [`scrub`] — background corruption scrub: a pluggable cell verifier,
//!   a quarantine set, and a repair pass that re-fetches corrupt spans
//!   from healthy replicas (CRC round-trip before install).
//! * [`fault`] — injectable fault plane (no-op by default) used by the
//!   `pga-faultsim` deterministic crash/partition harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod diskstore;
pub mod fault;
pub mod kv;
pub mod master;
pub mod memstore;
pub mod region;
pub mod rewrite;
pub mod scanner;
pub mod scrub;
pub mod server;
pub mod storefile;
pub mod wal;

pub use client::{Client, ClientError, RepairCopy};
pub use diskstore::{
    load_store_files, persist_store_files, read_store_file, write_store_file, DiskStoreError,
};
pub use fault::{no_faults, FaultHandle, FaultPlane, NoFaults};
pub use kv::{KeyValue, RowRange};
pub use master::{locate, Master, RegionInfo, TableDescriptor};
pub use memstore::MemStore;
pub use region::{Region, RegionConfig, RegionId};
pub use rewrite::{CompactionRewriter, RewriteContext, RewriterHandle};
pub use scanner::merge_scan;
pub use scrub::{
    scrub_tick, CellVerifier, QuarantineKey, ScrubFinding, ScrubState, ScrubTickReport,
    VerifierHandle,
};
pub use server::{request_class, RegionServer, Request, Response, ServerConfig};
pub use storefile::StoreFile;
pub use wal::{WalDecodeReport, WriteAheadLog};
