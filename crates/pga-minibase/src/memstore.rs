//! In-memory sorted write buffer (the HBase MemStore analog).

use std::collections::BTreeMap;

use bytes::Bytes;

use crate::kv::{KeyValue, RowRange};

/// Sort key inside the memstore: row, qualifier, reverse timestamp.
type CellKey = (Bytes, Bytes, std::cmp::Reverse<u64>);

/// A sorted in-memory buffer of recent writes. Writes land here (after the
/// WAL) and are served from here until a flush turns the contents into an
/// immutable [`crate::storefile::StoreFile`].
#[derive(Debug, Default, Clone)]
pub struct MemStore {
    cells: BTreeMap<CellKey, Bytes>,
    heap_size: usize,
}

impl MemStore {
    /// Empty memstore.
    pub fn new() -> Self {
        MemStore::default()
    }

    /// Insert one cell. A write to an existing `(row, qualifier,
    /// timestamp)` replaces the previous value (HBase semantics).
    pub fn put(&mut self, kv: KeyValue) {
        self.heap_size += kv.heap_size();
        let key = (kv.row, kv.qualifier, std::cmp::Reverse(kv.timestamp));
        if let Some(old) = self.cells.insert(key, kv.value) {
            // Replacement: refund the old value's bytes (keys are equal).
            self.heap_size -= old.len();
        }
    }

    /// Number of cells buffered.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cells are buffered.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Approximate heap footprint in bytes (drives flush decisions).
    pub fn heap_size(&self) -> usize {
        self.heap_size
    }

    /// Sorted iteration over cells within a row range.
    pub fn scan<'a>(&'a self, range: &'a RowRange) -> impl Iterator<Item = KeyValue> + 'a {
        self.cells
            .range(range_bounds(range))
            .filter(move |((row, _, _), _)| range.contains(row))
            .map(|((row, qual, ts), value)| KeyValue {
                row: row.clone(),
                qualifier: qual.clone(),
                timestamp: ts.0,
                value: value.clone(),
            })
    }

    /// Drain everything into a sorted vector (used by flushes); the
    /// memstore is empty afterwards.
    pub fn drain_sorted(&mut self) -> Vec<KeyValue> {
        self.heap_size = 0;
        std::mem::take(&mut self.cells)
            .into_iter()
            .map(|((row, qual, ts), value)| KeyValue {
                row,
                qualifier: qual,
                timestamp: ts.0,
                value,
            })
            .collect()
    }
}

fn range_bounds(range: &RowRange) -> impl std::ops::RangeBounds<CellKey> {
    use std::ops::Bound;
    let start: Bound<CellKey> = if range.start.is_empty() {
        Bound::Unbounded
    } else {
        Bound::Included((
            range.start.clone(),
            Bytes::new(),
            std::cmp::Reverse(u64::MAX),
        ))
    };
    let end: Bound<CellKey> = if range.end.is_empty() {
        Bound::Unbounded
    } else {
        Bound::Excluded((range.end.clone(), Bytes::new(), std::cmp::Reverse(u64::MAX)))
    };
    (start, end)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(row: &str, qual: &str, ts: u64, val: &str) -> KeyValue {
        KeyValue::new(
            row.as_bytes().to_vec(),
            qual.as_bytes().to_vec(),
            ts,
            val.as_bytes().to_vec(),
        )
    }

    #[test]
    fn put_and_scan_sorted() {
        let mut m = MemStore::new();
        m.put(kv("b", "q", 1, "vb"));
        m.put(kv("a", "q", 1, "va"));
        m.put(kv("c", "q", 1, "vc"));
        let rows: Vec<_> = m
            .scan(&RowRange::all())
            .map(|k| String::from_utf8(k.row.to_vec()).unwrap())
            .collect();
        assert_eq!(rows, vec!["a", "b", "c"]);
    }

    #[test]
    fn newest_version_first_within_cell() {
        let mut m = MemStore::new();
        m.put(kv("a", "q", 1, "old"));
        m.put(kv("a", "q", 9, "new"));
        let vals: Vec<_> = m
            .scan(&RowRange::all())
            .map(|k| (k.timestamp, String::from_utf8(k.value.to_vec()).unwrap()))
            .collect();
        assert_eq!(vals, vec![(9, "new".to_string()), (1, "old".to_string())]);
    }

    #[test]
    fn same_cell_same_ts_replaces() {
        let mut m = MemStore::new();
        m.put(kv("a", "q", 5, "first"));
        m.put(kv("a", "q", 5, "second"));
        assert_eq!(m.len(), 1);
        let only = m.scan(&RowRange::all()).next().unwrap();
        assert_eq!(&only.value[..], b"second");
    }

    #[test]
    fn scan_respects_range() {
        let mut m = MemStore::new();
        for r in ["a", "b", "c", "d"] {
            m.put(kv(r, "q", 1, "v"));
        }
        let rows: Vec<_> = m
            .scan(&RowRange::new(b"b".to_vec(), b"d".to_vec()))
            .map(|k| k.row)
            .collect();
        assert_eq!(rows, vec![Bytes::from("b"), Bytes::from("c")]);
    }

    #[test]
    fn heap_size_grows_and_resets() {
        let mut m = MemStore::new();
        assert_eq!(m.heap_size(), 0);
        m.put(kv("a", "q", 1, "hello"));
        let sz = m.heap_size();
        assert!(sz > 0);
        m.put(kv("b", "q", 1, "world"));
        assert!(m.heap_size() > sz);
        let drained = m.drain_sorted();
        assert_eq!(drained.len(), 2);
        assert_eq!(m.heap_size(), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn drain_is_sorted() {
        let mut m = MemStore::new();
        m.put(kv("b", "y", 1, ""));
        m.put(kv("a", "z", 3, ""));
        m.put(kv("a", "z", 7, ""));
        m.put(kv("a", "a", 2, ""));
        let d = m.drain_sorted();
        let mut sorted = d.clone();
        sorted.sort();
        assert_eq!(d, sorted);
        assert_eq!(d[1].timestamp, 7, "newest version of a/z first");
    }
}
