//! Pluggable compaction rewriters.
//!
//! HBase lets coprocessors rewrite cells during compaction; MiniBase keeps
//! the same seam as a small trait. A [`CompactionRewriter`] sees every row
//! of the merged, version-GC'd compaction output and may replace that
//! row's cells wholesale — the mechanism `pga-tsdb` uses to seal finished
//! rows of raw cells into canonical columnar blocks, and `pga-query` could
//! use to canonicalize rollup cells. Because MiniBase has no deletes,
//! compaction-time rewriting is the *only* way cells are ever physically
//! superseded; a rewriter that loses data loses it forever, which is why
//! the pga-faultsim compaction oracle exists.

use std::sync::Arc;

use crate::kv::KeyValue;
use crate::region::RegionId;

/// Shared handle to a rewriter (cloned into every region of a server).
pub type RewriterHandle = Arc<dyn CompactionRewriter>;

/// Per-row context handed to a rewriter during one compaction.
#[derive(Debug, Clone, Copy)]
pub struct RewriteContext<'a> {
    /// Region being compacted.
    pub region: RegionId,
    /// Row key shared by every cell in the group.
    pub row: &'a [u8],
    /// Fault-plane injection: when `true`, a deliberately broken rewriter
    /// drops raw cells that overlap an existing sealed block instead of
    /// merging them (seeded mutant E). Faithful rewriters must honour the
    /// merge regardless; the flag exists so the *same* rewriter code hosts
    /// both behaviours under the simulator.
    pub drop_sealed_overlap: bool,
}

/// Rewrites one row's cells during compaction.
///
/// Implementations must be deterministic and side-effect free on the
/// store: they run inside `Region::compact` with the region lock held.
pub trait CompactionRewriter: Send + Sync + std::fmt::Debug {
    /// Offered the cells of one row (sorted qualifier-ascending, newest
    /// version first within a qualifier, exactly as compaction merged
    /// them). Return `Some(replacement)` to substitute the row's cells, or
    /// `None` to keep the row unchanged. Replacement cells must keep the
    /// same row key; compaction re-sorts the full output afterwards, so
    /// qualifier order within the returned vector is free.
    fn rewrite_row(&self, ctx: &RewriteContext<'_>, cells: &[KeyValue]) -> Option<Vec<KeyValue>>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::RowRange;
    use crate::region::{Region, RegionConfig};
    use bytes::Bytes;

    /// Rewriter that collapses every row to a single marker cell.
    #[derive(Debug)]
    struct Collapse;
    impl CompactionRewriter for Collapse {
        fn rewrite_row(
            &self,
            ctx: &RewriteContext<'_>,
            cells: &[KeyValue],
        ) -> Option<Vec<KeyValue>> {
            let newest = cells.iter().map(|c| c.timestamp).max()?;
            Some(vec![KeyValue {
                row: Bytes::copy_from_slice(ctx.row),
                qualifier: Bytes::copy_from_slice(b"sealed"),
                timestamp: newest,
                value: Bytes::copy_from_slice(&(cells.len() as u64).to_be_bytes()),
            }])
        }
    }

    fn kv(row: &str, qual: &[u8], ts: u64) -> KeyValue {
        KeyValue::new(row.as_bytes().to_vec(), qual.to_vec(), ts, b"v".to_vec())
    }

    #[test]
    fn rewriter_replaces_rows_during_compaction() {
        let mut r = Region::new(RegionId(1), RowRange::all(), RegionConfig::default());
        r.set_compaction_rewriter(Arc::new(Collapse));
        r.put_batch(vec![kv("a", b"q1", 1), kv("a", b"q2", 2)])
            .unwrap();
        r.flush();
        r.put_batch(vec![kv("b", b"q1", 3)]).unwrap();
        r.flush();
        r.compact();
        let cells = r.scan(&RowRange::all());
        assert_eq!(cells.len(), 2, "one sealed cell per row");
        assert!(cells.iter().all(|c| &c.qualifier[..] == b"sealed"));
        let a = cells.iter().find(|c| &c.row[..] == b"a").unwrap();
        assert_eq!(&a.value[..], &2u64.to_be_bytes());
    }

    #[test]
    fn rewriter_compacts_even_a_single_file() {
        let mut r = Region::new(RegionId(1), RowRange::all(), RegionConfig::default());
        r.set_compaction_rewriter(Arc::new(Collapse));
        r.put_batch(vec![kv("a", b"q1", 1)]).unwrap();
        r.flush();
        r.compact();
        let cells = r.scan(&RowRange::all());
        assert_eq!(cells.len(), 1);
        assert_eq!(&cells[0].qualifier[..], b"sealed");
    }

    /// Rewriter that declines every row.
    #[derive(Debug)]
    struct Decline;
    impl CompactionRewriter for Decline {
        fn rewrite_row(&self, _: &RewriteContext<'_>, _: &[KeyValue]) -> Option<Vec<KeyValue>> {
            None
        }
    }

    #[test]
    fn declining_rewriter_leaves_output_identical() {
        let mk = || {
            let mut r = Region::new(RegionId(1), RowRange::all(), RegionConfig::default());
            r.put_batch(vec![kv("a", b"q1", 1), kv("b", b"q1", 2)])
                .unwrap();
            r.flush();
            r.put_batch(vec![kv("a", b"q1", 3)]).unwrap();
            r.flush();
            r
        };
        let mut plain = mk();
        plain.compact();
        let mut declined = mk();
        declined.set_compaction_rewriter(Arc::new(Decline));
        declined.compact();
        assert_eq!(
            plain.scan(&RowRange::all()),
            declined.scan(&RowRange::all())
        );
    }
}
