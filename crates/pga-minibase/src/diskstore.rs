//! Disk persistence for store files — the HDFS stand-in of Figure 1.
//!
//! Flushed store files can be spilled to a per-region directory in a small
//! binary format and loaded back after a process restart. Combined with
//! the WAL this gives the same durability contract as the paper's
//! HBase-on-HDFS deployment: memstores die with the process, store files
//! and the log survive.
//!
//! Format (little-endian):
//!
//! ```text
//! magic "PGSF" | version u8 | sequence u64 | cell_count u64
//! repeat cell_count times:
//!   row_len u16 | row | qual_len u16 | qual | timestamp u64 | val_len u32 | value
//! footer: v1 = xor-fold checksum u64, v2 = CRC-32 u32
//! ```
//!
//! Version 2 replaced the v1 xor-fold footer with CRC-32 (IEEE),
//! matching the sealed-block codec's integrity bar. New files are always
//! written v2; v1 files remain readable so existing stores load.

use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;

use crate::kv::KeyValue;
use crate::storefile::StoreFile;

const MAGIC: &[u8; 4] = b"PGSF";
/// Legacy format: xor-fold u64 footer.
const VERSION_XORFOLD: u8 = 1;
/// Current format: CRC-32 u32 footer.
const VERSION: u8 = 2;

/// Errors from store-file persistence.
#[derive(Debug)]
pub enum DiskStoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not a valid store file (bad magic/version/length).
    Corrupt(String),
}

impl std::fmt::Display for DiskStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskStoreError::Io(e) => write!(f, "store file io error: {e}"),
            DiskStoreError::Corrupt(m) => write!(f, "corrupt store file: {m}"),
        }
    }
}

impl std::error::Error for DiskStoreError {}

impl From<std::io::Error> for DiskStoreError {
    fn from(e: std::io::Error) -> Self {
        DiskStoreError::Io(e)
    }
}

fn checksum(bytes: &[u8]) -> u64 {
    // v1 footer: xor-fold with a multiplier. Weaker than CRC (no burst
    // guarantees); kept only to read legacy files.
    let mut acc = 0xcbf29ce484222325u64;
    for &b in bytes {
        acc ^= b as u64;
        acc = acc.wrapping_mul(0x100000001b3);
    }
    acc
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven — the same
/// construction the sealed-block codec uses. Re-implemented here rather
/// than imported because the dependency arrow points the other way
/// (`pga-tsdb` builds on this crate).
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = build_crc_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        let entry = TABLE.get(idx).copied().unwrap_or(0); // idx < 256 by construction
        crc = (crc >> 8) ^ entry;
    }
    !crc
}

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Serialise a store file's cells to `path` (atomic: temp + rename).
pub fn write_store_file(
    path: &Path,
    sequence: u64,
    cells: &[KeyValue],
) -> Result<(), DiskStoreError> {
    let mut payload = Vec::with_capacity(64 + cells.len() * 32);
    payload.extend_from_slice(MAGIC);
    payload.push(VERSION);
    payload.extend_from_slice(&sequence.to_le_bytes());
    payload.extend_from_slice(&(cells.len() as u64).to_le_bytes());
    for kv in cells {
        if kv.row.len() > u16::MAX as usize || kv.qualifier.len() > u16::MAX as usize {
            return Err(DiskStoreError::Corrupt("key component too long".into()));
        }
        payload.extend_from_slice(&(kv.row.len() as u16).to_le_bytes());
        payload.extend_from_slice(&kv.row);
        payload.extend_from_slice(&(kv.qualifier.len() as u16).to_le_bytes());
        payload.extend_from_slice(&kv.qualifier);
        payload.extend_from_slice(&kv.timestamp.to_le_bytes());
        payload.extend_from_slice(&(kv.value.len() as u32).to_le_bytes());
        payload.extend_from_slice(&kv.value);
    }
    let sum = crc32(&payload);
    payload.extend_from_slice(&sum.to_le_bytes());
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&payload)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Load a store file written by [`write_store_file`]. Returns the
/// `(sequence, cells)` pair; cells come back in their original (sorted)
/// order.
pub fn read_store_file(path: &Path) -> Result<(u64, Vec<KeyValue>), DiskStoreError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < MAGIC.len() + 1 + 8 + 8 + 4 {
        return Err(DiskStoreError::Corrupt("file too short".into()));
    }
    // The footer width depends on the version byte, so sniff the header
    // before verifying: v1 carries an xor-fold u64, v2 a CRC-32 u32.
    if bytes.get(..4) != Some(&MAGIC[..]) {
        return Err(DiskStoreError::Corrupt("bad magic".into()));
    }
    let payload = match bytes.get(4).copied() {
        Some(VERSION_XORFOLD) => {
            if bytes.len() < MAGIC.len() + 1 + 8 + 8 + 8 {
                return Err(DiskStoreError::Corrupt("file too short".into()));
            }
            let (payload, footer) = bytes.split_at(bytes.len() - 8);
            let stored_sum = u64::from_le_bytes(footer.try_into().expect("8 bytes"));
            if checksum(payload) != stored_sum {
                return Err(DiskStoreError::Corrupt("checksum mismatch".into()));
            }
            payload
        }
        Some(VERSION) => {
            let (payload, footer) = bytes.split_at(bytes.len() - 4);
            let stored_sum = u32::from_le_bytes(footer.try_into().expect("4 bytes"));
            if crc32(payload) != stored_sum {
                return Err(DiskStoreError::Corrupt("crc32 mismatch".into()));
            }
            payload
        }
        v => return Err(DiskStoreError::Corrupt(format!("unknown version {v:?}"))),
    };
    let mut cursor = 0usize;
    let take = |cursor: &mut usize, n: usize| -> Result<&[u8], DiskStoreError> {
        if *cursor + n > payload.len() {
            return Err(DiskStoreError::Corrupt("unexpected end of file".into()));
        }
        let s = &payload[*cursor..*cursor + n];
        *cursor += n;
        Ok(s)
    };
    if take(&mut cursor, 4)? != MAGIC {
        return Err(DiskStoreError::Corrupt("bad magic".into()));
    }
    let version = take(&mut cursor, 1)?[0];
    if version != VERSION && version != VERSION_XORFOLD {
        return Err(DiskStoreError::Corrupt(format!(
            "unknown version {version}"
        )));
    }
    let sequence = u64::from_le_bytes(take(&mut cursor, 8)?.try_into().unwrap());
    let count = u64::from_le_bytes(take(&mut cursor, 8)?.try_into().unwrap()) as usize;
    let mut cells = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let row_len = u16::from_le_bytes(take(&mut cursor, 2)?.try_into().unwrap()) as usize;
        let row = Bytes::copy_from_slice(take(&mut cursor, row_len)?);
        let qual_len = u16::from_le_bytes(take(&mut cursor, 2)?.try_into().unwrap()) as usize;
        let qualifier = Bytes::copy_from_slice(take(&mut cursor, qual_len)?);
        let timestamp = u64::from_le_bytes(take(&mut cursor, 8)?.try_into().unwrap());
        let val_len = u32::from_le_bytes(take(&mut cursor, 4)?.try_into().unwrap()) as usize;
        let value = Bytes::copy_from_slice(take(&mut cursor, val_len)?);
        cells.push(KeyValue {
            row,
            qualifier,
            timestamp,
            value,
        });
    }
    if cursor != payload.len() {
        return Err(DiskStoreError::Corrupt("trailing bytes".into()));
    }
    Ok((sequence, cells))
}

/// Persist every store file of a region snapshot into `dir`, removing
/// stale `.psf` files that are no longer part of the region (obsoleted by
/// compaction).
pub fn persist_store_files(dir: &Path, files: &[StoreFile]) -> Result<(), DiskStoreError> {
    std::fs::create_dir_all(dir)?;
    let live: std::collections::HashSet<String> = files
        .iter()
        .map(|f| format!("sf-{:08}.psf", f.sequence()))
        .collect();
    for f in files {
        let name = format!("sf-{:08}.psf", f.sequence());
        let path = dir.join(&name);
        if !path.exists() {
            let cells: Vec<KeyValue> = f.scan(&crate::kv::RowRange::all()).cloned().collect();
            write_store_file(&path, f.sequence(), &cells)?;
        }
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".psf") && !live.contains(&name) {
            std::fs::remove_file(entry.path())?;
        }
    }
    Ok(())
}

/// Load every persisted store file in `dir`, ordered by sequence.
pub fn load_store_files(dir: &Path) -> Result<Vec<StoreFile>, DiskStoreError> {
    let mut found: Vec<(u64, PathBuf)> = Vec::new();
    match std::fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries {
                let entry = entry?;
                let path = entry.path();
                if path.extension().is_some_and(|e| e == "psf") {
                    let (seq, _) = read_store_file(&path)?;
                    found.push((seq, path));
                }
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    }
    found.sort_by_key(|(seq, _)| *seq);
    let mut out = Vec::with_capacity(found.len());
    for (seq, path) in found {
        let (_, cells) = read_store_file(&path)?;
        out.push(StoreFile::from_sorted(cells, seq));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::RowRange;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pga-diskstore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cells(n: usize) -> Vec<KeyValue> {
        let mut v: Vec<KeyValue> = (0..n)
            .map(|i| {
                KeyValue::new(
                    format!("row{i:04}").into_bytes(),
                    format!("q{}", i % 3).into_bytes(),
                    i as u64,
                    vec![i as u8; i % 7],
                )
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("sf-1.psf");
        let data = cells(100);
        write_store_file(&path, 42, &data).unwrap();
        let (seq, back) = read_store_file(&path).unwrap();
        assert_eq!(seq, 42);
        assert_eq!(back, data);
    }

    #[test]
    fn empty_file_roundtrips() {
        let dir = temp_dir("empty");
        let path = dir.join("sf-0.psf");
        write_store_file(&path, 1, &[]).unwrap();
        let (seq, back) = read_store_file(&path).unwrap();
        assert_eq!(seq, 1);
        assert!(back.is_empty());
    }

    #[test]
    fn corruption_is_detected() {
        let dir = temp_dir("corrupt");
        let path = dir.join("sf-1.psf");
        write_store_file(&path, 7, &cells(20)).unwrap();
        // Flip one byte in the middle.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_store_file(&path),
            Err(DiskStoreError::Corrupt(_))
        ));
        // Truncation too.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() / 2);
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_store_file(&path).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let dir = temp_dir("magic");
        let path = dir.join("sf-1.psf");
        std::fs::write(&path, b"NOTASTOREFILE-PADDING-PADDING").unwrap();
        assert!(matches!(
            read_store_file(&path),
            Err(DiskStoreError::Corrupt(_))
        ));
    }

    #[test]
    fn persist_and_load_store_file_set() {
        let dir = temp_dir("set");
        let f1 = StoreFile::from_sorted(cells(10), 1);
        let f2 = StoreFile::from_sorted(cells(5), 2);
        persist_store_files(&dir, &[f1.clone(), f2.clone()]).unwrap();
        let loaded = load_store_files(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].sequence(), 1);
        assert_eq!(loaded[1].sequence(), 2);
        assert_eq!(loaded[0].len(), 10);
        // Compaction replaces both with one merged file: stale ones vanish.
        let merged = StoreFile::from_sorted(cells(12), 3);
        persist_store_files(&dir, &[merged]).unwrap();
        let reloaded = load_store_files(&dir).unwrap();
        assert_eq!(reloaded.len(), 1);
        assert_eq!(reloaded[0].sequence(), 3);
    }

    /// Write a file in the legacy v1 layout (xor-fold u64 footer) the way
    /// pre-upgrade builds did.
    fn write_v1_file(path: &Path, sequence: u64, cells: &[KeyValue]) {
        let mut payload = Vec::new();
        payload.extend_from_slice(MAGIC);
        payload.push(VERSION_XORFOLD);
        payload.extend_from_slice(&sequence.to_le_bytes());
        payload.extend_from_slice(&(cells.len() as u64).to_le_bytes());
        for kv in cells {
            payload.extend_from_slice(&(kv.row.len() as u16).to_le_bytes());
            payload.extend_from_slice(&kv.row);
            payload.extend_from_slice(&(kv.qualifier.len() as u16).to_le_bytes());
            payload.extend_from_slice(&kv.qualifier);
            payload.extend_from_slice(&kv.timestamp.to_le_bytes());
            payload.extend_from_slice(&(kv.value.len() as u32).to_le_bytes());
            payload.extend_from_slice(&kv.value);
        }
        let sum = checksum(&payload);
        payload.extend_from_slice(&sum.to_le_bytes());
        std::fs::write(path, payload).unwrap();
    }

    #[test]
    fn legacy_v1_files_still_load() {
        let dir = temp_dir("v1-compat");
        let path = dir.join("sf-1.psf");
        let data = cells(30);
        write_v1_file(&path, 13, &data);
        let (seq, back) = read_store_file(&path).unwrap();
        assert_eq!(seq, 13);
        assert_eq!(back, data);
        // And a flipped byte in a v1 file is still caught by its footer.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_store_file(&path),
            Err(DiskStoreError::Corrupt(_))
        ));
    }

    #[test]
    fn new_files_are_v2_crc32() {
        let dir = temp_dir("v2");
        let path = dir.join("sf-1.psf");
        write_store_file(&path, 5, &cells(8)).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes[4], VERSION);
        let (payload, footer) = bytes.split_at(bytes.len() - 4);
        assert_eq!(
            u32::from_le_bytes(footer.try_into().unwrap()),
            crc32(payload)
        );
    }

    #[test]
    fn crc32_matches_ieee_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn loading_missing_dir_is_empty() {
        let dir = temp_dir("missing").join("nested-not-created");
        assert!(load_store_files(&dir).unwrap().is_empty());
    }

    #[test]
    fn loaded_files_scan_identically() {
        let dir = temp_dir("scan");
        let data = cells(200);
        let f = StoreFile::from_sorted(data.clone(), 9);
        persist_store_files(&dir, std::slice::from_ref(&f)).unwrap();
        let loaded = load_store_files(&dir).unwrap();
        let a: Vec<_> = f.scan(&RowRange::all()).cloned().collect();
        let b: Vec<_> = loaded[0].scan(&RowRange::all()).cloned().collect();
        assert_eq!(a, b);
        // Range scans agree too.
        let r = RowRange::new(b"row0050".to_vec(), b"row0060".to_vec());
        let a: Vec<_> = f.scan(&r).cloned().collect();
        let b: Vec<_> = loaded[0].scan(&r).cloned().collect();
        assert_eq!(a, b);
    }
}
