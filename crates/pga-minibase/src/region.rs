//! A region: one contiguous row range of the table.
//!
//! Structure mirrors HBase: a write-ahead log, a mutable memstore, and a
//! stack of immutable store files, with flushes, compactions, and midpoint
//! splits. The paper's key finding that "HBase regions were manually split
//! to ensure each region handled an equal proportion of the writes"
//! (§III-B) is served by [`Region::split`] plus the master's pre-split
//! table creation.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use pga_repl::{Epoch, ReplicaRole, ShipOutcome};

use crate::fault::{no_faults, FaultHandle};
use crate::kv::{KeyValue, RowRange};
use crate::memstore::MemStore;
use crate::rewrite::{RewriteContext, RewriterHandle};
use crate::scanner::merge_scan;
use crate::storefile::StoreFile;
use crate::wal::{SequenceId, WriteAheadLog};

/// Identifier of a region within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionId(pub u64);

impl std::fmt::Display for RegionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "region-{}", self.0)
    }
}

/// Tunables for a region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionConfig {
    /// Memstore heap bytes that trigger an automatic flush on write.
    pub memstore_flush_bytes: usize,
    /// Store-file count that triggers an automatic minor compaction.
    pub compaction_file_threshold: usize,
    /// Maximum versions retained per `(row, qualifier)` cell; older
    /// versions are garbage-collected during major compactions (HBase's
    /// `VERSIONS` column-family attribute).
    pub max_versions: usize,
}

impl Default for RegionConfig {
    fn default() -> Self {
        RegionConfig {
            memstore_flush_bytes: 8 * 1024 * 1024,
            compaction_file_threshold: 8,
            max_versions: usize::MAX,
        }
    }
}

/// Write/IO counters for one region — these feed the ablation experiments
/// (flush and compaction cost visibility).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionMetrics {
    /// Cells written.
    pub cells_written: u64,
    /// Flushes performed.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Cells rewritten by compactions.
    pub compacted_cells: u64,
    /// Rows whose cells a [`crate::rewrite::CompactionRewriter`] replaced
    /// (e.g. sealed into columnar blocks).
    #[serde(default)]
    pub rewritten_rows: u64,
}

/// One region of the table.
#[derive(Debug)]
pub struct Region {
    id: RegionId,
    range: RowRange,
    config: RegionConfig,
    wal: WriteAheadLog,
    memstore: MemStore,
    files: Vec<StoreFile>,
    next_file_seq: u64,
    metrics: RegionMetrics,
    fault: FaultHandle,
    /// Optional compaction rewriter; consulted per row during
    /// [`Region::compact`].
    rewriter: Option<RewriterHandle>,
    /// Replication-group generation; writes and ships stamped with any
    /// other epoch are rejected (fencing). Starts at 1 so epoch 0 can
    /// never match.
    epoch: Epoch,
    /// Whether this copy serves writes or replays shipped WAL.
    role: ReplicaRole,
}

/// Errors from region operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionError {
    /// A key in the batch is outside this region's range — the client's
    /// directory is stale (HBase's `NotServingRegionException`).
    WrongRegion {
        /// The offending row key.
        row: Bytes,
    },
    /// The region cannot be split (too little data or single row).
    CannotSplit,
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionError::WrongRegion { row } => write!(f, "row {row:?} not in this region"),
            RegionError::CannotSplit => write!(f, "region cannot be split"),
        }
    }
}

impl std::error::Error for RegionError {}

impl Region {
    /// Create an empty region over `range`.
    pub fn new(id: RegionId, range: RowRange, config: RegionConfig) -> Self {
        Region {
            id,
            range,
            config,
            wal: WriteAheadLog::new(),
            memstore: MemStore::new(),
            files: Vec::new(),
            next_file_seq: 1,
            metrics: RegionMetrics::default(),
            fault: no_faults(),
            rewriter: None,
            epoch: 1,
            role: ReplicaRole::Primary,
        }
    }

    /// Install a fault plane (simulation harnesses only; the default is
    /// the faithful no-op plane). Split daughters inherit the handle.
    pub fn set_fault_plane(&mut self, fault: FaultHandle) {
        self.fault = fault;
    }

    /// Install a compaction rewriter; subsequent compactions offer every
    /// row of their merged output to it. Split daughters and forked
    /// followers inherit the handle.
    pub fn set_compaction_rewriter(&mut self, rewriter: RewriterHandle) {
        self.rewriter = Some(rewriter);
    }

    /// Whether a compaction rewriter is installed.
    pub fn has_compaction_rewriter(&self) -> bool {
        self.rewriter.is_some()
    }

    /// Region id.
    pub fn id(&self) -> RegionId {
        self.id
    }

    /// Row range served.
    pub fn range(&self) -> &RowRange {
        &self.range
    }

    /// Metrics snapshot.
    pub fn metrics(&self) -> RegionMetrics {
        self.metrics
    }

    /// Share the WAL handle (for recovery tests and reassignment).
    pub fn wal(&self) -> WriteAheadLog {
        self.wal.clone()
    }

    /// Write a batch: WAL first, then memstore; flushes/compacts if
    /// thresholds are crossed. Rejects rows outside the region.
    pub fn put_batch(&mut self, kvs: Vec<KeyValue>) -> Result<(), RegionError> {
        // pga-allow(epoch-fencing): single-copy Put path — the RPC carries no epoch; replicated writes route through PutReplicated, which fences before put_batch_assign, and lease expiry bounds a deposed primary here
        self.put_batch_assign(kvs).map(|_| ())
    }

    /// [`Region::put_batch`] returning the WAL sequence id assigned to
    /// the batch — the id the replication driver stamps on follower
    /// ships so every replica agrees on batch ordering.
    pub fn put_batch_assign(&mut self, kvs: Vec<KeyValue>) -> Result<SequenceId, RegionError> {
        for kv in &kvs {
            if !self.range.contains(&kv.row) {
                return Err(RegionError::WrongRegion {
                    row: kv.row.clone(),
                });
            }
        }
        // Deliberate injection site: mutant A (ack-before-WAL-append)
        // suppresses the append; the faithful plane never does.
        let seq = if !self.fault.skip_wal_append(self.id) {
            self.wal.append_batch(&kvs)
        } else {
            self.wal.last_sequence()
        };
        self.metrics.cells_written += kvs.len() as u64;
        for kv in kvs {
            self.memstore.put(kv);
        }
        if self.memstore.heap_size() >= self.config.memstore_flush_bytes {
            self.flush();
        }
        Ok(seq)
    }

    /// Replication-group epoch of this copy.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Install a new epoch (promotion or route refresh, master-driven).
    pub fn set_epoch(&mut self, epoch: Epoch) {
        self.epoch = epoch;
    }

    /// This copy's role in the replication group.
    pub fn role(&self) -> ReplicaRole {
        self.role
    }

    /// Change the role (promotion, or demotion when forking followers).
    pub fn set_role(&mut self, role: ReplicaRole) {
        self.role = role;
    }

    /// Last WAL sequence this copy has durable — on a primary the last
    /// assigned batch, on a follower the last applied ship.
    pub fn applied_seq(&self) -> SequenceId {
        self.wal.last_sequence()
    }

    /// Apply a WAL batch shipped by the primary under the primary's
    /// sequence id. [`ShipOutcome::Applied`] advanced this copy,
    /// [`ShipOutcome::Stale`] is a duplicate/stale ship (already durable
    /// here — the caller may still count it toward the quorum), and
    /// [`ShipOutcome::Gap`] means an earlier batch is missing: nothing
    /// was applied and the shipper must backfill from the primary's WAL
    /// tail ([`Region::wal_batches_after`]) before this copy can vote.
    /// Row-range checks mirror `put_batch`: primary and follower serve
    /// the same range, so an out-of-range row means a mis-routed ship.
    pub fn apply_replicated(
        &mut self,
        seq: SequenceId,
        kvs: Vec<KeyValue>,
    ) -> Result<ShipOutcome, RegionError> {
        for kv in &kvs {
            if !self.range.contains(&kv.row) {
                return Err(RegionError::WrongRegion {
                    row: kv.row.clone(),
                });
            }
        }
        // Deliberate injection site: mutant D (gap-tolerant follower)
        // skips the contiguity check, so a missed ship leaves a silent
        // hole; the faithful plane always enforces seq == last + 1.
        let outcome = if self.fault.allow_ship_gap(self.id) {
            self.wal.append_batch_with_seq_allow_gap(seq, &kvs)
        } else {
            self.wal.append_batch_with_seq(seq, &kvs)
        };
        if outcome != ShipOutcome::Applied {
            return Ok(outcome);
        }
        self.metrics.cells_written += kvs.len() as u64;
        for kv in kvs {
            self.memstore.put(kv);
        }
        if self.memstore.heap_size() >= self.config.memstore_flush_bytes {
            self.flush();
        }
        Ok(ShipOutcome::Applied)
    }

    /// Whether the fault plane drops the next replication ship touching
    /// this region (simulation-only; the faithful plane never does).
    pub fn ship_dropped(&self) -> bool {
        self.fault.drop_ship(self.id)
    }

    /// Retained WAL batches newer than `after`, in order — the tail a
    /// primary serves so a gapped follower can be backfilled. Bounded by
    /// the flush mark: batches already flushed to store files are gone,
    /// and a follower that far behind must stay behind (its applied
    /// sequence honestly reports its contiguous prefix).
    pub fn wal_batches_after(&self, after: SequenceId) -> Vec<(SequenceId, Vec<KeyValue>)> {
        self.wal.batches_after(after)
    }

    /// Fork a fresh follower copy of this region: a snapshot of every
    /// currently visible cell becomes the follower's base store file, and
    /// its WAL starts after this copy's last sequence so only ships
    /// newer than the snapshot are accepted. Used to (re)seed followers
    /// at table creation and to restore the replication factor after a
    /// failover consumed one.
    pub fn fork_follower(&self) -> Region {
        let cells = self.scan(&RowRange::all());
        let files = if cells.is_empty() {
            Vec::new()
        } else {
            vec![StoreFile::from_sorted(cells, 1)]
        };
        Region {
            id: self.id,
            range: self.range.clone(),
            config: self.config,
            wal: WriteAheadLog::with_start_sequence(self.wal.last_sequence()),
            memstore: MemStore::new(),
            files,
            next_file_seq: 2,
            metrics: RegionMetrics::default(),
            fault: self.fault.clone(),
            rewriter: self.rewriter.clone(),
            epoch: self.epoch,
            role: ReplicaRole::Follower,
        }
    }

    /// Flush the memstore into a new store file and advance the WAL mark.
    pub fn flush(&mut self) {
        if self.memstore.is_empty() {
            return;
        }
        let cells = self.memstore.drain_sorted();
        let seq = self.next_file_seq;
        self.next_file_seq += 1;
        self.files.push(StoreFile::from_sorted(cells, seq));
        self.wal.mark_flushed(self.wal.last_sequence());
        self.metrics.flushes += 1;
        if self.files.len() >= self.config.compaction_file_threshold {
            self.compact();
        }
    }

    /// Merge every store file into one (major compaction). With a
    /// [`crate::rewrite::CompactionRewriter`] installed, every row of the
    /// merged output is offered to it — even a single-file compaction is
    /// worthwhile then, because the rewriter may seal rows.
    pub fn compact(&mut self) {
        if self.files.is_empty() || (self.files.len() <= 1 && self.rewriter.is_none()) {
            return;
        }
        let priorities: Vec<u64> = self.files.iter().map(|f| f.sequence()).collect();
        let sources: Vec<Vec<KeyValue>> = self
            .files
            .iter()
            .map(|f| f.scan(&RowRange::all()).cloned().collect())
            .collect();
        let mut merged = merge_scan(sources, priorities);
        // Version GC: merge_scan yields newest-first within a cell, so
        // retain only the first `max_versions` occurrences of each
        // (row, qualifier).
        if self.config.max_versions != usize::MAX {
            let mut last_cell: Option<(bytes::Bytes, bytes::Bytes)> = None;
            let mut kept = 0usize;
            merged.retain(|kv| {
                let cell = (kv.row.clone(), kv.qualifier.clone());
                if last_cell.as_ref() == Some(&cell) {
                    kept += 1;
                } else {
                    last_cell = Some(cell);
                    kept = 1;
                }
                kept <= self.config.max_versions
            });
        }
        if let Some(rewriter) = self.rewriter.clone() {
            let drop_sealed_overlap = self.fault.drop_sealed_overlap(self.id);
            let mut rewritten: Vec<KeyValue> = Vec::with_capacity(merged.len());
            let mut changed = false;
            let mut i = 0;
            while i < merged.len() {
                let Some(row) = merged.get(i).map(|kv| kv.row.clone()) else {
                    break;
                };
                let mut j = i;
                while merged.get(j).map(|kv| &kv.row) == Some(&row) {
                    j += 1;
                }
                let group = merged.get(i..j).unwrap_or(&[]);
                let ctx = RewriteContext {
                    region: self.id,
                    row: &row,
                    drop_sealed_overlap,
                };
                match rewriter.rewrite_row(&ctx, group) {
                    Some(replacement) => {
                        changed = true;
                        self.metrics.rewritten_rows += 1;
                        rewritten.extend(replacement);
                    }
                    None => rewritten.extend_from_slice(group),
                }
                i = j;
            }
            if changed {
                // Rewriters emit qualifiers in their own order; restore
                // the global sort before building the store file.
                rewritten.sort();
                merged = rewritten;
            }
        }
        self.metrics.compacted_cells += merged.len() as u64;
        self.metrics.compactions += 1;
        let seq = self.next_file_seq;
        self.next_file_seq += 1;
        self.files = vec![StoreFile::from_sorted(merged, seq)];
    }

    /// Scan cells in `range` (clipped to the region's own range), merged
    /// across the memstore and all store files, sorted, deduplicated.
    pub fn scan(&self, range: &RowRange) -> Vec<KeyValue> {
        let clipped = clip(range, &self.range);
        let mut sources = Vec::with_capacity(self.files.len() + 1);
        let mut priorities = Vec::with_capacity(self.files.len() + 1);
        for f in &self.files {
            sources.push(f.scan(&clipped).cloned().collect());
            priorities.push(f.sequence());
        }
        sources.push(self.memstore.scan(&clipped).collect());
        priorities.push(u64::MAX); // memstore always wins collisions
        merge_scan(sources, priorities)
    }

    /// Total cells currently visible (memstore + files; versions counted
    /// separately, duplicates across files counted once).
    pub fn approximate_cells(&self) -> usize {
        self.memstore.len() + self.files.iter().map(|f| f.len()).sum::<usize>()
    }

    /// Scrub pass: verify every store-file cell the `verifier` covers,
    /// returning how many were checked and the `(row, qualifier)` keys
    /// that failed. Read-only and sequential — the low-priority walk the
    /// background scrubber rides on the compaction cadence.
    pub fn scrub_cells(
        &self,
        verifier: &dyn crate::scrub::CellVerifier,
    ) -> crate::scrub::ScrubFinding {
        let mut finding = crate::scrub::ScrubFinding::default();
        for f in &self.files {
            for kv in f.scan(&RowRange::all()) {
                if !verifier.covers(kv) {
                    continue;
                }
                finding.scanned += 1;
                if !verifier.verify(kv) {
                    finding.corrupt.push((kv.row.clone(), kv.qualifier.clone()));
                }
            }
        }
        finding
    }

    /// Fault-injection hook (corruption harnesses only): pick the
    /// `pick % n`-th store-file cell matching `selector` and mutate its
    /// value bytes in place with `mutate`, modelling at-rest bit rot.
    /// Returns the affected `(row, qualifier)`, or `None` when nothing
    /// matches. Only the value is touched, so sort order is preserved.
    pub fn corrupt_cell_for_fault_injection(
        &mut self,
        pick: u64,
        selector: &dyn Fn(&KeyValue) -> bool,
        mutate: &dyn Fn(&mut Vec<u8>),
    ) -> Option<(Bytes, Bytes)> {
        let total: usize = self
            .files
            .iter()
            .map(|f| f.scan(&RowRange::all()).filter(|kv| selector(kv)).count())
            .sum();
        if total == 0 {
            return None;
        }
        let target = (pick % total as u64) as usize;
        let mut seen = 0usize;
        for fi in 0..self.files.len() {
            let Some(file) = self.files.get(fi) else {
                continue;
            };
            let matches = file
                .scan(&RowRange::all())
                .filter(|kv| selector(kv))
                .count();
            if seen + matches <= target {
                seen += matches;
                continue;
            }
            let within = target - seen;
            let seq = file.sequence();
            let mut cells: Vec<KeyValue> = file.scan(&RowRange::all()).cloned().collect();
            let mut hit = None;
            let mut mi = 0usize;
            for kv in cells.iter_mut() {
                if !selector(kv) {
                    continue;
                }
                if mi == within {
                    let mut value = kv.value.to_vec();
                    mutate(&mut value);
                    kv.value = Bytes::from(value);
                    hit = Some((kv.row.clone(), kv.qualifier.clone()));
                    break;
                }
                mi += 1;
            }
            if let Some(slot) = self.files.get_mut(fi) {
                *slot = StoreFile::from_sorted(cells, seq);
            }
            return hit;
        }
        None
    }

    /// Repair install: replace the stored value of every store-file cell
    /// at `(row, qualifier)` with `value`, keeping timestamps. Returns
    /// how many cells were replaced (0 = the key is not stored here).
    /// Only called by the scrub repair path, with bytes that already
    /// round-tripped checksum verification.
    pub fn replace_cell_value(&mut self, row: &[u8], qualifier: &[u8], value: &Bytes) -> usize {
        let mut replaced = 0usize;
        for fi in 0..self.files.len() {
            let Some(file) = self.files.get(fi) else {
                continue;
            };
            let hit = file
                .scan(&RowRange::all())
                .any(|kv| kv.row == row && kv.qualifier == qualifier && kv.value != *value);
            if !hit {
                continue;
            }
            let seq = file.sequence();
            let mut cells: Vec<KeyValue> = file.scan(&RowRange::all()).cloned().collect();
            for kv in cells.iter_mut() {
                if kv.row == row && kv.qualifier == qualifier && kv.value != *value {
                    kv.value = value.clone();
                    replaced += 1;
                }
            }
            if let Some(slot) = self.files.get_mut(fi) {
                *slot = StoreFile::from_sorted(cells, seq);
            }
        }
        replaced
    }

    /// Split at the median row of the stored data. Returns the two
    /// daughters, or gives `self` back unchanged when the region cannot be
    /// split (too little data, or all cells share one row).
    ///
    /// Flushes first, so both daughters are built from store files only.
    ///
    /// The `Err` variant intentionally carries the whole region back to the
    /// caller — splitting consumes `self`, so failure must return it.
    #[allow(clippy::result_large_err)]
    pub fn split(
        mut self,
        left_id: RegionId,
        right_id: RegionId,
    ) -> Result<(Region, Region), Region> {
        self.flush();
        let all = self.scan(&RowRange::all());
        if all.len() < 2 {
            return Err(self);
        }
        let Some(mid_row) = all.get(all.len() / 2).map(|kv| kv.row.clone()) else {
            return Err(self);
        };
        if all.first().map(|kv| &kv.row) == Some(&mid_row) {
            // All data shares one row: nothing to split on.
            return Err(self);
        }
        let left_range = RowRange {
            start: self.range.start.clone(),
            end: mid_row.clone(),
        };
        let right_range = RowRange {
            start: mid_row.clone(),
            end: self.range.end.clone(),
        };
        let mut left = Region::new(left_id, left_range, self.config);
        let mut right = Region::new(right_id, right_range, self.config);
        left.fault = self.fault.clone();
        right.fault = self.fault.clone();
        left.rewriter = self.rewriter.clone();
        right.rewriter = self.rewriter.clone();
        let (l_cells, r_cells): (Vec<KeyValue>, Vec<KeyValue>) =
            all.into_iter().partition(|kv| kv.row < mid_row);
        left.files = vec![StoreFile::from_sorted(l_cells, 1)];
        left.next_file_seq = 2;
        right.files = vec![StoreFile::from_sorted(r_cells, 1)];
        right.next_file_seq = 2;
        Ok((left, right))
    }

    /// Rebuild the memstore from the WAL (crash recovery: the region's
    /// files + WAL live in shared "HDFS" memory, the memstore died with
    /// the serving thread).
    pub fn recover_from_wal(&mut self) {
        for kv in self.wal.replay() {
            self.memstore.put(kv);
        }
    }

    /// Full crash recovery: the memstore is **dropped** (it died with the
    /// serving process), the WAL is read back through its byte encoding —
    /// exposed to [`crate::fault::FaultPlane::tear_wal`] so harnesses can
    /// tear the tail the way a mid-append crash would — and the surviving
    /// records are replayed into a fresh memstore.
    pub fn crash_recover(&mut self) {
        self.memstore = MemStore::new();
        // Deliberate injection site: mutant B (replay skips the unflushed
        // tail) stops here; the faithful plane always replays.
        if self.fault.skip_crash_replay(self.id) {
            return;
        }
        let mut encoded = self.wal.encode();
        self.fault.tear_wal(self.id, &mut encoded);
        self.wal = WriteAheadLog::from_encoded(&encoded);
        for kv in self.wal.replay() {
            self.memstore.put(kv);
        }
    }

    /// Drop the memstore (mutant C's migration bug; harness-driven via
    /// [`crate::fault::FaultPlane::drop_memstore_on_move`]).
    pub(crate) fn clear_memstore(&mut self) {
        self.memstore = MemStore::new();
    }

    /// Spill the current store files to `dir` (the HDFS-analog durability
    /// path; see [`crate::diskstore`]). Stale files obsoleted by
    /// compaction are removed.
    pub fn persist_store_files(
        &self,
        dir: &std::path::Path,
    ) -> Result<(), crate::diskstore::DiskStoreError> {
        crate::diskstore::persist_store_files(dir, &self.files)
    }

    /// Rebuild a region after a full process restart: store files come
    /// back from `dir`, unflushed writes replay from the surviving WAL.
    pub fn restore_from_disk(
        id: RegionId,
        range: RowRange,
        config: RegionConfig,
        dir: &std::path::Path,
        wal: WriteAheadLog,
    ) -> Result<Region, crate::diskstore::DiskStoreError> {
        let files = crate::diskstore::load_store_files(dir)?;
        let next_file_seq = files.iter().map(|f| f.sequence()).max().unwrap_or(0) + 1;
        let mut region = Region {
            id,
            range,
            config,
            wal,
            memstore: MemStore::new(),
            files,
            next_file_seq,
            metrics: RegionMetrics::default(),
            fault: no_faults(),
            rewriter: None,
            epoch: 1,
            role: ReplicaRole::Primary,
        };
        region.recover_from_wal();
        Ok(region)
    }
}

fn clip(a: &RowRange, b: &RowRange) -> RowRange {
    let start = match (a.start.is_empty(), b.start.is_empty()) {
        (true, _) => b.start.clone(),
        (_, true) => a.start.clone(),
        _ => std::cmp::max(a.start.clone(), b.start.clone()),
    };
    let end = match (a.end.is_empty(), b.end.is_empty()) {
        (true, _) => b.end.clone(),
        (_, true) => a.end.clone(),
        _ => std::cmp::min(a.end.clone(), b.end.clone()),
    };
    RowRange { start, end }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(row: &str, ts: u64, val: &str) -> KeyValue {
        KeyValue::new(
            row.as_bytes().to_vec(),
            b"q".to_vec(),
            ts,
            val.as_bytes().to_vec(),
        )
    }

    fn region() -> Region {
        Region::new(RegionId(1), RowRange::all(), RegionConfig::default())
    }

    #[test]
    fn put_scan_roundtrip() {
        let mut r = region();
        r.put_batch(vec![kv("b", 1, "vb"), kv("a", 1, "va")])
            .unwrap();
        let cells = r.scan(&RowRange::all());
        assert_eq!(cells.len(), 2);
        assert_eq!(&cells[0].row[..], b"a");
    }

    #[test]
    fn wrong_region_rejected() {
        let mut r = Region::new(
            RegionId(1),
            RowRange::new(b"a".to_vec(), b"m".to_vec()),
            RegionConfig::default(),
        );
        let err = r.put_batch(vec![kv("z", 1, "v")]).unwrap_err();
        assert!(matches!(err, RegionError::WrongRegion { .. }));
        // Whole batch is rejected atomically.
        assert_eq!(r.scan(&RowRange::all()).len(), 0);
    }

    #[test]
    fn flush_moves_data_to_files_and_truncates_wal() {
        let mut r = region();
        r.put_batch(vec![kv("a", 1, "v"), kv("b", 1, "v")]).unwrap();
        assert_eq!(r.wal().unflushed_len(), 2);
        r.flush();
        assert_eq!(r.wal().unflushed_len(), 0);
        assert_eq!(r.metrics().flushes, 1);
        // Data still visible.
        assert_eq!(r.scan(&RowRange::all()).len(), 2);
        // Second flush with empty memstore is a no-op.
        r.flush();
        assert_eq!(r.metrics().flushes, 1);
    }

    #[test]
    fn auto_flush_on_threshold() {
        let mut r = Region::new(
            RegionId(1),
            RowRange::all(),
            RegionConfig {
                memstore_flush_bytes: 200,
                compaction_file_threshold: 100,
                max_versions: usize::MAX,
            },
        );
        for i in 0..20 {
            r.put_batch(vec![kv(&format!("row{i}"), 1, "some-payload")])
                .unwrap();
        }
        assert!(r.metrics().flushes > 0, "threshold flush expected");
        assert_eq!(r.scan(&RowRange::all()).len(), 20);
    }

    #[test]
    fn scan_merges_memstore_over_files() {
        let mut r = region();
        r.put_batch(vec![kv("a", 5, "old")]).unwrap();
        r.flush();
        r.put_batch(vec![kv("a", 5, "new")]).unwrap(); // same cell, memstore
        let cells = r.scan(&RowRange::all());
        assert_eq!(cells.len(), 1);
        assert_eq!(&cells[0].value[..], b"new");
    }

    #[test]
    fn compaction_folds_files_keeping_newest() {
        let mut r = region();
        r.put_batch(vec![kv("a", 1, "v1")]).unwrap();
        r.flush();
        r.put_batch(vec![kv("a", 2, "v2"), kv("b", 1, "v")])
            .unwrap();
        r.flush();
        r.compact();
        assert_eq!(r.metrics().compactions, 1);
        let cells = r.scan(&RowRange::all());
        // Both versions of `a` survive (no TTL), plus `b`.
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[0].timestamp, 2, "newest version of a first");
    }

    #[test]
    fn split_partitions_rows() {
        let mut r = region();
        for i in 0..100 {
            r.put_batch(vec![kv(&format!("row{i:03}"), 1, "v")])
                .unwrap();
        }
        let (left, right) = r.split(RegionId(2), RegionId(3)).unwrap();
        let l = left.scan(&RowRange::all());
        let r_ = right.scan(&RowRange::all());
        assert_eq!(l.len() + r_.len(), 100);
        assert!(
            l.len() > 30 && r_.len() > 30,
            "roughly even: {} / {}",
            l.len(),
            r_.len()
        );
        // Boundary correctness.
        let boundary = right.range().start.clone();
        assert!(l.iter().all(|kv| kv.row < boundary));
        assert!(r_.iter().all(|kv| kv.row >= boundary));
        assert_eq!(left.range().end, boundary);
    }

    #[test]
    fn split_of_single_row_fails_and_returns_region() {
        let mut r = region();
        r.put_batch(vec![kv("only", 1, "v"), kv("only", 2, "v")])
            .unwrap();
        let back = r.split(RegionId(2), RegionId(3)).unwrap_err();
        assert_eq!(back.id(), RegionId(1));
        assert_eq!(back.scan(&RowRange::all()).len(), 2, "data intact");
    }

    #[test]
    fn wal_recovery_restores_unflushed_writes() {
        let mut r = region();
        r.put_batch(vec![kv("a", 1, "flushed")]).unwrap();
        r.flush();
        r.put_batch(vec![kv("b", 1, "unflushed")]).unwrap();
        let wal = r.wal();
        // Simulate a crash: rebuild a region with the same files + WAL.
        let mut recovered = Region::new(RegionId(1), RowRange::all(), RegionConfig::default());
        recovered.files = r.files.clone();
        recovered.next_file_seq = r.next_file_seq;
        recovered.wal = wal;
        recovered.recover_from_wal();
        let cells = recovered.scan(&RowRange::all());
        assert_eq!(cells.len(), 2);
        assert!(cells.iter().any(|c| &c.value[..] == b"unflushed"));
    }

    #[test]
    fn compaction_gc_drops_old_versions() {
        let mut r = Region::new(
            RegionId(1),
            RowRange::all(),
            RegionConfig {
                max_versions: 2,
                ..RegionConfig::default()
            },
        );
        for ts in 1..=5u64 {
            r.put_batch(vec![kv("a", ts, &format!("v{ts}"))]).unwrap();
            r.flush();
        }
        r.put_batch(vec![kv("b", 1, "other")]).unwrap();
        r.compact();
        let cells = r.scan(&RowRange::all());
        // Only the two newest versions of `a` survive, plus `b`.
        let a_versions: Vec<u64> = cells
            .iter()
            .filter(|c| &c.row[..] == b"a")
            .map(|c| c.timestamp)
            .collect();
        assert_eq!(a_versions, vec![5, 4]);
        assert!(cells.iter().any(|c| &c.row[..] == b"b"));
    }

    #[test]
    fn full_restart_cycle_from_disk_and_wal() {
        let dir = std::env::temp_dir().join(format!("pga-region-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut r = region();
        r.put_batch(vec![kv("a", 1, "flushed-a"), kv("b", 1, "flushed-b")])
            .unwrap();
        r.flush();
        r.put_batch(vec![kv("c", 1, "unflushed-c")]).unwrap();
        r.persist_store_files(&dir).unwrap();
        let wal = r.wal();
        drop(r); // the process "dies": memstore gone, disk + WAL survive
        let restored = Region::restore_from_disk(
            RegionId(1),
            RowRange::all(),
            RegionConfig::default(),
            &dir,
            wal,
        )
        .unwrap();
        let cells = restored.scan(&RowRange::all());
        assert_eq!(cells.len(), 3);
        assert!(cells.iter().any(|c| &c.value[..] == b"unflushed-c"));
        assert!(cells.iter().any(|c| &c.value[..] == b"flushed-a"));
    }

    #[test]
    fn crash_recover_drops_memstore_and_replays_wal_bytes() {
        let mut r = region();
        r.put_batch(vec![kv("a", 1, "flushed")]).unwrap();
        r.flush();
        r.put_batch(vec![kv("b", 1, "unflushed")]).unwrap();
        r.crash_recover();
        let cells = r.scan(&RowRange::all());
        assert_eq!(cells.len(), 2);
        assert!(cells.iter().any(|c| &c.value[..] == b"unflushed"));
        // Writes keep working on the recovered region and sequence ids
        // continue from the replayed log.
        r.put_batch(vec![kv("c", 1, "post")]).unwrap();
        assert_eq!(r.scan(&RowRange::all()).len(), 3);
        assert_eq!(r.wal().batch_sequences().len(), 2);
    }

    #[derive(Debug)]
    struct SkipReplay;
    impl crate::fault::FaultPlane for SkipReplay {
        fn skip_crash_replay(&self, _region: RegionId) -> bool {
            true
        }
    }

    #[test]
    fn mutant_hook_skipping_replay_loses_the_unflushed_tail() {
        let mut r = region();
        r.set_fault_plane(std::sync::Arc::new(SkipReplay));
        r.put_batch(vec![kv("a", 1, "flushed")]).unwrap();
        r.flush();
        r.put_batch(vec![kv("b", 1, "unflushed")]).unwrap();
        r.crash_recover();
        let cells = r.scan(&RowRange::all());
        assert_eq!(cells.len(), 1, "broken recovery must lose the tail");
        assert_eq!(&cells[0].value[..], b"flushed");
    }

    #[test]
    fn replicated_apply_mirrors_primary_and_dedups_ships() {
        let mut primary = region();
        let mut follower = primary.fork_follower();
        assert_eq!(follower.role(), ReplicaRole::Follower);
        let seq = primary.put_batch_assign(vec![kv("a", 1, "v1")]).unwrap();
        assert_eq!(
            follower
                .apply_replicated(seq, vec![kv("a", 1, "v1")])
                .unwrap(),
            ShipOutcome::Applied
        );
        assert_eq!(
            follower
                .apply_replicated(seq, vec![kv("a", 1, "v1")])
                .unwrap(),
            ShipOutcome::Stale,
            "duplicate ship is a no-op"
        );
        assert_eq!(follower.applied_seq(), primary.applied_seq());
        assert_eq!(
            follower.scan(&RowRange::all()),
            primary.scan(&RowRange::all())
        );
    }

    #[test]
    fn fork_follower_snapshots_existing_data_and_rejects_old_ships() {
        let mut primary = region();
        let s1 = primary.put_batch_assign(vec![kv("a", 1, "va")]).unwrap();
        primary.flush();
        primary.put_batch(vec![kv("b", 1, "vb")]).unwrap();
        let mut follower = primary.fork_follower();
        // Snapshot already covers both cells.
        assert_eq!(follower.scan(&RowRange::all()).len(), 2);
        assert_eq!(follower.applied_seq(), primary.applied_seq());
        // A stale re-ship of the snapshot data must not duplicate.
        assert_eq!(
            follower
                .apply_replicated(s1, vec![kv("a", 1, "va")])
                .unwrap(),
            ShipOutcome::Stale
        );
        // New writes ship normally.
        let s3 = primary.put_batch_assign(vec![kv("c", 1, "vc")]).unwrap();
        assert_eq!(
            follower
                .apply_replicated(s3, vec![kv("c", 1, "vc")])
                .unwrap(),
            ShipOutcome::Applied
        );
        assert_eq!(follower.scan(&RowRange::all()).len(), 3);
    }

    #[test]
    fn gapped_ship_is_rejected_and_backfill_heals_it() {
        let mut primary = region();
        let mut follower = primary.fork_follower();
        let s1 = primary.put_batch_assign(vec![kv("a", 1, "va")]).unwrap();
        let s2 = primary.put_batch_assign(vec![kv("b", 1, "vb")]).unwrap();
        let s3 = primary.put_batch_assign(vec![kv("c", 1, "vc")]).unwrap();
        follower
            .apply_replicated(s1, vec![kv("a", 1, "va")])
            .unwrap();
        // Ship s2 is lost; s3 must not leave a hole in the follower.
        assert_eq!(
            follower
                .apply_replicated(s3, vec![kv("c", 1, "vc")])
                .unwrap(),
            ShipOutcome::Gap
        );
        assert_eq!(follower.applied_seq(), s1, "position stays honest");
        assert_eq!(follower.scan(&RowRange::all()).len(), 1, "nothing applied");
        // Backfill from the primary's retained WAL tail, then the ship
        // that gapped succeeds.
        let tail = primary.wal_batches_after(s1);
        assert_eq!(
            tail.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![s2, s3]
        );
        for (s, kvs) in tail {
            assert_eq!(
                follower.apply_replicated(s, kvs).unwrap(),
                ShipOutcome::Applied
            );
        }
        assert_eq!(follower.applied_seq(), primary.applied_seq());
        assert_eq!(
            follower.scan(&RowRange::all()),
            primary.scan(&RowRange::all())
        );
    }

    #[test]
    fn follower_survives_crash_recovery_of_shipped_wal() {
        let mut primary = region();
        let mut follower = primary.fork_follower();
        for i in 0..5 {
            let seq = primary
                .put_batch_assign(vec![kv(&format!("r{i}"), 1, "v")])
                .unwrap();
            follower
                .apply_replicated(seq, vec![kv(&format!("r{i}"), 1, "v")])
                .unwrap();
        }
        follower.crash_recover();
        assert_eq!(follower.scan(&RowRange::all()).len(), 5);
        assert_eq!(follower.applied_seq(), primary.applied_seq());
    }

    #[test]
    fn epoch_bookkeeping() {
        let mut r = region();
        assert_eq!(r.epoch(), 1);
        r.set_epoch(4);
        assert_eq!(r.epoch(), 4);
        let f = r.fork_follower();
        assert_eq!(f.epoch(), 4, "forked follower inherits the epoch");
        r.set_role(ReplicaRole::Follower);
        assert_eq!(r.role(), ReplicaRole::Follower);
    }

    #[test]
    fn scan_subrange_is_clipped() {
        let mut r = Region::new(
            RegionId(1),
            RowRange::new(b"c".to_vec(), b"x".to_vec()),
            RegionConfig::default(),
        );
        for row in ["c", "d", "e", "f"] {
            r.put_batch(vec![kv(row, 1, "v")]).unwrap();
        }
        // Request a wider range than the region serves.
        let cells = r.scan(&RowRange::new(b"a".to_vec(), b"e".to_vec()));
        let rows: Vec<_> = cells.iter().map(|kv| kv.row.clone()).collect();
        assert_eq!(rows, vec!["c", "d"]);
    }
}
