//! Region server: an RPC thread serving the regions assigned to it.
//!
//! Each region server is one [`pga_cluster::rpc`] server — a thread behind
//! a **bounded** request queue, exactly one per node like the paper's
//! deployment ("each node is also running an instance of a TSD Daemon";
//! the region server is its storage-side peer). Overload semantics come
//! from the RPC layer: unthrottled `try_call` traffic can crash the server.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use pga_cluster::rpc::{AdmissionConfig, RequestClass, RpcHandle, RpcServerBuilder, ServerRunner};
use pga_cluster::NodeId;

use crate::kv::{KeyValue, RowRange};
use crate::region::{Region, RegionId, RegionMetrics};

/// Region-server tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// RPC queue capacity (requests).
    pub queue_capacity: usize,
    /// Overload strikes before the server crashes (u64::MAX = never).
    pub crash_after_overloads: u64,
    /// Watermark admission policy for admission-controlled callers
    /// ([`RpcHandle::call_with`]). Disabled by default (seed behavior);
    /// overload-aware deployments enable it so producers get typed
    /// `Busy{retry_after}` rejections instead of blocking forever.
    pub admission: AdmissionConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 1024,
            crash_after_overloads: u64::MAX,
            admission: AdmissionConfig::disabled(),
        }
    }
}

/// Admission class of a request: puts/flushes/compactions degrade first
/// (the proxy retries them losslessly); scans and metrics reads keep the
/// fleet view alive until the critical watermark.
pub fn request_class(req: &Request) -> RequestClass {
    match req {
        Request::Put { .. } | Request::Flush { .. } | Request::Compact { .. } => {
            RequestClass::Write
        }
        Request::Scan { .. } | Request::Metrics => RequestClass::Read,
    }
}

/// RPC requests served by a region server.
#[derive(Debug)]
pub enum Request {
    /// Write a batch into a region.
    Put {
        /// Target region.
        region: RegionId,
        /// Cells to write.
        kvs: Vec<KeyValue>,
    },
    /// Scan a row range within a region.
    Scan {
        /// Target region.
        region: RegionId,
        /// Row range to scan.
        range: RowRange,
    },
    /// Force a memstore flush.
    Flush {
        /// Target region.
        region: RegionId,
    },
    /// Force a major compaction.
    Compact {
        /// Target region.
        region: RegionId,
    },
    /// Fetch metrics for every hosted region.
    Metrics,
}

/// RPC responses.
#[derive(Debug)]
pub enum Response {
    /// Operation succeeded.
    Ok,
    /// Scan results.
    Cells(Vec<KeyValue>),
    /// The region is not hosted here, or a row fell outside it — the
    /// caller's directory is stale and must be refreshed.
    WrongRegion,
    /// Region metrics by id.
    Metrics(Vec<(RegionId, RegionMetrics)>),
}

/// A running region server plus its assignment surface.
pub struct RegionServer {
    node: NodeId,
    regions: Arc<RwLock<HashMap<RegionId, Region>>>,
    handle: RpcHandle<Request, Response>,
    _runner: ServerRunner,
}

impl RegionServer {
    /// Spawn a region server thread for `node`.
    pub fn spawn(node: NodeId, config: ServerConfig) -> Self {
        let regions: Arc<RwLock<HashMap<RegionId, Region>>> = Arc::new(RwLock::new(HashMap::new()));
        let serving = regions.clone();
        let (handle, runner) = RpcServerBuilder::new(format!("rs-{}", node.0))
            .queue_capacity(config.queue_capacity)
            .crash_after_overloads(config.crash_after_overloads)
            .admission(config.admission)
            .spawn(move |req: Request| handle_request(&serving, req));
        RegionServer {
            node,
            regions,
            handle,
            _runner: runner,
        }
    }

    /// This server's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// RPC handle for clients.
    pub fn handle(&self) -> RpcHandle<Request, Response> {
        self.handle.clone()
    }

    /// Assign a region to this server (master-driven).
    pub fn assign(&self, region: Region) {
        self.regions.write().insert(region.id(), region);
    }

    /// Remove a region (for reassignment or split). Returns it if hosted.
    pub fn unassign(&self, id: RegionId) -> Option<Region> {
        self.regions.write().remove(&id)
    }

    /// Ids of regions currently hosted, sorted — callers (the master's
    /// reassignment sweep, the fault harness) rely on a deterministic
    /// order for replayable traces.
    pub fn hosted_regions(&self) -> Vec<RegionId> {
        let mut ids: Vec<RegionId> = self.regions.read().keys().copied().collect();
        ids.sort();
        ids
    }

    /// Install a fault plane on every currently hosted region (simulation
    /// harnesses only; regions assigned later inherit through the master).
    pub fn set_fault_plane(&self, fault: crate::fault::FaultHandle) {
        let mut map = self.regions.write();
        for region in map.values_mut() {
            region.set_fault_plane(fault.clone());
        }
    }

    /// Cells written across all hosted regions (monitoring).
    pub fn total_cells_written(&self) -> u64 {
        self.regions
            .read()
            .values()
            .map(|r| r.metrics().cells_written)
            .sum()
    }

    /// Stop serving.
    pub fn shutdown(&self) {
        self.handle.shutdown();
    }
}

// Region operations run under the server's `regions` map lock by design:
// the map lock is what serialises request handling against reassignment
// (unassign/assign from the master). The WAL mutex acquired inside
// put_batch/flush always nests under it — `regions` → WAL-`inner` is this
// server's fixed order and nothing acquires them the other way around.
fn handle_request(regions: &Arc<RwLock<HashMap<RegionId, Region>>>, req: Request) -> Response {
    match req {
        Request::Put { region, kvs } => {
            let mut map = regions.write();
            match map.get_mut(&region) {
                // pga-allow(lock-discipline): regions → WAL-inner is the fixed order (see above)
                Some(r) => match r.put_batch(kvs) {
                    Ok(()) => Response::Ok,
                    Err(_) => Response::WrongRegion,
                },
                None => Response::WrongRegion,
            }
        }
        Request::Scan { region, range } => {
            let map = regions.read();
            match map.get(&region) {
                Some(r) => Response::Cells(r.scan(&range)),
                None => Response::WrongRegion,
            }
        }
        Request::Flush { region } => {
            let mut map = regions.write();
            match map.get_mut(&region) {
                Some(r) => {
                    // pga-allow(lock-discipline): regions → WAL-inner is the fixed order (see above)
                    r.flush();
                    Response::Ok
                }
                None => Response::WrongRegion,
            }
        }
        Request::Compact { region } => {
            let mut map = regions.write();
            match map.get_mut(&region) {
                Some(r) => {
                    r.compact();
                    Response::Ok
                }
                None => Response::WrongRegion,
            }
        }
        Request::Metrics => {
            let map = regions.read();
            Response::Metrics(map.iter().map(|(&id, r)| (id, r.metrics())).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionConfig;

    fn kv(row: &str) -> KeyValue {
        KeyValue::new(row.as_bytes().to_vec(), b"q".to_vec(), 1, b"v".to_vec())
    }

    #[test]
    fn put_scan_through_rpc() {
        let server = RegionServer::spawn(NodeId(0), ServerConfig::default());
        server.assign(Region::new(
            RegionId(1),
            RowRange::all(),
            RegionConfig::default(),
        ));
        let h = server.handle();
        match h
            .call(Request::Put {
                region: RegionId(1),
                kvs: vec![kv("a"), kv("b")],
            })
            .unwrap()
        {
            Response::Ok => {}
            other => panic!("unexpected {other:?}"),
        }
        match h
            .call(Request::Scan {
                region: RegionId(1),
                range: RowRange::all(),
            })
            .unwrap()
        {
            Response::Cells(cells) => assert_eq!(cells.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn unknown_region_reports_wrong_region() {
        let server = RegionServer::spawn(NodeId(0), ServerConfig::default());
        let h = server.handle();
        match h
            .call(Request::Put {
                region: RegionId(9),
                kvs: vec![kv("a")],
            })
            .unwrap()
        {
            Response::WrongRegion => {}
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn out_of_range_row_reports_wrong_region() {
        let server = RegionServer::spawn(NodeId(0), ServerConfig::default());
        server.assign(Region::new(
            RegionId(1),
            RowRange::new(b"a".to_vec(), b"m".to_vec()),
            RegionConfig::default(),
        ));
        let h = server.handle();
        match h
            .call(Request::Put {
                region: RegionId(1),
                kvs: vec![kv("z")],
            })
            .unwrap()
        {
            Response::WrongRegion => {}
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn unassign_moves_region_with_data() {
        let a = RegionServer::spawn(NodeId(0), ServerConfig::default());
        let b = RegionServer::spawn(NodeId(1), ServerConfig::default());
        a.assign(Region::new(
            RegionId(1),
            RowRange::all(),
            RegionConfig::default(),
        ));
        a.handle()
            .call(Request::Put {
                region: RegionId(1),
                kvs: vec![kv("x")],
            })
            .unwrap();
        let moved = a.unassign(RegionId(1)).unwrap();
        b.assign(moved);
        match b
            .handle()
            .call(Request::Scan {
                region: RegionId(1),
                range: RowRange::all(),
            })
            .unwrap()
        {
            Response::Cells(cells) => assert_eq!(cells.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(a.hosted_regions().is_empty());
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn metrics_roundtrip() {
        let server = RegionServer::spawn(NodeId(0), ServerConfig::default());
        server.assign(Region::new(
            RegionId(1),
            RowRange::all(),
            RegionConfig::default(),
        ));
        server
            .handle()
            .call(Request::Put {
                region: RegionId(1),
                kvs: vec![kv("a"), kv("b"), kv("c")],
            })
            .unwrap();
        match server.handle().call(Request::Metrics).unwrap() {
            Response::Metrics(m) => {
                assert_eq!(m.len(), 1);
                assert_eq!(m[0].1.cells_written, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(server.total_cells_written(), 3);
        server.shutdown();
    }
}
