//! Region server: an RPC thread serving the regions assigned to it.
//!
//! Each region server is one [`pga_cluster::rpc`] server — a thread behind
//! a **bounded** request queue, exactly one per node like the paper's
//! deployment ("each node is also running an instance of a TSD Daemon";
//! the region server is its storage-side peer). Overload semantics come
//! from the RPC layer: unthrottled `try_call` traffic can crash the server.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use pga_cluster::rpc::{AdmissionConfig, RequestClass, RpcHandle, RpcServerBuilder, ServerRunner};
use pga_cluster::NodeId;

use crate::kv::{KeyValue, RowRange};
use crate::region::{Region, RegionId, RegionMetrics};

/// Region-server tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// RPC queue capacity (requests).
    pub queue_capacity: usize,
    /// Overload strikes before the server crashes (u64::MAX = never).
    pub crash_after_overloads: u64,
    /// Watermark admission policy for admission-controlled callers
    /// ([`RpcHandle::call_with`]). Disabled by default (seed behavior);
    /// overload-aware deployments enable it so producers get typed
    /// `Busy{retry_after}` rejections instead of blocking forever.
    pub admission: AdmissionConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 1024,
            crash_after_overloads: u64::MAX,
            admission: AdmissionConfig::disabled(),
        }
    }
}

/// Admission class of a request: puts/flushes/compactions degrade first
/// (the proxy retries them losslessly); scans and metrics reads keep the
/// fleet view alive until the critical watermark.
pub fn request_class(req: &Request) -> RequestClass {
    match req {
        Request::Put { .. }
        | Request::PutReplicated { .. }
        | Request::Ship { .. }
        | Request::Flush { .. }
        | Request::Compact { .. } => RequestClass::Write,
        // WalTail is repair traffic: it reads the primary's retained WAL
        // so a gapped follower can rejoin the quorum. Classing it as a
        // read keeps backfill alive under the very overload that shed
        // the ship in the first place.
        // RepairFetch is scrub-repair traffic: like WalTail it reads an
        // authoritative copy so corruption elsewhere can be healed, and
        // it must stay admissible under the write-shedding watermark.
        Request::Scan { .. }
        | Request::FollowerScan { .. }
        | Request::ReplicaStatus { .. }
        | Request::WalTail { .. }
        | Request::RepairFetch { .. }
        | Request::Metrics => RequestClass::Read,
    }
}

/// RPC requests served by a region server.
#[derive(Debug)]
pub enum Request {
    /// Write a batch into a region.
    Put {
        /// Target region.
        region: RegionId,
        /// Cells to write.
        kvs: Vec<KeyValue>,
    },
    /// Scan a row range within a region.
    Scan {
        /// Target region.
        region: RegionId,
        /// Row range to scan.
        range: RowRange,
    },
    /// Write a batch into a replicated region's primary, fenced by the
    /// writer's epoch. Answers [`Response::Appended`] with the WAL
    /// sequence id the writer must stamp on follower ships.
    PutReplicated {
        /// Target region.
        region: RegionId,
        /// The replication-group epoch the writer believes is current.
        epoch: u64,
        /// Cells to write.
        kvs: Vec<KeyValue>,
    },
    /// Replicate a primary-assigned WAL batch onto a follower copy.
    Ship {
        /// Target region.
        region: RegionId,
        /// The replication-group epoch the writer believes is current.
        epoch: u64,
        /// Sequence id the primary assigned to this batch.
        seq: u64,
        /// Cells in the batch.
        kvs: Vec<KeyValue>,
    },
    /// Scan a follower copy; the answer carries the follower's applied
    /// sequence so the reader can enforce its staleness bound.
    FollowerScan {
        /// Target region.
        region: RegionId,
        /// Row range to scan.
        range: RowRange,
    },
    /// Ask a replica for its replication position (last durable WAL
    /// sequence and epoch).
    ReplicaStatus {
        /// Target region.
        region: RegionId,
    },
    /// Read the primary's retained WAL batches newer than `from_seq` —
    /// the backfill source for a follower whose ship was rejected as a
    /// gap ([`Response::ShipGap`]).
    WalTail {
        /// Target region.
        region: RegionId,
        /// The replication-group epoch the reader believes is current.
        epoch: u64,
        /// Return batches with sequence ids strictly greater than this.
        from_seq: u64,
    },
    /// Read a span from any copy of a region for scrub repair, fenced by
    /// the reader's epoch so a deposed primary can never serve a stale
    /// span as authoritative. Answers [`Response::RepairCells`] with the
    /// copy's applied sequence so the scrubber can rank sources.
    RepairFetch {
        /// Target region.
        region: RegionId,
        /// Row range to read (typically a single quarantined row).
        range: RowRange,
        /// The replication-group epoch the reader believes is current.
        epoch: u64,
    },
    /// Force a memstore flush.
    Flush {
        /// Target region.
        region: RegionId,
    },
    /// Force a major compaction.
    Compact {
        /// Target region.
        region: RegionId,
    },
    /// Fetch metrics for every hosted region.
    Metrics,
}

/// RPC responses.
#[derive(Debug)]
pub enum Response {
    /// Operation succeeded.
    Ok,
    /// Scan results.
    Cells(Vec<KeyValue>),
    /// The region is not hosted here, or a row fell outside it — the
    /// caller's directory is stale and must be refreshed.
    WrongRegion,
    /// Region metrics by id.
    Metrics(Vec<(RegionId, RegionMetrics)>),
    /// A replicated put is durable on the primary under this WAL
    /// sequence id (one quorum vote; ship it to followers next).
    Appended {
        /// Sequence id assigned to the batch.
        seq: u64,
    },
    /// The sender's epoch is stale: the replication group has moved on
    /// (a promotion happened) and this replica will not accept the
    /// write. Carries the replica's current epoch.
    Fenced {
        /// The replica's current epoch.
        epoch: u64,
    },
    /// A shipped batch is durable on this follower.
    ShipAck {
        /// The follower's last durable WAL sequence after the ship.
        applied_seq: u64,
    },
    /// A shipped batch was rejected because an earlier batch is missing
    /// here: applying it would leave a hole in the follower's WAL, which
    /// would let failover promote a copy missing acked writes. Nothing
    /// was applied; the shipper must backfill from `applied_seq + 1`.
    ShipGap {
        /// The follower's last durable WAL sequence (its contiguous
        /// prefix — everything at or below this is held).
        applied_seq: u64,
    },
    /// The primary's retained WAL tail (see [`Request::WalTail`]).
    WalBatches {
        /// `(sequence, cells)` per retained batch, ascending. Starts at
        /// `from_seq + 1` only if that batch is still retained (not yet
        /// flushed away); the caller must verify contiguity.
        batches: Vec<(u64, Vec<KeyValue>)>,
    },
    /// Follower scan results plus the follower's replication position.
    FollowerCells {
        /// Cells scanned.
        cells: Vec<KeyValue>,
        /// The follower's last durable WAL sequence.
        applied_seq: u64,
    },
    /// Repair-fetch results plus the copy's replication position (see
    /// [`Request::RepairFetch`]).
    RepairCells {
        /// Cells in the requested span on this copy.
        cells: Vec<KeyValue>,
        /// The copy's last durable WAL sequence.
        applied_seq: u64,
    },
    /// A replica's replication position.
    Status {
        /// Last durable WAL sequence on this replica.
        last_seq: u64,
        /// The replica's current epoch.
        epoch: u64,
    },
}

/// A running region server plus its assignment surface.
pub struct RegionServer {
    node: NodeId,
    regions: Arc<RwLock<HashMap<RegionId, Region>>>,
    handle: RpcHandle<Request, Response>,
    _runner: ServerRunner,
}

impl RegionServer {
    /// Spawn a region server thread for `node`.
    pub fn spawn(node: NodeId, config: ServerConfig) -> Self {
        let regions: Arc<RwLock<HashMap<RegionId, Region>>> = Arc::new(RwLock::new(HashMap::new()));
        let serving = regions.clone();
        let (handle, runner) = RpcServerBuilder::new(format!("rs-{}", node.0))
            .queue_capacity(config.queue_capacity)
            .crash_after_overloads(config.crash_after_overloads)
            .admission(config.admission)
            .spawn(move |req: Request| handle_request(&serving, req));
        RegionServer {
            node,
            regions,
            handle,
            _runner: runner,
        }
    }

    /// This server's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// RPC handle for clients.
    pub fn handle(&self) -> RpcHandle<Request, Response> {
        self.handle.clone()
    }

    /// Assign a region to this server (master-driven).
    pub fn assign(&self, region: Region) {
        self.regions.write().insert(region.id(), region);
    }

    /// Remove a region (for reassignment or split). Returns it if hosted.
    pub fn unassign(&self, id: RegionId) -> Option<Region> {
        self.regions.write().remove(&id)
    }

    /// Ids of regions currently hosted, sorted — callers (the master's
    /// reassignment sweep, the fault harness) rely on a deterministic
    /// order for replayable traces.
    pub fn hosted_regions(&self) -> Vec<RegionId> {
        let mut ids: Vec<RegionId> = self.regions.read().keys().copied().collect();
        ids.sort();
        ids
    }

    /// Install a fault plane on every currently hosted region (simulation
    /// harnesses only; regions assigned later inherit through the master).
    pub fn set_fault_plane(&self, fault: crate::fault::FaultHandle) {
        let mut map = self.regions.write();
        for region in map.values_mut() {
            region.set_fault_plane(fault.clone());
        }
    }

    /// Install a compaction rewriter on every currently hosted region
    /// (regions assigned later inherit through the master, mirroring
    /// [`RegionServer::set_fault_plane`]).
    pub fn set_compaction_rewriter(&self, rewriter: crate::rewrite::RewriterHandle) {
        let mut map = self.regions.write();
        for region in map.values_mut() {
            region.set_compaction_rewriter(rewriter.clone());
        }
    }

    /// Last durable WAL sequence of a hosted copy of `id`, or `None`
    /// when not hosted. The master's failover sweep reads this directly
    /// (in-process) to pick the most-caught-up surviving follower.
    pub fn region_applied_seq(&self, id: RegionId) -> Option<u64> {
        self.regions.read().get(&id).map(|r| r.applied_seq())
    }

    /// Promote a hosted follower copy of `id` to primary under
    /// `new_epoch` (master-driven failover). Returns `false` when the
    /// region is not hosted here.
    pub fn promote_region(&self, id: RegionId, new_epoch: u64) -> bool {
        let mut map = self.regions.write();
        match map.get_mut(&id) {
            Some(r) => {
                r.set_role(pga_repl::ReplicaRole::Primary);
                r.set_epoch(new_epoch);
                true
            }
            None => false,
        }
    }

    /// Install `new_epoch` on a hosted copy of `id` (master-driven after
    /// a promotion elsewhere, so surviving followers fence the deposed
    /// primary's writer too). Returns `false` when not hosted.
    pub fn set_region_epoch(&self, id: RegionId, new_epoch: u64) -> bool {
        let mut map = self.regions.write();
        match map.get_mut(&id) {
            Some(r) => {
                r.set_epoch(new_epoch);
                true
            }
            None => false,
        }
    }

    /// Fork a fresh follower copy of a hosted region (see
    /// [`Region::fork_follower`]); the master assigns the fork to
    /// another server to (re)establish the replication factor.
    pub fn fork_region_follower(&self, id: RegionId) -> Option<Region> {
        self.regions.read().get(&id).map(|r| r.fork_follower())
    }

    /// Verify every covered store-file cell of a hosted copy of `id`
    /// with `verifier` (the background scrub walk). Returns `None` when
    /// the region is not hosted here.
    pub fn scrub_region(
        &self,
        id: RegionId,
        verifier: &dyn crate::scrub::CellVerifier,
    ) -> Option<crate::scrub::ScrubFinding> {
        self.regions
            .read()
            .get(&id)
            .map(|r| r.scrub_cells(verifier))
    }

    /// Corrupt one stored cell of a hosted copy of `id` (fault-injection
    /// harnesses only; see [`Region::corrupt_cell_for_fault_injection`]).
    /// Returns the affected `(row, qualifier)` when a cell was mutated.
    pub fn corrupt_region_cell(
        &self,
        id: RegionId,
        pick: u64,
        selector: &dyn Fn(&KeyValue) -> bool,
        mutate: &dyn Fn(&mut Vec<u8>),
    ) -> Option<(bytes::Bytes, bytes::Bytes)> {
        let mut map = self.regions.write();
        map.get_mut(&id)
            .and_then(|r| r.corrupt_cell_for_fault_injection(pick, selector, mutate))
    }

    /// Install a verified repair payload on a hosted copy of `id` (see
    /// [`Region::replace_cell_value`]). Returns how many store-file cells
    /// were replaced (0 when not hosted or already healthy).
    pub fn repair_region_cell(
        &self,
        id: RegionId,
        row: &[u8],
        qualifier: &[u8],
        value: &[u8],
    ) -> usize {
        let mut map = self.regions.write();
        match map.get_mut(&id) {
            Some(r) => r.replace_cell_value(row, qualifier, &bytes::Bytes::copy_from_slice(value)),
            None => 0,
        }
    }

    /// Cells written across all hosted regions (monitoring).
    pub fn total_cells_written(&self) -> u64 {
        self.regions
            .read()
            .values()
            .map(|r| r.metrics().cells_written)
            .sum()
    }

    /// Stop serving.
    pub fn shutdown(&self) {
        self.handle.shutdown();
    }
}

// Region operations run under the server's `regions` map lock by design:
// the map lock is what serialises request handling against reassignment
// (unassign/assign from the master). The WAL mutex acquired inside
// put_batch/flush always nests under it — `regions` → WAL-`inner` is this
// server's fixed order and nothing acquires them the other way around.
fn handle_request(regions: &Arc<RwLock<HashMap<RegionId, Region>>>, req: Request) -> Response {
    match req {
        Request::Put { region, kvs } => {
            let mut map = regions.write();
            match map.get_mut(&region) {
                // pga-allow(lock-discipline): regions → WAL-inner is the fixed order (see above)
                Some(r) => match r.put_batch(kvs) {
                    Ok(()) => Response::Ok,
                    Err(_) => Response::WrongRegion,
                },
                None => Response::WrongRegion,
            }
        }
        Request::Scan { region, range } => {
            let map = regions.read();
            match map.get(&region) {
                Some(r) => Response::Cells(r.scan(&range)),
                None => Response::WrongRegion,
            }
        }
        Request::PutReplicated { region, epoch, kvs } => {
            let mut map = regions.write();
            match map.get_mut(&region) {
                Some(r) => {
                    if r.epoch() != epoch {
                        return Response::Fenced { epoch: r.epoch() };
                    }
                    // pga-allow(lock-discipline): regions → WAL-inner is the fixed order (see above)
                    match r.put_batch_assign(kvs) {
                        Ok(seq) => Response::Appended { seq },
                        Err(_) => Response::WrongRegion,
                    }
                }
                None => Response::WrongRegion,
            }
        }
        Request::Ship {
            region,
            epoch,
            seq,
            kvs,
        } => {
            let mut map = regions.write();
            match map.get_mut(&region) {
                Some(r) => {
                    if r.epoch() != epoch {
                        return Response::Fenced { epoch: r.epoch() };
                    }
                    // Deliberate injection site: a ship-drop fault loses
                    // this RPC before the follower applies it — the
                    // follower stays live but misses the batch, exactly
                    // the transient loss the contiguity check must catch
                    // on the next ship. The shipper sees an unusable
                    // answer (no quorum vote), same as a lost RPC.
                    if r.ship_dropped() {
                        return Response::WrongRegion;
                    }
                    // pga-allow(lock-discipline): regions → WAL-inner is the fixed order (see above)
                    match r.apply_replicated(seq, kvs) {
                        // Duplicate/stale ships are already durable here,
                        // so both outcomes ack with the current position.
                        Ok(pga_repl::ShipOutcome::Applied | pga_repl::ShipOutcome::Stale) => {
                            Response::ShipAck {
                                // pga-allow(lock-discipline): regions → WAL-inner is the fixed order (see above)
                                applied_seq: r.applied_seq(),
                            }
                        }
                        // An earlier batch is missing: refuse the hole
                        // and report the contiguous position so the
                        // shipper can backfill from the primary's tail.
                        Ok(pga_repl::ShipOutcome::Gap) => Response::ShipGap {
                            // pga-allow(lock-discipline): regions → WAL-inner is the fixed order (see above)
                            applied_seq: r.applied_seq(),
                        },
                        Err(_) => Response::WrongRegion,
                    }
                }
                None => Response::WrongRegion,
            }
        }
        Request::WalTail {
            region,
            epoch,
            from_seq,
        } => {
            let map = regions.read();
            match map.get(&region) {
                Some(r) => {
                    if r.epoch() != epoch {
                        return Response::Fenced { epoch: r.epoch() };
                    }
                    Response::WalBatches {
                        // pga-allow(lock-discipline): regions → WAL-inner is the fixed order (see above)
                        batches: r.wal_batches_after(from_seq),
                    }
                }
                None => Response::WrongRegion,
            }
        }
        Request::FollowerScan { region, range } => {
            let map = regions.read();
            match map.get(&region) {
                Some(r) => Response::FollowerCells {
                    cells: r.scan(&range),
                    // pga-allow(lock-discipline): regions → WAL-inner is the fixed order (see above)
                    applied_seq: r.applied_seq(),
                },
                None => Response::WrongRegion,
            }
        }
        Request::ReplicaStatus { region } => {
            let map = regions.read();
            match map.get(&region) {
                Some(r) => Response::Status {
                    // pga-allow(lock-discipline): regions → WAL-inner is the fixed order (see above)
                    last_seq: r.applied_seq(),
                    epoch: r.epoch(),
                },
                None => Response::WrongRegion,
            }
        }
        Request::RepairFetch {
            region,
            range,
            epoch,
        } => {
            let map = regions.read();
            match map.get(&region) {
                Some(r) => {
                    // Fence before serving any bytes: a deposed primary
                    // answering a repair fetch would launder stale data
                    // into a "repair" install on every copy.
                    if r.epoch() != epoch {
                        return Response::Fenced { epoch: r.epoch() };
                    }
                    Response::RepairCells {
                        cells: r.scan(&range),
                        // pga-allow(lock-discipline): regions → WAL-inner is the fixed order (see above)
                        applied_seq: r.applied_seq(),
                    }
                }
                None => Response::WrongRegion,
            }
        }
        Request::Flush { region } => {
            let mut map = regions.write();
            match map.get_mut(&region) {
                Some(r) => {
                    // pga-allow(lock-discipline): regions → WAL-inner is the fixed order (see above)
                    r.flush();
                    Response::Ok
                }
                None => Response::WrongRegion,
            }
        }
        Request::Compact { region } => {
            let mut map = regions.write();
            match map.get_mut(&region) {
                Some(r) => {
                    r.compact();
                    Response::Ok
                }
                None => Response::WrongRegion,
            }
        }
        Request::Metrics => {
            let map = regions.read();
            Response::Metrics(map.iter().map(|(&id, r)| (id, r.metrics())).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionConfig;

    fn kv(row: &str) -> KeyValue {
        KeyValue::new(row.as_bytes().to_vec(), b"q".to_vec(), 1, b"v".to_vec())
    }

    #[test]
    fn put_scan_through_rpc() {
        let server = RegionServer::spawn(NodeId(0), ServerConfig::default());
        server.assign(Region::new(
            RegionId(1),
            RowRange::all(),
            RegionConfig::default(),
        ));
        let h = server.handle();
        match h
            .call(Request::Put {
                region: RegionId(1),
                kvs: vec![kv("a"), kv("b")],
            })
            .unwrap()
        {
            Response::Ok => {}
            other => panic!("unexpected {other:?}"),
        }
        match h
            .call(Request::Scan {
                region: RegionId(1),
                range: RowRange::all(),
            })
            .unwrap()
        {
            Response::Cells(cells) => assert_eq!(cells.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn unknown_region_reports_wrong_region() {
        let server = RegionServer::spawn(NodeId(0), ServerConfig::default());
        let h = server.handle();
        match h
            .call(Request::Put {
                region: RegionId(9),
                kvs: vec![kv("a")],
            })
            .unwrap()
        {
            Response::WrongRegion => {}
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn out_of_range_row_reports_wrong_region() {
        let server = RegionServer::spawn(NodeId(0), ServerConfig::default());
        server.assign(Region::new(
            RegionId(1),
            RowRange::new(b"a".to_vec(), b"m".to_vec()),
            RegionConfig::default(),
        ));
        let h = server.handle();
        match h
            .call(Request::Put {
                region: RegionId(1),
                kvs: vec![kv("z")],
            })
            .unwrap()
        {
            Response::WrongRegion => {}
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn unassign_moves_region_with_data() {
        let a = RegionServer::spawn(NodeId(0), ServerConfig::default());
        let b = RegionServer::spawn(NodeId(1), ServerConfig::default());
        a.assign(Region::new(
            RegionId(1),
            RowRange::all(),
            RegionConfig::default(),
        ));
        a.handle()
            .call(Request::Put {
                region: RegionId(1),
                kvs: vec![kv("x")],
            })
            .unwrap();
        let moved = a.unassign(RegionId(1)).unwrap();
        b.assign(moved);
        match b
            .handle()
            .call(Request::Scan {
                region: RegionId(1),
                range: RowRange::all(),
            })
            .unwrap()
        {
            Response::Cells(cells) => assert_eq!(cells.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(a.hosted_regions().is_empty());
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn replicated_put_ship_and_fencing_through_rpc() {
        let primary = RegionServer::spawn(NodeId(0), ServerConfig::default());
        let follower = RegionServer::spawn(NodeId(1), ServerConfig::default());
        let region = Region::new(RegionId(1), RowRange::all(), RegionConfig::default());
        let fork = region.fork_follower();
        primary.assign(region);
        follower.assign(fork);

        // Primary append under the current epoch.
        let seq = match primary
            .handle()
            .call(Request::PutReplicated {
                region: RegionId(1),
                epoch: 1,
                kvs: vec![kv("a")],
            })
            .unwrap()
        {
            Response::Appended { seq } => seq,
            other => panic!("unexpected {other:?}"),
        };

        // Ship to the follower; it acks with its new position.
        match follower
            .handle()
            .call(Request::Ship {
                region: RegionId(1),
                epoch: 1,
                seq,
                kvs: vec![kv("a")],
            })
            .unwrap()
        {
            Response::ShipAck { applied_seq } => assert_eq!(applied_seq, seq),
            other => panic!("unexpected {other:?}"),
        }

        // Follower scan reports cells plus position.
        match follower
            .handle()
            .call(Request::FollowerScan {
                region: RegionId(1),
                range: RowRange::all(),
            })
            .unwrap()
        {
            Response::FollowerCells { cells, applied_seq } => {
                assert_eq!(cells.len(), 1);
                assert_eq!(applied_seq, seq);
            }
            other => panic!("unexpected {other:?}"),
        }

        // Epoch bump fences the old writer on both replicas.
        assert!(follower.set_region_epoch(RegionId(1), 2));
        match follower
            .handle()
            .call(Request::Ship {
                region: RegionId(1),
                epoch: 1,
                seq: seq + 1,
                kvs: vec![kv("b")],
            })
            .unwrap()
        {
            Response::Fenced { epoch } => assert_eq!(epoch, 2),
            other => panic!("unexpected {other:?}"),
        }
        assert!(primary.promote_region(RegionId(1), 2));
        match primary
            .handle()
            .call(Request::PutReplicated {
                region: RegionId(1),
                epoch: 1,
                kvs: vec![kv("c")],
            })
            .unwrap()
        {
            Response::Fenced { epoch } => assert_eq!(epoch, 2),
            other => panic!("unexpected {other:?}"),
        }

        // Status reflects position and epoch.
        match primary
            .handle()
            .call(Request::ReplicaStatus {
                region: RegionId(1),
            })
            .unwrap()
        {
            Response::Status { last_seq, epoch } => {
                assert_eq!(last_seq, seq);
                assert_eq!(epoch, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(primary.region_applied_seq(RegionId(1)), Some(seq));
        primary.shutdown();
        follower.shutdown();
    }

    #[test]
    fn gapped_ship_reports_position_and_wal_tail_backfills() {
        let primary = RegionServer::spawn(NodeId(0), ServerConfig::default());
        let follower = RegionServer::spawn(NodeId(1), ServerConfig::default());
        let region = Region::new(RegionId(1), RowRange::all(), RegionConfig::default());
        let fork = region.fork_follower();
        primary.assign(region);
        follower.assign(fork);
        let mut seqs = Vec::new();
        for row in ["a", "b", "c"] {
            match primary
                .handle()
                .call(Request::PutReplicated {
                    region: RegionId(1),
                    epoch: 1,
                    kvs: vec![kv(row)],
                })
                .unwrap()
            {
                Response::Appended { seq } => seqs.push(seq),
                other => panic!("unexpected {other:?}"),
            }
        }
        let ship = |seq: u64, row: &str| {
            follower
                .handle()
                .call(Request::Ship {
                    region: RegionId(1),
                    epoch: 1,
                    seq,
                    kvs: vec![kv(row)],
                })
                .unwrap()
        };
        // First batch lands; the second ship is "lost"; the third must be
        // refused as a gap, reporting the follower's contiguous position.
        match ship(seqs[0], "a") {
            Response::ShipAck { applied_seq } => assert_eq!(applied_seq, seqs[0]),
            other => panic!("unexpected {other:?}"),
        }
        match ship(seqs[2], "c") {
            Response::ShipGap { applied_seq } => assert_eq!(applied_seq, seqs[0]),
            other => panic!("unexpected {other:?}"),
        }
        // A stale-epoch tail read is fenced like any replication RPC.
        assert!(follower.set_region_epoch(RegionId(1), 1)); // no-op, keeps epoch 1
        match primary
            .handle()
            .call(Request::WalTail {
                region: RegionId(1),
                epoch: 9,
                from_seq: seqs[0],
            })
            .unwrap()
        {
            Response::Fenced { epoch } => assert_eq!(epoch, 1),
            other => panic!("unexpected {other:?}"),
        }
        // The primary's tail covers the hole; replaying it in order heals
        // the follower and the once-gapped ship acks as stale.
        let batches = match primary
            .handle()
            .call(Request::WalTail {
                region: RegionId(1),
                epoch: 1,
                from_seq: seqs[0],
            })
            .unwrap()
        {
            Response::WalBatches { batches } => batches,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(
            batches.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![seqs[1], seqs[2]]
        );
        for (seq, kvs) in batches {
            match follower
                .handle()
                .call(Request::Ship {
                    region: RegionId(1),
                    epoch: 1,
                    seq,
                    kvs,
                })
                .unwrap()
            {
                Response::ShipAck { applied_seq } => assert_eq!(applied_seq, seq),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(follower.region_applied_seq(RegionId(1)), Some(seqs[2]));
        primary.shutdown();
        follower.shutdown();
    }

    #[test]
    fn metrics_roundtrip() {
        let server = RegionServer::spawn(NodeId(0), ServerConfig::default());
        server.assign(Region::new(
            RegionId(1),
            RowRange::all(),
            RegionConfig::default(),
        ));
        server
            .handle()
            .call(Request::Put {
                region: RegionId(1),
                kvs: vec![kv("a"), kv("b"), kv("c")],
            })
            .unwrap();
        match server.handle().call(Request::Metrics).unwrap() {
            Response::Metrics(m) => {
                assert_eq!(m.len(), 1);
                assert_eq!(m[0].1.cells_written, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(server.total_cells_written(), 3);
        server.shutdown();
    }
}
