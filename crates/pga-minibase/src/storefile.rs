//! Immutable sorted runs — the HFile analog.

use std::sync::Arc;

use crate::kv::{KeyValue, RowRange};

/// How many cells between sparse-index entries. Real HFiles index block
/// boundaries; 64 cells per "block" keeps seeks cheap without bloating the
/// index.
const INDEX_STRIDE: usize = 64;

/// An immutable, sorted run of cells produced by a memstore flush or a
/// compaction. Cheap to clone (the data is shared).
#[derive(Debug, Clone)]
pub struct StoreFile {
    cells: Arc<Vec<KeyValue>>,
    /// Sparse index: (cell position, row key) every `INDEX_STRIDE` cells.
    index: Arc<Vec<(usize, bytes::Bytes)>>,
    /// Monotone id; higher = newer file, which wins ties during merges.
    sequence: u64,
}

impl StoreFile {
    /// Build from cells that must already be sorted (debug-asserted).
    pub fn from_sorted(cells: Vec<KeyValue>, sequence: u64) -> Self {
        debug_assert!(
            cells.windows(2).all(|w| w[0] <= w[1]),
            "cells must be sorted"
        );
        let index = cells
            .iter()
            .enumerate()
            .step_by(INDEX_STRIDE)
            .map(|(i, kv)| (i, kv.row.clone()))
            .collect();
        StoreFile {
            cells: Arc::new(cells),
            index: Arc::new(index),
            sequence,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the file holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// File sequence id (newer files shadow older ones).
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// First row, if any.
    pub fn first_row(&self) -> Option<&[u8]> {
        self.cells.first().map(|kv| &kv.row[..])
    }

    /// Last row, if any.
    pub fn last_row(&self) -> Option<&[u8]> {
        self.cells.last().map(|kv| &kv.row[..])
    }

    /// Iterate cells within `range`, using the sparse index to skip ahead.
    pub fn scan<'a>(&'a self, range: &'a RowRange) -> impl Iterator<Item = &'a KeyValue> + 'a {
        let start_pos = if range.start.is_empty() {
            0
        } else {
            // Seek: last index entry with row < start, then linear from there.
            let idx = self
                .index
                .partition_point(|(_, row)| row[..] < range.start[..]);
            let block = idx.saturating_sub(1);
            let from = self.index.get(block).map_or(0, |&(pos, _)| pos);
            from + self.cells[from..].partition_point(|kv| kv.row[..] < range.start[..])
        };
        self.cells[start_pos..]
            .iter()
            .take_while(move |kv| range.end.is_empty() || kv.row[..] < range.end[..])
    }

    /// Total payload bytes (diagnostics / compaction policy).
    pub fn byte_size(&self) -> usize {
        self.cells.iter().map(|kv| kv.heap_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_of(rows: &[&str]) -> StoreFile {
        let mut cells: Vec<KeyValue> = rows
            .iter()
            .map(|r| KeyValue::new(r.as_bytes().to_vec(), b"q".to_vec(), 1, b"v".to_vec()))
            .collect();
        cells.sort();
        StoreFile::from_sorted(cells, 1)
    }

    #[test]
    fn scan_all_returns_everything_in_order() {
        let f = file_of(&["c", "a", "b"]);
        let rows: Vec<_> = f.scan(&RowRange::all()).map(|kv| kv.row.clone()).collect();
        assert_eq!(rows, vec!["a", "b", "c"]);
    }

    #[test]
    fn scan_range_seeks_correctly() {
        // Enough rows to span several index blocks.
        let rows: Vec<String> = (0..500).map(|i| format!("row{i:05}")).collect();
        let refs: Vec<&str> = rows.iter().map(|s| s.as_str()).collect();
        let f = file_of(&refs);
        let got: Vec<_> = f
            .scan(&RowRange::new(b"row00100".to_vec(), b"row00110".to_vec()))
            .map(|kv| String::from_utf8(kv.row.to_vec()).unwrap())
            .collect();
        assert_eq!(got.len(), 10);
        assert_eq!(got[0], "row00100");
        assert_eq!(got[9], "row00109");
    }

    #[test]
    fn scan_start_before_first_and_after_last() {
        let f = file_of(&["m", "n"]);
        assert_eq!(
            f.scan(&RowRange::new(b"a".to_vec(), b"z".to_vec())).count(),
            2
        );
        assert_eq!(
            f.scan(&RowRange::new(b"x".to_vec(), b"z".to_vec())).count(),
            0
        );
        assert_eq!(
            f.scan(&RowRange::new(b"a".to_vec(), b"b".to_vec())).count(),
            0
        );
    }

    #[test]
    fn empty_file() {
        let f = StoreFile::from_sorted(vec![], 0);
        assert!(f.is_empty());
        assert_eq!(f.scan(&RowRange::all()).count(), 0);
        assert!(f.first_row().is_none());
    }

    #[test]
    fn first_last_rows() {
        let f = file_of(&["b", "a", "c"]);
        assert_eq!(f.first_row().unwrap(), b"a");
        assert_eq!(f.last_row().unwrap(), b"c");
    }
}
