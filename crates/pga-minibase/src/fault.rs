//! Injectable fault plane for deterministic simulation testing.
//!
//! Every hook has a faithful no-op default ([`NoFaults`]), so production
//! code paths behave identically unless a harness (the `pga-faultsim`
//! crate) installs a plane via [`crate::Master::set_fault_plane`]. The
//! hooks sit at the exact protocol points where a real deployment can
//! fail:
//!
//! * [`FaultPlane::skip_wal_append`] — models the "ack before the WAL
//!   append is durable" protocol bug (seeded mutant A).
//! * [`FaultPlane::skip_crash_replay`] — models recovery that forgets to
//!   replay the unflushed WAL tail (seeded mutant B).
//! * [`FaultPlane::drop_memstore_on_move`] — models a migration that ships
//!   store files but loses the memstore (seeded mutant C).
//! * [`FaultPlane::tear_wal`] — mutates the encoded WAL bytes observed at
//!   crash-recovery time, modelling a torn/truncated tail from a record
//!   that was in flight when the process died.
//! * [`FaultPlane::skew_ms`] — skews the clock a node stamps on its
//!   coordinator heartbeats, modelling clock drift that can expire a
//!   healthy lease.
//! * [`FaultPlane::drop_ship`] — loses a replication ship in transit
//!   while the follower stays live, modelling admission shedding or a
//!   transient partition on the ship path.
//! * [`FaultPlane::allow_ship_gap`] — a follower accepts ships past a
//!   missing batch, leaving a hole in its WAL (seeded mutant D: the
//!   gapped follower reports the highest applied sequence and would be
//!   promoted over replicas that actually hold every acked write).
//! * [`FaultPlane::drop_sealed_overlap`] — the compaction rewriter drops
//!   raw cells overlapping an already-sealed block instead of merging
//!   them (seeded mutant E: late-arriving points vanish at the next
//!   compaction).
//! * [`FaultPlane::scribble_repair`] — corrupts the bytes a scrub repair
//!   fetched from a peer while they are in flight, modelling the
//!   transit/bit-rot window between fetch and install. The faithful
//!   scrubber's pre-install CRC re-verification rejects the scribbled
//!   payload.
//! * [`FaultPlane::skip_repair_verify`] — the scrubber installs a fetched
//!   repair payload **without** re-verifying its CRC first (seeded mutant
//!   F: a corrupt fetch becomes a corrupt "repair" and the quarantine
//!   entry is cleared over bad bytes).

use std::sync::Arc;

use pga_cluster::NodeId;

use crate::region::RegionId;

/// Shared handle to a fault plane (cloned into every region and master).
pub type FaultHandle = Arc<dyn FaultPlane>;

/// Injection points consulted by the live storage stack. All methods
/// default to the faithful behaviour; implementations must be cheap and
/// deterministic — they run inside the serving path.
pub trait FaultPlane: Send + Sync + std::fmt::Debug {
    /// When `true`, the region acks a `put_batch` **without** appending to
    /// the WAL (deliberately broken durability — mutant A).
    fn skip_wal_append(&self, _region: RegionId) -> bool {
        false
    }

    /// When `true`, crash recovery skips replaying the unflushed WAL tail
    /// into the rebuilt memstore (deliberately broken recovery — mutant B).
    fn skip_crash_replay(&self, _region: RegionId) -> bool {
        false
    }

    /// When `true`, a master-driven migration drops the region's memstore
    /// instead of shipping it (deliberately broken migration — mutant C).
    fn drop_memstore_on_move(&self, _region: RegionId) -> bool {
        false
    }

    /// Mutate the encoded WAL bytes a recovering region reads back, e.g.
    /// append a partial record or truncate the tail. The decoder must
    /// recover exactly the durable prefix regardless.
    fn tear_wal(&self, _region: RegionId, _encoded: &mut Vec<u8>) {}

    /// Skew the timestamp `node` stamps on coordinator heartbeats.
    /// Returning a value in the past makes the node's lease appear stale.
    fn skew_ms(&self, _node: NodeId, now_ms: u64) -> u64 {
        now_ms
    }

    /// When `true`, the next replication ship to a copy of `region` is
    /// lost in transit: the follower stays live but never applies the
    /// batch, and the shipper sees an unusable answer (no quorum vote) —
    /// the transient loss that the follower's contiguity check must
    /// surface as a gap on the *next* ship.
    fn drop_ship(&self, _region: RegionId) -> bool {
        false
    }

    /// When `true`, a follower applies shipped batches without the WAL
    /// contiguity check, silently retaining holes (deliberately broken
    /// replication — mutant D).
    fn allow_ship_gap(&self, _region: RegionId) -> bool {
        false
    }

    /// When `true`, the compaction rewriter drops raw cells that overlap
    /// an existing sealed block instead of merging them — the "the block
    /// is already complete" bug that silently loses late-arriving points
    /// (deliberately broken compaction — mutant E).
    fn drop_sealed_overlap(&self, _region: RegionId) -> bool {
        false
    }

    /// Mutate repair bytes fetched from a peer before the scrubber gets
    /// to verify/install them — the in-flight corruption window. The
    /// faithful repair path must catch any change here by CRC
    /// re-verification and refuse the install.
    fn scribble_repair(&self, _region: RegionId, _value: &mut Vec<u8>) {}

    /// When `true`, the scrubber installs fetched repair bytes without
    /// re-verifying their checksum first (deliberately broken repair —
    /// mutant F).
    fn skip_repair_verify(&self, _region: RegionId) -> bool {
        false
    }

    /// Observation tap, not an injection: the scrubber reports every
    /// repair payload it actually installs, so a harness can check the
    /// "installed repairs are always checksum-valid" invariant from
    /// outside the repair path.
    fn observe_repair_install(&self, _region: RegionId, _value: &[u8]) {}
}

/// The faithful plane: every hook is a no-op.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoFaults;

impl FaultPlane for NoFaults {}

/// The default shared handle used when no harness is attached.
pub fn no_faults() -> FaultHandle {
    Arc::new(NoFaults)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_faithful() {
        let plane = no_faults();
        assert!(!plane.skip_wal_append(RegionId(1)));
        assert!(!plane.skip_crash_replay(RegionId(1)));
        assert!(!plane.drop_memstore_on_move(RegionId(1)));
        let mut bytes = vec![1, 2, 3];
        plane.tear_wal(RegionId(1), &mut bytes);
        assert_eq!(bytes, vec![1, 2, 3]);
        assert_eq!(plane.skew_ms(NodeId(0), 42), 42);
        assert!(!plane.drop_ship(RegionId(1)));
        assert!(!plane.allow_ship_gap(RegionId(1)));
        assert!(!plane.drop_sealed_overlap(RegionId(1)));
        let mut repair = vec![9, 8, 7];
        plane.scribble_repair(RegionId(1), &mut repair);
        assert_eq!(repair, vec![9, 8, 7]);
        assert!(!plane.skip_repair_verify(RegionId(1)));
        plane.observe_repair_install(RegionId(1), &repair); // no-op tap
    }
}
