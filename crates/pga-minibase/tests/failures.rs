//! Failure injection: cascading server deaths, stale clients, and crash
//! recovery across the cluster.

use pga_cluster::coordinator::Coordinator;
use pga_cluster::NodeId;
use pga_minibase::{
    Client, KeyValue, Master, RegionConfig, RowRange, ServerConfig, TableDescriptor,
};

fn kv(row: &str, ts: u64, val: &str) -> KeyValue {
    KeyValue::new(
        row.as_bytes().to_vec(),
        b"q".to_vec(),
        ts,
        val.as_bytes().to_vec(),
    )
}

fn cluster(nodes: usize, splits: &[&[u8]]) -> (Master, Client) {
    let coord = Coordinator::new(5_000);
    let mut master = Master::bootstrap(nodes, ServerConfig::default(), coord, 0);
    master.create_table(&TableDescriptor {
        name: "t".into(),
        split_points: splits
            .iter()
            .map(|s| bytes::Bytes::from(s.to_vec()))
            .collect(),
        region_config: RegionConfig::default(),
    });
    let client = Client::connect(&master);
    (master, client)
}

#[test]
fn sequential_node_failures_cascade_onto_survivors() {
    let (mut master, client) = cluster(4, &[b"g", b"n", b"t"]);
    for row in ["a", "h", "p", "w"] {
        client.put(vec![kv(row, 1, "v")]).unwrap();
    }
    // Kill node 0, then node 1, heartbeating the rest each sweep.
    for (dead, t) in [(0u32, 10_000u64), (1, 20_000)] {
        for n in 0..4u32 {
            if n > dead {
                master.heartbeat(NodeId(n), t);
            }
        }
        let moved = master.tick(t);
        assert!(!moved.is_empty(), "node {dead} regions must move");
    }
    // Every region now lives on nodes 2 or 3.
    let dir = master.directory();
    for info in dir.read().iter() {
        assert!(
            info.server.0 >= 2,
            "region {:?} still on dead node",
            info.id
        );
    }
    // All data remains reachable through a fresh client.
    let fresh = Client::connect(&master);
    let cells = fresh.scan(&RowRange::all()).unwrap();
    assert_eq!(cells.len(), 4);
    master.shutdown();
}

#[test]
fn unflushed_writes_survive_failover_via_wal() {
    let (mut master, client) = cluster(2, &[b"m"]);
    // Writes stay in the memstore (no flush): durability hinges on the WAL.
    for i in 0..20 {
        client
            .put(vec![kv(&format!("a{i:02}"), 1, "unflushed")])
            .unwrap();
    }
    master.heartbeat(NodeId(1), 10_000);
    let moved = master.tick(10_000);
    assert!(!moved.is_empty());
    let fresh = Client::connect(&master);
    let cells = fresh.scan(&RowRange::all()).unwrap();
    assert_eq!(cells.len(), 20, "WAL recovery must restore every write");
    assert!(cells.iter().all(|c| &c.value[..] == b"unflushed"));
    master.shutdown();
}

#[test]
fn old_client_keeps_working_after_reassignment() {
    let (mut master, client) = cluster(3, &[b"h", b"q"]);
    client.put(vec![kv("a", 1, "before")]).unwrap();
    // Find which node hosts row "a" and kill it.
    let victim = {
        let dir = master.directory();
        let d = dir.read();
        d.iter().find(|i| i.range.contains(b"a")).unwrap().server
    };
    for n in 0..3u32 {
        if NodeId(n) != victim {
            master.heartbeat(NodeId(n), 10_000);
        }
    }
    master.tick(10_000);
    // The old client still holds the shared directory (updated in place),
    // and its handle map still contains the survivors: reads and writes
    // continue.
    client.put(vec![kv("b", 1, "after")]).unwrap();
    let cells = client
        .scan(&RowRange::new(b"a".to_vec(), b"c".to_vec()))
        .unwrap();
    assert_eq!(cells.len(), 2);
    master.shutdown();
}

#[test]
fn overloaded_server_crash_is_observable() {
    use pga_minibase::{Region, RegionId};
    use pga_minibase::{RegionServer, Request};
    // A tiny queue and a crash budget: unthrottled casts kill the server.
    let server = RegionServer::spawn(
        NodeId(9),
        ServerConfig {
            queue_capacity: 2,
            crash_after_overloads: 5,
            ..ServerConfig::default()
        },
    );
    server.assign(Region::new(
        RegionId(1),
        RowRange::all(),
        RegionConfig::default(),
    ));
    let handle = server.handle();
    let mut crashed = false;
    for i in 0..10_000 {
        let req = Request::Put {
            region: RegionId(1),
            kvs: vec![kv(&format!("r{i}"), 1, "x")],
        };
        if let Err(pga_cluster::rpc::RpcError::Crashed) = handle.cast(req) {
            crashed = true;
            break;
        }
    }
    assert!(crashed, "server should crash from sustained overload");
    assert_eq!(handle.state(), pga_cluster::rpc::ServerState::Crashed);
    server.shutdown();
}

#[test]
fn whole_cluster_restart_from_shutdown_is_clean() {
    // Shutdown → rebuild a new cluster: no shared-state leakage between
    // instances (fresh coordinator namespace).
    for round in 0..3 {
        let (master, client) = cluster(2, &[b"m"]);
        client.put(vec![kv("x", round, "v")]).unwrap();
        assert_eq!(client.scan(&RowRange::all()).unwrap().len(), 1);
        master.shutdown();
    }
}
