//! Property tests: the region behaves like a sorted map of
//! `(row, qualifier, timestamp) → value` under arbitrary interleavings of
//! puts, flushes, compactions and scans.

use std::collections::BTreeMap;

use bytes::Bytes;
use proptest::prelude::*;

use pga_minibase::{KeyValue, Region, RegionConfig, RegionId, RowRange};

type ModelKey = (Vec<u8>, Vec<u8>, std::cmp::Reverse<u64>);

#[derive(Debug, Clone)]
enum Op {
    Put { row: u8, qual: u8, ts: u64, val: u8 },
    Flush,
    Compact,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0u8..20, 0u8..4, 0u64..8, any::<u8>()).prop_map(|(row, qual, ts, val)| Op::Put {
            row,
            qual,
            ts,
            val
        }),
        1 => Just(Op::Flush),
        1 => Just(Op::Compact),
    ]
}

fn apply(region: &mut Region, model: &mut BTreeMap<ModelKey, u8>, op: &Op) {
    match *op {
        Op::Put { row, qual, ts, val } => {
            let r = vec![b'r', row];
            let q = vec![b'q', qual];
            region
                .put_batch(vec![KeyValue::new(r.clone(), q.clone(), ts, vec![val])])
                .unwrap();
            model.insert((r, q, std::cmp::Reverse(ts)), val);
        }
        Op::Flush => region.flush(),
        Op::Compact => region.compact(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn region_matches_model_under_arbitrary_ops(ops in proptest::collection::vec(op(), 1..120)) {
        let mut region = Region::new(RegionId(1), RowRange::all(), RegionConfig {
            memstore_flush_bytes: 512, // force frequent automatic flushes
            compaction_file_threshold: 4,
            max_versions: usize::MAX,
        });
        let mut model: BTreeMap<ModelKey, u8> = BTreeMap::new();
        for o in &ops {
            apply(&mut region, &mut model, o);
        }
        let got = region.scan(&RowRange::all());
        prop_assert_eq!(got.len(), model.len(), "cell count");
        for (kv, (mk, mv)) in got.iter().zip(model.iter()) {
            prop_assert_eq!(&kv.row[..], &mk.0[..]);
            prop_assert_eq!(&kv.qualifier[..], &mk.1[..]);
            prop_assert_eq!(kv.timestamp, mk.2.0);
            prop_assert_eq!(&kv.value[..], &[*mv][..]);
        }
    }

    #[test]
    fn range_scans_agree_with_model(
        ops in proptest::collection::vec(op(), 1..80),
        lo in 0u8..20,
        span in 1u8..10,
    ) {
        let mut region = Region::new(RegionId(1), RowRange::all(), RegionConfig::default());
        let mut model: BTreeMap<ModelKey, u8> = BTreeMap::new();
        for o in &ops {
            apply(&mut region, &mut model, o);
        }
        let start = vec![b'r', lo];
        let end = vec![b'r', lo.saturating_add(span)];
        let got = region.scan(&RowRange::new(start.clone(), end.clone()));
        let expect: Vec<_> = model
            .iter()
            .filter(|((r, _, _), _)| r >= &start && r < &end)
            .collect();
        prop_assert_eq!(got.len(), expect.len());
    }

    #[test]
    fn split_partitions_and_preserves_everything(
        ops in proptest::collection::vec(op(), 10..100),
    ) {
        let mut region = Region::new(RegionId(1), RowRange::all(), RegionConfig::default());
        let mut model: BTreeMap<ModelKey, u8> = BTreeMap::new();
        for o in &ops {
            apply(&mut region, &mut model, o);
        }
        let total_before = region.scan(&RowRange::all()).len();
        match region.split(RegionId(2), RegionId(3)) {
            Ok((left, right)) => {
                let l = left.scan(&RowRange::all());
                let r = right.scan(&RowRange::all());
                prop_assert_eq!(l.len() + r.len(), total_before);
                let boundary: Bytes = right.range().start.clone();
                prop_assert!(l.iter().all(|kv| kv.row < boundary));
                prop_assert!(r.iter().all(|kv| kv.row >= boundary));
                // Ranges partition the parent.
                prop_assert_eq!(left.range().start.len(), 0);
                prop_assert_eq!(right.range().end.len(), 0);
                prop_assert_eq!(&left.range().end, &boundary);
            }
            Err(back) => {
                // Refused split must return the region intact.
                prop_assert_eq!(back.scan(&RowRange::all()).len(), total_before);
            }
        }
    }

    #[test]
    fn wal_recovery_restores_exact_state(ops in proptest::collection::vec(op(), 1..60)) {
        // Apply ops without any flush/compact (pure memstore) — then
        // recover from WAL and compare.
        let mut region = Region::new(RegionId(1), RowRange::all(), RegionConfig {
            memstore_flush_bytes: usize::MAX,
            compaction_file_threshold: usize::MAX,
            max_versions: usize::MAX,
        });
        let mut model: BTreeMap<ModelKey, u8> = BTreeMap::new();
        for o in &ops {
            if let Op::Put { .. } = o {
                apply(&mut region, &mut model, o);
            }
        }
        let wal = region.wal();
        let mut recovered = Region::new(RegionId(1), RowRange::all(), RegionConfig::default());
        // A fresh region sharing only the WAL (the memstore "died").
        let _ = std::mem::replace(&mut recovered, {
            let mut r = Region::new(RegionId(1), RowRange::all(), RegionConfig::default());
            // Attach the surviving WAL by replaying it.
            for kv in wal.replay() {
                r.put_batch(vec![kv]).unwrap();
            }
            r
        });
        let got = recovered.scan(&RowRange::all());
        prop_assert_eq!(got.len(), model.len());
    }
}
