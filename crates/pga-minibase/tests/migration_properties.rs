//! Property tests for live region migration under coordinator watches and
//! session-lease expiry: for any interleaving of writes, master-driven
//! region moves and one lease expiry, **no datapoint is lost and none is
//! served twice** — the invariant the elastic control plane's rebalancer
//! depends on — and the coordinator watch stream reports the expiry.

use std::collections::BTreeSet;

use bytes::Bytes;
use proptest::prelude::*;

use pga_cluster::coordinator::{Coordinator, WatchEvent};
use pga_minibase::{Client, KeyValue, RegionConfig, RowRange, ServerConfig, TableDescriptor};

fn table() -> TableDescriptor {
    TableDescriptor {
        name: "tsdb".into(),
        split_points: [b"250".as_slice(), b"500", b"750"]
            .iter()
            .map(|s| Bytes::from(s.to_vec()))
            .collect(),
        region_config: RegionConfig {
            memstore_flush_bytes: 256, // flush often so moves carry files too
            ..RegionConfig::default()
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn migration_and_lease_expiry_lose_and_duplicate_nothing(
        nodes in 2usize..5,
        rows in proptest::collection::vec(0u16..1000, 20..60),
        moves in proptest::collection::vec((0u8..16, 0u8..16), 1..8),
        expire in any::<bool>(),
    ) {
        let coord = Coordinator::new(1000);
        let mut master =
            pga_minibase::Master::bootstrap(nodes, ServerConfig::default(), coord.clone(), 0);
        master.create_table(&table());
        let client = Client::connect(&master);
        let watch = coord.watch("/rs");

        // Interleave: one unique datapoint per step, a region move every
        // few steps, one lease expiry half-way if requested.
        let mut move_iter = moves.iter();
        let half = rows.len() / 2;
        for (i, row) in rows.iter().enumerate() {
            let key = format!("{row:03}").into_bytes();
            let qual = format!("w{i}").into_bytes();
            client.put(vec![KeyValue::new(key, qual, i as u64, b"v".to_vec())]).unwrap();

            if i % 5 == 4 {
                if let Some(&(region_sel, target_sel)) = move_iter.next() {
                    let rid = {
                        let dir = master.directory();
                        let d = dir.read();
                        d[region_sel as usize % d.len()].id
                    };
                    let live = master.live_nodes();
                    let target = live[target_sel as usize % live.len()];
                    master.move_region(rid, target);
                }
            }

            if expire && i == half && master.live_nodes().len() > 1 {
                // The highest-id node goes silent; everyone else
                // heartbeats. tick() expires the lease and reassigns its
                // regions through WAL recovery.
                let victim = *master.live_nodes().last().unwrap();
                for node in master.live_nodes() {
                    if node != victim {
                        master.heartbeat(node, 900);
                    }
                }
                let reassigned = master.tick(1500);
                // Every region the victim hosted moved somewhere live.
                let dir = master.directory();
                for info in dir.read().iter() {
                    prop_assert_ne!(info.server, victim);
                }
                // The watch stream reports exactly one expiry, for the
                // victim's znode.
                let expiries: Vec<WatchEvent> = watch
                    .poll()
                    .into_iter()
                    .filter(|e| matches!(e, WatchEvent::SessionExpired(_)))
                    .collect();
                prop_assert_eq!(
                    expiries,
                    vec![WatchEvent::SessionExpired(format!("/rs/{}", victim.0))]
                );
                let _ = reassigned;
            }
        }

        // Every written datapoint is served exactly once.
        let cells = client.scan(&RowRange::all()).unwrap();
        let served: Vec<(Vec<u8>, Vec<u8>)> = cells
            .iter()
            .map(|kv| (kv.row.to_vec(), kv.qualifier.to_vec()))
            .collect();
        let unique: BTreeSet<&(Vec<u8>, Vec<u8>)> = served.iter().collect();
        prop_assert_eq!(unique.len(), served.len(), "a datapoint was double-served");
        prop_assert_eq!(served.len(), rows.len(), "a datapoint was lost");
        let expected: BTreeSet<(Vec<u8>, Vec<u8>)> = rows
            .iter()
            .enumerate()
            .map(|(i, row)| {
                (
                    format!("{row:03}").into_bytes(),
                    format!("w{i}").into_bytes(),
                )
            })
            .collect();
        let served_set: BTreeSet<(Vec<u8>, Vec<u8>)> = served.into_iter().collect();
        prop_assert_eq!(served_set, expected);

        master.shutdown();
    }

    #[test]
    fn moves_alone_preserve_directory_partition(
        nodes in 2usize..5,
        moves in proptest::collection::vec((0u8..16, 0u8..16), 1..20),
    ) {
        let coord = Coordinator::new(10_000);
        let mut master =
            pga_minibase::Master::bootstrap(nodes, ServerConfig::default(), coord, 0);
        master.create_table(&table());
        for &(region_sel, target_sel) in &moves {
            let rid = {
                let dir = master.directory();
                let d = dir.read();
                d[region_sel as usize % d.len()].id
            };
            let live = master.live_nodes();
            let target = live[target_sel as usize % live.len()];
            prop_assert!(master.move_region(rid, target));
        }
        // The directory still partitions the keyspace: every row locates
        // to exactly one region hosted by a live node.
        let dir = master.directory();
        let d = dir.read();
        prop_assert_eq!(d.len(), 4);
        for probe in [b"000".as_slice(), b"249", b"250", b"499", b"500", b"999"] {
            let hits = d.iter().filter(|i| i.range.contains(probe)).count();
            prop_assert_eq!(hits, 1, "row {:?} covered by {} regions", probe, hits);
        }
        for info in d.iter() {
            prop_assert!(master.live_nodes().contains(&info.server));
            let hosted = master.server(info.server).unwrap().hosted_regions();
            prop_assert!(hosted.contains(&info.id));
        }
        drop(d);
        master.shutdown();
    }
}
