//! Property test for directory consistency under concurrent topology
//! changes: while the master splits and migrates regions, a reader thread
//! continuously locates rows through the shared directory. At every
//! observable instant each row must have **exactly one** owning region —
//! never zero (a locate hole would fail client puts), never two (double
//! ownership would double-serve scans). This is the invariant the fault
//! harness's split/move-under-load schedules lean on.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use proptest::prelude::*;

use pga_cluster::coordinator::Coordinator;
use pga_minibase::master::{locate, Directory};
use pga_minibase::{
    Client, KeyValue, Master, RegionConfig, RowRange, ServerConfig, TableDescriptor,
};

fn table() -> TableDescriptor {
    TableDescriptor {
        name: "tsdb".into(),
        split_points: [b"250".as_slice(), b"500", b"750"]
            .iter()
            .map(|s| Bytes::from(s.to_vec()))
            .collect(),
        region_config: RegionConfig::default(),
    }
}

/// Rows the reader probes: range boundaries, their neighbours, and
/// interior points of every initial region.
const PROBES: [&[u8]; 12] = [
    b"000", b"100", b"249", b"250", b"251", b"400", b"499", b"500", b"600", b"749", b"750", b"999",
];

fn spawn_reader(
    dir: Directory,
    stop: Arc<AtomicBool>,
    violation: Arc<Mutex<Option<String>>>,
) -> std::thread::JoinHandle<u64> {
    std::thread::spawn(move || {
        let mut observations = 0u64;
        // At least one full probe pass runs even if the writer finishes
        // all its topology ops before this thread is first scheduled.
        loop {
            for probe in PROBES {
                // One read-lock snapshot per probe: owners are counted
                // against a single consistent directory view.
                let owners = dir
                    .read()
                    .iter()
                    .filter(|i| i.range.contains(probe))
                    .count();
                if owners != 1 {
                    let mut slot = violation.lock();
                    if slot.is_none() {
                        *slot = Some(format!(
                            "row {:?} had {owners} owners",
                            String::from_utf8_lossy(probe)
                        ));
                    }
                    return observations;
                }
                // locate() must agree with the snapshot count.
                if locate(&dir, probe).is_none() {
                    let mut slot = violation.lock();
                    if slot.is_none() {
                        *slot = Some(format!(
                            "locate({:?}) found no region",
                            String::from_utf8_lossy(probe)
                        ));
                    }
                    return observations;
                }
                observations += 1;
            }
            if stop.load(Ordering::Relaxed) {
                break;
            }
        }
        observations
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn concurrent_locate_always_finds_exactly_one_owner(
        nodes in 2usize..5,
        ops in proptest::collection::vec((any::<bool>(), 0u8..32, 0u8..32), 4..12),
    ) {
        let coord = Coordinator::new(10_000);
        let mut master = Master::bootstrap(nodes, ServerConfig::default(), coord, 0);
        master.create_table(&table());
        let client = Client::connect(&master);

        // Seed every region with rows so splits have a median to cut at.
        let puts: Vec<KeyValue> = (0..100u32)
            .map(|i| {
                let row = format!("{:03}", i * 10).into_bytes();
                KeyValue::new(row, b"q".to_vec(), i as u64, b"v".to_vec())
            })
            .collect();
        client.put(puts).unwrap();

        let stop = Arc::new(AtomicBool::new(false));
        let violation = Arc::new(Mutex::new(None));
        let reader = spawn_reader(master.directory(), stop.clone(), violation.clone());

        for &(is_split, region_sel, target_sel) in &ops {
            let rid = {
                let dir = master.directory();
                let d = dir.read();
                d[region_sel as usize % d.len()].id
            };
            if is_split {
                // A refusal (empty daughter side) is fine; the directory
                // must stay consistent either way.
                let _ = master.split_region(rid);
            } else {
                let live = master.live_nodes();
                let target = live[target_sel as usize % live.len()];
                master.move_region(rid, target);
            }
        }

        stop.store(true, Ordering::Relaxed);
        let observations = reader.join().expect("reader thread");
        prop_assert!(observations > 0, "reader made no observations");
        let seen = violation.lock().take();
        prop_assert!(seen.is_none(), "directory invariant violated: {:?}", seen);

        // Post-run: all 100 seeded rows still served exactly once.
        let cells = client.scan(&RowRange::all()).unwrap();
        prop_assert_eq!(cells.len(), 100, "rows lost or duplicated by topology ops");

        master.shutdown();
    }
}
