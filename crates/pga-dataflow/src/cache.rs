//! Directory-backed object cache — the HDFS stand-in.
//!
//! §IV-A: "Results from the decomposition are cached to HDFS. Evaluation
//! is thereby relatively fast…". The detector stores trained unit models
//! here keyed by unit id, and the online evaluator loads them back.

use std::io::Write;
use std::path::{Path, PathBuf};

use serde::de::DeserializeOwned;
use serde::Serialize;

/// Cache failure modes.
#[derive(Debug)]
pub enum CacheError {
    /// Filesystem error.
    Io(std::io::Error),
    /// (De)serialisation error.
    Serde(serde_json::Error),
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Io(e) => write!(f, "cache io error: {e}"),
            CacheError::Serde(e) => write!(f, "cache serde error: {e}"),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<std::io::Error> for CacheError {
    fn from(e: std::io::Error) -> Self {
        CacheError::Io(e)
    }
}

impl From<serde_json::Error> for CacheError {
    fn from(e: serde_json::Error) -> Self {
        CacheError::Serde(e)
    }
}

/// A JSON object cache rooted at a directory.
#[derive(Debug, Clone)]
pub struct DiskCache {
    root: PathBuf,
}

impl DiskCache {
    /// Open (creating if needed) a cache rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, CacheError> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(DiskCache { root })
    }

    fn path_for(&self, key: &str) -> PathBuf {
        // Sanitise: keys become filenames.
        let safe: String = key
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.root.join(format!("{safe}.json"))
    }

    /// Store a value under `key`, overwriting any previous value.
    /// The write is atomic (write-to-temp + rename).
    pub fn store<T: Serialize>(&self, key: &str, value: &T) -> Result<(), CacheError> {
        let path = self.path_for(key);
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(serde_json::to_string(value)?.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// Load the value under `key`, if present.
    pub fn load<T: DeserializeOwned>(&self, key: &str) -> Result<Option<T>, CacheError> {
        let path = self.path_for(key);
        match std::fs::read_to_string(&path) {
            Ok(s) => Ok(Some(serde_json::from_str(&s)?)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Whether `key` is cached.
    pub fn contains(&self, key: &str) -> bool {
        self.path_for(key).exists()
    }

    /// Remove `key` (no-op when absent).
    pub fn evict(&self, key: &str) -> Result<(), CacheError> {
        match std::fs::remove_file(self.path_for(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// List cached keys (filenames without extension).
    pub fn keys(&self) -> Result<Vec<String>, CacheError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(".json") {
                out.push(stem.to_string());
            }
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cache(tag: &str) -> DiskCache {
        let dir = std::env::temp_dir().join(format!("pga-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        DiskCache::open(dir).unwrap()
    }

    #[test]
    fn store_load_roundtrip() {
        let c = temp_cache("roundtrip");
        let value = vec![1.5f64, 2.5, -3.0];
        c.store("model-unit-7", &value).unwrap();
        let back: Vec<f64> = c.load("model-unit-7").unwrap().unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn missing_key_is_none() {
        let c = temp_cache("missing");
        let got: Option<Vec<f64>> = c.load("nope").unwrap();
        assert!(got.is_none());
        assert!(!c.contains("nope"));
    }

    #[test]
    fn overwrite_replaces() {
        let c = temp_cache("overwrite");
        c.store("k", &1u32).unwrap();
        c.store("k", &2u32).unwrap();
        assert_eq!(c.load::<u32>("k").unwrap(), Some(2));
    }

    #[test]
    fn evict_removes() {
        let c = temp_cache("evict");
        c.store("k", &1u32).unwrap();
        assert!(c.contains("k"));
        c.evict("k").unwrap();
        assert!(!c.contains("k"));
        c.evict("k").unwrap(); // idempotent
    }

    #[test]
    fn keys_are_listed_sorted() {
        let c = temp_cache("keys");
        c.store("b", &1u32).unwrap();
        c.store("a", &1u32).unwrap();
        assert_eq!(c.keys().unwrap(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn weird_key_characters_are_sanitised() {
        let c = temp_cache("sanitise");
        c.store("unit/7:model v2", &42u32).unwrap();
        assert_eq!(c.load::<u32>("unit/7:model v2").unwrap(), Some(42));
    }
}
