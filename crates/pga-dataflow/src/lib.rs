//! A small Spark-analog batch compute engine.
//!
//! The paper trains offline "in the Spark framework … in batch mode"
//! (§II, §IV-A), caching SVD results to HDFS. This crate supplies the
//! equivalent substrate:
//!
//! * [`Dataflow`] / [`Dataset`] — partitioned collections with parallel
//!   `map`, `filter`, `flat_map`, `map_partitions`, `reduce`, `count`,
//!   `collect`, and a hash-shuffled `group_by_key` (the "concurrency of
//!   Spark" §IV-A plans to exploit). Each transformation compiles into a
//!   `pga-sched` task graph — one task per partition plus explicit
//!   shuffle/merge edges — executed by the seeded work-stealing
//!   scheduler (or the sequential executor with one worker).
//! * [`DataflowStats`] — cumulative scheduler counters (tasks, steals,
//!   queue depth, task latency) for the platform observability panel.
//! * [`DiskCache`] — a directory-backed object cache standing in for HDFS
//!   ("results from the decomposition are cached to HDFS").
//!
//! The engine is eager (each transformation runs immediately, in
//! parallel); lineage/laziness is orthogonal to everything the paper's
//! workload needs. DESIGN.md §13 describes the scheduler substrate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod dataset;

pub use cache::{CacheError, DiskCache};
pub use dataset::{Dataflow, DataflowStats, Dataset};
