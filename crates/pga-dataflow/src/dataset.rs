//! Partitioned datasets with a bounded worker pool.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The execution context: how many worker threads transformations use.
#[derive(Debug, Clone, Copy)]
pub struct Dataflow {
    workers: usize,
}

impl Dataflow {
    /// A context with `workers` threads (≥ 1).
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        Dataflow { workers }
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Distribute a vector into `partitions` roughly equal chunks.
    pub fn parallelize<T: Send>(&self, data: Vec<T>, partitions: usize) -> Dataset<T> {
        assert!(partitions >= 1, "need at least one partition");
        let n = data.len();
        let per = n.div_ceil(partitions).max(1);
        let mut parts: Vec<Vec<T>> = Vec::with_capacity(partitions);
        let mut it = data.into_iter();
        for _ in 0..partitions {
            let chunk: Vec<T> = it.by_ref().take(per).collect();
            parts.push(chunk);
        }
        Dataset {
            ctx: *self,
            partitions: parts,
        }
    }
}

/// A partitioned, in-memory dataset.
///
/// ```
/// use pga_dataflow::Dataflow;
///
/// let df = Dataflow::new(4);
/// let sum = df
///     .parallelize((1..=100).collect(), 8)
///     .map(|x: i64| x * x)
///     .filter(|x| x % 2 == 0)
///     .reduce(|a, b| a + b);
/// assert_eq!(sum, Some((1..=100i64).map(|x| x * x).filter(|x| x % 2 == 0).sum()));
/// ```
#[derive(Debug)]
pub struct Dataset<T> {
    ctx: Dataflow,
    partitions: Vec<Vec<T>>,
}

impl<T: Send> Dataset<T> {
    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total elements.
    pub fn count(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }

    /// Run `f` over whole partitions in parallel, producing one output
    /// partition per input partition. The fundamental parallel primitive —
    /// everything else is built on it.
    pub fn map_partitions<U, F>(self, f: F) -> Dataset<U>
    where
        U: Send,
        F: Fn(Vec<T>) -> Vec<U> + Sync,
    {
        let ctx = self.ctx;
        let n_parts = self.partitions.len();
        let inputs: Vec<std::sync::Mutex<Option<Vec<T>>>> = self
            .partitions
            .into_iter()
            .map(|p| std::sync::Mutex::new(Some(p)))
            .collect();
        let outputs: Vec<std::sync::Mutex<Option<Vec<U>>>> =
            (0..n_parts).map(|_| std::sync::Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = ctx.workers.min(n_parts).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_parts {
                        break;
                    }
                    let input = inputs[i]
                        .lock()
                        .unwrap()
                        .take()
                        .expect("partition taken once");
                    let out = f(input);
                    *outputs[i].lock().unwrap() = Some(out);
                });
            }
        });
        Dataset {
            ctx,
            partitions: outputs
                .into_iter()
                .map(|m| m.into_inner().unwrap().expect("worker filled output"))
                .collect(),
        }
    }

    /// Parallel element-wise map.
    pub fn map<U, F>(self, f: F) -> Dataset<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        self.map_partitions(|part| part.into_iter().map(&f).collect())
    }

    /// Parallel filter.
    pub fn filter<F>(self, f: F) -> Dataset<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        self.map_partitions(|part| part.into_iter().filter(|t| f(t)).collect())
    }

    /// Parallel flat map.
    pub fn flat_map<U, I, F>(self, f: F) -> Dataset<U>
    where
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Sync,
    {
        self.map_partitions(|part| part.into_iter().flat_map(&f).collect())
    }

    /// Parallel reduce: `f` must be associative and commutative (each
    /// partition folds locally, then the partials fold serially).
    pub fn reduce<F>(self, f: F) -> Option<T>
    where
        F: Fn(T, T) -> T + Sync,
    {
        let partials = self.map_partitions(|part| {
            let mut it = part.into_iter();
            match it.next() {
                Some(first) => vec![it.fold(first, &f)],
                None => vec![],
            }
        });
        partials.collect().into_iter().reduce(f)
    }

    /// Gather all elements (partition order preserved).
    pub fn collect(self) -> Vec<T> {
        self.partitions.into_iter().flatten().collect()
    }
}

impl<K, V> Dataset<(K, V)>
where
    K: Send + Hash + Eq + Clone,
    V: Send,
{
    /// Hash shuffle: group values by key into `output_partitions`
    /// partitions (all pairs of one key land in one partition), then
    /// build per-key groups. The Spark `groupByKey` analog.
    pub fn group_by_key(self, output_partitions: usize) -> Dataset<(K, Vec<V>)> {
        assert!(output_partitions >= 1);
        let ctx = self.ctx;
        // Shuffle write: each input partition scatters into buckets.
        let scattered = self.map_partitions(|part| {
            part.into_iter()
                .map(|(k, v)| {
                    let mut h = std::collections::hash_map::DefaultHasher::new();
                    k.hash(&mut h);
                    let bucket = (h.finish() % output_partitions as u64) as usize;
                    (bucket, (k, v))
                })
                .collect::<Vec<_>>()
        });
        // Shuffle read: gather per-bucket (serial redistribution, parallel
        // group-build).
        let mut buckets: Vec<Vec<(K, V)>> = (0..output_partitions).map(|_| Vec::new()).collect();
        for (bucket, pair) in scattered.collect() {
            buckets[bucket].push(pair);
        }
        Dataset {
            ctx,
            partitions: buckets,
        }
        .map_partitions(|bucket| {
            let mut groups: HashMap<K, Vec<V>> = HashMap::new();
            for (k, v) in bucket {
                groups.entry(k).or_default().push(v);
            }
            groups.into_iter().collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Dataflow {
        Dataflow::new(4)
    }

    #[test]
    fn parallelize_partitions_evenly() {
        let d = ctx().parallelize((0..10).collect(), 3);
        assert_eq!(d.num_partitions(), 3);
        assert_eq!(d.count(), 10);
        let sizes: Vec<usize> = d.partitions.iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn map_preserves_order() {
        let d = ctx().parallelize((0..100).collect(), 7);
        let out = d.map(|x: i32| x * 2).collect();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_drops_elements() {
        let d = ctx().parallelize((0..100).collect(), 5);
        let out = d.filter(|x: &i32| x % 3 == 0).collect();
        assert_eq!(out.len(), 34);
        assert!(out.iter().all(|x| x % 3 == 0));
    }

    #[test]
    fn flat_map_expands() {
        let d = ctx().parallelize(vec![1, 2, 3], 2);
        let out = d.flat_map(|x: i32| vec![x; x as usize]).collect();
        assert_eq!(out, vec![1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn reduce_sums() {
        let d = ctx().parallelize((1..=100).collect(), 9);
        assert_eq!(d.reduce(|a: i32, b| a + b), Some(5050));
    }

    #[test]
    fn reduce_empty_is_none() {
        let d = ctx().parallelize(Vec::<i32>::new(), 3);
        assert_eq!(d.reduce(|a, b| a + b), None);
    }

    #[test]
    fn reduce_with_empty_partitions() {
        // 2 elements across 5 partitions: 3 empty partitions must not break.
        let d = ctx().parallelize(vec![10, 20], 5);
        assert_eq!(d.reduce(|a: i32, b| a + b), Some(30));
    }

    #[test]
    fn group_by_key_collects_all_values() {
        let pairs: Vec<(u32, u32)> = (0..100).map(|i| (i % 7, i)).collect();
        let d = ctx().parallelize(pairs, 6);
        let grouped = d.group_by_key(4).collect();
        assert_eq!(grouped.len(), 7);
        let total: usize = grouped.iter().map(|(_, vs)| vs.len()).sum();
        assert_eq!(total, 100);
        for (k, vs) in &grouped {
            assert!(vs.iter().all(|v| v % 7 == *k));
        }
    }

    #[test]
    fn group_by_key_single_output_partition() {
        let d = ctx().parallelize(vec![(1, "a"), (2, "b"), (1, "c")], 2);
        let grouped = d.group_by_key(1).collect();
        assert_eq!(grouped.len(), 2);
        let ones = grouped.iter().find(|(k, _)| *k == 1).unwrap();
        assert_eq!(ones.1.len(), 2);
    }

    #[test]
    fn map_partitions_sees_whole_partitions() {
        let d = ctx().parallelize((0..12).collect(), 4);
        let sums = d
            .map_partitions(|p: Vec<i32>| vec![p.iter().sum::<i32>()])
            .collect();
        assert_eq!(sums.len(), 4);
        assert_eq!(sums.iter().sum::<i32>(), 66);
    }

    #[test]
    fn single_worker_matches_many_workers() {
        let serial = Dataflow::new(1)
            .parallelize((0..1000).collect(), 8)
            .map(|x: i64| x * x)
            .reduce(|a, b| a + b);
        let parallel = Dataflow::new(8)
            .parallelize((0..1000).collect(), 8)
            .map(|x: i64| x * x)
            .reduce(|a, b| a + b);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn more_partitions_than_elements() {
        let d = ctx().parallelize(vec![1, 2], 10);
        assert_eq!(d.count(), 2);
        assert_eq!(d.map(|x: i32| x + 1).collect(), vec![2, 3]);
    }
}
