//! Partitioned datasets compiled into `pga-sched` task graphs.
//!
//! Each transformation builds a [`pga_sched::TaskGraph`] — one task per
//! partition, plus explicit dependency edges for shuffles and merges —
//! and hands it to the work-stealing scheduler ([`pga_sched::run`]) or,
//! with a single worker, the deterministic sequential executor
//! ([`pga_sched::run_sequential`]). Run counters accumulate on the
//! [`Dataflow`] context and are exposed as [`DataflowStats`] for the
//! platform's scheduler-observability panel.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pga_sched::{SchedulerConfig, TaskGraph};
use serde::Serialize;

/// Cumulative scheduler counters (atomics; shared by `Dataflow` clones).
#[derive(Debug, Default)]
struct EngineStats {
    graphs: AtomicU64,
    tasks: AtomicU64,
    steals: AtomicU64,
    steal_attempts: AtomicU64,
    max_queue_depth: AtomicU64,
    idle_spins: AtomicU64,
    task_ns: AtomicU64,
    /// Per-graph sequence number: each graph gets `seed + seq` so runs
    /// within one context use distinct but replayable RNG streams.
    graph_seq: AtomicU64,
}

/// Snapshot of a context's cumulative scheduler counters.
#[derive(Debug, Clone, Default, Serialize)]
pub struct DataflowStats {
    /// Task graphs executed.
    pub graphs_run: u64,
    /// Tasks executed across all graphs.
    pub tasks_run: u64,
    /// Successful steals.
    pub steals: u64,
    /// Steal probes, successful or not.
    pub steal_attempts: u64,
    /// High-water mark of any worker deque depth.
    pub max_queue_depth: u64,
    /// Idle yield loops across all workers.
    pub idle_spins: u64,
    /// Total nanoseconds spent inside task bodies.
    pub task_ns_total: u64,
}

impl DataflowStats {
    /// Mean task body latency in microseconds (0 when nothing ran).
    pub fn mean_task_us(&self) -> f64 {
        if self.tasks_run == 0 {
            0.0
        } else {
            self.task_ns_total as f64 / self.tasks_run as f64 / 1_000.0
        }
    }
}

/// The execution context: worker count, scheduler seed, and cumulative
/// run counters. Cloning shares the counters (clones observe each
/// other's runs through [`Dataflow::stats`]).
#[derive(Debug, Clone)]
pub struct Dataflow {
    workers: usize,
    seed: u64,
    stats: Arc<EngineStats>,
}

impl Dataflow {
    /// A context with `workers` threads (≥ 1) and the default seed.
    pub fn new(workers: usize) -> Self {
        Self::with_seed(workers, 0xDA7A_F70E)
    }

    /// A context with an explicit scheduler seed, for replay harnesses
    /// that need the steal-pressure profile reproducible end to end.
    pub fn with_seed(workers: usize, seed: u64) -> Self {
        assert!(workers >= 1, "need at least one worker");
        Dataflow {
            workers,
            seed,
            stats: Arc::new(EngineStats::default()),
        }
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Snapshot the cumulative scheduler counters.
    pub fn stats(&self) -> DataflowStats {
        DataflowStats {
            // pga-allow(relaxed-atomics): independent monotonic counters; snapshot tolerates inter-field skew
            graphs_run: self.stats.graphs.load(Ordering::Relaxed),
            tasks_run: self.stats.tasks.load(Ordering::Relaxed),
            steals: self.stats.steals.load(Ordering::Relaxed),
            steal_attempts: self.stats.steal_attempts.load(Ordering::Relaxed),
            max_queue_depth: self.stats.max_queue_depth.load(Ordering::Relaxed),
            idle_spins: self.stats.idle_spins.load(Ordering::Relaxed),
            task_ns_total: self.stats.task_ns.load(Ordering::Relaxed),
        }
    }

    /// Execute a task graph on the appropriate executor and fold its
    /// report into the cumulative counters. Worker panics inside task
    /// bodies resurface as a panic here (the pre-`pga-sched` engine let
    /// scoped-thread panics propagate the same way); cycles cannot occur
    /// in graphs this module builds.
    fn execute(&self, graph: TaskGraph<'_>) {
        if graph.is_empty() {
            return;
        }
        let t0 = std::time::Instant::now();
        let clock: pga_sched::Clock = Arc::new(move || t0.elapsed().as_nanos() as u64);
        let seq = self.stats.graph_seq.fetch_add(1, Ordering::Relaxed);
        let workers = self.workers.min(graph.len()).max(1);
        let result = if workers == 1 {
            pga_sched::run_sequential(graph, Some(&clock))
        } else {
            let config = SchedulerConfig {
                workers,
                seed: self.seed.wrapping_add(seq),
            };
            pga_sched::run(graph, &config, Some(&clock))
        };
        let report = match result {
            Ok(report) => report,
            Err(e) => panic!("dataflow task graph failed: {e}"),
        };
        self.stats.graphs.fetch_add(1, Ordering::Relaxed);
        self.stats
            .tasks
            .fetch_add(report.tasks_run, Ordering::Relaxed);
        self.stats
            .steals
            .fetch_add(report.steals, Ordering::Relaxed);
        self.stats
            .steal_attempts
            .fetch_add(report.steal_attempts, Ordering::Relaxed);
        self.stats
            .max_queue_depth
            .fetch_max(report.max_queue_depth, Ordering::Relaxed);
        self.stats
            .idle_spins
            .fetch_add(report.idle_spins, Ordering::Relaxed);
        let stage_ns: u64 = report.stages.iter().map(|s| s.total_ns).sum();
        self.stats.task_ns.fetch_add(stage_ns, Ordering::Relaxed);
    }

    /// Distribute a vector into `partitions` roughly equal chunks.
    pub fn parallelize<T: Send>(&self, data: Vec<T>, partitions: usize) -> Dataset<T> {
        assert!(partitions >= 1, "need at least one partition");
        let n = data.len();
        let per = n.div_ceil(partitions).max(1);
        let mut parts: Vec<Vec<T>> = Vec::with_capacity(partitions);
        let mut it = data.into_iter();
        for _ in 0..partitions {
            let chunk: Vec<T> = it.by_ref().take(per).collect();
            parts.push(chunk);
        }
        Dataset {
            ctx: self.clone(),
            partitions: parts,
        }
    }
}

/// A partitioned, in-memory dataset.
///
/// ```
/// use pga_dataflow::Dataflow;
///
/// let df = Dataflow::new(4);
/// let sum = df
///     .parallelize((1..=100).collect(), 8)
///     .map(|x: i64| x * x)
///     .filter(|x| x % 2 == 0)
///     .reduce(|a, b| a + b);
/// assert_eq!(sum, Some((1..=100i64).map(|x| x * x).filter(|x| x % 2 == 0).sum()));
/// ```
#[derive(Debug)]
pub struct Dataset<T> {
    ctx: Dataflow,
    partitions: Vec<Vec<T>>,
}

/// Partition slots shared between graph construction and task bodies.
type Slot<T> = Mutex<Option<T>>;

/// Per-bucket pair lists produced by a shuffle-scatter task.
type Buckets<K, V> = Vec<Vec<(K, V)>>;

/// A gathered output partition: each key with its collected values.
type Grouped<K, V> = Vec<(K, Vec<V>)>;

fn take_slot<T>(slot: &Slot<T>) -> T {
    slot.lock()
        .expect("slot lock")
        .take()
        .expect("partition taken once")
}

fn fill_slot<T>(slot: &Slot<T>, value: T) {
    *slot.lock().expect("slot lock") = Some(value);
}

fn drain_slots<T>(slots: Vec<Slot<T>>) -> Vec<T> {
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot lock")
                .expect("task filled output")
        })
        .collect()
}

impl<T: Send> Dataset<T> {
    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total elements.
    pub fn count(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }

    /// Run `f` over whole partitions in parallel, producing one output
    /// partition per input partition. The fundamental parallel primitive —
    /// everything else is built on it. Compiles to a flat task graph:
    /// one independent `map_partitions` task per partition.
    pub fn map_partitions<U, F>(self, f: F) -> Dataset<U>
    where
        U: Send,
        F: Fn(Vec<T>) -> Vec<U> + Sync,
    {
        let ctx = self.ctx.clone();
        let inputs: Vec<Slot<Vec<T>>> = self
            .partitions
            .into_iter()
            .map(|p| Mutex::new(Some(p)))
            .collect();
        let outputs: Vec<Slot<Vec<U>>> = inputs.iter().map(|_| Mutex::new(None)).collect();
        {
            let f = &f;
            let mut graph = TaskGraph::new();
            for (input, output) in inputs.iter().zip(outputs.iter()) {
                graph.add_task("map_partitions", move || {
                    fill_slot(output, f(take_slot(input)));
                });
            }
            ctx.execute(graph);
        }
        Dataset {
            ctx,
            partitions: drain_slots(outputs),
        }
    }

    /// Parallel element-wise map.
    pub fn map<U, F>(self, f: F) -> Dataset<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        self.map_partitions(|part| part.into_iter().map(&f).collect())
    }

    /// Parallel filter.
    pub fn filter<F>(self, f: F) -> Dataset<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        self.map_partitions(|part| part.into_iter().filter(|t| f(t)).collect())
    }

    /// Parallel flat map.
    pub fn flat_map<U, I, F>(self, f: F) -> Dataset<U>
    where
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Sync,
    {
        self.map_partitions(|part| part.into_iter().flat_map(&f).collect())
    }

    /// Parallel reduce: `f` must be associative and commutative. Compiles
    /// to per-partition `reduce-fold` tasks feeding one `reduce-merge`
    /// task through explicit dependency edges; the merge folds partials
    /// in partition order, matching the pre-`pga-sched` engine exactly.
    pub fn reduce<F>(self, f: F) -> Option<T>
    where
        F: Fn(T, T) -> T + Sync,
    {
        let ctx = self.ctx.clone();
        let inputs: Vec<Slot<Vec<T>>> = self
            .partitions
            .into_iter()
            .map(|p| Mutex::new(Some(p)))
            .collect();
        let partials: Vec<Slot<T>> = inputs.iter().map(|_| Mutex::new(None)).collect();
        let result: Slot<T> = Mutex::new(None);
        {
            let f = &f;
            let partials_ref = &partials;
            let result_ref = &result;
            let mut graph = TaskGraph::new();
            let mut folds = Vec::with_capacity(inputs.len());
            for (input, partial) in inputs.iter().zip(partials.iter()) {
                folds.push(graph.add_task("reduce-fold", move || {
                    let mut it = take_slot(input).into_iter();
                    if let Some(first) = it.next() {
                        fill_slot(partial, it.fold(first, f));
                    }
                }));
            }
            let merge = graph.add_task("reduce-merge", move || {
                let mut acc: Option<T> = None;
                for slot in partials_ref {
                    if let Some(v) = slot.lock().expect("slot lock").take() {
                        acc = Some(match acc {
                            Some(a) => f(a, v),
                            None => v,
                        });
                    }
                }
                if let Some(v) = acc {
                    fill_slot(result_ref, v);
                }
            });
            for fold in folds {
                graph.add_edge(fold, merge).expect("valid edge");
            }
            ctx.execute(graph);
        }
        result.into_inner().expect("slot lock")
    }

    /// Gather all elements (partition order preserved).
    pub fn collect(self) -> Vec<T> {
        self.partitions.into_iter().flatten().collect()
    }
}

impl<K, V> Dataset<(K, V)>
where
    K: Send + Hash + Eq + Clone,
    V: Send,
{
    /// Hash shuffle: group values by key into `output_partitions`
    /// partitions (all pairs of one key land in one partition), then
    /// build per-key groups. The Spark `groupByKey` analog.
    ///
    /// Compiles to `shuffle-scatter` tasks (one per input partition,
    /// bucketing pairs by key hash) feeding `shuffle-gather` tasks (one
    /// per output partition) through a full bipartite edge set. Bucket
    /// assignment is byte-identical to the pre-`pga-sched` engine, and
    /// each key's values arrive in input-partition-then-row order as
    /// before; key order *within* an output partition is now
    /// deterministic (first occurrence) where the old engine exposed
    /// `HashMap` iteration order.
    pub fn group_by_key(self, output_partitions: usize) -> Dataset<(K, Vec<V>)> {
        assert!(output_partitions >= 1);
        let ctx = self.ctx.clone();
        let inputs: Vec<Slot<Vec<(K, V)>>> = self
            .partitions
            .into_iter()
            .map(|p| Mutex::new(Some(p)))
            .collect();
        // scattered[input][bucket] holds that input partition's pairs for
        // that bucket, in row order.
        let scattered: Vec<Mutex<Buckets<K, V>>> =
            inputs.iter().map(|_| Mutex::new(Vec::new())).collect();
        let outputs: Vec<Slot<Grouped<K, V>>> =
            (0..output_partitions).map(|_| Mutex::new(None)).collect();
        {
            let scattered_ref = &scattered;
            let mut graph = TaskGraph::new();
            let mut scatters = Vec::with_capacity(inputs.len());
            for (input, slot) in inputs.iter().zip(scattered.iter()) {
                scatters.push(graph.add_task("shuffle-scatter", move || {
                    let mut buckets: Vec<Vec<(K, V)>> =
                        (0..output_partitions).map(|_| Vec::new()).collect();
                    for (k, v) in take_slot(input) {
                        buckets[bucket_for(&k, output_partitions)].push((k, v));
                    }
                    *slot.lock().expect("slot lock") = buckets;
                }));
            }
            for (bucket, output) in outputs.iter().enumerate() {
                let gather = graph.add_task("shuffle-gather", move || {
                    let mut order: Vec<K> = Vec::new();
                    let mut groups: HashMap<K, Vec<V>> = HashMap::new();
                    for slot in scattered_ref {
                        let mut guard = slot.lock().expect("slot lock");
                        if let Some(pairs) = guard.get_mut(bucket) {
                            for (k, v) in std::mem::take(pairs) {
                                if let Some(vs) = groups.get_mut(&k) {
                                    vs.push(v);
                                } else {
                                    order.push(k.clone());
                                    groups.insert(k, vec![v]);
                                }
                            }
                        }
                    }
                    let grouped = order
                        .into_iter()
                        .filter_map(|k| groups.remove(&k).map(|vs| (k, vs)))
                        .collect();
                    fill_slot(output, grouped);
                });
                for &scatter in &scatters {
                    graph.add_edge(scatter, gather).expect("valid edge");
                }
            }
            ctx.execute(graph);
        }
        Dataset {
            ctx,
            partitions: drain_slots(outputs),
        }
    }
}

/// The shuffle's bucket assignment — kept byte-identical to the
/// pre-`pga-sched` engine (same `DefaultHasher` construction, same
/// modulo) so cached shuffle layouts and the pinning tests agree.
fn bucket_for<K: Hash>(key: &K, output_partitions: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % output_partitions as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Dataflow {
        Dataflow::new(4)
    }

    #[test]
    fn parallelize_partitions_evenly() {
        let d = ctx().parallelize((0..10).collect(), 3);
        assert_eq!(d.num_partitions(), 3);
        assert_eq!(d.count(), 10);
        let sizes: Vec<usize> = d.partitions.iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn map_preserves_order() {
        let d = ctx().parallelize((0..100).collect(), 7);
        let out = d.map(|x: i32| x * 2).collect();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_drops_elements() {
        let d = ctx().parallelize((0..100).collect(), 5);
        let out = d.filter(|x: &i32| x % 3 == 0).collect();
        assert_eq!(out.len(), 34);
        assert!(out.iter().all(|x| x % 3 == 0));
    }

    #[test]
    fn flat_map_expands() {
        let d = ctx().parallelize(vec![1, 2, 3], 2);
        let out = d.flat_map(|x: i32| vec![x; x as usize]).collect();
        assert_eq!(out, vec![1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn reduce_sums() {
        let d = ctx().parallelize((1..=100).collect(), 9);
        assert_eq!(d.reduce(|a: i32, b| a + b), Some(5050));
    }

    #[test]
    fn reduce_empty_is_none() {
        let d = ctx().parallelize(Vec::<i32>::new(), 3);
        assert_eq!(d.reduce(|a, b| a + b), None);
    }

    #[test]
    fn reduce_with_empty_partitions() {
        // 2 elements across 5 partitions: 3 empty partitions must not break.
        let d = ctx().parallelize(vec![10, 20], 5);
        assert_eq!(d.reduce(|a: i32, b| a + b), Some(30));
    }

    #[test]
    fn group_by_key_collects_all_values() {
        let pairs: Vec<(u32, u32)> = (0..100).map(|i| (i % 7, i)).collect();
        let d = ctx().parallelize(pairs, 6);
        let grouped = d.group_by_key(4).collect();
        assert_eq!(grouped.len(), 7);
        let total: usize = grouped.iter().map(|(_, vs)| vs.len()).sum();
        assert_eq!(total, 100);
        for (k, vs) in &grouped {
            assert!(vs.iter().all(|v| v % 7 == *k));
        }
    }

    #[test]
    fn group_by_key_single_output_partition() {
        let d = ctx().parallelize(vec![(1, "a"), (2, "b"), (1, "c")], 2);
        let grouped = d.group_by_key(1).collect();
        assert_eq!(grouped.len(), 2);
        let ones = grouped.iter().find(|(k, _)| *k == 1).unwrap();
        assert_eq!(ones.1.len(), 2);
    }

    #[test]
    fn map_partitions_sees_whole_partitions() {
        let d = ctx().parallelize((0..12).collect(), 4);
        let sums = d
            .map_partitions(|p: Vec<i32>| vec![p.iter().sum::<i32>()])
            .collect();
        assert_eq!(sums.len(), 4);
        assert_eq!(sums.iter().sum::<i32>(), 66);
    }

    #[test]
    fn single_worker_matches_many_workers() {
        let serial = Dataflow::new(1)
            .parallelize((0..1000).collect(), 8)
            .map(|x: i64| x * x)
            .reduce(|a, b| a + b);
        let parallel = Dataflow::new(8)
            .parallelize((0..1000).collect(), 8)
            .map(|x: i64| x * x)
            .reduce(|a, b| a + b);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn more_partitions_than_elements() {
        let d = ctx().parallelize(vec![1, 2], 10);
        assert_eq!(d.count(), 2);
        assert_eq!(d.map(|x: i32| x + 1).collect(), vec![2, 3]);
    }

    // ---- edge-case audit + old-vs-new engine pinning (ISSUE 10) ----
    //
    // The reference implementations below reproduce the pre-`pga-sched`
    // bounded-pool engine's observable behavior partition by partition;
    // the tests pin the task-graph engine against them byte-for-byte.

    #[test]
    #[should_panic(expected = "need at least one worker")]
    fn zero_workers_rejected() {
        let _ = Dataflow::new(0);
    }

    #[test]
    #[should_panic(expected = "need at least one partition")]
    fn zero_partitions_rejected() {
        let _ = ctx().parallelize(vec![1, 2, 3], 0);
    }

    #[test]
    #[should_panic]
    fn zero_output_partitions_rejected_by_group_by_key() {
        let _ = ctx().parallelize(vec![(1u32, 1u32)], 2).group_by_key(0);
    }

    /// Old engine's `parallelize` chunking, reproduced serially.
    fn reference_partitions<T>(data: Vec<T>, partitions: usize) -> Vec<Vec<T>> {
        let per = data.len().div_ceil(partitions).max(1);
        let mut parts = Vec::with_capacity(partitions);
        let mut it = data.into_iter();
        for _ in 0..partitions {
            parts.push(it.by_ref().take(per).collect());
        }
        parts
    }

    #[test]
    fn map_partitions_pins_old_engine_per_partition() {
        for parts in [1, 3, 7, 16] {
            for workers in [1, 2, 5] {
                let data: Vec<i64> = (0..37).collect();
                let got = Dataflow::new(workers)
                    .parallelize(data.clone(), parts)
                    .map_partitions(|p| vec![p.iter().sum::<i64>(), p.len() as i64]);
                let expect: Vec<Vec<i64>> = reference_partitions(data, parts)
                    .into_iter()
                    .map(|p| vec![p.iter().sum::<i64>(), p.len() as i64])
                    .collect();
                assert_eq!(got.partitions, expect, "parts={parts} workers={workers}");
            }
        }
    }

    #[test]
    fn empty_dataset_flows_through_every_operation() {
        let empty: Vec<i64> = Vec::new();
        let d = ctx().parallelize(empty.clone(), 4);
        assert_eq!(d.num_partitions(), 4);
        assert_eq!(d.count(), 0);
        assert_eq!(
            ctx().parallelize(empty.clone(), 4).map(|x| x + 1).collect(),
            Vec::<i64>::new()
        );
        assert_eq!(
            ctx()
                .parallelize(empty.clone(), 4)
                .filter(|_| true)
                .collect(),
            Vec::<i64>::new()
        );
        assert_eq!(ctx().parallelize(empty, 4).reduce(|a, b| a + b), None);
        let no_pairs: Vec<(u32, u32)> = Vec::new();
        let grouped = ctx().parallelize(no_pairs, 3).group_by_key(5);
        assert_eq!(grouped.num_partitions(), 5);
        assert_eq!(grouped.collect(), Vec::<(u32, Vec<u32>)>::new());
    }

    #[test]
    fn group_by_key_bucket_assignment_pins_old_engine() {
        // The old engine computed `DefaultHasher(k) % output_partitions`;
        // every key must land in exactly that output partition.
        let pairs: Vec<(u64, u64)> = (0..200).map(|i| (i % 23, i)).collect();
        let grouped = ctx().parallelize(pairs, 7).group_by_key(5);
        assert_eq!(grouped.num_partitions(), 5);
        for (idx, part) in grouped.partitions.iter().enumerate() {
            for (k, _) in part {
                assert_eq!(bucket_for(k, 5), idx, "key {k} in wrong bucket");
            }
        }
    }

    #[test]
    fn group_by_key_pins_old_engine_per_partition() {
        // Old-engine reference: scatter in partition-row order, serial
        // redistribution, per-bucket HashMap grouping. Key order within a
        // partition was HashMap-iteration (nondeterministic) there, so the
        // comparison sorts pairs by key; value order per key was
        // deterministic and must match exactly.
        let pairs: Vec<(u32, i64)> = (0..150).map(|i| (i % 13, i as i64 * 3)).collect();
        let (input_parts, output_parts) = (6, 4);

        let mut buckets: Vec<Vec<(u32, i64)>> = (0..output_parts).map(|_| Vec::new()).collect();
        for part in reference_partitions(pairs.clone(), input_parts) {
            for (k, v) in part {
                buckets[bucket_for(&k, output_parts)].push((k, v));
            }
        }
        let expect: Vec<Vec<(u32, Vec<i64>)>> = buckets
            .into_iter()
            .map(|bucket| {
                let mut groups: HashMap<u32, Vec<i64>> = HashMap::new();
                for (k, v) in bucket {
                    groups.entry(k).or_default().push(v);
                }
                let mut out: Vec<(u32, Vec<i64>)> = groups.into_iter().collect();
                out.sort_by_key(|(k, _)| *k);
                out
            })
            .collect();

        for workers in [1, 4] {
            let grouped = Dataflow::new(workers)
                .parallelize(pairs.clone(), input_parts)
                .group_by_key(output_parts);
            let mut got = grouped.partitions.clone();
            for part in &mut got {
                part.sort_by_key(|(k, _)| *k);
            }
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn group_by_key_key_order_is_first_occurrence() {
        // New-engine guarantee the old engine lacked: pair order within an
        // output partition follows first key occurrence in scan order.
        let pairs = vec![(5u32, "a"), (1, "b"), (5, "c"), (9, "d"), (1, "e")];
        let grouped = ctx().parallelize(pairs, 1).group_by_key(1).collect();
        let keys: Vec<u32> = grouped.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![5, 1, 9]);
        assert_eq!(grouped[0].1, vec!["a", "c"]);
        assert_eq!(grouped[1].1, vec!["b", "e"]);
    }

    #[test]
    fn stats_accumulate_across_operations() {
        let df = Dataflow::new(3);
        let before = df.stats();
        assert_eq!(before.graphs_run, 0);
        let sum = df
            .parallelize((0..100i64).collect(), 8)
            .map(|x| x + 1)
            .reduce(|a, b| a + b);
        assert_eq!(sum, Some(5050));
        let after = df.stats();
        // map -> 8 tasks; reduce -> 8 folds + 1 merge.
        assert_eq!(after.graphs_run, 2);
        assert_eq!(after.tasks_run, 17);
        assert!(after.task_ns_total > 0);
        assert!(after.mean_task_us() > 0.0);
    }

    #[test]
    fn seeded_contexts_share_stats_across_clones() {
        let df = Dataflow::with_seed(2, 99);
        let clone = df.clone();
        let _ = clone
            .parallelize((0..10i32).collect(), 2)
            .map(|x| x)
            .collect();
        assert_eq!(df.stats().graphs_run, 1);
    }
}
