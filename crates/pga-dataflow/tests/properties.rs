//! Property tests: every dataflow transformation agrees with its
//! sequential `Vec` counterpart regardless of partitioning and worker
//! count.

use proptest::prelude::*;

use pga_dataflow::Dataflow;

fn data() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(-1000i64..1000, 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn map_equals_sequential(d in data(), workers in 1usize..6, parts in 1usize..9) {
        let df = Dataflow::new(workers);
        let got = df.parallelize(d.clone(), parts).map(|x| x * 3 - 1).collect();
        let expect: Vec<i64> = d.iter().map(|x| x * 3 - 1).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn filter_equals_sequential(d in data(), workers in 1usize..6, parts in 1usize..9) {
        let df = Dataflow::new(workers);
        let got = df.parallelize(d.clone(), parts).filter(|x| x % 3 == 0).collect();
        let expect: Vec<i64> = d.iter().copied().filter(|x| x % 3 == 0).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn flat_map_equals_sequential(d in data(), workers in 1usize..6, parts in 1usize..9) {
        let df = Dataflow::new(workers);
        let got = df
            .parallelize(d.clone(), parts)
            .flat_map(|x| if x % 2 == 0 { vec![x, x] } else { vec![] })
            .collect();
        let expect: Vec<i64> = d
            .iter()
            .flat_map(|&x| if x % 2 == 0 { vec![x, x] } else { vec![] })
            .collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn reduce_equals_sequential_sum(d in data(), workers in 1usize..6, parts in 1usize..9) {
        let df = Dataflow::new(workers);
        let got = df.parallelize(d.clone(), parts).reduce(|a, b| a + b);
        let expect = d.iter().copied().reduce(|a, b| a + b);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn count_is_preserved_through_partitioning(d in data(), parts in 1usize..16) {
        let df = Dataflow::new(3);
        let ds = df.parallelize(d.clone(), parts);
        prop_assert_eq!(ds.count(), d.len());
        prop_assert!(ds.num_partitions() <= parts.max(1));
    }

    #[test]
    fn group_by_key_partitions_pairs_completely(
        pairs in proptest::collection::vec((0u8..12, -100i64..100), 0..150),
        out_parts in 1usize..6,
    ) {
        let df = Dataflow::new(4);
        let grouped = df
            .parallelize(pairs.clone(), 5)
            .group_by_key(out_parts)
            .collect();
        // Every key appears exactly once.
        let mut keys: Vec<u8> = grouped.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        let mut expect_keys: Vec<u8> = pairs.iter().map(|(k, _)| *k).collect();
        expect_keys.sort_unstable();
        expect_keys.dedup();
        prop_assert_eq!(keys, expect_keys);
        // Multiset of values per key matches.
        for (k, mut vs) in grouped {
            vs.sort_unstable();
            let mut expect: Vec<i64> = pairs
                .iter()
                .filter(|(pk, _)| *pk == k)
                .map(|(_, v)| *v)
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(vs, expect);
        }
    }

    #[test]
    fn map_partitions_preserves_partition_structure(d in data(), parts in 1usize..8) {
        let df = Dataflow::new(2);
        let ds = df.parallelize(d.clone(), parts);
        let n_parts = ds.num_partitions();
        let counted = ds.map_partitions(|p| vec![p.len()]).collect();
        prop_assert_eq!(counted.len(), n_parts);
        prop_assert_eq!(counted.iter().sum::<usize>(), d.len());
    }
}
