//! E3 — online FDR evaluation throughput (paper: 939k samples/sec).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pga_detect::{train_unit, OnlineEvaluator};
use pga_linalg::Matrix;
use pga_sensorgen::{Fleet, FleetConfig};
use pga_stats::Procedure;

fn setup(sensors: u32) -> (OnlineEvaluator, Vec<Matrix>) {
    let fleet = Fleet::new(FleetConfig {
        units: 1,
        sensors_per_unit: sensors,
        ..FleetConfig::paper_scale(9)
    });
    let obs = fleet.observation_window(0, 199, 200);
    let model = train_unit(0, &obs).unwrap();
    let ev = OnlineEvaluator::new(model, Procedure::BenjaminiHochberg, 0.05);
    let windows: Vec<Matrix> = (0..16)
        .map(|k| fleet.observation_window(0, 300 + (k + 1) * 50, 50))
        .collect();
    (ev, windows)
}

fn bench_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_evaluation");
    group.sample_size(10);
    for sensors in [100u32, 1000] {
        let (ev, windows) = setup(sensors);
        let samples_per_window = 50 * sensors as u64;
        group.throughput(Throughput::Elements(samples_per_window));
        group.bench_with_input(
            BenchmarkId::new("single_window", sensors),
            &sensors,
            |bch, _| bch.iter(|| black_box(ev.evaluate(black_box(&windows[0])))),
        );
        group.throughput(Throughput::Elements(
            samples_per_window * windows.len() as u64,
        ));
        group.bench_with_input(
            BenchmarkId::new("parallel_batch16", sensors),
            &sensors,
            |bch, _| bch.iter(|| black_box(ev.evaluate_many(black_box(&windows)))),
        );
    }
    group.finish();

    // Print the headline number the paper reports.
    let r = pga_bench::eval_throughput_experiment(1000, 50, 64, 9);
    println!(
        "\nE3: online evaluation sustained {:.0} samples/s parallel, {:.0} serial (paper: 939,000)\n",
        r.throughput, r.serial_throughput
    );
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
