//! E6/E7/E8 — the §III-B design-choice ablations: key salting, proxy
//! backpressure, write-path compaction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pga_cluster::sim::{simulate_ingestion, ProxyMode, SimClusterConfig};
use pga_ingest::{proxy_ablation, routing_shares, salting_ablation};

fn bench_ablations(c: &mut Criterion) {
    // E6: print the salting table, bench both routings.
    let salt = salting_ablation(30, 1_000_000.0);
    println!(
        "\nE6 salting: salted {:.0}/s (max share {:.3}) vs unsalted {:.0}/s (max share {:.3}) → {:.1}x",
        salt.salted_throughput,
        salt.salted_max_share,
        salt.unsalted_throughput,
        salt.unsalted_max_share,
        salt.speedup()
    );
    let cfg = SimClusterConfig::paper_calibration(30);
    let mut group = c.benchmark_group("salting");
    group.sample_size(10);
    for (name, salted) in [("salted", true), ("unsalted", false)] {
        let shares = routing_shares(30, 100, 1000, salted);
        group.bench_with_input(BenchmarkId::new("ingest_1M", name), &shares, |bch, sh| {
            bch.iter(|| {
                black_box(simulate_ingestion(
                    black_box(&cfg),
                    black_box(sh),
                    1_000_000.0,
                    f64::INFINITY,
                    ProxyMode::Buffered,
                ))
            })
        });
    }
    group.finish();

    // E7: proxy vs no proxy.
    let proxy = proxy_ablation(10, 2_000_000.0);
    println!(
        "E7 proxy: with proxy {} crashes / {:.0} dropped; without proxy {} crashes / {:.0} dropped",
        proxy.with_proxy.crashes,
        proxy.with_proxy.dropped,
        proxy.without_proxy.crashes,
        proxy.without_proxy.dropped
    );
    let mut group = c.benchmark_group("proxy");
    group.sample_size(10);
    let shares = routing_shares(10, 100, 1000, true);
    let mut cfg = SimClusterConfig::paper_calibration(10);
    cfg.crash_overflow_threshold = 100;
    for (name, mode) in [("buffered", ProxyMode::Buffered), ("none", ProxyMode::None)] {
        group.bench_with_input(BenchmarkId::new("firehose_2M", name), &mode, |bch, m| {
            bch.iter(|| {
                black_box(simulate_ingestion(
                    black_box(&cfg),
                    black_box(&shares),
                    2_000_000.0,
                    f64::INFINITY,
                    *m,
                ))
            })
        });
    }
    group.finish();

    // E8: compaction on/off over the real storage stack.
    let rows = pga_bench::compaction_ablation(4, 6, 3);
    for r in &rows {
        println!(
            "E8 compaction {}: {:.3} RPCs/point",
            if r.compaction { "enabled " } else { "disabled" },
            r.rpcs_per_point
        );
    }
    let mut group = c.benchmark_group("compaction");
    group.sample_size(10);
    for enabled in [false, true] {
        group.bench_with_input(
            BenchmarkId::new("ingest_series", enabled),
            &enabled,
            |bch, &en| bch.iter(|| black_box(pga_bench::compaction_ablation_single(2, 4, en))),
        );
    }
    group.finish();
    println!();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
