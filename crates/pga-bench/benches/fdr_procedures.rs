//! E5 — multiple-testing procedures: cost per family and the quality table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use rand::{Rng, SeedableRng};

use pga_stats::Procedure;

fn p_family(m: usize, signal: usize, seed: u64) -> Vec<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut p: Vec<f64> = (0..m).map(|_| rng.gen::<f64>()).collect();
    for v in p.iter_mut().take(signal) {
        *v *= 1e-6; // strong signals
    }
    p
}

fn bench_procedures(c: &mut Criterion) {
    let mut group = c.benchmark_group("procedures_m1000");
    group.sample_size(20);
    let family = p_family(1000, 10, 1);
    group.throughput(Throughput::Elements(1000));
    for proc in Procedure::all() {
        group.bench_with_input(BenchmarkId::new(proc.name(), 1000), &proc, |bch, proc| {
            bch.iter(|| black_box(proc.apply(black_box(&family), 0.05)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("bh_scaling");
    group.sample_size(20);
    for m in [100usize, 1_000, 10_000, 100_000] {
        let family = p_family(m, m / 100, 2);
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::from_parameter(m), &family, |bch, fam| {
            bch.iter(|| black_box(pga_stats::benjamini_hochberg(black_box(fam), 0.05)))
        });
    }
    group.finish();

    // The quality table (who controls what, at what power).
    let rows = pga_bench::fdr_experiment(16, 64, 560, 0.5, 2024);
    println!(
        "\nE5: procedure comparison (16 units x 64 sensors, eval at t=560, truth floor 0.5σ):"
    );
    println!(
        "{:<22} {:>12} {:>8} {:>8} {:>8}",
        "procedure", "false-alarms", "FDR", "FWER", "power"
    );
    for r in &rows {
        println!(
            "{:<22} {:>12.2} {:>8.3} {:>8.3} {:>8.3}",
            r.procedure, r.mean_false_alarms, r.empirical_fdr, r.empirical_fwer, r.power
        );
    }
    println!();
}

criterion_group!(benches, bench_procedures);
criterion_main!(benches);
