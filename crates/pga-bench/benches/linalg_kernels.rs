//! Kernel benches backing E3/E10: matmul (serial vs rayon), covariance,
//! block SVD — the primitives the paper's "single matrix multiplication
//! per iteration" and covariance/SVD training reduce to.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pga_linalg::{covariance_matrix, eigh, svd, JacobiOptions, Matrix};

fn filled(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut x = seed | 1;
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        data.push(((x >> 33) as f64) / (u32::MAX as f64) - 0.5);
    }
    Matrix::from_vec(rows, cols, data).unwrap()
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for n in [64usize, 256] {
        let a = filled(n, n, 3);
        let b = filled(n, n, 7);
        group.throughput(Throughput::Elements((n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul(black_box(&b)).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("rayon", n), &n, |bch, _| {
            bch.iter(|| black_box(a.par_matmul(black_box(&b)).unwrap()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("covariance");
    group.sample_size(10);
    for p in [32usize, 128] {
        let obs = filled(200, p, 11);
        group.bench_with_input(BenchmarkId::new("200rows", p), &obs, |bch, obs| {
            bch.iter(|| black_box(covariance_matrix(black_box(obs)).unwrap()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("decomposition");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        let obs = filled(200, n, 13);
        let cov = covariance_matrix(&obs).unwrap();
        group.bench_with_input(BenchmarkId::new("eigh", n), &cov, |bch, cov| {
            bch.iter(|| black_box(eigh(black_box(cov), JacobiOptions::default()).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("svd", n), &cov, |bch, cov| {
            bch.iter(|| black_box(svd(black_box(cov)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
