//! E10 — offline training scaling on the Spark-analog dataflow engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pga_dataflow::Dataflow;
use pga_detect::{train_fleet, train_unit};
use pga_sensorgen::{Fleet, FleetConfig};

fn bench_training(c: &mut Criterion) {
    let fleet = Fleet::new(FleetConfig {
        units: 16,
        sensors_per_unit: 64,
        ..FleetConfig::paper_scale(13)
    });

    let mut group = c.benchmark_group("fleet_training");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        let df = Dataflow::new(workers);
        group.bench_with_input(
            BenchmarkId::new("16x64_window150", workers),
            &workers,
            |bch, _| {
                bch.iter(|| black_box(train_fleet(black_box(&fleet), 150, &df, None).unwrap()))
            },
        );
    }
    group.finish();

    // Per-unit training cost by sensor width (covariance + block SVD).
    let mut group = c.benchmark_group("unit_training");
    group.sample_size(10);
    for sensors in [32u32, 128, 512] {
        let f = Fleet::new(FleetConfig {
            units: 1,
            sensors_per_unit: sensors,
            ..FleetConfig::paper_scale(5)
        });
        let obs = f.observation_window(0, 149, 150);
        group.bench_with_input(BenchmarkId::from_parameter(sensors), &obs, |bch, obs| {
            bch.iter(|| black_box(train_unit(0, black_box(obs)).unwrap()))
        });
    }
    group.finish();

    // Print the scaling table for EXPERIMENTS.md.
    let rows = pga_bench::training_scaling_experiment(16, 64, 150, &[1, 2, 4, 8], 13);
    println!("\nE10 training scaling (16 units x 64 sensors):");
    for r in &rows {
        println!(
            "  {} workers: {:.3}s ({:.2}x)",
            r.workers, r.elapsed_secs, r.speedup
        );
    }
    println!();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
