//! E1/E2 — Figure 2: ingestion scale-up.
//!
//! Benches the queueing-model sweep (with real codec-derived routing) at
//! each paper node count, plus the real thread-scale pipeline, and prints
//! the reproduced Fig-2 table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pga_bench::fig2_report;
use pga_cluster::sim::{simulate_ingestion, ProxyMode, SimClusterConfig};
use pga_ingest::routing_shares;

fn bench_fig2(c: &mut Criterion) {
    // Print the reproduced figure once, up front.
    let report = fig2_report(2_000_000.0, false);
    println!("\nFig 2 (left) reproduction — throughput vs nodes:");
    for (row, &(_, paper)) in report.rows.iter().zip(&report.paper_reference) {
        println!(
            "  {:>2} nodes: {:>8.0} samples/s   (paper: {:>7.0})",
            row.nodes, row.throughput, paper
        );
    }
    let (a, b, r2) = report.fit;
    println!("  fit: {a:.0} + {b:.0}/node, r²={r2:.4}\n");

    let mut group = c.benchmark_group("fig2_ingestion_sim");
    group.sample_size(10);
    for nodes in [10usize, 20, 30] {
        let cfg = SimClusterConfig::paper_calibration(nodes);
        let shares = routing_shares(nodes, 100, 1000, true);
        group.bench_with_input(BenchmarkId::new("simulate", nodes), &nodes, |bch, _| {
            bch.iter(|| {
                let r = simulate_ingestion(
                    black_box(&cfg),
                    black_box(&shares),
                    1_000_000.0,
                    f64::INFINITY,
                    ProxyMode::Buffered,
                );
                black_box(r.throughput())
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("routing_shares");
    group.sample_size(10);
    group.bench_function("100x1000_salted", |bch| {
        bch.iter(|| black_box(routing_shares(30, 100, 1000, true)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
