//! Plain-text table rendering for experiment reports.

/// Render rows as an aligned ASCII table. The first row is the header.
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, w) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            out.push_str(&format!("{cell:<w$}"));
            if i + 1 < cols {
                out.push_str("  ");
            }
        }
        out.push('\n');
        if ri == 0 {
            for (i, w) in widths.iter().enumerate() {
                out.push_str(&"-".repeat(*w));
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let t = render_table(&[
            vec!["nodes".into(), "throughput".into()],
            vec!["10".into(), "173000".into()],
            vec!["30".into(), "399000".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("nodes"));
        assert!(lines[1].starts_with("-----"));
        // Columns align: "throughput" starts at the same offset everywhere.
        let off = lines[0].find("throughput").unwrap();
        assert_eq!(&lines[2][off..off + 6], "173000");
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert_eq!(render_table(&[]), "");
    }

    #[test]
    fn ragged_rows_are_padded() {
        let t = render_table(&[vec!["a".into(), "b".into(), "c".into()], vec!["1".into()]]);
        assert!(t.lines().count() == 3);
    }
}
