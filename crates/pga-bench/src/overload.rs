//! E18 — end-to-end overload control under storm load.
//!
//! Two halves, both deterministic:
//!
//! 1. **Calibrated storm model** ([`pga_cluster::simulate_overload`]): a
//!    source at 3× calibrated capacity with one slow server, run through
//!    the full overload-control stack (bounded buffer with typed submit
//!    rejection, watermark admission, circuit breakers with hedged
//!    re-routing, deadlines) and through both seed stacks — the unbounded
//!    buffering proxy and the proxyless firehose. The controlled arm must
//!    keep goodput ≥ 80% of calibrated capacity with a bounded p99; the
//!    seed arms demonstrate the two collapse modes (unbounded latency,
//!    crashed servers).
//! 2. **Live-stack storm campaign** ([`pga_faultsim::run_storm_campaign`]):
//!    seeded schedules with guaranteed storms and slow-server windows
//!    against the real storage stack, checked by the batch-accounting and
//!    no-acked-loss oracles — every submitted batch resolves to an ack or
//!    a typed error, never silence.

use pga_cluster::{simulate_overload, OverloadConfig, OverloadMode, OverloadReport};
use pga_faultsim::{run_storm_campaign, CampaignConfig, SimStats};
use serde::Serialize;

/// Goodput floor the controlled arm must clear, as a fraction of
/// calibrated (all-healthy) cluster capacity.
pub const GOODPUT_FLOOR: f64 = 0.8;

/// E18 artifact: the three model arms plus the live-stack storm verdict.
#[derive(Debug, Clone, Serialize)]
pub struct OverloadStormReport {
    /// Overload-controlled stack under the storm.
    pub controlled: OverloadReport,
    /// Seed stack (unbounded buffer, fixed routing, no feedback).
    pub seed_buffered: OverloadReport,
    /// Seed stack without a proxy (the §III-B crash mode).
    pub seed_direct: OverloadReport,
    /// `controlled.goodput_fraction >= GOODPUT_FLOOR`.
    pub goodput_target_met: bool,
    /// Live-stack storm campaign seeds executed.
    pub storm_seeds_run: u64,
    /// `true` when every storm-campaign oracle held on every seed.
    pub storm_campaign_passed: bool,
    /// Shrunk replay command lines for failing storm seeds (empty when
    /// passed).
    pub storm_failures: Vec<String>,
    /// Injection totals over the storm campaign.
    pub storm_totals: SimStats,
}

impl OverloadStormReport {
    /// Overall E18 verdict.
    pub fn passed(&self) -> bool {
        self.goodput_target_met
            && self.storm_campaign_passed
            && self.controlled.conserves_samples()
            && self.controlled.lost_in_queue == 0.0
            && self.controlled.dropped == 0.0
    }
}

/// Run E18: the calibrated storm model over all three stacks plus a
/// `storm_seeds`-seed live-stack storm campaign.
pub fn overload_storm_experiment(storm_seeds: u64) -> OverloadStormReport {
    let controlled = simulate_overload(&OverloadConfig::e18(5, OverloadMode::Controlled));
    let seed_buffered = simulate_overload(&OverloadConfig::e18(5, OverloadMode::SeedBuffered));
    let seed_direct = simulate_overload(&OverloadConfig::e18(5, OverloadMode::SeedDirect));
    let campaign = run_storm_campaign(&CampaignConfig {
        seeds: storm_seeds,
        ..CampaignConfig::default()
    });
    OverloadStormReport {
        goodput_target_met: controlled.goodput_fraction >= GOODPUT_FLOOR,
        controlled,
        seed_buffered,
        seed_direct,
        storm_seeds_run: campaign.seeds_run,
        storm_campaign_passed: campaign.passed(),
        storm_failures: campaign.failures.iter().map(|f| f.replay.clone()).collect(),
        storm_totals: campaign.totals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e18_holds_in_quick_mode() {
        let rep = overload_storm_experiment(4);
        assert!(
            rep.passed(),
            "overload verdict failed: goodput {} campaign {:?}",
            rep.controlled.goodput_fraction,
            rep.storm_failures
        );
        // Both collapse modes are visible in the seed arms.
        assert!(rep.seed_buffered.p99_latency_secs > rep.controlled.p99_latency_secs * 10.0);
        assert!(rep.seed_direct.crashes > 0);
        // The live stack actually saw storms and Busy traffic.
        assert!(rep.storm_totals.storms >= 4);
        assert!(rep.storm_totals.busy_rejections > 0);
        assert_eq!(
            rep.storm_totals.batches_generated,
            rep.storm_totals.batches_acked
        );
    }

    #[test]
    fn e18_is_deterministic() {
        let a = overload_storm_experiment(2);
        let b = overload_storm_experiment(2);
        assert_eq!(a.controlled, b.controlled);
        assert_eq!(a.seed_buffered, b.seed_buffered);
        assert_eq!(a.seed_direct, b.seed_direct);
        assert_eq!(a.storm_totals, b.storm_totals);
        assert_eq!(a.passed(), b.passed());
    }
}
