//! E23 — incremental fleet retraining throughput and work-stealing
//! scheduler scaling.
//!
//! The paper retrains offline in batch: every unit's covariance/SVD is
//! recomputed on every pass even when only a handful of units saw new
//! samples (§IV-A). This experiment measures what dirty-unit tracking
//! buys under live ingest, and what the work-stealing scheduler buys
//! over the sequential executor, with a differential oracle pinning
//! both to the batch answer:
//!
//! * **Retrain rounds** — each round, a rotating subset of units
//!   receives fresh samples. The *full* arm rebuilds the fleet from
//!   scratch: a new [`FleetTrainer`] re-accumulates every unit's entire
//!   history (same rows, same order) and re-finishes every unit. The
//!   *incremental* arm keeps its sufficient statistics resident,
//!   ingests only the new rows, and re-finishes only the dirty units.
//!   Welford accumulation is deterministic in row order, so the two
//!   arms must produce **identical** models — [`model_divergence`]
//!   above `1e-9` on any unit is a mismatch and fails the run.
//! * **Scheduler scaling** — the full-fleet re-finish workload is then
//!   run at 1..=N workers. One worker uses the sequential executor
//!   (`run_sequential`); more workers use the work-stealing scheduler,
//!   whose steal/queue-depth counters are captured per sweep point.
//!
//! Acceptance: zero oracle mismatches, incremental ≥ 5× the full
//! rebuild, and — on machines with ≥ 4 cores — work stealing ≥ 3× the
//! sequential executor at full worker count. The parallel bar is gated
//! on core count because a single-core host serializes the workers and
//! the wall-clock ratio measures the OS scheduler, not ours;
//! EXPERIMENTS.md records the gate.

use std::collections::BTreeMap;
use std::time::Instant;

use serde::Serialize;

use pga_dataflow::Dataflow;
use pga_detect::{model_divergence, FleetTrainer};
use pga_sensorgen::{Fleet, FleetConfig};

/// Sizing for [`train_retrain_experiment`].
#[derive(Debug, Clone, Serialize)]
pub struct TrainBenchConfig {
    /// Fleet units.
    pub units: u32,
    /// Sensors per unit.
    pub sensors: u32,
    /// Rows of history every unit starts with.
    pub base_rows: usize,
    /// Live-ingest retrain rounds.
    pub rounds: usize,
    /// Units receiving fresh samples each round (rotating subset).
    pub dirty_units: usize,
    /// Fresh rows per dirty unit per round.
    pub delta_rows: usize,
    /// Worker-count ceiling for the scheduler scaling sweep.
    pub workers: usize,
    /// Fleet seed.
    pub seed: u64,
}

impl TrainBenchConfig {
    /// CI-sized configuration (a few seconds end to end).
    pub fn quick() -> Self {
        TrainBenchConfig {
            units: 8,
            sensors: 16,
            base_rows: 480,
            rounds: 3,
            dirty_units: 1,
            delta_rows: 24,
            workers: 4,
            seed: 2026,
        }
    }

    /// Paper-style configuration for the full report.
    pub fn full() -> Self {
        TrainBenchConfig {
            units: 12,
            sensors: 64,
            base_rows: 600,
            rounds: 5,
            dirty_units: 2,
            delta_rows: 60,
            workers: 8,
            seed: 2026,
        }
    }
}

/// One live-ingest retrain round: both arms plus the oracle verdict.
#[derive(Debug, Clone, Serialize)]
pub struct RetrainRound {
    /// Round index.
    pub round: usize,
    /// Units that received fresh samples (and were therefore dirty).
    pub dirty: Vec<u32>,
    /// Wall-clock of the from-scratch rebuild, milliseconds.
    pub full_ms: f64,
    /// Wall-clock of the dirty-only incremental pass, milliseconds.
    pub incremental_ms: f64,
    /// Worst [`model_divergence`] across every unit's model pair.
    pub max_divergence: f64,
    /// Units whose models diverged beyond `1e-9` (must be 0).
    pub mismatches: u64,
}

/// One point of the scheduler scaling sweep.
#[derive(Debug, Clone, Serialize)]
pub struct WorkerScalingRow {
    /// Worker threads (1 = sequential executor).
    pub workers: usize,
    /// Wall-clock of the full-fleet re-finish, milliseconds.
    pub elapsed_ms: f64,
    /// Speedup over the 1-worker (sequential) point.
    pub speedup: f64,
    /// Scheduler tasks executed at this point.
    pub tasks: u64,
    /// Successful steals (0 for the sequential executor).
    pub steals: u64,
    /// Steal probes, successful or not.
    pub steal_attempts: u64,
    /// Deepest worker deque observed.
    pub max_queue_depth: u64,
    /// Idle yield loops across all workers.
    pub idle_spins: u64,
}

/// E23 artifact: retrain rounds, the scaling sweep, and the verdict
/// inputs.
#[derive(Debug, Clone, Serialize)]
pub struct TrainBenchReport {
    /// Sizing used.
    pub config: TrainBenchConfig,
    /// Per-round arm timings and oracle results.
    pub rounds: Vec<RetrainRound>,
    /// Total wall-clock of every full rebuild, milliseconds.
    pub full_ms_total: f64,
    /// Total wall-clock of every incremental pass, milliseconds.
    pub incremental_ms_total: f64,
    /// `full_ms_total / incremental_ms_total` (the ≥ 5× bar).
    pub incremental_speedup: f64,
    /// Worst divergence across every round (the ≤ 1e-9 bar).
    pub max_divergence: f64,
    /// Oracle mismatches across every round (must be 0).
    pub mismatches: u64,
    /// Scheduler scaling sweep, 1..=`config.workers` workers.
    pub scaling: Vec<WorkerScalingRow>,
    /// Best sweep speedup over the sequential executor (the ≥ 3× bar).
    pub parallel_speedup: f64,
    /// Cores the host exposes; below 4 the parallel bar is not scored.
    pub cores: usize,
}

impl TrainBenchReport {
    /// E23 verdict: the differential oracle held everywhere, dirty-only
    /// retraining beat the full rebuild ≥ 5×, and — when the host has
    /// the cores to show it — work stealing beat the sequential
    /// executor ≥ 3×.
    pub fn passed(&self) -> bool {
        self.mismatches == 0
            && self.max_divergence <= 1e-9
            && self.incremental_speedup >= 5.0
            && (self.cores < 4 || self.parallel_speedup >= 3.0)
    }
}

/// Rows `[start, start + len)` of one unit's stream as owned vectors.
fn unit_rows(fleet: &Fleet, unit: u32, start: u64, len: usize) -> Vec<Vec<f64>> {
    let t_end = start + len as u64 - 1;
    let obs = fleet.observation_window(unit, t_end, len);
    (0..obs.rows()).map(|r| obs.row(r).to_vec()).collect()
}

/// Rebuild the whole fleet from scratch: fresh trainer, every unit's
/// full history re-accumulated in its original order, every unit
/// re-finished. This is the paper's batch retrain, and the oracle's
/// reference arm.
fn full_rebuild(
    units: &[u32],
    sensors: usize,
    history: &BTreeMap<u32, Vec<Vec<f64>>>,
    dataflow: &Dataflow,
) -> FleetTrainer {
    let mut fresh = FleetTrainer::new(units, sensors);
    for (&unit, rows) in history {
        fresh.ingest(unit, rows);
    }
    let errors = fresh.retrain_full(dataflow);
    assert!(errors.is_empty(), "full rebuild failed: {errors:?}");
    fresh
}

/// Run E23: live-ingest retrain rounds with the differential oracle,
/// then the worker scaling sweep.
pub fn train_retrain_experiment(cfg: &TrainBenchConfig) -> TrainBenchReport {
    assert!(cfg.units > 0 && cfg.rounds > 0 && cfg.workers > 0);
    assert!(cfg.dirty_units as u32 <= cfg.units);
    let fleet = Fleet::new(FleetConfig {
        units: cfg.units,
        sensors_per_unit: cfg.sensors,
        ..FleetConfig::paper_scale(cfg.seed)
    });
    let units: Vec<u32> = (0..cfg.units).collect();
    let sensors = cfg.sensors as usize;
    let dataflow = Dataflow::new(cfg.workers);

    // Seed every unit with its base history and finish once; rounds
    // then measure steady-state retraining, not the cold start.
    let mut history: BTreeMap<u32, Vec<Vec<f64>>> = BTreeMap::new();
    let mut incremental = FleetTrainer::new(&units, sensors);
    for &u in &units {
        let rows = unit_rows(&fleet, u, 0, cfg.base_rows);
        incremental.ingest(u, &rows);
        history.insert(u, rows);
    }
    let errors = incremental.retrain_dirty(&dataflow);
    assert!(errors.is_empty(), "seed training failed: {errors:?}");

    let mut rounds = Vec::with_capacity(cfg.rounds);
    let (mut full_ms_total, mut incremental_ms_total) = (0.0f64, 0.0f64);
    let (mut max_divergence, mut mismatches) = (0.0f64, 0u64);
    for round in 0..cfg.rounds {
        // Live ingest: a rotating subset of units sees fresh samples.
        let dirty: Vec<u32> = (0..cfg.dirty_units)
            .map(|i| ((round * cfg.dirty_units + i) as u32) % cfg.units)
            .collect();
        for &u in &dirty {
            let have = history.get(&u).map_or(0, Vec::len) as u64;
            let rows = unit_rows(&fleet, u, have, cfg.delta_rows);
            history
                .get_mut(&u)
                .expect("seeded unit")
                .extend(rows.clone());
            incremental.ingest(u, &rows);
        }

        // Incremental arm: dirty-only re-finish on resident statistics.
        let started = Instant::now();
        let errors = incremental.retrain_dirty(&dataflow);
        let incremental_ms = started.elapsed().as_secs_f64() * 1e3;
        assert!(errors.is_empty(), "incremental retrain failed: {errors:?}");

        // Full arm: the from-scratch batch rebuild over the same data.
        let started = Instant::now();
        let reference = full_rebuild(&units, sensors, &history, &dataflow);
        let full_ms = started.elapsed().as_secs_f64() * 1e3;

        // Differential oracle: identical statistics must finish into
        // identical models, unit by unit.
        let mut round_worst = 0.0f64;
        let mut round_mismatches = 0u64;
        for &u in &units {
            let d = model_divergence(
                incremental.model(u).expect("incremental model"),
                reference.model(u).expect("reference model"),
            );
            round_worst = round_worst.max(d);
            if d > 1e-9 {
                round_mismatches += 1;
            }
        }
        full_ms_total += full_ms;
        incremental_ms_total += incremental_ms;
        max_divergence = max_divergence.max(round_worst);
        mismatches += round_mismatches;
        rounds.push(RetrainRound {
            round,
            dirty,
            full_ms,
            incremental_ms,
            max_divergence: round_worst,
            mismatches: round_mismatches,
        });
    }

    // Scaling sweep: the same full-fleet re-finish at 1..=N workers.
    // Each point gets its own engine so the counters isolate the point.
    let mut scaling = Vec::with_capacity(cfg.workers);
    let mut sequential_ms = 0.0f64;
    for workers in 1..=cfg.workers {
        let df = Dataflow::new(workers);
        let started = Instant::now();
        let mut arm = incremental.clone();
        let errors = arm.retrain_full(&df);
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        assert!(errors.is_empty(), "scaling sweep failed: {errors:?}");
        if workers == 1 {
            sequential_ms = elapsed_ms;
        }
        let stats = df.stats();
        scaling.push(WorkerScalingRow {
            workers,
            elapsed_ms,
            speedup: if elapsed_ms > 0.0 {
                sequential_ms / elapsed_ms
            } else {
                0.0
            },
            tasks: stats.tasks_run,
            steals: stats.steals,
            steal_attempts: stats.steal_attempts,
            max_queue_depth: stats.max_queue_depth,
            idle_spins: stats.idle_spins,
        });
    }
    let parallel_speedup = scaling
        .iter()
        .skip(1)
        .map(|row| row.speedup)
        .fold(0.0f64, f64::max);

    TrainBenchReport {
        config: cfg.clone(),
        rounds,
        full_ms_total,
        incremental_ms_total,
        incremental_speedup: if incremental_ms_total > 0.0 {
            full_ms_total / incremental_ms_total
        } else {
            0.0
        },
        max_divergence,
        mismatches,
        scaling,
        parallel_speedup,
        cores: std::thread::available_parallelism().map_or(1, usize::from),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e23_oracle_holds_and_incremental_wins() {
        let rep = train_retrain_experiment(&TrainBenchConfig::quick());
        assert_eq!(rep.mismatches, 0, "incremental must equal full rebuild");
        assert!(
            rep.max_divergence <= 1e-9,
            "divergence {} above the bar",
            rep.max_divergence
        );
        assert!(
            rep.incremental_speedup >= 5.0,
            "incremental speedup {} below 5x",
            rep.incremental_speedup
        );
        assert_eq!(rep.rounds.len(), 3);
        assert_eq!(rep.scaling.len(), 4);
        assert!((rep.scaling[0].speedup - 1.0).abs() < 1e-12);
        assert_eq!(rep.scaling[0].steals, 0, "1 worker runs sequentially");
        assert!(rep.scaling.iter().all(|r| r.tasks > 0));
        // The parallel bar only scores on multi-core hosts; the oracle
        // and incremental bars always score.
        if rep.cores >= 4 {
            assert!(rep.passed(), "report failed on a {}-core host", rep.cores);
        } else {
            assert!(rep.passed() || rep.parallel_speedup < 3.0);
        }
    }

    #[test]
    fn dirty_rotation_covers_the_fleet() {
        let cfg = TrainBenchConfig {
            units: 4,
            rounds: 4,
            dirty_units: 1,
            ..TrainBenchConfig::quick()
        };
        let rep = train_retrain_experiment(&cfg);
        let touched: std::collections::BTreeSet<u32> =
            rep.rounds.iter().flat_map(|r| r.dirty.clone()).collect();
        assert_eq!(touched.len(), 4, "rotation must reach every unit");
    }
}
