//! E19 — serving-layer query performance: raw scans vs write-time rollups
//! vs the sharded result cache, measured while ingest keeps running.
//!
//! Three arms answer the same dashboard workload (per-unit averages over
//! the full retained history) through [`pga_query::QueryEngine`] instances
//! that differ only in configuration:
//!
//! * **raw** — no rollup tiers, cache disabled: every query is a salted
//!   scatter-gather scan over raw cells (the pre-serving behaviour).
//! * **rollup** — tiered pre-aggregates enabled, cache disabled: the
//!   planner serves interior windows from 60 s/600 s rollup rows and only
//!   scans raw cells for the unaligned head and the hot tail.
//! * **rollup+cache** — rollups plus the sharded TTL result cache; the
//!   repeated panel refreshes of a dashboard hit cached entries.
//!
//! While the arms are measured, a background thread keeps ingesting fleet
//! ticks through the reverse proxy, so latencies include write-path
//! contention. Two oracles gate the verdict: rollup answers must equal raw
//! answers bit-for-bit under an order-insensitive aggregator, and a cached
//! anomaly view must reflect a freshly flagged series immediately after
//! the engine's explicit invalidation (zero stale anomaly flags).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use pga_ingest::IngestionPipeline;
use pga_minibase::Client;
use pga_query::{CacheConfig, ExecConfig, QueryEngine, QueryEngineConfig, RollupWriter};
use pga_sensorgen::{Fleet, FleetConfig};
use pga_tsdb::{Aggregator, QueryFilter, TimeSeries};

/// Rollup tier widths used by the serving arms.
const TIERS: [u64; 2] = [60, 600];

/// Sizing for [`query_serving_experiment`].
#[derive(Debug, Clone, Serialize)]
pub struct QueryBenchConfig {
    /// Region-server nodes (also the salt-bucket count).
    pub nodes: usize,
    /// TSD daemons behind the proxy (one rollup writer each).
    pub tsd_count: usize,
    /// Fleet units.
    pub units: u32,
    /// Sensors per unit.
    pub sensors_per_unit: u32,
    /// Seconds of history prefilled before measurement.
    pub history_secs: u64,
    /// Queries measured per arm.
    pub queries: usize,
    /// Dashboard downsample window in seconds.
    pub downsample_secs: u64,
    /// Fleet seed.
    pub seed: u64,
}

impl QueryBenchConfig {
    /// CI-sized configuration (a few seconds end to end).
    pub fn quick() -> Self {
        QueryBenchConfig {
            nodes: 3,
            tsd_count: 2,
            units: 6,
            sensors_per_unit: 8,
            history_secs: 5_400,
            queries: 24,
            downsample_secs: 60,
            seed: 2024,
        }
    }

    /// Paper-style configuration for the full report.
    pub fn full() -> Self {
        QueryBenchConfig {
            nodes: 4,
            tsd_count: 2,
            units: 8,
            sensors_per_unit: 16,
            history_secs: 7_200,
            queries: 48,
            downsample_secs: 60,
            seed: 2024,
        }
    }
}

/// One serving arm's measured latency/throughput profile.
#[derive(Debug, Clone, Serialize)]
pub struct QueryArm {
    /// Arm label (`raw`, `rollup`, `rollup+cache`).
    pub label: String,
    /// Median query latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile query latency in milliseconds.
    pub p99_ms: f64,
    /// Mean query latency in milliseconds.
    pub mean_ms: f64,
    /// Queries per second sustained over the measured batch.
    pub sustained_qps: f64,
    /// Rollup-plan executions during measurement.
    pub rollup_plans: u64,
    /// Result-cache hits during measurement.
    pub cache_hits: u64,
    /// Queries that returned partial results (must be 0 for a pass).
    pub partials: u64,
}

/// E19 artifact: the three arms plus the correctness/staleness oracles.
#[derive(Debug, Clone, Serialize)]
pub struct QueryServingReport {
    /// Sizing used.
    pub config: QueryBenchConfig,
    /// Raw-scan arm.
    pub raw: QueryArm,
    /// Rollup arm (cache disabled).
    pub rollup: QueryArm,
    /// Rollup + result-cache arm.
    pub cached: QueryArm,
    /// Ingest rate (samples/s) sustained by the background writer while
    /// queries were measured.
    pub ingest_throughput: f64,
    /// Samples ingested concurrently with the measurement.
    pub ingest_samples: u64,
    /// Sustained-QPS speedup of the rollup arm over raw.
    pub qps_speedup_rollup: f64,
    /// Sustained-QPS speedup of the rollup+cache arm over raw.
    pub qps_speedup_cached: f64,
    /// p99 latency speedup (raw p99 / cached p99).
    pub p99_speedup_cached: f64,
    /// Rollup answers disagreeing with raw answers under the Max
    /// aggregator (order-insensitive, so must be 0).
    pub answer_mismatches: u64,
    /// Cached anomaly views that missed a freshly flagged series after
    /// explicit invalidation (must be 0).
    pub stale_anomaly_flags: u64,
}

impl QueryServingReport {
    /// E19 verdict: exact answers, no stale flags, no partial results,
    /// and the serving layer clears the 10x bar on sustained QPS or p99.
    pub fn passed(&self) -> bool {
        self.answer_mismatches == 0
            && self.stale_anomaly_flags == 0
            && self.raw.partials + self.rollup.partials + self.cached.partials == 0
            && (self.qps_speedup_cached >= 10.0 || self.p99_speedup_cached >= 10.0)
    }
}

fn make_engine(pipeline: &IngestionPipeline, tiers: Vec<u64>, ttl_ms: u64) -> QueryEngine {
    QueryEngine::new(
        pipeline.tsd().codec().clone(),
        Client::connect(pipeline.master()),
        QueryEngineConfig {
            exec: ExecConfig {
                tiers,
                // Far above the slowest raw scan: the experiment measures
                // latency, and a shard shed mid-benchmark would truncate
                // answers and distort the comparison.
                shard_deadline_ms: 15_000,
                tail_buckets: 2,
                hedge: None,
            },
            cache: CacheConfig {
                shards: 8,
                ttl_ms,
                capacity_per_shard: 256,
            },
        },
    )
}

/// The dashboard panel for query index `i`: one unit's fleet-wide average.
fn panel_filter(i: usize, units: u32) -> QueryFilter {
    QueryFilter::any().with("unit", &(i as u32 % units).to_string())
}

fn run_arm(label: &str, engine: &QueryEngine, cfg: &QueryBenchConfig, warm: bool) -> QueryArm {
    if warm {
        // The cached arm measures steady-state dashboard refreshes: one
        // untimed pass populates the panels, the timed loop then refreshes
        // them the way an open dashboard does every few seconds.
        for i in 0..cfg.units as usize {
            let filter = panel_filter(i, cfg.units);
            engine.query(
                "energy",
                &filter,
                0,
                cfg.history_secs - 1,
                Some((cfg.downsample_secs, Aggregator::Avg)),
            );
        }
    }
    let mut latencies_ms = Vec::with_capacity(cfg.queries);
    let started = Instant::now();
    for i in 0..cfg.queries {
        let filter = panel_filter(i, cfg.units);
        let t = Instant::now();
        let out = engine.query(
            "energy",
            &filter,
            0,
            cfg.history_secs - 1,
            Some((cfg.downsample_secs, Aggregator::Avg)),
        );
        latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
        drop(out);
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let n = latencies_ms.len();
    let stats = engine.stats();
    QueryArm {
        label: label.to_string(),
        p50_ms: latencies_ms[n / 2],
        p99_ms: latencies_ms[(n * 99 / 100).min(n - 1)],
        mean_ms: latencies_ms.iter().sum::<f64>() / n as f64,
        sustained_qps: n as f64 / elapsed,
        rollup_plans: stats.rollup_plans,
        cache_hits: stats.cache_hits,
        partials: stats.partials,
    }
}

/// Bit-for-bit series-set equality (tags and `(timestamp, value)` pairs).
fn same_answer(a: &[TimeSeries], b: &[TimeSeries]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.tags == y.tags
                && x.points.len() == y.points.len()
                && x.points.iter().zip(&y.points).all(|(p, q)| {
                    p.timestamp == q.timestamp && p.value.to_be_bytes() == q.value.to_be_bytes()
                })
        })
}

/// Run E19 against the real storage stack.
pub fn query_serving_experiment(cfg: &QueryBenchConfig) -> QueryServingReport {
    let pipeline = IngestionPipeline::new(cfg.nodes, cfg.tsd_count, 256);
    for (i, tsd) in pipeline.tsds().iter().enumerate() {
        tsd.set_observer(Arc::new(RollupWriter::new(
            tsd.codec().clone(),
            TIERS.to_vec(),
            i as u8,
        )));
    }
    let fleet = Fleet::new(FleetConfig {
        units: cfg.units,
        sensors_per_unit: cfg.sensors_per_unit,
        ..FleetConfig::paper_scale(cfg.seed)
    });

    // Prefill the retained history and seal the rollup buckets covering it.
    pipeline.run_range(&fleet, 0, cfg.history_secs);
    pipeline
        .flush_observers()
        .expect("prefill rollup flush succeeds");

    let raw_engine = make_engine(&pipeline, Vec::new(), 0);
    let rollup_engine = make_engine(&pipeline, TIERS.to_vec(), 0);
    let cached_engine = make_engine(&pipeline, TIERS.to_vec(), 600_000);

    let stop = AtomicBool::new(false);
    let ingest_samples = AtomicU64::new(0);
    let ingest_secs_bits = AtomicU64::new(0);

    let mut report = std::thread::scope(|scope| {
        // Background writer: keeps the proxy -> TSD -> region-server path
        // busy (and the rollup writers accumulating) during measurement.
        scope.spawn(|| {
            let mut t = cfg.history_secs;
            let mut secs = 0.0f64;
            while !stop.load(Ordering::Relaxed) {
                let rep = pipeline.run_range(&fleet, t, t + 120);
                t += 120;
                secs += rep.elapsed_secs;
                ingest_samples.fetch_add(rep.samples, Ordering::Relaxed);
                ingest_secs_bits.store(secs.to_bits(), Ordering::Relaxed);
            }
        });

        let raw = run_arm("raw", &raw_engine, cfg, false);
        let rollup = run_arm("rollup", &rollup_engine, cfg, false);
        let cached = run_arm("rollup+cache", &cached_engine, cfg, true);

        // The timed arms above competed with live ingest — that is the
        // measurement. The oracles below are correctness checks, so the
        // writers quiesce first: a loaded box must never turn contention
        // into a phantom "mismatch".
        stop.store(true, Ordering::Relaxed);

        // Oracle 1: rollup answers equal raw answers bit-for-bit under an
        // order-insensitive aggregator (Max survives any merge order).
        let mut answer_mismatches = 0u64;
        for u in 0..cfg.units as usize {
            let filter = panel_filter(u, cfg.units);
            let ds = Some((cfg.downsample_secs, Aggregator::Max));
            let a = raw_engine.query("energy", &filter, 0, cfg.history_secs - 1, ds);
            let b = rollup_engine.query("energy", &filter, 0, cfg.history_secs - 1, ds);
            if !same_answer(&a.series, &b.series) {
                answer_mismatches += 1;
            }
        }

        // Oracle 2: flag anomalies on cached series; after the engine's
        // explicit invalidation every cached view must show the new flag.
        let mut stale_anomaly_flags = 0u64;
        for u in 0..cfg.units {
            let unit = u.to_string();
            let filter = QueryFilter::any().with("unit", &unit);
            let primed = cached_engine.query("anomaly", &filter, 0, cfg.history_secs, None);
            assert!(!primed.from_cache, "first anomaly view must execute");
            let flag_ts = 100 + u as u64;
            pipeline
                .tsd()
                .put("anomaly", &[("unit", &unit), ("sensor", "0")], flag_ts, 1.0)
                .expect("anomaly flag write succeeds");
            let mut flagged = BTreeMap::new();
            flagged.insert("unit".to_string(), unit.clone());
            flagged.insert("sensor".to_string(), "0".to_string());
            cached_engine.invalidate_series("anomaly", &flagged);
            let after = cached_engine.query("anomaly", &filter, 0, cfg.history_secs, None);
            let visible = after
                .series
                .iter()
                .any(|s| s.points.iter().any(|p| p.timestamp == flag_ts));
            if after.from_cache || !visible {
                stale_anomaly_flags += 1;
            }
        }

        QueryServingReport {
            config: cfg.clone(),
            qps_speedup_rollup: rollup.sustained_qps / raw.sustained_qps,
            qps_speedup_cached: cached.sustained_qps / raw.sustained_qps,
            p99_speedup_cached: raw.p99_ms / cached.p99_ms.max(1e-6),
            raw,
            rollup,
            cached,
            ingest_throughput: 0.0,
            ingest_samples: 0,
            answer_mismatches,
            stale_anomaly_flags,
        }
    });

    let samples = ingest_samples.load(Ordering::Relaxed);
    let secs = f64::from_bits(ingest_secs_bits.load(Ordering::Relaxed));
    report.ingest_samples = samples;
    report.ingest_throughput = if secs > 0.0 {
        samples as f64 / secs
    } else {
        0.0
    };
    pipeline.shutdown();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e19_oracles_hold_on_a_small_stack() {
        let cfg = QueryBenchConfig {
            nodes: 2,
            tsd_count: 2,
            units: 3,
            sensors_per_unit: 4,
            history_secs: 1_800,
            queries: 9,
            downsample_secs: 60,
            seed: 7,
        };
        let rep = query_serving_experiment(&cfg);
        assert_eq!(rep.answer_mismatches, 0, "rollup answers must equal raw");
        assert_eq!(rep.stale_anomaly_flags, 0, "invalidation must be immediate");
        assert_eq!(
            rep.raw.partials + rep.rollup.partials + rep.cached.partials,
            0
        );
        assert_eq!(rep.raw.rollup_plans, 0, "raw arm must never plan rollups");
        assert_eq!(rep.rollup.rollup_plans, cfg.queries as u64);
        assert!(rep.cached.cache_hits > 0, "dashboard refreshes must hit");
        assert!(
            rep.ingest_samples > 0,
            "ingest must overlap the measurement"
        );
        // Latency ordering is timing-dependent; only sanity-check it here.
        // The >= 10x acceptance bar is asserted by `pga queries` / report_all.
        assert!(rep.qps_speedup_cached > 1.0);
    }
}
