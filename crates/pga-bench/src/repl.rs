//! E20 — failover availability and scan tail latency under replication.
//!
//! Two halves, both deterministic:
//!
//! * **Durability campaigns** — full `pga-faultsim` crash/partition
//!   campaigns at RF=2 and RF=3: quorum-acked writes must survive
//!   primary crashes through follower promotion, replicas must never
//!   diverge, and a deposed primary must never double-ack (epoch
//!   fencing). Zero tolerated failures.
//!
//! * **Availability probe** — a measured timeline in *simulated*
//!   milliseconds. A cluster per replication factor takes a primary
//!   crash at t=0; scan probes issued on a fixed cadence record when the
//!   full acked dataset becomes readable again and what each scan cost.
//!   At RF=1 the data is unreadable until the coordinator lease expires
//!   and WAL recovery reassigns the region (~`LEASE_MS`); at RF≥2 a
//!   hedged scan answers from a follower copy after `HEDGE_DELAY_MS`,
//!   so unavailability collapses from the lease timescale to the hedge
//!   timescale — the paper-level claim this experiment quantifies.

use pga_cluster::coordinator::Coordinator;
use pga_cluster::rpc::default_clock_ms;
use pga_faultsim::{run_campaign, CampaignConfig, SimConfig};
use pga_minibase::{
    Client, KeyValue, Master, RegionConfig, RowRange, ServerConfig, TableDescriptor,
};
use serde::Serialize;

/// Coordinator lease in the availability probe (simulated ms). Matches
/// the fault simulator's default: single-copy recovery cannot begin
/// before this much silence.
pub const LEASE_MS: u64 = 10_000;

/// Hedge trigger in the availability probe (simulated ms): a replicated
/// scan falls back to a follower copy after the primary has been silent
/// this long.
pub const HEDGE_DELAY_MS: u64 = 40;

/// Probe cadence (simulated ms between scan attempts).
const PROBE_MS: u64 = 50;

/// Probe window (simulated ms) — covers the whole RF=1 outage plus the
/// recovered steady state, so tail percentiles see both regimes.
const WINDOW_MS: u64 = 12_000;

/// Acceptance bar: replicated scan unavailability must beat single-copy
/// lease recovery by at least this factor.
pub const AVAILABILITY_BAR: f64 = 10.0;

/// One replication factor's measured availability timeline.
#[derive(Debug, Clone, Serialize)]
pub struct AvailabilityRow {
    /// Copies per region.
    pub factor: usize,
    /// Simulated ms from primary crash until a scan returned the full
    /// acked dataset (including the answering scan's own latency).
    pub unavailability_ms: u64,
    /// Median scan latency over the probe window (simulated ms).
    pub scan_p50_ms: u64,
    /// 99th-percentile scan latency over the probe window (simulated ms).
    pub scan_p99_ms: u64,
    /// Scans served by hedging to a follower copy.
    pub hedged_scans: u64,
    /// Follower promotions performed by the master during the window.
    pub failovers: u64,
}

/// One durability campaign's verdict.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignSummary {
    /// Copies per region.
    pub factor: usize,
    /// Seeds executed.
    pub seeds_run: u64,
    /// `true` when every oracle held on every seed — in particular, no
    /// quorum-acked write was lost across any promotion.
    pub passed: bool,
    /// Shrunk replay command lines for failing seeds (empty when passed).
    pub failures: Vec<String>,
    /// Primary failovers performed across all seeds.
    pub failovers: u64,
    /// Follower copies compared cell-for-cell against their primaries.
    pub replica_checks: u64,
    /// Epoch-fenced replication RPCs (deposed writers denied a vote).
    pub fence_rejections: u64,
}

/// E20 artifact.
#[derive(Debug, Clone, Serialize)]
pub struct FailoverReport {
    /// Durability campaigns (RF=2 then RF=3).
    pub campaigns: Vec<CampaignSummary>,
    /// Availability timeline per factor (RF=1, 2, 3).
    pub availability: Vec<AvailabilityRow>,
    /// RF=1 unavailability divided by the worst replicated one.
    pub availability_speedup: f64,
}

impl FailoverReport {
    /// `true` when both campaigns were clean and the availability bar
    /// held.
    pub fn passed(&self) -> bool {
        self.campaigns.iter().all(|c| c.passed) && self.availability_speedup >= AVAILABILITY_BAR
    }
}

fn campaign(factor: usize, nodes: usize, seeds: u64, start_seed: u64) -> CampaignSummary {
    let report = run_campaign(&CampaignConfig {
        seeds,
        start_seed,
        sim: SimConfig {
            nodes,
            replication_factor: factor,
            ..SimConfig::default()
        },
        ..CampaignConfig::default()
    });
    CampaignSummary {
        factor,
        seeds_run: report.seeds_run,
        passed: report.passed(),
        failures: report.failures.iter().map(|f| f.replay.clone()).collect(),
        failovers: report.totals.failovers,
        replica_checks: report.totals.replica_checks,
        fence_rejections: report.totals.fence_rejections,
    }
}

/// Measure one factor's scan availability through a primary crash at
/// t=0. Entirely in simulated time: survivor heartbeats and the
/// master's liveness sweep advance on the probe cadence, so RF=1
/// recovery lands exactly one lease past the crash while a replicated
/// cluster answers from a follower at the first probe.
fn availability_probe(factor: usize) -> AvailabilityRow {
    let nodes = factor.max(2) + 1;
    let coord = Coordinator::new(LEASE_MS);
    let mut master = Master::bootstrap(nodes, ServerConfig::default(), coord, 0);
    master.create_replicated_table(
        &TableDescriptor {
            name: "t".into(),
            split_points: vec![b"h".to_vec().into(), b"q".to_vec().into()],
            region_config: RegionConfig::default(),
        },
        factor,
    );
    let client = Client::connect(&master);
    let rows = 60usize;
    // Spread rows across all three regions (split points "h" and "q") so
    // the crashed region holds real acked data the probe must recover.
    let kvs: Vec<KeyValue> = (0..rows)
        .map(|i| {
            let prefix = [b'a', b'k', b't'][i % 3];
            KeyValue::new(
                format!("{}{:03}", prefix as char, i).into_bytes(),
                b"q".to_vec(),
                1,
                b"v".to_vec(),
            )
        })
        .collect();
    client.put(kvs).expect("seed data lands before the crash");

    // Crash the primary of the first region.
    let victim = master.directory().read()[0].server;
    master.server(victim).expect("victim exists").shutdown();

    let mut latencies: Vec<u64> = Vec::new();
    let mut blocked_since: Vec<u64> = Vec::new();
    let mut unavailability = None;
    let mut now = 0u64;
    while now <= WINDOW_MS {
        for node in master.nodes() {
            if node != victim {
                master.heartbeat(node, now);
            }
        }
        master.tick(now);
        let before_hedges = client.repl_book().snapshot().hedged_scans;
        let scanned = if factor > 1 {
            // RPC deadlines are absolute on the servers' shared clock
            // (wall time, unrelated to the probe's simulated `now`); the
            // hedge window is what the latency model charges below.
            let wall = default_clock_ms();
            client.scan_hedged(
                &RowRange::all(),
                Some(wall + HEDGE_DELAY_MS),
                Some(wall + HEDGE_DELAY_MS),
            )
        } else {
            client.scan(&RowRange::all())
        };
        let complete = matches!(&scanned, Ok(cells) if cells.len() == rows);
        if complete {
            let hedged = client.repl_book().snapshot().hedged_scans > before_hedges;
            let cost = 1 + if hedged { HEDGE_DELAY_MS } else { 0 };
            latencies.push(cost);
            if unavailability.is_none() {
                unavailability = Some(now + cost);
            }
            // Probes that blocked resolve now: their latency is the wait
            // until this moment plus the answering scan's cost.
            for issued in blocked_since.drain(..) {
                latencies.push(now - issued + cost);
            }
        } else {
            blocked_since.push(now);
        }
        now += PROBE_MS;
    }
    // Anything still blocked at window end waited the whole remainder.
    for issued in blocked_since.drain(..) {
        latencies.push(WINDOW_MS - issued);
    }
    latencies.sort_unstable();
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    let row = AvailabilityRow {
        factor,
        unavailability_ms: unavailability.unwrap_or(WINDOW_MS),
        scan_p50_ms: pct(0.50),
        scan_p99_ms: pct(0.99),
        hedged_scans: client.repl_book().snapshot().hedged_scans,
        failovers: master.failovers(),
    };
    master.shutdown();
    row
}

/// Run E20: durability campaigns at RF=2 and RF=3 (`seeds_per_factor`
/// each) plus the availability timeline at RF=1/2/3. Deterministic.
pub fn failover_experiment(seeds_per_factor: u64) -> FailoverReport {
    let campaigns = vec![
        campaign(2, 3, seeds_per_factor, 0),
        campaign(3, 4, seeds_per_factor, 0),
    ];
    let availability: Vec<AvailabilityRow> = [1usize, 2, 3]
        .iter()
        .map(|&f| availability_probe(f))
        .collect();
    let single = availability[0].unavailability_ms as f64;
    let worst_replicated = availability[1..]
        .iter()
        .map(|r| r.unavailability_ms)
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    FailoverReport {
        campaigns,
        availability,
        availability_speedup: single / worst_replicated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e20_holds_in_quick_mode() {
        let rep = failover_experiment(6);
        assert!(
            rep.passed(),
            "campaigns: {:?}, speedup {:.1}",
            rep.campaigns
                .iter()
                .map(|c| (c.factor, c.passed, c.failures.clone()))
                .collect::<Vec<_>>(),
            rep.availability_speedup
        );
        // The availability gap is the whole point: lease-timescale
        // recovery at RF=1, hedge-timescale at RF>=2.
        assert!(rep.availability[0].unavailability_ms >= LEASE_MS);
        for row in &rep.availability[1..] {
            assert!(row.unavailability_ms <= 2 * HEDGE_DELAY_MS, "{row:?}");
            assert!(row.scan_p99_ms <= 2 * HEDGE_DELAY_MS, "{row:?}");
            assert!(row.hedged_scans > 0);
        }
        assert!(rep.campaigns.iter().all(|c| c.failovers > 0));
        assert!(rep.campaigns.iter().all(|c| c.replica_checks > 0));
    }

    #[test]
    fn e20_is_deterministic() {
        let a = failover_experiment(3);
        let b = failover_experiment(3);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }
}
