//! E17 — durability under injected faults (pga-faultsim).
//!
//! The paper's §III substrate claim — HBase/OpenTSDB keeps acknowledged
//! sensor data through region-server failure — exercised adversarially:
//! a seeded campaign of crashes, torn WAL tails, heartbeat partitions,
//! clock skews, splits, migrations and dropped storage acks against the
//! live storage stack, with invariant oracles checking that nothing
//! acked is lost, retries stay exactly-once, and anomaly detection over
//! the surviving data matches the fault-free baseline.

use pga_faultsim::{run_campaign, CampaignConfig, SimStats};
use serde::Serialize;

/// E17 artifact: campaign verdict plus injection/recovery totals.
#[derive(Debug, Clone, Serialize)]
pub struct FaultDurabilityReport {
    /// Seeds executed (each runs a faulted pass and a baseline pass).
    pub seeds_run: u64,
    /// `true` when every oracle held on every seed.
    pub passed: bool,
    /// Shrunk replay command lines for any failing seed (empty when passed).
    pub failures: Vec<String>,
    /// Injection and recovery counters summed over all faulted runs.
    pub totals: SimStats,
}

/// Run E17: a fault-injection campaign over `seeds` consecutive seeds with
/// the default simulation shape. Deterministic for a given seed range.
pub fn fault_durability_experiment(seeds: u64) -> FaultDurabilityReport {
    let report = run_campaign(&CampaignConfig {
        seeds,
        ..CampaignConfig::default()
    });
    FaultDurabilityReport {
        seeds_run: report.seeds_run,
        passed: report.passed(),
        failures: report.failures.iter().map(|f| f.replay.clone()).collect(),
        totals: report.totals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e17_holds_in_quick_mode() {
        let rep = fault_durability_experiment(8);
        assert!(rep.passed, "fault campaign failed: {:?}", rep.failures);
        assert!(rep.totals.faults_injected() > 0);
        assert!(rep.totals.batches_acked > 0);
    }

    #[test]
    fn e17_is_deterministic() {
        let a = fault_durability_experiment(4);
        let b = fault_durability_experiment(4);
        assert_eq!(a.totals, b.totals);
        assert_eq!(a.passed, b.passed);
    }
}
