//! E21 — columnar sealed blocks + cache-tiled batch kernels vs the
//! legacy read path, measured on the live storage stack.
//!
//! Two arms, each timed storage→answer:
//!
//! * **Scan** — the pre-block cell-by-cell decode ([`Tsd::query_legacy`],
//!   one cell and one full tag decode per point) against the sealed
//!   block-path scan ([`Tsd::query_columns`], one cell and one flat
//!   delta-of-delta/XOR decode per row). Throughput is logical payload
//!   bytes per second (16 bytes per point: timestamp + value).
//! * **Detect** — the row-major loop (per unit: legacy query, transpose
//!   into a `Matrix`, [`OnlineEvaluator::evaluate`]) against the columnar
//!   batch pass (one block-path query, per-sensor column slices fed to
//!   [`BatchEvaluator::evaluate_columns`], all units per pass).
//!   Throughput is detector samples (points scored) per second.
//!
//! Both arms are gated by differential oracles, not just speed: the
//! block-path answers must equal the legacy answers byte-for-byte before
//! *and* after sealing, and the batched columnar verdicts must be
//! bit-identical to the row-major evaluator's. The E21 acceptance bar is
//! ≥10× on both throughputs with zero mismatches.

use std::collections::BTreeMap;
use std::time::Instant;

use serde::Serialize;

use pga_cluster::coordinator::Coordinator;
use pga_detect::{train_unit, BatchEvaluator, ColumnWindow, EvalOutcome, UnitModel};
use pga_linalg::Matrix;
use pga_minibase::{Client, Master, RegionConfig, ServerConfig, TableDescriptor};
use pga_sensorgen::{Fleet, FleetConfig};
use pga_stats::Procedure;
use pga_tsdb::{
    BatchPoint, ColumnSeries, KeyCodec, KeyCodecConfig, QueryFilter, TimeSeries, Tsd, TsdConfig,
    UidTable,
};

/// Logical payload bytes per stored point (u64 timestamp + f64 value).
const BYTES_PER_POINT: u64 = 16;

/// Sizing for [`block_format_experiment`].
#[derive(Debug, Clone, Serialize)]
pub struct BlockBenchConfig {
    /// Region-server nodes.
    pub nodes: usize,
    /// Row-key salt buckets.
    pub salt_buckets: u8,
    /// Row span in seconds (blocks seal per row, so this is also the
    /// sealed block length).
    pub row_span_secs: u64,
    /// Fleet units.
    pub units: u32,
    /// Sensors per unit.
    pub sensors_per_unit: u32,
    /// Seconds of history ingested. Everything below the last full row
    /// seals; the remainder stays as the mutable raw tail, so scans
    /// exercise the splice.
    pub history_secs: u64,
    /// Timed scan passes per arm.
    pub scan_iters: usize,
    /// Timed evaluation passes per arm.
    pub eval_iters: usize,
    /// Training window (rows) for the per-unit detector models.
    pub train_window: usize,
    /// Fleet seed.
    pub seed: u64,
}

impl BlockBenchConfig {
    /// CI-sized configuration (a few seconds end to end).
    pub fn quick() -> Self {
        BlockBenchConfig {
            nodes: 2,
            salt_buckets: 4,
            row_span_secs: 600,
            units: 4,
            sensors_per_unit: 8,
            history_secs: 7_260,
            scan_iters: 4,
            eval_iters: 4,
            train_window: 150,
            seed: 2024,
        }
    }

    /// Paper-style configuration for the full report.
    pub fn full() -> Self {
        BlockBenchConfig {
            nodes: 3,
            salt_buckets: 4,
            row_span_secs: 600,
            units: 8,
            sensors_per_unit: 16,
            history_secs: 7_260,
            scan_iters: 4,
            eval_iters: 4,
            train_window: 150,
            seed: 2024,
        }
    }
}

/// One timed arm of the scan comparison.
#[derive(Debug, Clone, Serialize)]
pub struct ScanArm {
    /// Arm label (`legacy-cells`, `sealed-blocks`).
    pub label: String,
    /// Points returned per pass.
    pub points_per_pass: u64,
    /// Mean wall-clock per pass in milliseconds.
    pub pass_ms: f64,
    /// Logical payload throughput in bytes per second.
    pub bytes_per_sec: f64,
}

/// One timed arm of the detector comparison.
#[derive(Debug, Clone, Serialize)]
pub struct DetectArm {
    /// Arm label (`row-major`, `columnar-batch`).
    pub label: String,
    /// Detector samples scored per pass.
    pub samples_per_pass: u64,
    /// Mean wall-clock per pass in milliseconds.
    pub pass_ms: f64,
    /// Detector samples scored per second, storage to verdict.
    pub samples_per_sec: f64,
}

/// E21 artifact: both comparisons plus the differential oracles.
#[derive(Debug, Clone, Serialize)]
pub struct BlockBenchReport {
    /// Sizing used.
    pub config: BlockBenchConfig,
    /// Legacy cell-by-cell scan arm.
    pub scan_legacy: ScanArm,
    /// Sealed block-path scan arm.
    pub scan_blocks: ScanArm,
    /// Scan bytes/sec speedup (blocks over legacy).
    pub scan_speedup: f64,
    /// Row-major storage→verdict arm.
    pub detect_rowmajor: DetectArm,
    /// Columnar batched storage→verdict arm.
    pub detect_columnar: DetectArm,
    /// Detector samples/sec speedup (columnar over row-major).
    pub detect_speedup: f64,
    /// Block-path answers differing from legacy answers (pre-seal or
    /// post-seal; must be 0).
    pub scan_mismatches: u64,
    /// Batched verdicts not bit-identical to the row-major evaluator's
    /// (must be 0).
    pub eval_mismatches: u64,
}

impl BlockBenchReport {
    /// E21 verdict: exact answers, bit-identical verdicts, and ≥10× on
    /// both scan bytes/sec and detector samples/sec.
    pub fn passed(&self) -> bool {
        self.scan_mismatches == 0
            && self.eval_mismatches == 0
            && self.scan_speedup >= 10.0
            && self.detect_speedup >= 10.0
    }
}

/// Byte-for-byte series-set equality.
fn same_answer(a: &[TimeSeries], b: &[TimeSeries]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.tags == y.tags
                && x.points.len() == y.points.len()
                && x.points.iter().zip(&y.points).all(|(p, q)| {
                    p.timestamp == q.timestamp && p.value.to_be_bytes() == q.value.to_be_bytes()
                })
        })
}

/// Group a block-path answer by unit, each unit's series ordered by
/// numeric sensor tag — the column order the models were trained in.
fn columns_by_unit(series: &[ColumnSeries], units: u32) -> Vec<Vec<&ColumnSeries>> {
    let mut grouped: Vec<Vec<(u32, &ColumnSeries)>> = vec![Vec::new(); units as usize];
    for s in series {
        let unit: u32 = s.tags["unit"].parse().expect("numeric unit tag");
        let sensor: u32 = s.tags["sensor"].parse().expect("numeric sensor tag");
        grouped[unit as usize].push((sensor, s));
    }
    grouped
        .into_iter()
        .map(|mut g| {
            g.sort_by_key(|&(sensor, _)| sensor);
            g.into_iter().map(|(_, s)| s).collect()
        })
        .collect()
}

/// Transpose one unit's legacy answer into the row-major observation
/// window (rows = time, columns = sensors by numeric tag).
fn window_from_series(series: &[&TimeSeries]) -> Matrix {
    let rows = series.first().map_or(0, |s| s.points.len());
    let mut window = Matrix::zeros(rows, series.len());
    for (c, s) in series.iter().enumerate() {
        assert_eq!(s.points.len(), rows, "ragged sensor history");
        for (r, p) in s.points.iter().enumerate() {
            window.set(r, c, p.value);
        }
    }
    window
}

/// Bit-exact verdict equality: p-value families and block T² p-values.
fn same_verdict(a: &EvalOutcome, b: &EvalOutcome) -> bool {
    a.unit == b.unit
        && a.samples_scored == b.samples_scored
        && a.p_values.len() == b.p_values.len()
        && a.p_values
            .iter()
            .zip(&b.p_values)
            .all(|(x, y)| x.to_be_bytes() == y.to_be_bytes())
        && a.rejected == b.rejected
        && a.block_p_values.len() == b.block_p_values.len()
        && a.block_p_values
            .iter()
            .zip(&b.block_p_values)
            .all(|((sa, pa), (sb, pb))| sa == sb && pa.to_be_bytes() == pb.to_be_bytes())
}

/// Run E21 against the real storage stack.
pub fn block_format_experiment(cfg: &BlockBenchConfig) -> BlockBenchReport {
    let codec = KeyCodec::new(
        KeyCodecConfig {
            salt_buckets: cfg.salt_buckets,
            row_span_secs: cfg.row_span_secs,
        },
        UidTable::new(),
    );
    let coord = Coordinator::new(600_000);
    let mut master = Master::bootstrap(cfg.nodes, ServerConfig::default(), coord, 0);
    master.create_table(&TableDescriptor {
        name: "tsdb".into(),
        split_points: codec.split_points(),
        region_config: RegionConfig::default(),
    });
    let tsd = Tsd::new(codec, Client::connect(&master), TsdConfig::default());
    master.set_compaction_rewriter(tsd.block_rewriter());

    let fleet = Fleet::new(FleetConfig {
        units: cfg.units,
        sensors_per_unit: cfg.sensors_per_unit,
        ..FleetConfig::paper_scale(cfg.seed)
    });
    for t in 0..cfg.history_secs {
        let samples = fleet.tick(t);
        let tags: Vec<(String, String)> = samples
            .iter()
            .map(|s| (s.unit.to_string(), s.sensor.to_string()))
            .collect();
        let pairs: Vec<[(&str, &str); 2]> = tags
            .iter()
            .map(|(u, s)| [("unit", u.as_str()), ("sensor", s.as_str())])
            .collect();
        let points: Vec<BatchPoint> = samples
            .iter()
            .zip(&pairs)
            .map(|(s, tags)| (&tags[..], s.timestamp, s.value))
            .collect();
        tsd.put_batch("energy", &points).expect("ingest succeeds");
    }
    let end = cfg.history_secs - 1;
    let any = QueryFilter::any();

    // ----- scan arm A: legacy per-cell decode over the raw store -------
    let legacy_answer = tsd
        .query_legacy("energy", &any, 0, end)
        .expect("legacy scan");
    let points_per_pass: u64 = legacy_answer.iter().map(|s| s.points.len() as u64).sum();
    let started = Instant::now();
    for _ in 0..cfg.scan_iters {
        let out = tsd
            .query_legacy("energy", &any, 0, end)
            .expect("legacy scan");
        assert!(!out.is_empty());
    }
    let legacy_secs = started.elapsed().as_secs_f64();

    let mut scan_mismatches = 0u64;
    let pre_seal = tsd.query("energy", &any, 0, end).expect("block-path scan");
    if !same_answer(&legacy_answer, &pre_seal) {
        scan_mismatches += 1;
    }

    // ----- detect arm A: legacy query → row-major window → per-unit loop
    let models: Vec<UnitModel> = (0..cfg.units)
        .map(|u| {
            let obs = fleet.observation_window(u, cfg.train_window as u64 - 1, cfg.train_window);
            train_unit(u, &obs).expect("training succeeds")
        })
        .collect();
    let batch = BatchEvaluator::new(models, Procedure::BenjaminiHochberg, 0.05);

    let rowmajor_pass = || -> Vec<EvalOutcome> {
        let answer = tsd
            .query_legacy("energy", &any, 0, end)
            .expect("legacy scan");
        let mut by_unit: BTreeMap<u32, Vec<(u32, &TimeSeries)>> = BTreeMap::new();
        for s in &answer {
            let unit: u32 = s.tags["unit"].parse().expect("numeric unit tag");
            let sensor: u32 = s.tags["sensor"].parse().expect("numeric sensor tag");
            by_unit.entry(unit).or_default().push((sensor, s));
        }
        by_unit
            .into_iter()
            .map(|(unit, mut group)| {
                group.sort_by_key(|&(sensor, _)| sensor);
                let ordered: Vec<&TimeSeries> = group.into_iter().map(|(_, s)| s).collect();
                let window = window_from_series(&ordered);
                batch.evaluators()[unit as usize].evaluate(&window)
            })
            .collect()
    };
    let rowmajor_verdicts = rowmajor_pass();
    let samples_per_eval: u64 = rowmajor_verdicts.iter().map(|o| o.samples_scored).sum();
    let started = Instant::now();
    for _ in 0..cfg.eval_iters {
        let out = rowmajor_pass();
        assert_eq!(out.len(), cfg.units as usize);
    }
    let rowmajor_secs = started.elapsed().as_secs_f64();

    // ----- seal: background compaction rewrites raw cells into blocks --
    tsd.compact_now().expect("sealing compaction succeeds");
    let post_seal = tsd.query("energy", &any, 0, end).expect("block-path scan");
    if !same_answer(&legacy_answer, &post_seal) {
        scan_mismatches += 1;
    }

    // ----- scan arm B: sealed blocks spliced with the raw tail ---------
    let started = Instant::now();
    for _ in 0..cfg.scan_iters {
        let out = tsd
            .query_columns("energy", &any, 0, end)
            .expect("block scan");
        assert!(!out.is_empty());
    }
    let blocks_secs = started.elapsed().as_secs_f64();

    // ----- detect arm B: columnar batch pass over block-path columns ---
    let columnar_pass = || -> Vec<Option<EvalOutcome>> {
        let columns = tsd
            .query_columns("energy", &any, 0, end)
            .expect("block scan");
        let grouped = columns_by_unit(&columns, cfg.units);
        let slots: Vec<Option<ColumnWindow<'_>>> = grouped
            .iter()
            .map(|g| Some(g.iter().map(|s| s.values.as_slice()).collect()))
            .collect();
        batch.evaluate_columns(&slots)
    };
    let columnar_verdicts = columnar_pass();
    let mut eval_mismatches = 0u64;
    for (a, b) in rowmajor_verdicts.iter().zip(&columnar_verdicts) {
        match b {
            Some(b) if same_verdict(a, b) => {}
            _ => eval_mismatches += 1,
        }
    }
    let started = Instant::now();
    for _ in 0..cfg.eval_iters {
        let out = columnar_pass();
        assert_eq!(out.len(), cfg.units as usize);
    }
    let columnar_secs = started.elapsed().as_secs_f64();

    master.shutdown();

    let scan_bytes = (points_per_pass * BYTES_PER_POINT * cfg.scan_iters as u64) as f64;
    let eval_samples = samples_per_eval * cfg.eval_iters as u64;
    let scan_legacy = ScanArm {
        label: "legacy-cells".into(),
        points_per_pass,
        pass_ms: legacy_secs * 1e3 / cfg.scan_iters as f64,
        bytes_per_sec: scan_bytes / legacy_secs.max(1e-9),
    };
    let scan_blocks = ScanArm {
        label: "sealed-blocks".into(),
        points_per_pass,
        pass_ms: blocks_secs * 1e3 / cfg.scan_iters as f64,
        bytes_per_sec: scan_bytes / blocks_secs.max(1e-9),
    };
    let detect_rowmajor = DetectArm {
        label: "row-major".into(),
        samples_per_pass: samples_per_eval,
        pass_ms: rowmajor_secs * 1e3 / cfg.eval_iters as f64,
        samples_per_sec: eval_samples as f64 / rowmajor_secs.max(1e-9),
    };
    let detect_columnar = DetectArm {
        label: "columnar-batch".into(),
        samples_per_pass: samples_per_eval,
        pass_ms: columnar_secs * 1e3 / cfg.eval_iters as f64,
        samples_per_sec: eval_samples as f64 / columnar_secs.max(1e-9),
    };
    BlockBenchReport {
        config: cfg.clone(),
        scan_speedup: scan_blocks.bytes_per_sec / scan_legacy.bytes_per_sec.max(1e-9),
        detect_speedup: detect_columnar.samples_per_sec / detect_rowmajor.samples_per_sec.max(1e-9),
        scan_legacy,
        scan_blocks,
        detect_rowmajor,
        detect_columnar,
        scan_mismatches,
        eval_mismatches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e21_oracles_hold_on_a_small_stack() {
        let cfg = BlockBenchConfig {
            nodes: 2,
            salt_buckets: 2,
            row_span_secs: 300,
            units: 2,
            sensors_per_unit: 4,
            history_secs: 700,
            scan_iters: 2,
            eval_iters: 2,
            train_window: 100,
            seed: 7,
        };
        let rep = block_format_experiment(&cfg);
        assert_eq!(rep.scan_mismatches, 0, "block path must equal legacy");
        assert_eq!(rep.eval_mismatches, 0, "verdicts must be bit-identical");
        assert_eq!(
            rep.scan_legacy.points_per_pass,
            (cfg.units * cfg.sensors_per_unit) as u64 * cfg.history_secs
        );
        // Timing is asserted by `pga blocks` / report_all, not here — but
        // the block path must at least not be slower than legacy.
        assert!(rep.scan_speedup > 1.0, "speedup {}", rep.scan_speedup);
    }
}
