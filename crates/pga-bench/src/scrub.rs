//! E22 — end-to-end corruption resilience on the live storage stack:
//! bit-flipped sealed blocks, replica-backed read salvage, and the
//! background scrub/quarantine/repair loop.
//!
//! The campaign boots a replicated cluster (RF 2), ingests a fleet,
//! seals every copy's history into columnar blocks, captures the
//! ground-truth answers, and then flips bits inside sealed blocks on
//! primary copies. Three arms are measured:
//!
//! * **Before** (`salvage_reads = false`, the pre-salvage behaviour) —
//!   queries touching a corrupt block must fail with a typed
//!   [`pga_tsdb::TsdError::Corrupt`], never return a wrong answer.
//! * **After** (`salvage_reads = true`) — the same queries must return
//!   the exact pre-corruption answers by splicing the healthy replica's
//!   copy over each corrupt block.
//! * **Scrub** — background scrub ticks must drain the quarantine by
//!   re-fetching corrupt spans from healthy replicas (CRC round-trip
//!   before install), after which even the strict no-salvage reader
//!   gets exact answers from the repaired local copies.
//!
//! The acceptance bar is *no wrong answers anywhere*: every query in
//! every arm either matches ground truth byte-for-byte or fails with
//! the typed corruption error.

use std::time::Instant;

use serde::Serialize;

use pga_cluster::coordinator::Coordinator;
use pga_minibase::{no_faults, Client, Master, RegionConfig, ServerConfig, TableDescriptor};
use pga_sensorgen::{Fleet, FleetConfig};
use pga_tsdb::{
    is_block_qualifier, BatchPoint, KeyCodec, KeyCodecConfig, QueryFilter, TimeSeries, Tsd,
    TsdConfig, TsdError, UidTable,
};

/// Sizing for [`scrub_resilience_experiment`].
#[derive(Debug, Clone, Serialize)]
pub struct ScrubBenchConfig {
    /// Region-server nodes (must be ≥ 2 for RF 2).
    pub nodes: usize,
    /// Row-key salt buckets.
    pub salt_buckets: u8,
    /// Row span in seconds (sealed block length).
    pub row_span_secs: u64,
    /// Fleet units.
    pub units: u32,
    /// Sensors per unit.
    pub sensors_per_unit: u32,
    /// Seconds of history ingested (everything below the last full row
    /// seals into blocks).
    pub history_secs: u64,
    /// Sealed blocks to bit-flip, each in a different region's primary
    /// copy.
    pub corruptions: usize,
    /// Scrub ticks allowed for the quarantine to drain.
    pub scrub_tick_budget: u32,
    /// Fleet seed.
    pub seed: u64,
}

impl ScrubBenchConfig {
    /// CI-sized configuration (a few seconds end to end).
    pub fn quick() -> Self {
        ScrubBenchConfig {
            nodes: 2,
            salt_buckets: 2,
            row_span_secs: 300,
            units: 3,
            sensors_per_unit: 4,
            history_secs: 1_000,
            corruptions: 2,
            scrub_tick_budget: 4,
            seed: 2026,
        }
    }

    /// Paper-style configuration for the full report.
    pub fn full() -> Self {
        ScrubBenchConfig {
            nodes: 3,
            salt_buckets: 4,
            row_span_secs: 600,
            units: 6,
            sensors_per_unit: 8,
            history_secs: 4_200,
            corruptions: 4,
            scrub_tick_budget: 6,
            seed: 2026,
        }
    }
}

/// One query arm's outcome tally.
#[derive(Debug, Clone, Serialize)]
pub struct ScrubArm {
    /// Arm label (`no-salvage`, `salvage`, `post-scrub-strict`).
    pub label: String,
    /// Per-unit queries issued.
    pub queries: u64,
    /// Queries whose answer matched ground truth byte-for-byte.
    pub exact: u64,
    /// Queries that failed with the typed corruption error.
    pub typed_errors: u64,
    /// Queries that returned a non-exact answer or a non-typed error
    /// (must always be 0 — the no-wrong-answers oracle).
    pub wrong_answers: u64,
}

/// E22 artifact: the three arms plus the scrub-convergence counters.
#[derive(Debug, Clone, Serialize)]
pub struct ScrubBenchReport {
    /// Sizing used.
    pub config: ScrubBenchConfig,
    /// Sealed blocks actually bit-flipped (0 would vacuously pass, so
    /// `passed` requires it positive).
    pub corrupted_blocks: u64,
    /// Strict reader over the corrupted store: typed errors, no wrong
    /// answers.
    pub before: ScrubArm,
    /// Salvaging reader over the corrupted store: exact answers spliced
    /// from the healthy replica.
    pub after: ScrubArm,
    /// Strict reader again after the scrub drained the quarantine: the
    /// local copies themselves are healthy now.
    pub post_scrub: ScrubArm,
    /// Reads answered by splicing a replica's copy (after arm).
    pub salvaged_reads: u64,
    /// Scrub ticks consumed before the quarantine drained.
    pub scrub_ticks: u64,
    /// Blocks repaired from a replica (CRC round-trip passed).
    pub scrub_repairs: u64,
    /// Fetched repair payloads rejected by pre-install verification.
    pub scrub_rejected: u64,
    /// Spans still quarantined when the budget ran out (must be 0).
    pub quarantined_after: u64,
    /// Wall-clock spent in scrub ticks, milliseconds.
    pub scrub_ms: f64,
}

impl ScrubBenchReport {
    /// E22 verdict: corruption was injected and detected, no arm ever
    /// returned a wrong answer, the strict arm saw typed errors before
    /// the scrub and exact answers after it, and the quarantine drained
    /// through verified replica-backed repairs.
    pub fn passed(&self) -> bool {
        self.corrupted_blocks > 0
            && self.before.wrong_answers == 0
            && self.before.typed_errors > 0
            && self.after.wrong_answers == 0
            && self.after.typed_errors == 0
            && self.after.exact == self.after.queries
            && self.post_scrub.wrong_answers == 0
            && self.post_scrub.typed_errors == 0
            && self.post_scrub.exact == self.post_scrub.queries
            && self.scrub_repairs > 0
            && self.quarantined_after == 0
    }
}

/// Byte-for-byte series-set equality.
fn same_answer(a: &[TimeSeries], b: &[TimeSeries]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.tags == y.tags
                && x.points.len() == y.points.len()
                && x.points.iter().zip(&y.points).all(|(p, q)| {
                    p.timestamp == q.timestamp && p.value.to_be_bytes() == q.value.to_be_bytes()
                })
        })
}

/// Run every per-unit query through `tsd` and tally the outcome against
/// ground truth.
fn query_arm(label: &str, tsd: &Tsd, truth: &[Vec<TimeSeries>], end: u64) -> ScrubArm {
    let mut arm = ScrubArm {
        label: label.into(),
        queries: 0,
        exact: 0,
        typed_errors: 0,
        wrong_answers: 0,
    };
    for (unit, expected) in truth.iter().enumerate() {
        arm.queries += 1;
        let filter = QueryFilter::any().with("unit", &unit.to_string());
        match tsd.query("energy", &filter, 0, end) {
            Ok(series) if same_answer(expected, &series) => arm.exact += 1,
            Ok(_) => arm.wrong_answers += 1,
            Err(TsdError::Corrupt(_)) => arm.typed_errors += 1,
            Err(_) => arm.wrong_answers += 1,
        }
    }
    arm
}

/// Run E22 against the real storage stack.
pub fn scrub_resilience_experiment(cfg: &ScrubBenchConfig) -> ScrubBenchReport {
    assert!(cfg.nodes >= 2, "RF 2 needs at least two nodes");
    let codec = KeyCodec::new(
        KeyCodecConfig {
            salt_buckets: cfg.salt_buckets,
            row_span_secs: cfg.row_span_secs,
        },
        UidTable::new(),
    );
    let coord = Coordinator::new(600_000);
    let mut master = Master::bootstrap(cfg.nodes, ServerConfig::default(), coord, 0);
    master.create_replicated_table(
        &TableDescriptor {
            name: "tsdb".into(),
            split_points: codec.split_points(),
            region_config: RegionConfig::default(),
        },
        2,
    );
    // Two daemons over the same storage: the strict one re-creates the
    // pre-salvage behaviour (corrupt block ⇒ typed error), the other is
    // the shipping configuration. Cloning the codec shares the UID
    // table, so both decode the same keys.
    let strict = Tsd::new(
        codec.clone(),
        Client::connect(&master),
        TsdConfig {
            salvage_reads: false,
            ..TsdConfig::default()
        },
    );
    let tsd = Tsd::new(codec, Client::connect(&master), TsdConfig::default());
    master.set_compaction_rewriter(tsd.block_rewriter());

    let fleet = Fleet::new(FleetConfig {
        units: cfg.units,
        sensors_per_unit: cfg.sensors_per_unit,
        ..FleetConfig::paper_scale(cfg.seed)
    });
    for t in 0..cfg.history_secs {
        let samples = fleet.tick(t);
        let tags: Vec<(String, String)> = samples
            .iter()
            .map(|s| (s.unit.to_string(), s.sensor.to_string()))
            .collect();
        let pairs: Vec<[(&str, &str); 2]> = tags
            .iter()
            .map(|(u, s)| [("unit", u.as_str()), ("sensor", s.as_str())])
            .collect();
        let points: Vec<BatchPoint> = samples
            .iter()
            .zip(&pairs)
            .map(|(s, tags)| (&tags[..], s.timestamp, s.value))
            .collect();
        tsd.put_batch("energy", &points).expect("ingest succeeds");
    }
    // Seal every copy's finished rows into columnar blocks, then capture
    // ground truth per unit through the strict reader — any later
    // deviation is a corruption artifact, not a read-path difference.
    tsd.compact_now().expect("sealing compaction succeeds");
    let end = cfg.history_secs - 1;
    let truth: Vec<Vec<TimeSeries>> = (0..cfg.units)
        .map(|u| {
            strict
                .query(
                    "energy",
                    &QueryFilter::any().with("unit", &u.to_string()),
                    0,
                    end,
                )
                .expect("clean store answers exactly")
        })
        .collect();

    // Bit-flip one sealed block per region on the primary copy, across
    // up to `corruptions` regions. The follower copies stay healthy, so
    // salvage and repair always have a verifiable source.
    let infos = { master.directory().read().clone() };
    let mut corrupted_blocks = 0u64;
    for (i, info) in infos.iter().enumerate() {
        if corrupted_blocks as usize >= cfg.corruptions {
            break;
        }
        let Some(server) = master.server(info.server) else {
            continue;
        };
        let pick = i as u64;
        let hit = server.corrupt_region_cell(
            info.id,
            pick,
            &|kv| is_block_qualifier(&kv.qualifier),
            &|value: &mut Vec<u8>| {
                if value.is_empty() {
                    return;
                }
                let idx = (pick as usize / 8) % value.len();
                value[idx] ^= 1 << (pick % 8);
            },
        );
        if hit.is_some() {
            corrupted_blocks += 1;
        }
    }

    // Arm 1 — strict reader: typed errors where corruption sits, exact
    // answers elsewhere, never a wrong answer.
    let before = query_arm("no-salvage", &strict, &truth, end);
    // Arm 2 — salvaging reader: exact answers everywhere, corrupt spans
    // spliced from the healthy replica and quarantined for the scrubber.
    let after = query_arm("salvage", &tsd, &truth, end);
    let salvaged_reads = tsd
        .metrics()
        .salvaged_reads
        .load(std::sync::atomic::Ordering::Relaxed);

    // Scrub until the quarantine drains (or the budget runs out).
    let fault = no_faults();
    let started = Instant::now();
    let (mut ticks, mut repairs, mut rejected) = (0u64, 0u64, 0u64);
    for _ in 0..cfg.scrub_tick_budget {
        let report = tsd.scrub_tick(&master, &fault);
        ticks += 1;
        repairs += report.repairs_installed;
        rejected += report.repairs_rejected;
        if report.quarantined_after == 0 {
            break;
        }
    }
    let scrub_ms = started.elapsed().as_secs_f64() * 1e3;
    let quarantined_after = tsd.scrub_state().len() as u64;

    // Arm 3 — the strict reader again: repaired local copies must now
    // answer exactly with salvage still off.
    let post_scrub = query_arm("post-scrub-strict", &strict, &truth, end);

    master.shutdown();
    ScrubBenchReport {
        config: cfg.clone(),
        corrupted_blocks,
        before,
        after,
        post_scrub,
        salvaged_reads,
        scrub_ticks: ticks,
        scrub_repairs: repairs,
        scrub_rejected: rejected,
        quarantined_after,
        scrub_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e22_oracles_hold_on_a_small_stack() {
        let rep = scrub_resilience_experiment(&ScrubBenchConfig::quick());
        assert!(rep.corrupted_blocks > 0, "corruption must land");
        assert_eq!(rep.before.wrong_answers, 0, "strict arm: no wrong answers");
        assert!(rep.before.typed_errors > 0, "strict arm: typed errors");
        assert_eq!(
            rep.after.exact, rep.after.queries,
            "salvage arm answers exactly"
        );
        assert!(rep.salvaged_reads > 0, "salvage actually spliced a replica");
        assert!(rep.scrub_repairs > 0, "scrub repaired from a replica");
        assert_eq!(rep.quarantined_after, 0, "quarantine drains");
        assert_eq!(
            rep.post_scrub.exact, rep.post_scrub.queries,
            "repaired local copies answer exactly without salvage"
        );
        assert!(rep.passed());
    }
}
