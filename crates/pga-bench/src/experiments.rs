//! The experiment harnesses (DESIGN.md §4).

use std::time::Instant;

use serde::{Deserialize, Serialize};

use pga_dataflow::Dataflow;
use pga_detect::{train_fleet, train_unit, OnlineEvaluator};
use pga_ingest::{fig2_scaling_experiment, linear_fit, Fig2Row, IngestionPipeline};
use pga_linalg::Matrix;
use pga_sensorgen::{Fleet, FleetConfig};
use pga_stats::{evaluate_procedure, Procedure, TrialAggregate};

/// E1/E2/E12 — Figure 2 reproduction: throughput vs node count with
/// per-configuration timelines and the linear fit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Report {
    /// One row per cluster size.
    pub rows: Vec<Fig2Row>,
    /// Linear fit `(intercept, slope, r²)` of throughput vs nodes.
    pub fit: (f64, f64, f64),
    /// The paper's reference numbers for the same sweep.
    pub paper_reference: Vec<(usize, f64)>,
}

/// Run the Figure-2 sweep (default node counts 10..=30 step 5; pass
/// `extended = true` for the §VI 70-node extrapolation).
pub fn fig2_report(samples: f64, extended: bool) -> Fig2Report {
    let counts: Vec<usize> = if extended {
        vec![10, 15, 20, 25, 30, 40, 50, 60, 70]
    } else {
        vec![10, 15, 20, 25, 30]
    };
    let rows = fig2_scaling_experiment(&counts, samples);
    let points: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| (r.nodes as f64, r.throughput))
        .collect();
    Fig2Report {
        fit: linear_fit(&points),
        rows,
        paper_reference: vec![
            (10, 173_000.0),
            (15, 233_000.0),
            (20, 257_000.0),
            (25, 325_000.0),
            (30, 399_000.0),
        ],
    }
}

/// E3 — online evaluation throughput (paper: 939,000 samples/sec).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalThroughput {
    /// Windows evaluated.
    pub windows: usize,
    /// Samples scored.
    pub samples: u64,
    /// Wall seconds.
    pub elapsed_secs: f64,
    /// Samples per second (parallel evaluation).
    pub throughput: f64,
    /// Samples per second on one thread.
    pub serial_throughput: f64,
}

/// Measure online evaluation throughput over `windows` windows of
/// `window_rows × sensors` observations.
pub fn eval_throughput_experiment(
    sensors: u32,
    window_rows: usize,
    windows: usize,
    seed: u64,
) -> EvalThroughput {
    let fleet = Fleet::new(FleetConfig {
        units: 1,
        sensors_per_unit: sensors,
        ..FleetConfig::paper_scale(seed)
    });
    let obs = fleet.observation_window(0, 199, 200);
    let model = train_unit(0, &obs).unwrap();
    let ev = OnlineEvaluator::new(model, Procedure::BenjaminiHochberg, 0.05);
    let ws: Vec<Matrix> = (0..windows)
        .map(|k| {
            let t_end = 300 + (k as u64 + 1) * window_rows as u64;
            fleet.observation_window(0, t_end, window_rows)
        })
        .collect();
    // Serial baseline.
    let start = Instant::now();
    let mut samples = 0u64;
    for w in &ws {
        samples += ev.evaluate(w).samples_scored;
    }
    let serial = start.elapsed().as_secs_f64();
    // Parallel.
    let start = Instant::now();
    let outs = ev.evaluate_many(&ws);
    let elapsed = start.elapsed().as_secs_f64();
    let par_samples: u64 = outs.iter().map(|o| o.samples_scored).sum();
    assert_eq!(par_samples, samples);
    EvalThroughput {
        windows,
        samples,
        elapsed_secs: elapsed,
        throughput: samples as f64 / elapsed,
        serial_throughput: samples as f64 / serial,
    }
}

/// E5 — one row of the FDR-procedure comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FdrRow {
    /// Procedure name.
    pub procedure: String,
    /// Mean false alarms per unit-window.
    pub mean_false_alarms: f64,
    /// Empirical FDR.
    pub empirical_fdr: f64,
    /// Empirical FWER.
    pub empirical_fwer: f64,
    /// Mean detection power on truly anomalous sensors.
    pub power: f64,
}

/// Run the procedure comparison on a fresh fleet: per-unit p-value
/// families at `eval_t`, scored against ground truth.
///
/// `truth_sigma` is the detectability floor used for ground truth: a cell
/// counts as truly anomalous once its injected signal reaches that many
/// noise standard deviations. A floor of ~0.5σ keeps marginal drifting
/// sensors in the truth set, which is exactly where the power gap between
/// FDR and FWER control lives (evaluating too long after onset saturates
/// every procedure's power at 1.0 and hides the paper's argument).
pub fn fdr_experiment(
    units: u32,
    sensors: u32,
    eval_t: u64,
    truth_sigma: f64,
    seed: u64,
) -> Vec<FdrRow> {
    let fleet = Fleet::new(FleetConfig {
        units,
        sensors_per_unit: sensors,
        ..FleetConfig::paper_scale(seed)
    });
    let mut aggs: Vec<(Procedure, TrialAggregate)> = Procedure::all()
        .into_iter()
        .map(|p| (p, TrialAggregate::default()))
        .collect();
    for unit in 0..units {
        let obs = fleet.observation_window(unit, 149, 150);
        let model = train_unit(unit, &obs).unwrap();
        let ev = OnlineEvaluator::new(model, Procedure::BenjaminiHochberg, 0.05);
        // Several evaluation windows around eval_t: drifting units cross
        // the detectability threshold at different times, so a spread of
        // windows samples the marginal regime for every unit.
        for k in 0..4u64 {
            let t = eval_t + k * 60;
            let out = ev.evaluate(&fleet.observation_window(unit, t, 50));
            let truth = fleet.truth_row(unit, t, truth_sigma);
            for (proc, agg) in aggs.iter_mut() {
                let rej = proc.apply(&out.p_values, 0.05);
                agg.add(&evaluate_procedure(*proc, &rej, &truth));
            }
        }
    }
    aggs.into_iter()
        .map(|(p, a)| FdrRow {
            procedure: p.name().to_string(),
            mean_false_alarms: a.mean_false_positives,
            empirical_fdr: a.empirical_fdr,
            empirical_fwer: a.empirical_fwer,
            power: a.mean_power,
        })
        .collect()
}

/// E5b — weak-signal power study: Monte-Carlo families with marginal
/// alternatives, the regime where §IV's criticism of FWER control bites
/// ("it provided much less detection power and was overly conservative").
pub fn fdr_weak_signal_experiment(
    m: usize,
    signals: usize,
    signal_z: f64,
    trials: usize,
    seed: u64,
) -> Vec<FdrRow> {
    use rand::{Rng, SeedableRng};
    assert!(signals <= m);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut aggs: Vec<(Procedure, TrialAggregate)> = Procedure::all()
        .into_iter()
        .map(|p| (p, TrialAggregate::default()))
        .collect();
    let mut truth = vec![false; m];
    for t in truth.iter_mut().take(signals) {
        *t = true;
    }
    for _ in 0..trials {
        let p_values: Vec<f64> = (0..m)
            .map(|i| {
                let noise = pga_stats::standard_normal(&mut rng);
                let z = if i < signals { signal_z + noise } else { noise };
                pga_stats::two_sided_p_from_z(z)
            })
            .collect();
        // Guard against the degenerate all-identical family.
        let _ = rng.gen::<u64>();
        for (proc, agg) in aggs.iter_mut() {
            let rej = proc.apply(&p_values, 0.05);
            agg.add(&evaluate_procedure(*proc, &rej, &truth));
        }
    }
    aggs.into_iter()
        .map(|(p, a)| FdrRow {
            procedure: p.name().to_string(),
            mean_false_alarms: a.mean_false_positives,
            empirical_fdr: a.empirical_fdr,
            empirical_fwer: a.empirical_fwer,
            power: a.mean_power,
        })
        .collect()
}

/// E15 — operating characteristic row: one `(procedure, α)` point of the
/// power / false-alarm tradeoff curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlphaSweepRow {
    /// Procedure.
    pub procedure: String,
    /// Level the procedure ran at.
    pub alpha: f64,
    /// Empirical FDR at that level.
    pub empirical_fdr: f64,
    /// Detection power at that level.
    pub power: f64,
    /// Mean false alarms per unit-window.
    pub mean_false_alarms: f64,
}

/// Sweep α for uncorrected / Bonferroni / BH on the fleet workload —
/// the operating-characteristic view of E5. P-values are computed once
/// per unit and reused across every `(procedure, α)` cell.
pub fn alpha_sweep_experiment(
    units: u32,
    sensors: u32,
    eval_t: u64,
    truth_sigma: f64,
    alphas: &[f64],
    seed: u64,
) -> Vec<AlphaSweepRow> {
    let fleet = Fleet::new(FleetConfig {
        units,
        sensors_per_unit: sensors,
        ..FleetConfig::paper_scale(seed)
    });
    let procedures = [
        Procedure::Uncorrected,
        Procedure::Bonferroni,
        Procedure::BenjaminiHochberg,
    ];
    // Precompute (p-value family, truth) per unit.
    let mut families = Vec::with_capacity(units as usize);
    for unit in 0..units {
        let obs = fleet.observation_window(unit, 149, 150);
        let model = train_unit(unit, &obs).unwrap();
        let ev = OnlineEvaluator::new(model, Procedure::BenjaminiHochberg, 0.05);
        let out = ev.evaluate(&fleet.observation_window(unit, eval_t, 50));
        let truth = fleet.truth_row(unit, eval_t, truth_sigma);
        families.push((out.p_values, truth));
    }
    let mut rows = Vec::new();
    for proc in procedures {
        for &alpha in alphas {
            let mut agg = TrialAggregate::default();
            for (p_values, truth) in &families {
                let rej = proc.apply(p_values, alpha);
                agg.add(&evaluate_procedure(proc, &rej, truth));
            }
            rows.push(AlphaSweepRow {
                procedure: proc.name().to_string(),
                alpha,
                empirical_fdr: agg.empirical_fdr,
                power: agg.mean_power,
                mean_false_alarms: agg.mean_false_positives,
            });
        }
    }
    rows
}

/// E13 — detection latency: ticks from fault onset until the first flag
/// lands on a faulted sensor, per fault class and procedure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyRow {
    /// Procedure used.
    pub procedure: String,
    /// Fault class ("sharp-shift" / "gradual-degradation").
    pub fault_class: String,
    /// Mean detection delay in ticks (onset → first true flag), over the
    /// units that were detected at all.
    pub mean_delay_ticks: f64,
    /// Units of this class detected within the horizon.
    pub detected: usize,
    /// Units of this class in the fleet.
    pub total: usize,
}

/// Measure detection latency: slide an evaluation window forward from each
/// unit's onset in steps of `stride` ticks and record when the detector
/// first flags a truly faulted sensor.
pub fn detection_latency_experiment(
    units: u32,
    sensors: u32,
    window: usize,
    stride: u64,
    horizon: u64,
    seed: u64,
) -> Vec<LatencyRow> {
    use pga_sensorgen::FaultClass;
    let fleet = Fleet::new(FleetConfig {
        units,
        sensors_per_unit: sensors,
        ..FleetConfig::paper_scale(seed)
    });
    let procedures = [
        Procedure::Uncorrected,
        Procedure::Bonferroni,
        Procedure::BenjaminiHochberg,
    ];
    let classes = [FaultClass::SharpShift, FaultClass::GradualDegradation];
    let mut rows = Vec::new();
    for proc in procedures {
        for class in classes {
            let mut delays = Vec::new();
            let mut total = 0usize;
            for unit in fleet.units_with_class(class) {
                total += 1;
                let spec = *fleet.fault(unit);
                let obs = fleet.observation_window(unit, 149, 150);
                let model = match train_unit(unit, &obs) {
                    Ok(m) => m,
                    Err(_) => continue,
                };
                let ev = OnlineEvaluator::new(model, proc, 0.05);
                let mut t = spec.onset + window as u64;
                let mut detected_at = None;
                while t <= spec.onset + horizon {
                    let out = ev.evaluate(&fleet.observation_window(unit, t, window));
                    let hit = out.flags.iter().any(|f| spec.affects(f.sensor));
                    if hit {
                        detected_at = Some(t - spec.onset);
                        break;
                    }
                    t += stride;
                }
                if let Some(d) = detected_at {
                    delays.push(d as f64);
                }
            }
            let detected = delays.len();
            rows.push(LatencyRow {
                procedure: proc.name().to_string(),
                fault_class: class.name().to_string(),
                mean_delay_ticks: if detected == 0 {
                    f64::NAN
                } else {
                    delays.iter().sum::<f64>() / detected as f64
                },
                detected,
                total,
            });
        }
    }
    // The classical SPC baseline: per-sensor two-sided CUSUM (k=0.5σ,
    // h=5σ) fed sample by sample from onset. Fast on persistent shifts —
    // and with no multiplicity control at all (see the cusum tests for
    // its fleet-wide false-alarm behaviour).
    for class in classes {
        let mut delays = Vec::new();
        let mut total = 0usize;
        for unit in fleet.units_with_class(class) {
            total += 1;
            let spec = *fleet.fault(unit);
            let obs = fleet.observation_window(unit, 149, 150);
            let Ok(model) = train_unit(unit, &obs) else {
                continue;
            };
            let mut det = pga_detect::CusumDetector::new(model, 0.5, 5.0);
            let p = fleet.config().sensors_per_unit;
            let mut detected_at = None;
            for t in spec.onset..spec.onset + horizon {
                let row: Vec<f64> = (0..p).map(|s| fleet.sample(unit, s, t)).collect();
                if det.update(&row).iter().any(|&s| spec.affects(s)) {
                    detected_at = Some(t - spec.onset);
                    break;
                }
            }
            if let Some(d) = detected_at {
                delays.push(d as f64);
            }
        }
        let detected = delays.len();
        rows.push(LatencyRow {
            procedure: "cusum (k=0.5, h=5)".to_string(),
            fault_class: class.name().to_string(),
            mean_delay_ticks: if detected == 0 {
                f64::NAN
            } else {
                delays.iter().sum::<f64>() / detected as f64
            },
            detected,
            total,
        });
    }
    rows
}

/// E14 — evaluation-window ablation row (design choice: window length
/// trades detection latency against statistical stability).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowAblationRow {
    /// Evaluation window length in ticks.
    pub window: usize,
    /// Mean sharp-shift detection delay in ticks.
    pub sharp_delay_ticks: f64,
    /// Mean false flags per healthy unit-window (BH at q = 0.05).
    pub healthy_false_flags: f64,
}

/// Sweep the evaluation window length, measuring sharp-shift detection
/// delay and healthy-unit false-flag rates under BH.
pub fn window_ablation_experiment(
    units: u32,
    sensors: u32,
    windows: &[usize],
    seed: u64,
) -> Vec<WindowAblationRow> {
    use pga_sensorgen::FaultClass;
    let fleet = Fleet::new(FleetConfig {
        units,
        sensors_per_unit: sensors,
        ..FleetConfig::paper_scale(seed)
    });
    windows
        .iter()
        .map(|&window| {
            // Detection delay on sharp shifts, stride 5.
            let mut delays = Vec::new();
            for unit in fleet.units_with_class(FaultClass::SharpShift) {
                let spec = *fleet.fault(unit);
                let obs = fleet.observation_window(unit, 149, 150);
                let Ok(model) = train_unit(unit, &obs) else {
                    continue;
                };
                let ev = OnlineEvaluator::new(model, Procedure::BenjaminiHochberg, 0.05);
                let mut t = spec.onset + 1;
                while t <= spec.onset + 400 {
                    let out = ev.evaluate(&fleet.observation_window(unit, t, window));
                    if out.flags.iter().any(|f| spec.affects(f.sensor)) {
                        delays.push((t - spec.onset) as f64);
                        break;
                    }
                    t += 5;
                }
            }
            // False flags on healthy units over several windows.
            let mut false_flags = 0usize;
            let mut healthy_windows = 0usize;
            for unit in fleet.units_with_class(FaultClass::Healthy) {
                let obs = fleet.observation_window(unit, 149, 150);
                let Ok(model) = train_unit(unit, &obs) else {
                    continue;
                };
                let ev = OnlineEvaluator::new(model, Procedure::BenjaminiHochberg, 0.05);
                for k in 0..4u64 {
                    let t = 600 + k * 100;
                    false_flags += ev
                        .evaluate(&fleet.observation_window(unit, t, window))
                        .flags
                        .len();
                    healthy_windows += 1;
                }
            }
            WindowAblationRow {
                window,
                sharp_delay_ticks: if delays.is_empty() {
                    f64::NAN
                } else {
                    delays.iter().sum::<f64>() / delays.len() as f64
                },
                healthy_false_flags: if healthy_windows == 0 {
                    0.0
                } else {
                    false_flags as f64 / healthy_windows as f64
                },
            }
        })
        .collect()
}

/// E8 — compaction ablation row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompactionRow {
    /// Whether write-path compaction was enabled.
    pub compaction: bool,
    /// Storage RPCs issued per data point.
    pub rpcs_per_point: f64,
    /// Wall seconds for the workload.
    pub elapsed_secs: f64,
}

/// Run the compaction ablation on the real storage stack: one series
/// crossing many hourly rows, compaction on vs off.
pub fn compaction_ablation(series: u32, hours: u64, seed: u64) -> Vec<CompactionRow> {
    let _ = seed;
    [false, true]
        .into_iter()
        .map(|compaction| compaction_ablation_single(series, hours, compaction))
        .collect()
}

/// One configuration of the compaction ablation (also used as a Criterion
/// bench body).
pub fn compaction_ablation_single(series: u32, hours: u64, compaction: bool) -> CompactionRow {
    use pga_cluster::coordinator::Coordinator;
    use pga_minibase::{Client, Master, RegionConfig, ServerConfig, TableDescriptor};
    use pga_tsdb::{KeyCodec, KeyCodecConfig, Tsd, TsdConfig, UidTable};
    let codec = KeyCodec::new(
        KeyCodecConfig {
            salt_buckets: 4,
            row_span_secs: 3600,
        },
        UidTable::new(),
    );
    let coord = Coordinator::new(60_000);
    let mut master = Master::bootstrap(2, ServerConfig::default(), coord, 0);
    master.create_table(&TableDescriptor {
        name: "tsdb".into(),
        split_points: codec.split_points(),
        region_config: RegionConfig::default(),
    });
    let tsd = Tsd::new(
        codec,
        Client::connect(&master),
        TsdConfig {
            write_path_compaction: compaction,
            ..TsdConfig::default()
        },
    );
    let start = Instant::now();
    for s in 0..series {
        let tag = s.to_string();
        for h in 0..hours {
            // A handful of points per hourly row, then roll over.
            for k in 0..5u64 {
                tsd.put(
                    "energy",
                    &[("unit", &tag), ("sensor", "0")],
                    h * 3600 + k * 600,
                    1.0,
                )
                .unwrap();
            }
        }
    }
    let metrics = tsd.metrics();
    let row = CompactionRow {
        compaction,
        rpcs_per_point: metrics.rpcs_per_point(),
        elapsed_secs: start.elapsed().as_secs_f64(),
    };
    master.shutdown();
    row
}

/// E10 — offline training scaling row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingRow {
    /// Dataflow workers.
    pub workers: usize,
    /// Wall seconds to train the fleet.
    pub elapsed_secs: f64,
    /// Speedup relative to one worker.
    pub speedup: f64,
}

/// Measure offline training wall time vs worker count.
pub fn training_scaling_experiment(
    units: u32,
    sensors: u32,
    window: usize,
    workers: &[usize],
    seed: u64,
) -> Vec<TrainingRow> {
    let fleet = Fleet::new(FleetConfig {
        units,
        sensors_per_unit: sensors,
        ..FleetConfig::paper_scale(seed)
    });
    let mut rows = Vec::new();
    let mut base = None;
    for &w in workers {
        let df = Dataflow::new(w);
        let start = Instant::now();
        let models = train_fleet(&fleet, window, &df, None).unwrap();
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(models.len(), units as usize);
        let base_time = *base.get_or_insert(elapsed);
        rows.push(TrainingRow {
            workers: w,
            elapsed_secs: elapsed,
            speedup: base_time / elapsed,
        });
    }
    rows
}

/// Real thread-scale ingestion throughput (validates the storage stack on
/// the host; complements the calibrated Fig-2 model).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineThroughput {
    /// Storage nodes used.
    pub nodes: usize,
    /// Samples ingested.
    pub samples: u64,
    /// Wall samples/sec through proxy → TSD → region servers.
    pub throughput: f64,
}

/// Run the real pipeline at thread scale.
pub fn pipeline_throughput_experiment(nodes: usize, ticks: u64, seed: u64) -> PipelineThroughput {
    let fleet = Fleet::new(FleetConfig {
        units: 20,
        sensors_per_unit: 100,
        ..FleetConfig::paper_scale(seed)
    });
    let pipeline = IngestionPipeline::new(nodes, 2, 500);
    let report = pipeline.run(&fleet, ticks);
    pipeline.shutdown();
    PipelineThroughput {
        nodes,
        samples: report.samples,
        throughput: report.throughput,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_report_shape() {
        let r = fig2_report(500_000.0, false);
        assert_eq!(r.rows.len(), 5);
        assert_eq!(r.paper_reference.len(), 5);
        let (_, slope, r2) = r.fit;
        assert!(slope > 0.0);
        assert!(r2 > 0.95);
        // Monotone increasing throughput.
        for w in r.rows.windows(2) {
            assert!(w[1].throughput > w[0].throughput);
        }
    }

    #[test]
    fn eval_throughput_counts_samples() {
        let r = eval_throughput_experiment(64, 25, 8, 3);
        assert_eq!(r.samples, 8 * 25 * 64);
        assert!(r.throughput > 0.0);
        assert!(r.serial_throughput > 0.0);
    }

    #[test]
    fn fdr_rows_cover_all_procedures() {
        let rows = fdr_experiment(6, 64, 560, 0.5, 11);
        assert_eq!(rows.len(), Procedure::all().len());
        let unc = rows.iter().find(|r| r.procedure == "uncorrected").unwrap();
        let bh = rows
            .iter()
            .find(|r| r.procedure == "benjamini-hochberg")
            .unwrap();
        assert!(bh.mean_false_alarms <= unc.mean_false_alarms);
    }

    #[test]
    fn compaction_ablation_shows_more_rpcs_when_enabled() {
        let rows = compaction_ablation(4, 6, 1);
        assert_eq!(rows.len(), 2);
        let off = rows.iter().find(|r| !r.compaction).unwrap();
        let on = rows.iter().find(|r| r.compaction).unwrap();
        assert!(
            on.rpcs_per_point > off.rpcs_per_point,
            "compaction {} vs off {}",
            on.rpcs_per_point,
            off.rpcs_per_point
        );
    }

    #[test]
    fn training_rows_report_speedup() {
        let rows = training_scaling_experiment(8, 32, 60, &[1, 4], 5);
        assert_eq!(rows.len(), 2);
        assert!((rows[0].speedup - 1.0).abs() < 1e-9);
        assert!(rows[1].speedup > 0.0);
    }
}
