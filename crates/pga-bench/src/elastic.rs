//! E16 — elastic scaling under load surges (pga-control).
//!
//! Compares a static fleet against the telemetry-driven autoscaler on the
//! same surge workloads: a static cluster sized for the pre-surge load
//! reproduces the §III-B overload crashes, a static cluster sized for the
//! peak wastes node-seconds, and the hysteresis autoscaler tracks the
//! offered load — zero crashes, delivery ≈ 1, per-node throughput near the
//! paper's ~11k samples/sec/node line — at a fraction of the peak-sized
//! cost.

use pga_cluster::sim::{ProxyMode, SimClusterConfig};
use pga_control::{
    run_elastic, ElasticRunReport, ElasticSimConfig, HysteresisConfig, HysteresisPolicy,
    StaticPolicy,
};
use pga_sensorgen::ArrivalPattern;
use serde::{Deserialize, Serialize};

/// One (pattern × fleet-policy) cell of the E16 comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElasticScenarioRow {
    /// Human label, e.g. `"static-6 (no proxy)"`.
    pub scenario: String,
    /// Full run report (timeline + scale events included).
    pub report: ElasticRunReport,
}

/// E16 artifact: every scenario under every surge pattern.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElasticScalingReport {
    /// Offer-window length in virtual seconds.
    pub duration_secs: f64,
    /// Effective per-node service rate of the calibration, samples/sec.
    pub per_node_rate: f64,
    /// All runs, grouped by pattern in order.
    pub rows: Vec<ElasticScenarioRow>,
}

fn autoscaler(max_nodes: usize) -> HysteresisPolicy {
    HysteresisPolicy::new(HysteresisConfig {
        high_water: 0.55,
        low_water: 0.15,
        k_ticks: 2,
        // Longer than the 5 s provision delay, so the policy sees the
        // nodes it ordered before ordering more.
        cooldown_ticks: 6,
        ema_alpha: 0.6,
        scale_out_step: 6,
        scale_in_step: 1,
        min_nodes: 2,
        max_nodes,
    })
}

/// Run E16: surge patterns against undersized-static, peak-sized-static and
/// autoscaled fleets on the paper calibration. `duration_secs` is the offer
/// window (quick mode shortens it); runs are deterministic.
pub fn elastic_scaling_experiment(duration_secs: f64) -> ElasticScalingReport {
    let base_rate = 80_000.0; // comfortable on the small fleet
    let peak_rate = 250_000.0; // needs ~19 nodes at ~13.3k/s/node
    let surge_at = duration_secs / 3.0;
    let patterns = [
        ArrivalPattern::Step {
            base: base_rate,
            at_secs: surge_at,
            to: peak_rate,
        },
        ArrivalPattern::Ramp {
            base: base_rate,
            from_secs: surge_at,
            until_secs: 2.0 * duration_secs / 3.0,
            to: peak_rate,
        },
    ];

    let calibration = SimClusterConfig::paper_calibration(1);
    let small = 8; // sized for the pre-surge load only
    let peak_sized = (peak_rate / calibration.effective_rate()).ceil() as usize + 1;

    let cfg = |nodes: usize, proxy: ProxyMode| {
        let mut c = ElasticSimConfig::paper_calibration(nodes);
        c.proxy = proxy;
        c
    };

    let mut rows = Vec::new();
    for pattern in &patterns {
        // §III-B baseline: undersized, clients fire straight at the nodes.
        let mut fixed = StaticPolicy;
        let r = run_elastic(
            &cfg(small, ProxyMode::None),
            pattern,
            duration_secs,
            &mut fixed,
        );
        rows.push(ElasticScenarioRow {
            scenario: format!("static-{small} (no proxy)"),
            report: r,
        });

        // Undersized but behind the buffering proxy: no crashes, but the
        // backlog grows without bound until the surge ends.
        let mut fixed = StaticPolicy;
        let r = run_elastic(
            &cfg(small, ProxyMode::Buffered),
            pattern,
            duration_secs,
            &mut fixed,
        );
        rows.push(ElasticScenarioRow {
            scenario: format!("static-{small} (proxy)"),
            report: r,
        });

        // Sized for the peak the whole time: safe but pays for idle nodes.
        let mut fixed = StaticPolicy;
        let r = run_elastic(
            &cfg(peak_sized, ProxyMode::Buffered),
            pattern,
            duration_secs,
            &mut fixed,
        );
        rows.push(ElasticScenarioRow {
            scenario: format!("static-{peak_sized} (peak-sized)"),
            report: r,
        });

        // The control plane: starts small, follows the load. The fleet
        // ceiling is the operator-set budget — slightly above what the
        // peak needs, so backlog built up while nodes provision can drain.
        let mut auto_p = autoscaler(peak_sized + 2);
        let r = run_elastic(
            &cfg(small, ProxyMode::Buffered),
            pattern,
            duration_secs,
            &mut auto_p,
        );
        rows.push(ElasticScenarioRow {
            scenario: format!("autoscaled (start {small})"),
            report: r,
        });
    }

    ElasticScalingReport {
        duration_secs,
        per_node_rate: calibration.effective_rate(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_contrast_holds_in_quick_mode() {
        let rep = elastic_scaling_experiment(120.0);
        assert_eq!(rep.rows.len(), 8);
        for chunk in rep.rows.chunks(4) {
            let unsized_raw = &chunk[0].report;
            let peak = &chunk[2].report;
            let auto_r = &chunk[3].report;
            // §III-B: the unprotected undersized fleet crashes and drops.
            assert!(unsized_raw.crashes > 0, "{}", chunk[0].scenario);
            assert!(unsized_raw.delivery_ratio() < 0.9);
            // The autoscaler absorbs the surge completely…
            assert_eq!(auto_r.crashes, 0);
            assert_eq!(auto_r.dropped, 0.0);
            assert!(auto_r.delivery_ratio() > 0.99);
            assert!(auto_r.peak_active_nodes > 8);
            // …for less money than the peak-sized static fleet, and with
            // better per-node utilization.
            assert!(auto_r.node_seconds < peak.node_seconds);
            assert!(auto_r.per_node_throughput() > peak.per_node_throughput());
            // Paid capacity tracks the paper's ~11k samples/sec/node
            // line within 20% despite the scaling transients.
            assert!(auto_r.per_node_throughput() > 11_000.0 * 0.8);
        }
    }

    #[test]
    fn e16_is_deterministic() {
        let a = elastic_scaling_experiment(60.0);
        let b = elastic_scaling_experiment(60.0);
        let digest = |r: &ElasticScalingReport| {
            r.rows
                .iter()
                .map(|row| (row.report.ingested, row.report.node_seconds))
                .collect::<Vec<_>>()
        };
        assert_eq!(digest(&a), digest(&b));
    }
}
