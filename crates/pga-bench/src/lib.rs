//! Experiment harnesses reproducing the paper's evaluation artifacts.
//!
//! Each function regenerates one table or figure (see DESIGN.md §4 for the
//! experiment index). The `report_all` binary runs everything and prints
//! paper-style tables plus JSON for EXPERIMENTS.md; the Criterion benches
//! measure the real code paths behind each experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod elastic;
pub mod experiments;
pub mod faults;
pub mod overload;
pub mod queries;
pub mod repl;
pub mod scrub;
pub mod table;
pub mod train;

pub use blocks::{block_format_experiment, BlockBenchConfig, BlockBenchReport, DetectArm, ScanArm};
pub use elastic::{elastic_scaling_experiment, ElasticScalingReport, ElasticScenarioRow};
pub use experiments::{
    alpha_sweep_experiment, compaction_ablation, compaction_ablation_single,
    detection_latency_experiment, eval_throughput_experiment, fdr_experiment,
    fdr_weak_signal_experiment, fig2_report, pipeline_throughput_experiment,
    training_scaling_experiment, window_ablation_experiment, AlphaSweepRow, CompactionRow,
    EvalThroughput, FdrRow, Fig2Report, LatencyRow, PipelineThroughput, TrainingRow,
    WindowAblationRow,
};
pub use faults::{fault_durability_experiment, FaultDurabilityReport};
pub use overload::{overload_storm_experiment, OverloadStormReport, GOODPUT_FLOOR};
pub use queries::{query_serving_experiment, QueryArm, QueryBenchConfig, QueryServingReport};
pub use repl::{
    failover_experiment, AvailabilityRow, CampaignSummary, FailoverReport, AVAILABILITY_BAR,
};
pub use scrub::{scrub_resilience_experiment, ScrubArm, ScrubBenchConfig, ScrubBenchReport};
pub use table::render_table;
pub use train::{
    train_retrain_experiment, RetrainRound, TrainBenchConfig, TrainBenchReport, WorkerScalingRow,
};
