//! Regenerate every table and figure of the paper's evaluation and print
//! paper-style tables. JSON copies land in `target/experiments/` for
//! EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p pga-bench --bin report_all
//! cargo run --release -p pga-bench --bin report_all -- --quick
//! ```

use pga_bench::{
    compaction_ablation, elastic_scaling_experiment, eval_throughput_experiment, fdr_experiment,
    fig2_report, pipeline_throughput_experiment, render_table, training_scaling_experiment,
    AVAILABILITY_BAR,
};
use pga_ingest::{proxy_ablation, salting_ablation};

fn save(name: &str, value: &impl serde::Serialize) {
    std::fs::create_dir_all("target/experiments").ok();
    let path = format!("target/experiments/{name}.json");
    std::fs::write(&path, serde_json::to_string_pretty(value).unwrap()).unwrap();
    println!("  [saved {path}]\n");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let fig2_samples = if quick { 1_000_000.0 } else { 20_000_000.0 };

    // ---------------------------------------------------------------- E1/E2
    println!("== E1/E2: Figure 2 — ingestion scale-up (queueing model, real key routing) ==");
    let fig2 = fig2_report(fig2_samples, false);
    let mut rows = vec![vec![
        "nodes".to_string(),
        "throughput (samples/s)".to_string(),
        "paper (samples/s)".to_string(),
    ]];
    for (row, &(pn, pt)) in fig2.rows.iter().zip(&fig2.paper_reference) {
        assert_eq!(row.nodes, pn);
        rows.push(vec![
            row.nodes.to_string(),
            format!("{:.0}", row.throughput),
            format!("{pt:.0}"),
        ]);
    }
    println!("{}", render_table(&rows));
    let (a, b, r2) = fig2.fit;
    println!("linear fit: throughput = {a:.0} + {b:.0}·nodes  (r² = {r2:.4})");
    println!("paper: \"scales linearly, with each added machine increasing throughput by 11K samples per second\"");
    // Fig 2 right: rate stability per configuration.
    println!("\nFig 2 (right) — rate stability (max slope deviation from mean):");
    for row in &fig2.rows {
        let t = row.throughput;
        let max_dev = row
            .timeline
            .windows(2)
            .take(row.timeline.len().saturating_sub(2))
            .map(|w| ((w[1].1 - w[0].1) / (w[1].0 - w[0].0) - t).abs() / t)
            .fold(0.0, f64::max);
        println!(
            "  {:>2} nodes: {:.1}% deviation over {} snapshots",
            row.nodes,
            max_dev * 100.0,
            row.timeline.len()
        );
    }
    save("fig2", &fig2);

    // ---------------------------------------------------------------- E12
    println!("== E12: extension — scaling to 70 nodes (§VI ongoing work) ==");
    let ext = fig2_report(fig2_samples, true);
    let mut rows = vec![vec![
        "nodes".to_string(),
        "throughput (samples/s)".to_string(),
    ]];
    for row in &ext.rows {
        rows.push(vec![
            row.nodes.to_string(),
            format!("{:.0}", row.throughput),
        ]);
    }
    println!("{}", render_table(&rows));
    save("fig2_extended", &ext);

    // ---------------------------------------------------------------- E6
    println!("== E6: §III-B ablation — row-key salting ==");
    let salt = salting_ablation(30, if quick { 500_000.0 } else { 5_000_000.0 });
    let rows = vec![
        vec![
            "keys".to_string(),
            "throughput (samples/s)".to_string(),
            "busiest server share".to_string(),
        ],
        vec![
            "salted".to_string(),
            format!("{:.0}", salt.salted_throughput),
            format!("{:.3}", salt.salted_max_share),
        ],
        vec![
            "unsalted".to_string(),
            format!("{:.0}", salt.unsalted_throughput),
            format!("{:.3}", salt.unsalted_max_share),
        ],
    ];
    println!("{}", render_table(&rows));
    println!(
        "salting speedup: {:.1}x  (paper: \"a dramatic increase to the ingestion rate\")",
        salt.speedup()
    );
    save("salting_ablation", &salt);

    // ---------------------------------------------------------------- E7
    println!("== E7: §III-B ablation — reverse proxy backpressure ==");
    let proxy = proxy_ablation(10, if quick { 1_000_000.0 } else { 5_000_000.0 });
    let rows = vec![
        vec![
            "config".to_string(),
            "ingested".to_string(),
            "dropped".to_string(),
            "server crashes".to_string(),
        ],
        vec![
            "with proxy".to_string(),
            format!("{:.0}", proxy.with_proxy.ingested),
            format!("{:.0}", proxy.with_proxy.dropped),
            proxy.with_proxy.crashes.to_string(),
        ],
        vec![
            "without proxy".to_string(),
            format!("{:.0}", proxy.without_proxy.ingested),
            format!("{:.0}", proxy.without_proxy.dropped),
            proxy.without_proxy.crashes.to_string(),
        ],
    ];
    println!("{}", render_table(&rows));
    println!("paper: \"frequent crashes of Regionservers due to overloaded RPC Queues\" without buffering");
    save("proxy_ablation", &proxy);

    // ---------------------------------------------------------------- E8
    println!("== E8: §III-B ablation — OpenTSDB write-path compaction ==");
    let comp = compaction_ablation(if quick { 4 } else { 16 }, 8, 7);
    let mut rows = vec![vec![
        "compaction".to_string(),
        "RPCs per datapoint".to_string(),
        "wall secs".to_string(),
    ]];
    for r in &comp {
        rows.push(vec![
            if r.compaction {
                "enabled"
            } else {
                "disabled (paper)"
            }
            .to_string(),
            format!("{:.3}", r.rpcs_per_point),
            format!("{:.3}", r.elapsed_secs),
        ]);
    }
    println!("{}", render_table(&rows));
    save("compaction_ablation", &comp);

    // ---------------------------------------------------------------- E5
    println!("== E5: §IV — multiple-testing procedures on the synthetic fleet ==");
    let (units, sensors) = if quick { (12, 64) } else { (50, 200) };
    let fdr = fdr_experiment(units, sensors, 560, 0.5, 2024);
    let mut rows = vec![vec![
        "procedure".to_string(),
        "false alarms/window".to_string(),
        "empirical FDR".to_string(),
        "empirical FWER".to_string(),
        "power".to_string(),
    ]];
    for r in &fdr {
        rows.push(vec![
            r.procedure.clone(),
            format!("{:.2}", r.mean_false_alarms),
            format!("{:.3}", r.empirical_fdr),
            format!("{:.3}", r.empirical_fwer),
            format!("{:.3}", r.power),
        ]);
    }
    println!("{}", render_table(&rows));
    println!("paper: FDR \"significantly reduces the number of false alarms\" while balancing type I/II errors");
    save("fdr_procedures", &fdr);

    // -------------------------------------------------------------- E5b
    println!("== E5b: weak-signal power study (Monte Carlo, m=1000, 50 signals at z=3) ==");
    let weak =
        pga_bench::fdr_weak_signal_experiment(1000, 50, 3.0, if quick { 40 } else { 200 }, 77);
    let mut rows = vec![vec![
        "procedure".to_string(),
        "empirical FDR".to_string(),
        "empirical FWER".to_string(),
        "power".to_string(),
    ]];
    for r in &weak {
        rows.push(vec![
            r.procedure.clone(),
            format!("{:.3}", r.empirical_fdr),
            format!("{:.3}", r.empirical_fwer),
            format!("{:.3}", r.power),
        ]);
    }
    println!("{}", render_table(&rows));
    println!(
        "paper on FWER control: \"provided much less detection power and was overly conservative\""
    );
    save("fdr_weak_signal", &weak);

    // ---------------------------------------------------------------- E15
    println!("== E15: operating characteristic — power vs FDR across alpha ==");
    let sweep = pga_bench::alpha_sweep_experiment(
        if quick { 12 } else { 30 },
        64,
        620,
        0.5,
        &[0.01, 0.05, 0.10, 0.20],
        2024,
    );
    let mut rows = vec![vec![
        "procedure".to_string(),
        "alpha".to_string(),
        "empirical FDR".to_string(),
        "power".to_string(),
        "false alarms/window".to_string(),
    ]];
    for r in &sweep {
        rows.push(vec![
            r.procedure.clone(),
            format!("{:.2}", r.alpha),
            format!("{:.3}", r.empirical_fdr),
            format!("{:.3}", r.power),
            format!("{:.2}", r.mean_false_alarms),
        ]);
    }
    println!("{}", render_table(&rows));
    println!("BH tracks the target FDR across levels; uncorrected false alarms grow linearly with alpha\n");
    save("alpha_sweep", &sweep);

    // ---------------------------------------------------------------- E13
    println!("== E13: detection latency — ticks from onset to first true flag ==");
    let (lat_units, lat_sensors) = if quick { (9, 48) } else { (24, 96) };
    let lat = pga_bench::detection_latency_experiment(lat_units, lat_sensors, 50, 10, 1500, 31);
    let mut rows = vec![vec![
        "procedure".to_string(),
        "fault class".to_string(),
        "mean delay (ticks)".to_string(),
        "detected".to_string(),
    ]];
    for r in &lat {
        rows.push(vec![
            r.procedure.clone(),
            r.fault_class.clone(),
            if r.mean_delay_ticks.is_nan() {
                "-".into()
            } else {
                format!("{:.0}", r.mean_delay_ticks)
            },
            format!("{}/{}", r.detected, r.total),
        ]);
    }
    println!("{}", render_table(&rows));
    println!(
        "sharp shifts are caught within ~1 window; gradual degradation is caught once the drift"
    );
    println!(
        "accumulates — the incipient-fault detection the paper targets. The classical per-sensor"
    );
    println!(
        "CUSUM is fastest but carries NO multiplicity control: on a healthy 1000-sensor unit it"
    );
    println!("false-alarms on hundreds of sensors (see pga-detect cusum tests) — the paper's §IV problem.\n");
    save("detection_latency", &lat);

    // ---------------------------------------------------------------- E14
    println!("== E14: design ablation — evaluation window length ==");
    let wab = pga_bench::window_ablation_experiment(
        if quick { 9 } else { 18 },
        48,
        &[10, 25, 50, 100],
        47,
    );
    let mut rows = vec![vec![
        "window (ticks)".to_string(),
        "sharp-shift delay (ticks)".to_string(),
        "false flags / healthy window".to_string(),
    ]];
    for r in &wab {
        rows.push(vec![
            r.window.to_string(),
            if r.sharp_delay_ticks.is_nan() {
                "-".into()
            } else {
                format!("{:.0}", r.sharp_delay_ticks)
            },
            format!("{:.3}", r.healthy_false_flags),
        ]);
    }
    println!("{}", render_table(&rows));
    save("window_ablation", &wab);

    // ---------------------------------------------------------------- E4
    println!("== E4: §IV arithmetic — P(≥1 false alarm) = 1 − (1−α)^m ==");
    let mut rows = vec![vec![
        "sensors (m)".to_string(),
        "analytic".to_string(),
        "Monte-Carlo".to_string(),
    ]];
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    for m in [1usize, 5, 10, 50, 100] {
        let analytic = pga_stats::family_wise_false_alarm_probability(0.05, m);
        let trials = 20_000;
        let mut hits = 0;
        for _ in 0..trials {
            if (0..m).any(|_| rng.gen::<f64>() <= 0.05) {
                hits += 1;
            }
        }
        rows.push(vec![
            m.to_string(),
            format!("{analytic:.4}"),
            format!("{:.4}", hits as f64 / trials as f64),
        ]);
    }
    println!("{}", render_table(&rows));
    println!("paper: α=0.05, m=10 → \"that probability jumps to 40%\"\n");

    // ---------------------------------------------------------------- E3
    println!("== E3: §IV-A — online evaluation throughput ==");
    let eval = eval_throughput_experiment(1000, 50, if quick { 20 } else { 100 }, 9);
    println!(
        "evaluated {} samples in {:.3}s → {:.0} samples/s parallel ({:.0} serial)",
        eval.samples, eval.elapsed_secs, eval.throughput, eval.serial_throughput
    );
    println!(
        "paper: \"we can evaluate for anomalies at a rate of 939,000 sensor samples per second\""
    );
    save("eval_throughput", &eval);

    // ---------------------------------------------------------------- E10
    println!("== E10: §IV-A — offline training scaling (Spark-analog workers) ==");
    let tr = training_scaling_experiment(
        if quick { 16 } else { 48 },
        if quick { 64 } else { 200 },
        150,
        &[1, 2, 4, 8],
        13,
    );
    let mut rows = vec![vec![
        "workers".to_string(),
        "wall secs".to_string(),
        "speedup".to_string(),
    ]];
    for r in &tr {
        rows.push(vec![
            r.workers.to_string(),
            format!("{:.3}", r.elapsed_secs),
            format!("{:.2}x", r.speedup),
        ]);
    }
    println!("{}", render_table(&rows));
    save("training_scaling", &tr);

    // ---------------------------------------------------------------- E16
    println!("== E16: elastic scaling under load surges (pga-control) ==");
    let elastic = elastic_scaling_experiment(if quick { 120.0 } else { 300.0 });
    println!(
        "calibration: {:.0} samples/s effective per node; surge 80k -> 250k samples/s",
        elastic.per_node_rate
    );
    let mut rows = vec![vec![
        "pattern".to_string(),
        "fleet".to_string(),
        "crashes".to_string(),
        "delivered".to_string(),
        "drain (s)".to_string(),
        "max backlog".to_string(),
        "peak nodes".to_string(),
        "node-seconds".to_string(),
        "samples/s/node".to_string(),
    ]];
    for row in &elastic.rows {
        let r = &row.report;
        rows.push(vec![
            r.pattern.clone(),
            row.scenario.clone(),
            r.crashes.to_string(),
            format!("{:.1}%", r.delivery_ratio() * 100.0),
            format!("{:.0}", r.drain_secs),
            format!("{:.0}", r.max_backlog),
            r.peak_active_nodes.to_string(),
            format!("{:.0}", r.node_seconds),
            format!("{:.0}", r.per_node_throughput()),
        ]);
    }
    println!("{}", render_table(&rows));
    println!("paper §III-B: \"data nodes would crash when the data ingestion rate was increased beyond a certain threshold\" — the static no-proxy rows reproduce that; the autoscaled rows absorb the same surge with zero crashes.");
    save("elastic_scaling", &elastic);

    // ---------------------------------------------------------------- E17
    println!("== E17: durability under injected faults (pga-faultsim) ==");
    let faults = pga_bench::fault_durability_experiment(if quick { 16 } else { 64 });
    let t = &faults.totals;
    let rows = vec![
        vec![
            "seeds".to_string(),
            "acked batches".to_string(),
            "retries".to_string(),
            "crashes (torn)".to_string(),
            "partitions".to_string(),
            "skews".to_string(),
            "splits".to_string(),
            "moves".to_string(),
            "ack drops".to_string(),
            "reassigned".to_string(),
            "violations".to_string(),
        ],
        vec![
            faults.seeds_run.to_string(),
            t.batches_acked.to_string(),
            t.retries.to_string(),
            format!("{} ({})", t.crashes, t.torn_crashes),
            t.partitions.to_string(),
            t.skews.to_string(),
            t.splits.to_string(),
            t.moves.to_string(),
            t.rpc_drops.to_string(),
            t.reassigned.to_string(),
            if faults.passed {
                "0".to_string()
            } else {
                format!("{} FAILING SEEDS", faults.failures.len())
            },
        ],
    ];
    println!("{}", render_table(&rows));
    for replay in &faults.failures {
        println!("  {replay}");
    }
    println!("paper §III: the HBase/OpenTSDB substrate keeps acknowledged data through node failure — every seeded crash/partition/torn-WAL schedule above recovered with zero acked samples lost and baseline-identical detection output.");
    save("fault_durability", &faults);

    // ---------------------------------------------------------------- E18
    println!("== E18: overload control under storm load (3x capacity, one slow server) ==");
    let overload = pga_bench::overload_storm_experiment(if quick { 16 } else { 64 });
    let arm_row = |r: &pga_cluster::OverloadReport| {
        vec![
            format!("{:?}", r.mode),
            format!("{:.0}%", r.goodput_fraction * 100.0),
            format!("{:.2}s", r.p99_latency_secs),
            format!("{:.1}s", r.max_latency_secs),
            format!("{:.0}", r.busy_rejected),
            format!("{:.0}", r.deadline_expired),
            format!("{:.0}", r.dropped + r.lost_in_queue),
            r.crashes.to_string(),
        ]
    };
    let rows = vec![
        vec![
            "stack".to_string(),
            "goodput".to_string(),
            "p99".to_string(),
            "max lat".to_string(),
            "busy (typed)".to_string(),
            "expired (typed)".to_string(),
            "silent loss".to_string(),
            "crashes".to_string(),
        ],
        arm_row(&overload.controlled),
        arm_row(&overload.seed_buffered),
        arm_row(&overload.seed_direct),
    ];
    println!("{}", render_table(&rows));
    let st = &overload.storm_totals;
    println!(
        "live-stack storm campaign: {} seeds, {} storms, {} slow-server windows, {} Busy rejections, {}/{} batches acked — {}",
        overload.storm_seeds_run,
        st.storms,
        st.slow_faults,
        st.busy_rejections,
        st.batches_acked,
        st.batches_generated,
        if overload.storm_campaign_passed {
            "all oracles held"
        } else {
            "ORACLE FAILURES"
        }
    );
    for replay in &overload.storm_failures {
        println!("  {replay}");
    }
    println!("overload control keeps goodput >= {:.0}% of calibrated capacity with a bounded tail while both seed stacks collapse (unbounded latency / crashed servers); every rejected sample is typed, nothing acked is lost.\n",
        pga_bench::GOODPUT_FLOOR * 100.0);
    save("e18_overload", &overload);

    // ---------------------------------------------------------------- E19
    println!("== E19: serving-layer queries — raw scans vs rollups vs result cache ==");
    let qcfg = if quick {
        pga_bench::QueryBenchConfig::quick()
    } else {
        pga_bench::QueryBenchConfig::full()
    };
    let queries = pga_bench::query_serving_experiment(&qcfg);
    let qarm = |a: &pga_bench::QueryArm| {
        vec![
            a.label.clone(),
            format!("{:.2}", a.p50_ms),
            format!("{:.2}", a.p99_ms),
            format!("{:.0}", a.sustained_qps),
            a.rollup_plans.to_string(),
            a.cache_hits.to_string(),
            a.partials.to_string(),
        ]
    };
    let rows = vec![
        [
            "arm",
            "p50 (ms)",
            "p99 (ms)",
            "QPS",
            "rollup plans",
            "cache hits",
            "partials",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        qarm(&queries.raw),
        qarm(&queries.rollup),
        qarm(&queries.cached),
    ];
    println!("{}", render_table(&rows));
    println!(
        "concurrent ingest: {} samples at {:.0} samples/s; speedups vs raw: rollup {:.1}x QPS, rollup+cache {:.1}x QPS / {:.1}x p99",
        queries.ingest_samples,
        queries.ingest_throughput,
        queries.qps_speedup_rollup,
        queries.qps_speedup_cached,
        queries.p99_speedup_cached
    );
    println!(
        "oracles: {} answer mismatches, {} stale anomaly flags — verdict {}",
        queries.answer_mismatches,
        queries.stale_anomaly_flags,
        if queries.passed() { "held" } else { "FAILED" }
    );
    println!("paper §V: dashboards need interactive latency over months of retained data; write-time rollups plus an invalidated result cache serve repeated panel refreshes without rescanning raw cells.");
    save("BENCH_queries", &queries);

    // ---------------------------------------------------------------- E20
    println!("== E20: failover availability under replication (pga-repl) ==");
    let failover = pga_bench::failover_experiment(if quick { 16 } else { 128 });
    let mut rows = vec![vec![
        "RF".to_string(),
        "seeds".to_string(),
        "acked loss".to_string(),
        "failovers".to_string(),
        "replica checks".to_string(),
        "fence rejections".to_string(),
    ]];
    for c in &failover.campaigns {
        rows.push(vec![
            c.factor.to_string(),
            c.seeds_run.to_string(),
            if c.passed {
                "0".to_string()
            } else {
                format!("{} FAILING SEEDS", c.failures.len())
            },
            c.failovers.to_string(),
            c.replica_checks.to_string(),
            c.fence_rejections.to_string(),
        ]);
    }
    println!("{}", render_table(&rows));
    for c in &failover.campaigns {
        for replay in &c.failures {
            println!("  {replay}");
        }
    }
    let mut rows = vec![vec![
        "RF".to_string(),
        "unavailability (sim ms)".to_string(),
        "scan p50 (ms)".to_string(),
        "scan p99 (ms)".to_string(),
        "hedged scans".to_string(),
    ]];
    for r in &failover.availability {
        rows.push(vec![
            r.factor.to_string(),
            r.unavailability_ms.to_string(),
            r.scan_p50_ms.to_string(),
            r.scan_p99_ms.to_string(),
            r.hedged_scans.to_string(),
        ]);
    }
    println!("{}", render_table(&rows));
    println!(
        "replicated scans recover {:.0}x faster than single-copy lease recovery (bar: {AVAILABILITY_BAR}x)\n",
        failover.availability_speedup
    );
    save("BENCH_failover", &failover);

    // ---------------------------------------------------------------- E21
    println!("== E21: sealed-block scans + batched columnar detection vs legacy ==");
    let bcfg = if quick {
        pga_bench::BlockBenchConfig::quick()
    } else {
        pga_bench::BlockBenchConfig::full()
    };
    let blocks = pga_bench::block_format_experiment(&bcfg);
    let rows = vec![
        vec![
            "arm".to_string(),
            "pass (ms)".to_string(),
            "throughput".to_string(),
        ],
        vec![
            blocks.scan_legacy.label.clone(),
            format!("{:.2}", blocks.scan_legacy.pass_ms),
            format!("{:.1} MB/s", blocks.scan_legacy.bytes_per_sec / 1e6),
        ],
        vec![
            blocks.scan_blocks.label.clone(),
            format!("{:.2}", blocks.scan_blocks.pass_ms),
            format!("{:.1} MB/s", blocks.scan_blocks.bytes_per_sec / 1e6),
        ],
        vec![
            blocks.detect_rowmajor.label.clone(),
            format!("{:.2}", blocks.detect_rowmajor.pass_ms),
            format!("{:.0} samples/s", blocks.detect_rowmajor.samples_per_sec),
        ],
        vec![
            blocks.detect_columnar.label.clone(),
            format!("{:.2}", blocks.detect_columnar.pass_ms),
            format!("{:.0} samples/s", blocks.detect_columnar.samples_per_sec),
        ],
    ];
    println!("{}", render_table(&rows));
    println!(
        "speedups: scan {:.1}x bytes/s, detect {:.1}x samples/s; {} scan / {} verdict mismatches (verdict {})\n",
        blocks.scan_speedup,
        blocks.detect_speedup,
        blocks.scan_mismatches,
        blocks.eval_mismatches,
        if blocks.passed() { "HELD" } else { "FAILED" },
    );
    save("BENCH_blocks", &blocks);

    // ---------------------------------------------------------------- E22
    println!("== E22: corruption resilience — salvage reads + background scrub ==");
    let scfg = if quick {
        pga_bench::ScrubBenchConfig::quick()
    } else {
        pga_bench::ScrubBenchConfig::full()
    };
    let scrub = pga_bench::scrub_resilience_experiment(&scfg);
    let arm_row = |a: &pga_bench::ScrubArm| {
        vec![
            a.label.clone(),
            a.queries.to_string(),
            a.exact.to_string(),
            a.typed_errors.to_string(),
            a.wrong_answers.to_string(),
        ]
    };
    let rows = vec![
        vec![
            "arm".to_string(),
            "queries".to_string(),
            "exact".to_string(),
            "typed errors".to_string(),
            "wrong answers".to_string(),
        ],
        arm_row(&scrub.before),
        arm_row(&scrub.after),
        arm_row(&scrub.post_scrub),
    ];
    println!("{}", render_table(&rows));
    println!(
        "{} blocks corrupted, {} reads salvaged, {} repairs ({} rejected) in {} scrub ticks, \
         {} still quarantined (verdict {})\n",
        scrub.corrupted_blocks,
        scrub.salvaged_reads,
        scrub.scrub_repairs,
        scrub.scrub_rejected,
        scrub.scrub_ticks,
        scrub.quarantined_after,
        if scrub.passed() { "HELD" } else { "FAILED" },
    );
    save("BENCH_scrub", &scrub);

    // ------------------------------------------------- real pipeline sanity
    println!("== real thread-scale pipeline (storage stack on this host) ==");
    let pipe = pipeline_throughput_experiment(4, if quick { 20 } else { 100 }, 17);
    println!(
        "{} samples through proxy → TSD → region servers at {:.0} samples/s\n",
        pipe.samples, pipe.throughput
    );
    save("pipeline_throughput", &pipe);

    println!("all experiment JSON written to target/experiments/");
}
