//! Deterministic elastic-cluster simulator — the E16 vehicle.
//!
//! Extends the fixed-fleet queueing model of [`pga_cluster::sim`] with a
//! **mutable** server set driven by a [`ScalingPolicy`]: nodes are
//! provisioned (with a delay), drained and decommissioned, or crash under
//! §III-B overload, while an [`ArrivalPattern`] shapes the offered load.
//! Everything is plain arithmetic on `f64` — no RNG, no wall clock — so a
//! run is bit-for-bit reproducible, which the experiment harness and the
//! policy tests rely on.
//!
//! Semantics mirror `simulate_ingestion`:
//!
//! * `ProxyMode::None` — writes are fired straight at the serving nodes;
//!   queue overflow drops the RPC, charges an overload strike, and enough
//!   strikes crash the node (in-queue work dies with it). Crashed nodes
//!   keep receiving their routing share (clients don't know), which is
//!   dropped.
//! * `ProxyMode::Buffered` — arrivals wait in a shared proxy backlog and
//!   are admitted only up to each node's free queue space, so nodes never
//!   overflow; undersizing shows up as backlog growth instead of crashes.

use pga_cluster::sim::{ProxyMode, SimClusterConfig};
use pga_sensorgen::ArrivalPattern;
use serde::{Deserialize, Serialize};

use crate::policy::{ClusterObservation, ScalingDecision, ScalingPolicy};

/// Configuration of an elastic run.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticSimConfig {
    /// Per-node calibration and the **initial** fleet size (`base.nodes`).
    pub base: SimClusterConfig,
    /// Seconds between a scale-out decision and the node serving traffic.
    pub provision_delay_secs: f64,
    /// Seconds between policy ticks.
    pub control_interval_secs: f64,
    /// Ingestion-tier admission mode.
    pub proxy: ProxyMode,
}

impl ElasticSimConfig {
    /// Paper-calibrated elastic config with `initial_nodes` servers.
    pub fn paper_calibration(initial_nodes: usize) -> Self {
        ElasticSimConfig {
            base: SimClusterConfig::paper_calibration(initial_nodes),
            provision_delay_secs: 5.0,
            control_interval_secs: 1.0,
            proxy: ProxyMode::Buffered,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    /// Paid for but not yet serving.
    Provisioning,
    /// Serving traffic.
    Active,
    /// Serving its residual queue only; no new arrivals.
    Draining,
    /// Fully decommissioned; no longer paid for.
    Retired,
    /// Crashed under overload (still paid for — the machine is wedged).
    Crashed,
}

#[derive(Debug, Clone)]
struct SimNode {
    state: NodeState,
    ready_at: f64,
    queue: f64,
    processed: f64,
    dropped: f64,
    overloads: u64,
}

/// One scaling action taken during a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleEvent {
    /// Virtual time of the decision.
    pub t_secs: f64,
    /// Decision in report form (`"scale_out(2)"` …).
    pub action: String,
    /// Active nodes when the decision fired.
    pub active_before: usize,
    /// Fleet size (active + provisioning + draining) after actuation.
    pub fleet_after: usize,
}

/// ~1 Hz sample of the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelinePoint {
    /// Virtual time.
    pub t_secs: f64,
    /// Offered rate at this instant, samples/sec.
    pub offered_rate: f64,
    /// Nodes actively serving.
    pub active_nodes: usize,
    /// Samples waiting in the proxy backlog.
    pub backlog: f64,
    /// Cumulative samples ingested.
    pub ingested: f64,
}

/// Outcome of one elastic run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElasticRunReport {
    /// Arrival pattern description.
    pub pattern: String,
    /// Policy name.
    pub policy: String,
    /// Total samples offered.
    pub offered: f64,
    /// Samples ingested (including those drained after the offer window).
    pub ingested: f64,
    /// Samples dropped (overflow or lost in crashes).
    pub dropped: f64,
    /// Offer-window length in virtual seconds.
    pub duration_secs: f64,
    /// Extra seconds spent draining in-flight work after the window.
    pub drain_secs: f64,
    /// Nodes that crashed.
    pub crashes: usize,
    /// ∫ paid-nodes dt — the cost axis E16 compares on.
    pub node_seconds: f64,
    /// Peak simultaneously-active nodes.
    pub peak_active_nodes: usize,
    /// Active nodes at the end of the run.
    pub final_active_nodes: usize,
    /// Largest proxy backlog observed.
    pub max_backlog: f64,
    /// ~1 Hz samples.
    pub timeline: Vec<TimelinePoint>,
    /// Every non-hold decision.
    pub scale_events: Vec<ScaleEvent>,
}

impl ElasticRunReport {
    /// Mean ingest throughput over the offer window, samples/sec.
    pub fn throughput(&self) -> f64 {
        if self.duration_secs == 0.0 {
            0.0
        } else {
            self.ingested / self.duration_secs
        }
    }

    /// Samples ingested per paid node-second — the "samples/sec/node"
    /// axis of the paper's Fig. 2 generalized to a changing fleet.
    pub fn per_node_throughput(&self) -> f64 {
        if self.node_seconds == 0.0 {
            0.0
        } else {
            self.ingested / self.node_seconds
        }
    }

    /// Fraction of offered samples successfully ingested.
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered == 0.0 {
            1.0
        } else {
            self.ingested / self.offered
        }
    }
}

/// Run `pattern` against an elastic cluster for `duration_secs` of offered
/// load, letting `policy` resize the fleet once per control interval.
/// After the offer window the simulator keeps draining in-flight work
/// (bounded by `cfg.base.max_steps`) so `ingested + dropped` accounts for
/// every offered sample unless the run wedges on crashed nodes.
pub fn run_elastic(
    cfg: &ElasticSimConfig,
    pattern: &ArrivalPattern,
    duration_secs: f64,
    policy: &mut dyn ScalingPolicy,
) -> ElasticRunReport {
    assert!(cfg.base.nodes >= 1, "need at least one initial node");
    assert!(cfg.control_interval_secs > 0.0 && cfg.base.dt_secs > 0.0);
    let dt = cfg.base.dt_secs;
    let rate = cfg.base.effective_rate();
    let cap = cfg.base.queue_capacity;
    let control_every = ((cfg.control_interval_secs / dt).round() as u64).max(1);
    let snapshot_every = ((1.0 / dt).round() as u64).max(1);

    let mut nodes: Vec<SimNode> = (0..cfg.base.nodes)
        .map(|_| SimNode {
            state: NodeState::Active,
            ready_at: 0.0,
            queue: 0.0,
            processed: 0.0,
            dropped: 0.0,
            overloads: 0,
        })
        .collect();
    let mut backlog = 0.0f64; // shared proxy buffer (Buffered mode)
    let mut offered = 0.0f64;
    let mut ingested = 0.0f64;
    let mut dropped = 0.0f64;
    let mut node_seconds = 0.0f64;
    let mut max_backlog = 0.0f64;
    let mut peak_active = 0usize;
    let mut crashes_prev = 0usize;
    let mut timeline = Vec::new();
    let mut scale_events = Vec::new();
    let mut tick = 0u64;
    let mut ingested_at_prev_tick = 0.0f64;

    let mut step = 0u64;
    let offer_steps = (duration_secs / dt).round() as u64;
    while step < cfg.base.max_steps {
        let t = step as f64 * dt;

        // 0. Provisioning nodes come online.
        for n in nodes.iter_mut() {
            if n.state == NodeState::Provisioning && t >= n.ready_at {
                n.state = NodeState::Active;
            }
        }

        let active: Vec<usize> = (0..nodes.len())
            .filter(|&i| nodes[i].state == NodeState::Active)
            .collect();
        peak_active = peak_active.max(active.len());

        // 1. Source offers work.
        let offering = step < offer_steps;
        let offer = if offering { pattern.rate(t) * dt } else { 0.0 };
        offered += offer;

        // 2. Route to nodes.
        match cfg.proxy {
            ProxyMode::Buffered => backlog += offer,
            ProxyMode::None => {
                // Clients spray uniformly over every node they believe is
                // serving — active and crashed alike (they can't tell).
                let targets: Vec<usize> = (0..nodes.len())
                    .filter(|&i| matches!(nodes[i].state, NodeState::Active | NodeState::Crashed))
                    .collect();
                if !targets.is_empty() && offer > 0.0 {
                    let share = offer / targets.len() as f64;
                    for &i in &targets {
                        let n = &mut nodes[i];
                        if n.state == NodeState::Crashed {
                            n.dropped += share;
                            dropped += share;
                            continue;
                        }
                        let room = (cap - n.queue).max(0.0);
                        let admitted = share.min(room);
                        let overflow = share - admitted;
                        n.queue += admitted;
                        if overflow > 0.0 {
                            n.dropped += overflow;
                            dropped += overflow;
                            n.overloads += (overflow / cfg.base.samples_per_rpc).ceil() as u64;
                            if n.overloads >= cfg.base.crash_overflow_threshold {
                                n.state = NodeState::Crashed;
                                n.dropped += n.queue;
                                dropped += n.queue;
                                n.queue = 0.0;
                            }
                        }
                    }
                } else if offer > 0.0 {
                    dropped += offer; // nobody left to send to
                }
            }
        }

        // 3. Proxy admits backlog up to free queue space, spread evenly
        //    over the active nodes (round-robin in the limit).
        if cfg.proxy == ProxyMode::Buffered && backlog > 0.0 && !active.is_empty() {
            let total_room: f64 = active
                .iter()
                .map(|&i| (cap - nodes[i].queue).max(0.0))
                .sum();
            let admit_total = backlog.min(total_room);
            if admit_total > 0.0 && total_room > 0.0 {
                for &i in &active {
                    let room = (cap - nodes[i].queue).max(0.0);
                    let admit = admit_total * room / total_room;
                    nodes[i].queue += admit;
                }
                backlog -= admit_total;
            }
        }
        max_backlog = max_backlog.max(backlog);

        // 4. Serving nodes drain their queues.
        for n in nodes.iter_mut() {
            match n.state {
                NodeState::Active | NodeState::Draining => {
                    let done = n.queue.min(rate * dt);
                    n.queue -= done;
                    n.processed += done;
                    ingested += done;
                    if n.state == NodeState::Draining && n.queue < 1e-9 {
                        n.state = NodeState::Retired;
                    }
                }
                _ => {}
            }
        }

        // 5. Pay for every node that exists and isn't retired.
        let paid = nodes
            .iter()
            .filter(|n| n.state != NodeState::Retired)
            .count();
        node_seconds += paid as f64 * dt;

        step += 1;

        // 6. Control tick.
        if step.is_multiple_of(control_every) {
            tick += 1;
            let active_now: Vec<usize> = (0..nodes.len())
                .filter(|&i| nodes[i].state == NodeState::Active)
                .collect();
            let crashes_now = nodes
                .iter()
                .filter(|n| n.state == NodeState::Crashed)
                .count();
            let mean_util = if active_now.is_empty() {
                0.0
            } else {
                active_now
                    .iter()
                    .map(|&i| nodes[i].queue / cap)
                    .sum::<f64>()
                    / active_now.len() as f64
            };
            let backlog_pressure = if active_now.is_empty() {
                if backlog > 0.0 {
                    1e6 // everything is backlog; scale out hard
                } else {
                    0.0
                }
            } else {
                backlog / (active_now.len() as f64 * rate * cfg.control_interval_secs)
            };
            let interval_capacity =
                active_now.len().max(1) as f64 * rate * cfg.control_interval_secs;
            let service_utilization =
                ((ingested - ingested_at_prev_tick) / interval_capacity).min(1.0);
            ingested_at_prev_tick = ingested;
            let obs = ClusterObservation {
                tick,
                active_nodes: active_now.len(),
                mean_queue_utilization: mean_util,
                service_utilization,
                backlog_pressure,
                crashed_nodes: crashes_now - crashes_prev,
            };
            crashes_prev = crashes_now;
            let decision = policy.observe(&obs);
            match decision {
                ScalingDecision::Hold => {}
                ScalingDecision::ScaleOut(k) => {
                    for _ in 0..k {
                        nodes.push(SimNode {
                            state: NodeState::Provisioning,
                            ready_at: step as f64 * dt + cfg.provision_delay_secs,
                            queue: 0.0,
                            processed: 0.0,
                            dropped: 0.0,
                            overloads: 0,
                        });
                    }
                    scale_events.push(ScaleEvent {
                        t_secs: step as f64 * dt,
                        action: decision.describe(),
                        active_before: active_now.len(),
                        fleet_after: nodes
                            .iter()
                            .filter(|n| !matches!(n.state, NodeState::Retired | NodeState::Crashed))
                            .count(),
                    });
                }
                ScalingDecision::ScaleIn(k) => {
                    // Drain the highest-index active nodes (deterministic).
                    let mut drained = 0usize;
                    for i in (0..nodes.len()).rev() {
                        if drained == k {
                            break;
                        }
                        if nodes[i].state == NodeState::Active {
                            nodes[i].state = NodeState::Draining;
                            drained += 1;
                        }
                    }
                    if drained > 0 {
                        scale_events.push(ScaleEvent {
                            t_secs: step as f64 * dt,
                            action: decision.describe(),
                            active_before: active_now.len(),
                            fleet_after: nodes
                                .iter()
                                .filter(|n| {
                                    !matches!(n.state, NodeState::Retired | NodeState::Crashed)
                                })
                                .count(),
                        });
                    }
                }
            }
        }

        if step.is_multiple_of(snapshot_every) {
            timeline.push(TimelinePoint {
                t_secs: step as f64 * dt,
                offered_rate: if offering { pattern.rate(t) } else { 0.0 },
                active_nodes: nodes
                    .iter()
                    .filter(|n| n.state == NodeState::Active)
                    .count(),
                backlog,
                ingested,
            });
        }

        // 7. Termination: offer window over and nothing in flight (or all
        //    in-flight work is wedged behind crashed nodes).
        if step >= offer_steps {
            let live_flight: f64 = nodes
                .iter()
                .filter(|n| matches!(n.state, NodeState::Active | NodeState::Draining))
                .map(|n| n.queue)
                .sum::<f64>()
                + if nodes.iter().any(|n| n.state == NodeState::Active) {
                    backlog
                } else {
                    0.0
                };
            if live_flight < 1e-6 {
                // Anything still queued on crashed nodes (or backlog with
                // no active node to take it) is lost.
                if !nodes.iter().any(|n| n.state == NodeState::Active) && backlog > 0.0 {
                    dropped += backlog;
                }
                break;
            }
        }
    }

    let end = step as f64 * dt;
    ElasticRunReport {
        pattern: pattern.describe(),
        policy: policy.name().to_string(),
        offered,
        ingested,
        dropped,
        duration_secs: duration_secs.min(end),
        drain_secs: (end - duration_secs).max(0.0),
        crashes: nodes
            .iter()
            .filter(|n| n.state == NodeState::Crashed)
            .count(),
        node_seconds,
        peak_active_nodes: peak_active,
        final_active_nodes: nodes
            .iter()
            .filter(|n| n.state == NodeState::Active)
            .count(),
        max_backlog,
        timeline,
        scale_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{HysteresisConfig, HysteresisPolicy, StaticPolicy};

    fn cfg(initial: usize, proxy: ProxyMode) -> ElasticSimConfig {
        let mut base = SimClusterConfig::paper_calibration(initial);
        base.crash_overflow_threshold = 20;
        ElasticSimConfig {
            base,
            provision_delay_secs: 3.0,
            control_interval_secs: 1.0,
            proxy,
        }
    }

    fn surge() -> ArrivalPattern {
        // 4 nodes ≈ 53k/s capacity: start comfortable, surge to ~2×.
        ArrivalPattern::Step {
            base: 30_000.0,
            at_secs: 20.0,
            to: 100_000.0,
        }
    }

    fn autoscaler() -> HysteresisPolicy {
        HysteresisPolicy::new(HysteresisConfig {
            high_water: 0.5,
            low_water: 0.1,
            k_ticks: 2,
            cooldown_ticks: 3,
            ema_alpha: 0.6,
            scale_out_step: 2,
            scale_in_step: 1,
            min_nodes: 2,
            max_nodes: 16,
        })
    }

    #[test]
    fn autoscaler_absorbs_surge_without_crashes_or_drops() {
        let mut p = autoscaler();
        let r = run_elastic(&cfg(4, ProxyMode::Buffered), &surge(), 120.0, &mut p);
        assert_eq!(r.crashes, 0);
        assert_eq!(r.dropped, 0.0);
        assert!(r.peak_active_nodes > 4, "never scaled out");
        // Everything offered was eventually ingested.
        assert!(
            (r.ingested - r.offered).abs() < 1.0,
            "lost {} samples",
            r.offered - r.ingested
        );
        // Keeps up with the surge: mean throughput within 20% of offered.
        assert!(r.delivery_ratio() > 0.99);
        assert!(!r.scale_events.is_empty());
    }

    #[test]
    fn static_undersized_cluster_crashes_under_surge() {
        let mut p = StaticPolicy;
        let r = run_elastic(&cfg(4, ProxyMode::None), &surge(), 120.0, &mut p);
        assert!(r.crashes > 0, "expected §III-B crashes");
        assert!(r.dropped > 0.0);
        assert!(r.delivery_ratio() < 0.9);
    }

    #[test]
    fn scale_in_fires_when_load_recedes_and_saves_node_seconds() {
        // 60k/s on 10 nodes sits inside the deadband; the drop to 10k/s
        // pushes utilization under the low-water mark.
        let down = ArrivalPattern::Step {
            base: 60_000.0,
            at_secs: 40.0,
            to: 10_000.0,
        };
        let mut auto_p = autoscaler();
        let elastic = run_elastic(&cfg(10, ProxyMode::Buffered), &down, 160.0, &mut auto_p);
        let mut static_p = StaticPolicy;
        let fixed = run_elastic(&cfg(10, ProxyMode::Buffered), &down, 160.0, &mut static_p);
        assert!(elastic
            .scale_events
            .iter()
            .any(|e| e.action.starts_with("scale_in")));
        assert!(elastic.final_active_nodes < 10);
        assert!(
            elastic.node_seconds < fixed.node_seconds,
            "elastic {} vs static {}",
            elastic.node_seconds,
            fixed.node_seconds
        );
        assert_eq!(elastic.crashes, 0);
        assert_eq!(elastic.dropped, 0.0);
    }

    #[test]
    fn provisioning_delay_is_respected() {
        let mut p = autoscaler();
        let r = run_elastic(&cfg(2, ProxyMode::Buffered), &surge(), 80.0, &mut p);
        let first_out = r
            .scale_events
            .iter()
            .find(|e| e.action.starts_with("scale_out"))
            .expect("must scale out");
        // No timeline point shows more active nodes until the delay passed.
        for pt in &r.timeline {
            if pt.t_secs < first_out.t_secs + 3.0 {
                assert!(pt.active_nodes <= first_out.active_before);
            }
        }
        assert!(r.peak_active_nodes > first_out.active_before);
    }

    #[test]
    fn runs_are_deterministic() {
        let mut p1 = autoscaler();
        let mut p2 = autoscaler();
        let a = run_elastic(&cfg(4, ProxyMode::Buffered), &surge(), 90.0, &mut p1);
        let b = run_elastic(&cfg(4, ProxyMode::Buffered), &surge(), 90.0, &mut p2);
        assert_eq!(a.ingested, b.ingested);
        assert_eq!(a.node_seconds, b.node_seconds);
        assert_eq!(a.timeline, b.timeline);
        assert_eq!(a.scale_events, b.scale_events);
    }

    #[test]
    fn conservation_offered_equals_ingested_plus_dropped_plus_backlog() {
        for proxy in [ProxyMode::Buffered, ProxyMode::None] {
            let mut p = autoscaler();
            let r = run_elastic(&cfg(4, proxy), &surge(), 60.0, &mut p);
            let accounted = r.ingested + r.dropped;
            assert!(
                (r.offered - accounted).abs() < 1.0,
                "{proxy:?}: offered {} vs accounted {accounted}",
                r.offered
            );
        }
    }
}
