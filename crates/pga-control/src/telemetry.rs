//! Per-node telemetry: a lock-free metrics registry, its serialized
//! snapshot form, and fleet-wide scraping through the coordinator.
//!
//! Each node embeds a [`MetricsRegistry`] (atomic counters, gauges and a
//! power-of-two histogram — nothing on the hot path takes a lock) and
//! periodically publishes a [`NodeStats`] snapshot to the coordinator as
//! an **ephemeral** znode under `/stats/<node>`, bound to the node's
//! session. A node that dies takes its stat znode with it, so the control
//! plane's [`FleetSnapshot::scrape`] view never contains ghosts, and the
//! coordinator's watch API streams churn under `/stats` without polling.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use pga_cluster::coordinator::{Coordinator, CoordinatorError, SessionId};

/// Number of power-of-two histogram buckets: bucket `i` counts values in
/// `[2^i, 2^(i+1))`, with bucket 0 also holding zeros and ones.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Lock-free power-of-two histogram for hot-path recordings (batch sizes,
/// queue depths at admission).
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

/// Bucket index for `value`: `floor(log2(value))` clamped to the last
/// bucket, with 0 and 1 both landing in bucket 0. The last bucket is
/// open-ended — it holds everything from `2^31` up to `u64::MAX`.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((63 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

impl Histogram {
    /// Record one value.
    ///
    /// Write order is the publish protocol readers rely on: bucket and
    /// sum first (Relaxed), then `count` with Release. A reader that
    /// Acquire-loads `count` and sees `n` recordings is guaranteed the
    /// bucket and sum contributions of all `n` are visible — see the
    /// `histogram-snapshot` model in `pga-analyze::interleave`.
    ///
    /// `sum` wraps modulo 2^64 (`fetch_add` wraps by definition); `count`
    /// stays exact, so the mean degrades but never panics.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Release);
    }

    /// Number of recordings. Acquire pairs with the Release in
    /// [`Histogram::record`]: every counted recording's bucket/sum writes
    /// happen-before this load returns.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` (approximate,
    /// within 2× of the true value below the last bucket). 0 when empty;
    /// `u64::MAX` when the quantile lands in the open-ended last bucket —
    /// its values are unbounded, so `2^32` (the old answer) could be
    /// wrong by a factor of 2^32.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return if i + 1 >= HISTOGRAM_BUCKETS {
                    u64::MAX
                } else {
                    1u64 << (i + 1)
                };
            }
        }
        u64::MAX
    }
}

/// Lock-free per-node metrics. Counters only go up; gauges are set to the
/// latest value. One registry lives in each region-server/TSD pairing and
/// one in the ingest proxy.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Gauge: requests waiting in the node's RPC queue right now.
    pub queue_depth: AtomicU64,
    /// Gauge: configured RPC queue capacity.
    pub queue_capacity: AtomicU64,
    /// Counter: samples durably written by this node.
    pub samples_written: AtomicU64,
    /// Gauge: bytes held in memstores.
    pub memstore_bytes: AtomicU64,
    /// Counter: memstore flushes.
    pub flushes: AtomicU64,
    /// Counter: compactions.
    pub compactions: AtomicU64,
    /// Counter: overload strikes (rejected RPCs).
    pub overloads: AtomicU64,
    /// Counter: crash events observed on this node (0 or 1 per life).
    pub crash_events: AtomicU64,
    /// Histogram of admitted batch sizes.
    pub batch_sizes: Histogram,
    /// Flag (0/1): this registry belongs to an ingest proxy, not a
    /// region server. Proxy stats are excluded from serving-fleet
    /// aggregates and feed the backlog-pressure signal instead.
    pub is_proxy: AtomicU64,
    /// Counter: write RPCs shed by admission control.
    pub shed_writes: AtomicU64,
    /// Counter: read RPCs shed by admission control.
    pub shed_reads: AtomicU64,
    /// Counter: requests dropped because their deadline expired.
    pub deadline_expired: AtomicU64,
    /// Counter: circuit-breaker trips observed (proxy side).
    pub breaker_trips: AtomicU64,
    /// Gauge: batches buffered in the ingest proxy right now.
    pub ingest_buffer_depth: AtomicU64,
    /// Gauge: ingest proxy buffer capacity.
    pub ingest_buffer_capacity: AtomicU64,
    /// Gauge: serving-layer result-cache hits (cumulative; mirrored from
    /// the query engine's counters at publish time).
    pub query_cache_hits: AtomicU64,
    /// Gauge: serving-layer result-cache misses.
    pub query_cache_misses: AtomicU64,
    /// Gauge: serving-layer scatter-gather shard scans fanned out.
    pub query_fanout: AtomicU64,
    /// Gauge: serving-layer queries answered with partial results.
    pub query_partials: AtomicU64,
    /// Gauge: worst follower lag (WAL batches behind the primary) across
    /// the replicated regions this node leads.
    pub repl_lag_batches: AtomicU64,
    /// Gauge: replicated regions this node is the primary for.
    pub repl_regions: AtomicU64,
    /// Gauge: promotions that made this node a primary (cumulative at
    /// the source — the master's failover log).
    pub repl_failovers: AtomicU64,
    /// Gauge: epoch-fenced replication RPCs observed by this node's
    /// clients (deposed writers denied a vote).
    pub repl_fence_rejections: AtomicU64,
    /// Gauge: scans served from a follower copy under the bounded-
    /// staleness read policy.
    pub repl_follower_reads: AtomicU64,
    /// Gauge: scans hedged to a follower after a slow/dead primary.
    pub repl_hedged_scans: AtomicU64,
    /// Gauge: cells checksum-verified by the background scrub walk.
    pub scrub_cells: AtomicU64,
    /// Gauge: corrupt blocks ever detected (scrub walk plus read path).
    pub scrub_corrupt_blocks: AtomicU64,
    /// Gauge: spans sitting in quarantine right now.
    pub scrub_quarantined: AtomicU64,
    /// Gauge: blocks repaired from a healthy replica (CRC round-trip
    /// passed before install).
    pub scrub_repairs: AtomicU64,
    /// Gauge: fetched repair payloads rejected by pre-install
    /// verification.
    pub scrub_rejected: AtomicU64,
    /// Gauge: reads transparently answered from a replica after the
    /// local copy failed verification.
    pub scrub_salvaged_reads: AtomicU64,
    /// Gauge: tasks executed by this node's batch scheduler.
    pub sched_tasks: AtomicU64,
    /// Gauge: successful work steals in the batch scheduler.
    pub sched_steals: AtomicU64,
    /// Gauge: steal probes (successful or not) in the batch scheduler.
    pub sched_steal_attempts: AtomicU64,
    /// Gauge: high-water mark of any scheduler worker's deque depth.
    pub sched_max_queue_depth: AtomicU64,
    /// Gauge: total nanoseconds spent inside scheduler task bodies.
    pub sched_task_ns: AtomicU64,
    /// Gauge: units whose sufficient statistics changed since their last
    /// model finish (pending incremental retrain work).
    pub sched_dirty_units: AtomicU64,
}

impl MetricsRegistry {
    /// Fresh registry with a known queue capacity.
    pub fn new(queue_capacity: u64) -> Self {
        let r = MetricsRegistry::default();
        r.queue_capacity.store(queue_capacity, Ordering::Relaxed);
        r
    }

    /// Mirror the serving layer's cumulative query counters into this
    /// registry so the next published [`NodeStats`] carries them. The
    /// engine owns the counters; telemetry only reflects the latest
    /// totals, so these are gauges despite being monotonic at the source.
    pub fn record_query_serving(&self, hits: u64, misses: u64, fanout: u64, partials: u64) {
        self.query_cache_hits.store(hits, Ordering::Relaxed);
        self.query_cache_misses.store(misses, Ordering::Relaxed);
        self.query_fanout.store(fanout, Ordering::Relaxed);
        self.query_partials.store(partials, Ordering::Relaxed);
    }

    /// Mirror replication-plane counters into this registry so the next
    /// published [`NodeStats`] carries them. Lag and region count come
    /// from the master's replication report; the read-path counters come
    /// from the client-side lag book. Gauges despite being monotonic at
    /// the source, like [`MetricsRegistry::record_query_serving`].
    #[allow(clippy::too_many_arguments)]
    pub fn record_replication(
        &self,
        lag_batches: u64,
        regions: u64,
        failovers: u64,
        fence_rejections: u64,
        follower_reads: u64,
        hedged_scans: u64,
    ) {
        self.repl_lag_batches.store(lag_batches, Ordering::Relaxed);
        self.repl_regions.store(regions, Ordering::Relaxed);
        self.repl_failovers.store(failovers, Ordering::Relaxed);
        self.repl_fence_rejections
            .store(fence_rejections, Ordering::Relaxed);
        self.repl_follower_reads
            .store(follower_reads, Ordering::Relaxed);
        self.repl_hedged_scans
            .store(hedged_scans, Ordering::Relaxed);
    }

    /// Mirror corruption-resilience counters into this registry so the
    /// next published [`NodeStats`] carries them. Cells/corrupt/repairs
    /// come from the TSD scrub state and metrics; salvaged reads from
    /// the read path. Gauges despite being monotonic at the source, like
    /// [`MetricsRegistry::record_query_serving`].
    pub fn record_scrub(
        &self,
        cells: u64,
        corrupt_blocks: u64,
        quarantined: u64,
        repairs: u64,
        rejected: u64,
        salvaged_reads: u64,
    ) {
        self.scrub_cells.store(cells, Ordering::Relaxed);
        self.scrub_corrupt_blocks
            .store(corrupt_blocks, Ordering::Relaxed);
        self.scrub_quarantined.store(quarantined, Ordering::Relaxed);
        self.scrub_repairs.store(repairs, Ordering::Relaxed);
        self.scrub_rejected.store(rejected, Ordering::Relaxed);
        self.scrub_salvaged_reads
            .store(salvaged_reads, Ordering::Relaxed);
    }

    /// Mirror the batch scheduler's cumulative counters (and the
    /// incremental trainer's dirty-unit gauge) into this registry so the
    /// next published [`NodeStats`] carries them. Gauges despite being
    /// monotonic at the source, like
    /// [`MetricsRegistry::record_query_serving`].
    #[allow(clippy::too_many_arguments)]
    pub fn record_sched(
        &self,
        tasks: u64,
        steals: u64,
        steal_attempts: u64,
        max_queue_depth: u64,
        task_ns: u64,
        dirty_units: u64,
    ) {
        self.sched_tasks.store(tasks, Ordering::Relaxed);
        self.sched_steals.store(steals, Ordering::Relaxed);
        self.sched_steal_attempts
            .store(steal_attempts, Ordering::Relaxed);
        self.sched_max_queue_depth
            .store(max_queue_depth, Ordering::Relaxed);
        self.sched_task_ns.store(task_ns, Ordering::Relaxed);
        self.sched_dirty_units.store(dirty_units, Ordering::Relaxed);
    }

    /// Snapshot the registry into the serializable wire form.
    ///
    /// The fields are independent gauges and monotonic counters with no
    /// cross-field invariant — a scrape races the hot path by design and
    /// tolerates one field being a beat ahead of another, so Relaxed
    /// loads are sufficient here (the histogram is the one structure
    /// with a cross-field invariant, and it has its own Release/Acquire
    /// protocol).
    pub fn snapshot(&self, node: u32, tick: u64) -> NodeStats {
        NodeStats {
            node,
            tick,
            // pga-allow(relaxed-atomics): independent gauges/counters; scrape tolerates inter-field skew
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_capacity: self.queue_capacity.load(Ordering::Relaxed),
            samples_written: self.samples_written.load(Ordering::Relaxed),
            memstore_bytes: self.memstore_bytes.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            overloads: self.overloads.load(Ordering::Relaxed),
            crashed: self.crash_events.load(Ordering::Relaxed) > 0,
            mean_batch: self.batch_sizes.mean(),
            is_proxy: self.is_proxy.load(Ordering::Relaxed) > 0,
            shed_writes: self.shed_writes.load(Ordering::Relaxed),
            shed_reads: self.shed_reads.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            ingest_buffer_depth: self.ingest_buffer_depth.load(Ordering::Relaxed),
            ingest_buffer_capacity: self.ingest_buffer_capacity.load(Ordering::Relaxed),
            query_cache_hits: self.query_cache_hits.load(Ordering::Relaxed),
            query_cache_misses: self.query_cache_misses.load(Ordering::Relaxed),
            query_fanout: self.query_fanout.load(Ordering::Relaxed),
            query_partials: self.query_partials.load(Ordering::Relaxed),
            repl_lag_batches: self.repl_lag_batches.load(Ordering::Relaxed),
            repl_regions: self.repl_regions.load(Ordering::Relaxed),
            repl_failovers: self.repl_failovers.load(Ordering::Relaxed),
            repl_fence_rejections: self.repl_fence_rejections.load(Ordering::Relaxed),
            repl_follower_reads: self.repl_follower_reads.load(Ordering::Relaxed),
            repl_hedged_scans: self.repl_hedged_scans.load(Ordering::Relaxed),
            scrub_cells: self.scrub_cells.load(Ordering::Relaxed),
            scrub_corrupt_blocks: self.scrub_corrupt_blocks.load(Ordering::Relaxed),
            scrub_quarantined: self.scrub_quarantined.load(Ordering::Relaxed),
            scrub_repairs: self.scrub_repairs.load(Ordering::Relaxed),
            scrub_rejected: self.scrub_rejected.load(Ordering::Relaxed),
            scrub_salvaged_reads: self.scrub_salvaged_reads.load(Ordering::Relaxed),
            sched_tasks: self.sched_tasks.load(Ordering::Relaxed),
            sched_steals: self.sched_steals.load(Ordering::Relaxed),
            sched_steal_attempts: self.sched_steal_attempts.load(Ordering::Relaxed),
            sched_max_queue_depth: self.sched_max_queue_depth.load(Ordering::Relaxed),
            sched_task_ns: self.sched_task_ns.load(Ordering::Relaxed),
            sched_dirty_units: self.sched_dirty_units.load(Ordering::Relaxed),
        }
    }
}

/// One node's published stats — the JSON payload of `/stats/<node>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Node id.
    pub node: u32,
    /// Publisher's control tick when the snapshot was taken.
    pub tick: u64,
    /// RPC queue depth at snapshot time.
    pub queue_depth: u64,
    /// RPC queue capacity.
    pub queue_capacity: u64,
    /// Cumulative samples written.
    pub samples_written: u64,
    /// Memstore bytes held.
    pub memstore_bytes: u64,
    /// Cumulative flushes.
    pub flushes: u64,
    /// Cumulative compactions.
    pub compactions: u64,
    /// Cumulative overload strikes.
    pub overloads: u64,
    /// Whether the node has crashed.
    pub crashed: bool,
    /// Mean admitted batch size.
    pub mean_batch: f64,
    /// This snapshot comes from an ingest proxy, not a region server.
    /// Defaults (and all the fields below) keep pre-overload snapshots
    /// parseable: an old publisher simply reports no overload activity.
    #[serde(default)]
    pub is_proxy: bool,
    /// Cumulative write RPCs shed by admission control.
    #[serde(default)]
    pub shed_writes: u64,
    /// Cumulative read RPCs shed by admission control.
    #[serde(default)]
    pub shed_reads: u64,
    /// Cumulative requests dropped on deadline expiry.
    #[serde(default)]
    pub deadline_expired: u64,
    /// Cumulative circuit-breaker trips (proxy side).
    #[serde(default)]
    pub breaker_trips: u64,
    /// Batches buffered in the ingest proxy at snapshot time.
    #[serde(default)]
    pub ingest_buffer_depth: u64,
    /// Ingest proxy buffer capacity.
    #[serde(default)]
    pub ingest_buffer_capacity: u64,
    /// Cumulative serving-layer result-cache hits. Defaults (with the
    /// three fields below) keep pre-serving snapshots parseable: an old
    /// publisher simply reports no query-serving activity.
    #[serde(default)]
    pub query_cache_hits: u64,
    /// Cumulative serving-layer result-cache misses.
    #[serde(default)]
    pub query_cache_misses: u64,
    /// Cumulative scatter-gather shard scans fanned out by the serving
    /// layer.
    #[serde(default)]
    pub query_fanout: u64,
    /// Cumulative queries answered with partial results.
    #[serde(default)]
    pub query_partials: u64,
    /// Worst follower lag (WAL batches behind the primary) across the
    /// replicated regions this node leads. Defaults (with the five
    /// fields below) keep pre-replication snapshots parseable: an old
    /// publisher simply reports an unreplicated node.
    #[serde(default)]
    pub repl_lag_batches: u64,
    /// Replicated regions this node is the primary for.
    #[serde(default)]
    pub repl_regions: u64,
    /// Promotions that made this node a primary.
    #[serde(default)]
    pub repl_failovers: u64,
    /// Epoch-fenced replication RPCs (deposed writers denied a vote).
    #[serde(default)]
    pub repl_fence_rejections: u64,
    /// Scans served from a follower copy under bounded staleness.
    #[serde(default)]
    pub repl_follower_reads: u64,
    /// Scans hedged to a follower after a slow/dead primary.
    #[serde(default)]
    pub repl_hedged_scans: u64,
    /// Cells checksum-verified by the background scrub walk. Defaults
    /// (with the five fields below) keep pre-scrub snapshots parseable:
    /// an old publisher simply reports no scrub activity.
    #[serde(default)]
    pub scrub_cells: u64,
    /// Corrupt blocks ever detected (scrub walk plus read path).
    #[serde(default)]
    pub scrub_corrupt_blocks: u64,
    /// Spans sitting in quarantine at snapshot time.
    #[serde(default)]
    pub scrub_quarantined: u64,
    /// Blocks repaired from a healthy replica (CRC round-trip passed
    /// before install).
    #[serde(default)]
    pub scrub_repairs: u64,
    /// Fetched repair payloads rejected by pre-install verification.
    #[serde(default)]
    pub scrub_rejected: u64,
    /// Reads transparently answered from a replica after the local copy
    /// failed verification.
    #[serde(default)]
    pub scrub_salvaged_reads: u64,
    /// Tasks executed by the node's batch scheduler. Defaults (with the
    /// five fields below) keep pre-scheduler snapshots parseable: an old
    /// publisher simply reports no batch activity.
    #[serde(default)]
    pub sched_tasks: u64,
    /// Successful work steals in the batch scheduler.
    #[serde(default)]
    pub sched_steals: u64,
    /// Steal probes (successful or not) in the batch scheduler.
    #[serde(default)]
    pub sched_steal_attempts: u64,
    /// High-water mark of any scheduler worker's deque depth.
    #[serde(default)]
    pub sched_max_queue_depth: u64,
    /// Total nanoseconds spent inside scheduler task bodies.
    #[serde(default)]
    pub sched_task_ns: u64,
    /// Units with pending incremental retrain work at snapshot time.
    #[serde(default)]
    pub sched_dirty_units: u64,
}

impl NodeStats {
    /// Queue occupancy in `[0, 1]` (0 when capacity is unknown/unbounded).
    pub fn queue_utilization(&self) -> f64 {
        if self.queue_capacity == 0 || self.queue_capacity == u64::MAX {
            0.0
        } else {
            self.queue_depth as f64 / self.queue_capacity as f64
        }
    }

    /// Ingest buffer occupancy in `[0, 1]` (0 when capacity is unknown).
    pub fn ingest_buffer_utilization(&self) -> f64 {
        if self.ingest_buffer_capacity == 0 || self.ingest_buffer_capacity == u64::MAX {
            0.0
        } else {
            self.ingest_buffer_depth as f64 / self.ingest_buffer_capacity as f64
        }
    }

    /// Total RPCs this node shed under admission control.
    pub fn total_sheds(&self) -> u64 {
        self.shed_writes + self.shed_reads
    }

    /// Serving-layer cache hit ratio in `[0, 1]` (0 before any query).
    pub fn query_cache_hit_ratio(&self) -> f64 {
        let total = self.query_cache_hits + self.query_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.query_cache_hits as f64 / total as f64
        }
    }

    /// Mean scheduler task latency in microseconds (0 before any task).
    pub fn sched_mean_task_us(&self) -> f64 {
        if self.sched_tasks == 0 {
            0.0
        } else {
            self.sched_task_ns as f64 / self.sched_tasks as f64 / 1_000.0
        }
    }
}

/// Znode prefix stats are published under.
pub const STATS_PREFIX: &str = "/stats";

/// Publish `stats` as `/stats/<node>`, creating or updating the ephemeral
/// znode bound to `session`. Returns the znode version.
pub fn publish(
    coord: &Coordinator,
    session: SessionId,
    stats: &NodeStats,
) -> Result<u64, CoordinatorError> {
    let path = format!("{}/{}", STATS_PREFIX, stats.node);
    let bytes = serde_json::to_vec(stats).expect("NodeStats serializes");
    coord.upsert_ephemeral(&path, bytes, session)
}

/// Fleet-wide view assembled from every `/stats/*` znode.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetSnapshot {
    /// Per-node stats, sorted by node id.
    pub nodes: Vec<NodeStats>,
}

impl FleetSnapshot {
    /// Scrape all published stats from the coordinator. Unparseable or
    /// concurrently-deleted znodes are skipped — a scrape races session
    /// expiry by design and must tolerate it.
    pub fn scrape(coord: &Coordinator) -> FleetSnapshot {
        let mut nodes: Vec<NodeStats> = coord
            .children(STATS_PREFIX)
            .into_iter()
            .filter_map(|path| {
                let (bytes, _version) = coord.get(&path).ok()?;
                serde_json::from_slice::<NodeStats>(&bytes).ok()
            })
            .collect();
        nodes.sort_by_key(|s| s.node);
        FleetSnapshot { nodes }
    }

    /// Live serving nodes: not crashed and not an ingest proxy. Scaling
    /// decisions size the region-server fleet, so proxies never count.
    fn serving(&self) -> impl Iterator<Item = &NodeStats> {
        self.nodes.iter().filter(|n| !n.crashed && !n.is_proxy)
    }

    /// Number of live (non-crashed, non-proxy) serving nodes.
    pub fn live_nodes(&self) -> usize {
        self.serving().count()
    }

    /// Sum of queue depths across live serving nodes.
    pub fn total_queue_depth(&self) -> u64 {
        self.serving().map(|n| n.queue_depth).sum()
    }

    /// Mean queue occupancy across live serving nodes (0 when empty).
    pub fn mean_queue_utilization(&self) -> f64 {
        let live = self.live_nodes();
        if live == 0 {
            return 0.0;
        }
        self.serving().map(|n| n.queue_utilization()).sum::<f64>() / live as f64
    }

    /// Highest queue occupancy across live serving nodes.
    pub fn max_queue_utilization(&self) -> f64 {
        self.serving()
            .map(|n| n.queue_utilization())
            .fold(0.0, f64::max)
    }

    /// Total samples written by the fleet.
    pub fn total_samples_written(&self) -> u64 {
        self.nodes.iter().map(|n| n.samples_written).sum()
    }

    /// Nodes flagged crashed (proxies included — a dead proxy matters).
    pub fn crashed_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.crashed).count()
    }

    /// Highest ingest-proxy buffer occupancy in `[0, 1]` — the primary
    /// "storm is backing up" signal for the scaling policy.
    pub fn ingest_pressure(&self) -> f64 {
        self.nodes
            .iter()
            .filter(|n| n.is_proxy && !n.crashed)
            .map(|n| n.ingest_buffer_utilization())
            .fold(0.0, f64::max)
    }

    /// Cumulative admission sheds across the whole fleet (servers and
    /// proxies alike).
    pub fn total_sheds(&self) -> u64 {
        self.nodes.iter().map(|n| n.total_sheds()).sum()
    }

    /// Cumulative deadline expiries across the fleet.
    pub fn total_deadline_expired(&self) -> u64 {
        self.nodes.iter().map(|n| n.deadline_expired).sum()
    }

    /// Cumulative circuit-breaker trips across the fleet.
    pub fn total_breaker_trips(&self) -> u64 {
        self.nodes.iter().map(|n| n.breaker_trips).sum()
    }

    /// Fleet-wide serving-layer cache hit ratio in `[0, 1]` (0 before
    /// any query anywhere).
    pub fn query_cache_hit_ratio(&self) -> f64 {
        let hits: u64 = self.nodes.iter().map(|n| n.query_cache_hits).sum();
        let misses: u64 = self.nodes.iter().map(|n| n.query_cache_misses).sum();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Cumulative scatter-gather fan-out across the fleet's serving
    /// layer.
    pub fn total_query_fanout(&self) -> u64 {
        self.nodes.iter().map(|n| n.query_fanout).sum()
    }

    /// Cumulative partial-result queries across the fleet.
    pub fn total_query_partials(&self) -> u64 {
        self.nodes.iter().map(|n| n.query_partials).sum()
    }

    /// Worst follower lag (WAL batches) across every replicated region
    /// in the fleet.
    pub fn max_replication_lag(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.repl_lag_batches)
            .max()
            .unwrap_or(0)
    }

    /// Replicated regions led across the fleet (each region counted once,
    /// on its primary).
    pub fn replicated_regions(&self) -> u64 {
        self.nodes.iter().map(|n| n.repl_regions).sum()
    }

    /// Cumulative primary failovers across the fleet (each promotion
    /// counted once, on the promoted node).
    pub fn total_failovers(&self) -> u64 {
        self.nodes.iter().map(|n| n.repl_failovers).sum()
    }

    /// Cumulative epoch-fence rejections observed across the fleet.
    pub fn total_fence_rejections(&self) -> u64 {
        self.nodes.iter().map(|n| n.repl_fence_rejections).sum()
    }

    /// Cumulative follower-served reads (bounded-staleness plus hedged)
    /// across the fleet.
    pub fn total_follower_reads(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.repl_follower_reads + n.repl_hedged_scans)
            .sum()
    }

    /// Spans quarantined across the fleet right now — the "corruption
    /// awaiting repair" health signal.
    pub fn quarantined_spans(&self) -> u64 {
        self.nodes.iter().map(|n| n.scrub_quarantined).sum()
    }

    /// Cumulative replica-backed block repairs across the fleet.
    pub fn total_scrub_repairs(&self) -> u64 {
        self.nodes.iter().map(|n| n.scrub_repairs).sum()
    }

    /// Cumulative corrupt blocks detected across the fleet (scrub walks
    /// plus read paths).
    pub fn total_corrupt_blocks(&self) -> u64 {
        self.nodes.iter().map(|n| n.scrub_corrupt_blocks).sum()
    }

    /// Cumulative reads salvaged from a replica across the fleet.
    pub fn total_salvaged_reads(&self) -> u64 {
        self.nodes.iter().map(|n| n.scrub_salvaged_reads).sum()
    }

    /// Cumulative batch-scheduler tasks executed across the fleet.
    pub fn total_sched_tasks(&self) -> u64 {
        self.nodes.iter().map(|n| n.sched_tasks).sum()
    }

    /// Cumulative successful work steals across the fleet's schedulers.
    pub fn total_sched_steals(&self) -> u64 {
        self.nodes.iter().map(|n| n.sched_steals).sum()
    }

    /// Units with pending incremental retrain work across the fleet —
    /// the "how stale are the models" health signal.
    pub fn total_dirty_units(&self) -> u64 {
        self.nodes.iter().map(|n| n.sched_dirty_units).sum()
    }

    /// Deepest scheduler worker deque observed anywhere in the fleet.
    pub fn max_sched_queue_depth(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.sched_max_queue_depth)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(node: u32, depth: u64, cap: u64) -> NodeStats {
        NodeStats {
            node,
            tick: 1,
            queue_depth: depth,
            queue_capacity: cap,
            samples_written: 100 * node as u64,
            memstore_bytes: 0,
            flushes: 0,
            compactions: 0,
            overloads: 0,
            crashed: false,
            mean_batch: 0.0,
            is_proxy: false,
            shed_writes: 0,
            shed_reads: 0,
            deadline_expired: 0,
            breaker_trips: 0,
            ingest_buffer_depth: 0,
            ingest_buffer_capacity: 0,
            query_cache_hits: 0,
            query_cache_misses: 0,
            query_fanout: 0,
            query_partials: 0,
            repl_lag_batches: 0,
            repl_regions: 0,
            repl_failovers: 0,
            repl_fence_rejections: 0,
            repl_follower_reads: 0,
            repl_hedged_scans: 0,
            scrub_cells: 0,
            scrub_corrupt_blocks: 0,
            scrub_quarantined: 0,
            scrub_repairs: 0,
            scrub_rejected: 0,
            scrub_salvaged_reads: 0,
            sched_tasks: 0,
            sched_steals: 0,
            sched_steal_attempts: 0,
            sched_max_queue_depth: 0,
            sched_task_ns: 0,
            sched_dirty_units: 0,
        }
    }

    #[test]
    fn registry_snapshot_round_trips_through_json() {
        let reg = MetricsRegistry::new(1024);
        reg.queue_depth.store(37, Ordering::Relaxed);
        reg.samples_written.fetch_add(4200, Ordering::Relaxed);
        reg.batch_sizes.record(50);
        reg.batch_sizes.record(150);
        let snap = reg.snapshot(7, 3);
        assert_eq!(snap.node, 7);
        assert_eq!(snap.queue_depth, 37);
        assert_eq!(snap.samples_written, 4200);
        assert!((snap.mean_batch - 100.0).abs() < 1e-9);
        let json = serde_json::to_string(&snap).unwrap();
        let back: NodeStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn replication_counters_flow_into_fleet_aggregates() {
        let reg = MetricsRegistry::new(64);
        reg.record_replication(5, 2, 1, 3, 40, 7);
        let a = reg.snapshot(0, 1);
        assert_eq!(
            (a.repl_lag_batches, a.repl_regions, a.repl_failovers),
            (5, 2, 1)
        );
        let mut b = stats(1, 0, 64);
        b.repl_lag_batches = 9;
        b.repl_regions = 1;
        b.repl_fence_rejections = 2;
        b.repl_hedged_scans = 6;
        let fleet = FleetSnapshot {
            nodes: vec![a.clone(), b],
        };
        assert_eq!(fleet.max_replication_lag(), 9);
        assert_eq!(fleet.replicated_regions(), 3);
        assert_eq!(fleet.total_failovers(), 1);
        assert_eq!(fleet.total_fence_rejections(), 5);
        assert_eq!(fleet.total_follower_reads(), 53);
        // Pre-replication snapshots (no repl fields at all) still parse.
        let serde_json::Value::Object(obj) = serde_json::to_value(&a) else {
            panic!("NodeStats must serialize to an object");
        };
        let mut pruned = serde_json::Map::new();
        for (k, val) in obj.iter() {
            if !k.starts_with("repl_") {
                pruned.insert(k.clone(), val.clone());
            }
        }
        let back: NodeStats = serde_json::from_value(serde_json::Value::Object(pruned)).unwrap();
        assert_eq!(back.repl_lag_batches, 0);
        assert_eq!(back.repl_regions, 0);
    }

    #[test]
    fn scrub_counters_flow_into_fleet_aggregates() {
        let reg = MetricsRegistry::new(64);
        reg.record_scrub(500, 3, 1, 2, 1, 4);
        let a = reg.snapshot(0, 1);
        assert_eq!(a.scrub_cells, 500);
        assert_eq!(a.scrub_corrupt_blocks, 3);
        assert_eq!(a.scrub_quarantined, 1);
        let mut b = stats(1, 0, 64);
        b.scrub_quarantined = 2;
        b.scrub_repairs = 5;
        b.scrub_salvaged_reads = 1;
        let fleet = FleetSnapshot {
            nodes: vec![a.clone(), b],
        };
        assert_eq!(fleet.quarantined_spans(), 3);
        assert_eq!(fleet.total_scrub_repairs(), 7);
        assert_eq!(fleet.total_corrupt_blocks(), 3);
        assert_eq!(fleet.total_salvaged_reads(), 5);
        // Pre-scrub snapshots (no scrub fields at all) still parse.
        let serde_json::Value::Object(obj) = serde_json::to_value(&a) else {
            panic!("NodeStats must serialize to an object");
        };
        let mut pruned = serde_json::Map::new();
        for (k, val) in obj.iter() {
            if !k.starts_with("scrub_") {
                pruned.insert(k.clone(), val.clone());
            }
        }
        let back: NodeStats = serde_json::from_value(serde_json::Value::Object(pruned)).unwrap();
        assert_eq!(back.scrub_quarantined, 0);
        assert_eq!(back.scrub_repairs, 0);
    }

    #[test]
    fn sched_counters_flow_into_fleet_aggregates() {
        let reg = MetricsRegistry::new(64);
        reg.record_sched(1700, 42, 90, 12, 3_400_000, 5);
        let a = reg.snapshot(0, 1);
        assert_eq!(a.sched_tasks, 1700);
        assert_eq!(a.sched_steals, 42);
        assert_eq!(a.sched_steal_attempts, 90);
        assert_eq!(a.sched_max_queue_depth, 12);
        assert!((a.sched_mean_task_us() - 2.0).abs() < 1e-9);
        let mut b = stats(1, 0, 64);
        b.sched_tasks = 300;
        b.sched_steals = 8;
        b.sched_max_queue_depth = 30;
        b.sched_dirty_units = 2;
        let fleet = FleetSnapshot {
            nodes: vec![a.clone(), b],
        };
        assert_eq!(fleet.total_sched_tasks(), 2000);
        assert_eq!(fleet.total_sched_steals(), 50);
        assert_eq!(fleet.total_dirty_units(), 7);
        assert_eq!(fleet.max_sched_queue_depth(), 30);
        // Pre-scheduler snapshots (no sched fields at all) still parse.
        let serde_json::Value::Object(obj) = serde_json::to_value(&a) else {
            panic!("NodeStats must serialize to an object");
        };
        let mut pruned = serde_json::Map::new();
        for (k, val) in obj.iter() {
            if !k.starts_with("sched_") {
                pruned.insert(k.clone(), val.clone());
            }
        }
        let back: NodeStats = serde_json::from_value(serde_json::Value::Object(pruned)).unwrap();
        assert_eq!(back.sched_tasks, 0);
        assert_eq!(back.sched_dirty_units, 0);
        assert_eq!(back.sched_mean_task_us(), 0.0);
    }

    #[test]
    fn histogram_quantiles_bracket_recordings() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100, 100, 100, 100, 100, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        // p50 falls in the bucket holding 100 → upper bound 128.
        assert_eq!(h.quantile(0.5), 128);
        // p99 falls in the bucket holding 1000 → upper bound 1024.
        assert_eq!(h.quantile(0.99), 1024);
    }

    #[test]
    fn bucket_index_boundaries() {
        // Zero and one share bucket 0; every power of two opens its own
        // bucket up to the clamp.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        for i in 1..(HISTOGRAM_BUCKETS - 1) {
            let edge = 1u64 << i;
            assert_eq!(bucket_index(edge), i, "2^{i} opens bucket {i}");
            assert_eq!(bucket_index(edge - 1), i - 1, "2^{i}-1 stays below");
            assert_eq!(bucket_index(edge + 1), i, "2^{i}+1 stays inside");
        }
        // Everything at and past 2^31 lands in the open-ended last bucket.
        assert_eq!(bucket_index(1u64 << 31), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(1u64 << 32), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_extreme_values_count_consistently() {
        let h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        // Sum wraps modulo 2^64 exactly like wrapping_add.
        let expected = 0u64.wrapping_add(1).wrapping_add(u64::MAX);
        assert!((h.mean() - expected as f64 / 3.0).abs() < 1e-9);
        // A quantile landing in the open-ended last bucket reports
        // u64::MAX, not the old (wrong by 2^32) upper bound of 2^32.
        assert_eq!(h.quantile(1.0), u64::MAX);
        // Quantiles below the last bucket still report real bounds.
        assert_eq!(h.quantile(0.3), 2);
    }

    #[test]
    fn histogram_sum_wraps_without_losing_count() {
        let h = Histogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(2);
        assert_eq!(h.count(), 3);
        let wrapped = u64::MAX.wrapping_add(u64::MAX).wrapping_add(2);
        assert_eq!(wrapped, 0);
        assert!(h.mean().abs() < 1e-9, "wrapped sum of 0 gives mean 0");
    }

    #[test]
    fn publish_scrape_round_trip_and_expiry_removes_ghosts() {
        let coord = Coordinator::new(100);
        let s0 = coord.connect(0);
        let s1 = coord.connect(0);
        publish(&coord, s0, &stats(0, 10, 100)).unwrap();
        publish(&coord, s1, &stats(1, 90, 100)).unwrap();
        let snap = FleetSnapshot::scrape(&coord);
        assert_eq!(snap.nodes.len(), 2);
        assert_eq!(snap.total_queue_depth(), 100);
        assert!((snap.mean_queue_utilization() - 0.5).abs() < 1e-9);
        assert!((snap.max_queue_utilization() - 0.9).abs() < 1e-9);
        // Republish updates in place (ephemeral upsert, version bumps).
        let v = publish(&coord, s0, &stats(0, 20, 100)).unwrap();
        assert!(v >= 1);
        // Node 1 goes silent past the lease: its stats vanish.
        coord.heartbeat(s0, 50).unwrap();
        coord.expire_stale_sessions(150);
        let snap = FleetSnapshot::scrape(&coord);
        assert_eq!(snap.nodes.len(), 1);
        assert_eq!(snap.nodes[0].node, 0);
        assert_eq!(snap.nodes[0].queue_depth, 20);
    }

    #[test]
    fn proxy_stats_feed_pressure_but_not_serving_aggregates() {
        let mut proxy = stats(100, 0, 0);
        proxy.is_proxy = true;
        proxy.ingest_buffer_depth = 90;
        proxy.ingest_buffer_capacity = 100;
        proxy.shed_writes = 5;
        proxy.breaker_trips = 2;
        let mut server = stats(0, 10, 100);
        server.shed_reads = 3;
        server.deadline_expired = 4;
        let snap = FleetSnapshot {
            nodes: vec![server, proxy],
        };
        // Serving aggregates exclude the proxy.
        assert_eq!(snap.live_nodes(), 1);
        assert_eq!(snap.total_queue_depth(), 10);
        assert!((snap.max_queue_utilization() - 0.1).abs() < 1e-9);
        // Overload signals come through.
        assert!((snap.ingest_pressure() - 0.9).abs() < 1e-9);
        assert_eq!(snap.total_sheds(), 8);
        assert_eq!(snap.total_deadline_expired(), 4);
        assert_eq!(snap.total_breaker_trips(), 2);
    }

    #[test]
    fn pre_overload_snapshots_still_parse() {
        // A snapshot published before the overload fields existed must
        // deserialize with all-default overload telemetry.
        let legacy = r#"{"node":3,"tick":9,"queue_depth":5,"queue_capacity":64,
            "samples_written":12,"memstore_bytes":0,"flushes":1,"compactions":0,
            "overloads":0,"crashed":false,"mean_batch":2.5}"#;
        let s: NodeStats = serde_json::from_str(legacy).unwrap();
        assert!(!s.is_proxy);
        assert_eq!(s.total_sheds(), 0);
        assert_eq!(s.ingest_buffer_utilization(), 0.0);
        // Pre-serving snapshots report no query activity either.
        assert_eq!(s.query_cache_hits + s.query_cache_misses, 0);
        assert_eq!(s.query_cache_hit_ratio(), 0.0);
        assert_eq!(s.query_fanout, 0);
    }

    #[test]
    fn query_serving_telemetry_flows_registry_to_fleet() {
        let reg = MetricsRegistry::new(64);
        reg.record_query_serving(30, 10, 160, 2);
        let snap = reg.snapshot(4, 7);
        assert_eq!(snap.query_cache_hits, 30);
        assert_eq!(snap.query_cache_misses, 10);
        assert!((snap.query_cache_hit_ratio() - 0.75).abs() < 1e-9);
        // Re-publishing newer engine totals overwrites the gauges.
        reg.record_query_serving(60, 20, 320, 2);
        let snap2 = reg.snapshot(4, 8);
        assert_eq!(snap2.query_fanout, 320);

        let mut other = stats(5, 0, 64);
        other.query_cache_hits = 20;
        other.query_cache_misses = 20;
        other.query_fanout = 80;
        other.query_partials = 1;
        let fleet = FleetSnapshot {
            nodes: vec![snap2, other],
        };
        // (60 + 20) hits over (80 + 40) lookups.
        assert!((fleet.query_cache_hit_ratio() - 80.0 / 120.0).abs() < 1e-9);
        assert_eq!(fleet.total_query_fanout(), 400);
        assert_eq!(fleet.total_query_partials(), 3);
        // A fleet that never queried reports ratio 0, not NaN.
        assert_eq!(FleetSnapshot { nodes: vec![] }.query_cache_hit_ratio(), 0.0);
    }

    #[test]
    fn aggregation_ignores_crashed_nodes() {
        let mut a = stats(0, 50, 100);
        let mut b = stats(1, 100, 100);
        b.crashed = true;
        a.samples_written = 10;
        b.samples_written = 20;
        let snap = FleetSnapshot { nodes: vec![a, b] };
        assert_eq!(snap.live_nodes(), 1);
        assert_eq!(snap.crashed_nodes(), 1);
        assert_eq!(snap.total_queue_depth(), 50);
        assert!((snap.max_queue_utilization() - 0.5).abs() < 1e-9);
        // Written totals still count the crashed node's history.
        assert_eq!(snap.total_samples_written(), 30);
    }
}
