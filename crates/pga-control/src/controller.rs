//! The control loop against the real in-process cluster.
//!
//! [`ElasticController::step`] is one tick of the loop the elastic
//! simulator models: collect per-node telemetry from the live region
//! servers, publish it to the coordinator's `/stats` namespace (bound to
//! each node's session, so stats die with their node), scrape the fleet
//! snapshot back, ask the [`ScalingPolicy`] for a verdict, and actuate it
//! through the [`Master`] — `add_server` on scale-out, drain-and-
//! decommission on scale-in, and hot-region migrations proposed by the
//! [`HotRegionDetector`]. The harness drives ticks explicitly (no
//! background thread), keeping runs deterministic.

use std::collections::HashMap;

use pga_cluster::rpc::ServerState;
use pga_cluster::NodeId;
use pga_minibase::{Master, RegionId, Request, Response, ServerConfig};

use crate::policy::{
    ClusterObservation, HotRegionDetector, RegionLoad, ScalingDecision, ScalingPolicy,
};
use crate::telemetry::{publish, FleetSnapshot, NodeStats};

/// What one control tick did.
#[derive(Debug, Clone)]
pub struct ControlReport {
    /// Tick number.
    pub tick: u64,
    /// Fleet view the decision was based on.
    pub snapshot: FleetSnapshot,
    /// Observation fed to the policy.
    pub observation: ClusterObservation,
    /// The policy's verdict.
    pub decision: ScalingDecision,
    /// Nodes provisioned this tick.
    pub added: Vec<NodeId>,
    /// Nodes drained and decommissioned this tick.
    pub decommissioned: Vec<NodeId>,
    /// Hot-region migration executed this tick, `(region, from, to)`.
    pub migration: Option<(RegionId, NodeId, NodeId)>,
}

/// Telemetry-driven controller over a [`Master`].
pub struct ElasticController<P: ScalingPolicy> {
    policy: P,
    detector: HotRegionDetector,
    server_config: ServerConfig,
    tick: u64,
    /// Per-region cumulative writes at the previous tick, for share deltas.
    prev_region_writes: HashMap<RegionId, u64>,
    prev_total_written: u64,
    /// Latest ingest-proxy stats handed in via [`Self::report_ingest`].
    ingest_stats: Vec<NodeStats>,
}

impl<P: ScalingPolicy> ElasticController<P> {
    /// Controller that sizes new nodes with `server_config`.
    pub fn new(policy: P, server_config: ServerConfig) -> Self {
        ElasticController {
            policy,
            detector: HotRegionDetector::default(),
            server_config,
            tick: 0,
            prev_region_writes: HashMap::new(),
            prev_total_written: 0,
            ingest_stats: Vec::new(),
        }
    }

    /// Replace the hot-region detector (e.g. to tune tolerance).
    pub fn with_detector(mut self, detector: HotRegionDetector) -> Self {
        self.detector = detector;
        self
    }

    /// The wrapped policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Collect one node's stats straight from its RPC surface.
    fn collect(master: &Master, node: NodeId, tick: u64) -> Option<NodeStats> {
        let server = master.server(node)?;
        let handle = server.handle();
        let crashed = handle.state() == ServerState::Crashed;
        // Region-level counters; a crashed server can't answer RPC, so
        // fall back to the assignment-surface totals.
        let (flushes, compactions) = if crashed {
            (0, 0)
        } else {
            match handle.call(Request::Metrics) {
                Ok(Response::Metrics(per_region)) => per_region
                    .iter()
                    .fold((0, 0), |(f, c), (_, m)| (f + m.flushes, c + m.compactions)),
                _ => (0, 0),
            }
        };
        // Replication plane: worst follower lag and region count for the
        // regions this node leads, plus the promotions that made it a
        // primary — all from the master's authoritative view, so they
        // stay correct even while the node itself is unreachable.
        let (repl_lag_batches, repl_regions) = master
            .replication_report()
            .iter()
            .filter(|s| s.primary == node)
            .fold((0u64, 0u64), |(lag, n), s| (lag.max(s.max_lag()), n + 1));
        let repl_failovers = master
            .failover_events()
            .iter()
            .filter(|e| e.to == node)
            .count() as u64;
        Some(NodeStats {
            node: node.0,
            tick,
            queue_depth: handle.queue_depth() as u64,
            queue_capacity: handle.queue_capacity() as u64,
            samples_written: server.total_cells_written(),
            memstore_bytes: 0,
            flushes,
            compactions,
            overloads: handle.overloads(),
            crashed,
            mean_batch: 0.0,
            is_proxy: false,
            shed_writes: handle.shed_writes(),
            shed_reads: handle.shed_reads(),
            deadline_expired: handle.deadline_expired(),
            breaker_trips: 0,
            ingest_buffer_depth: 0,
            ingest_buffer_capacity: 0,
            // Region servers run no serving-layer engine; TSD-side
            // registries publish the query counters.
            query_cache_hits: 0,
            query_cache_misses: 0,
            query_fanout: 0,
            query_partials: 0,
            repl_lag_batches,
            repl_regions,
            repl_failovers,
            // Fencing and follower reads are observed client-side; the
            // TSD registries mirror them via `record_replication`.
            repl_fence_rejections: 0,
            repl_follower_reads: 0,
            repl_hedged_scans: 0,
            // Scrub runs in the TSD layer; its registries mirror the
            // counters via `record_scrub`.
            scrub_cells: 0,
            scrub_corrupt_blocks: 0,
            scrub_quarantined: 0,
            scrub_repairs: 0,
            scrub_rejected: 0,
            scrub_salvaged_reads: 0,
            // The batch scheduler lives in the platform monitor; its
            // registry mirrors the counters via `record_sched`.
            sched_tasks: 0,
            sched_steals: 0,
            sched_steal_attempts: 0,
            sched_max_queue_depth: 0,
            sched_task_ns: 0,
            sched_dirty_units: 0,
        })
    }

    /// Report ingest-proxy stats for the next tick. The proxy is not a
    /// cluster node (it holds no coordinator session), so the harness
    /// hands its overload snapshot to the controller, which folds it into
    /// the fleet view and the policy's backlog-pressure signal.
    pub fn report_ingest(&mut self, stats: NodeStats) {
        self.ingest_stats.retain(|s| s.node != stats.node);
        self.ingest_stats.push(stats);
    }

    /// Per-region write shares since the previous tick, for the hot-region
    /// detector. Returns `(loads, live_nodes)`.
    fn region_loads(&mut self, master: &Master) -> (Vec<RegionLoad>, Vec<u32>) {
        let mut current: HashMap<RegionId, (u32, u64)> = HashMap::new();
        for node in master.live_nodes() {
            if let Some(server) = master.server(node) {
                if server.handle().state() != ServerState::Healthy {
                    continue;
                }
                if let Ok(Response::Metrics(per_region)) = server.handle().call(Request::Metrics) {
                    for (rid, m) in per_region {
                        current.insert(rid, (node.0, m.cells_written));
                    }
                }
            }
        }
        let mut deltas: Vec<(RegionId, u32, u64)> = current
            .iter()
            .map(|(&rid, &(node, written))| {
                let prev = self.prev_region_writes.get(&rid).copied().unwrap_or(0);
                (rid, node, written.saturating_sub(prev))
            })
            .collect();
        deltas.sort_by_key(|&(rid, _, _)| rid.0);
        self.prev_region_writes = current
            .iter()
            .map(|(&rid, &(_, written))| (rid, written))
            .collect();
        let total: u64 = deltas.iter().map(|&(_, _, d)| d).sum();
        let loads = if total == 0 {
            Vec::new()
        } else {
            deltas
                .into_iter()
                .map(|(rid, node, d)| RegionLoad {
                    region: rid.0,
                    node,
                    write_share: d as f64 / total as f64,
                })
                .collect()
        };
        let nodes: Vec<u32> = master.live_nodes().iter().map(|n| n.0).collect();
        (loads, nodes)
    }

    /// Run one control tick at `now_ms`: telemetry → policy → actuation.
    pub fn step(&mut self, master: &mut Master, now_ms: u64) -> ControlReport {
        self.tick += 1;
        let tick = self.tick;

        // 1. Telemetry: publish every live node's stats under /stats.
        for node in master.live_nodes() {
            if let (Some(stats), Some(session)) =
                (Self::collect(master, node, tick), master.session(node))
            {
                let _ = publish(master.coordinator(), session, &stats);
            }
        }
        let mut snapshot = FleetSnapshot::scrape(master.coordinator());
        // Fold in ingest-proxy stats (sessionless, so never scraped).
        snapshot.nodes.extend(self.ingest_stats.iter().cloned());
        snapshot.nodes.sort_by_key(|s| s.node);

        // 2. Observe. Service utilization is approximated by write-rate
        //    growth; without a wall clock the queue signals dominate.
        //    Backlog pressure is the ingest side backing up: proxy buffer
        //    occupancy is the leading indicator that offered load exceeds
        //    what admission control is letting through.
        let total_written = snapshot.total_samples_written();
        let wrote_something = total_written > self.prev_total_written;
        self.prev_total_written = total_written;
        let observation = ClusterObservation {
            tick,
            active_nodes: snapshot.live_nodes(),
            mean_queue_utilization: snapshot.mean_queue_utilization(),
            service_utilization: if wrote_something { 0.5 } else { 0.0 },
            backlog_pressure: snapshot.ingest_pressure(),
            crashed_nodes: snapshot.crashed_nodes(),
        };

        // 3. Decide and actuate.
        let decision = self.policy.observe(&observation);
        let mut added = Vec::new();
        let mut decommissioned = Vec::new();
        match decision {
            ScalingDecision::Hold => {}
            ScalingDecision::ScaleOut(k) => {
                for _ in 0..k {
                    added.push(master.add_server(self.server_config, now_ms));
                }
            }
            ScalingDecision::ScaleIn(k) => {
                // Highest node ids first, never below one node.
                let mut live = master.live_nodes();
                live.reverse();
                for node in live.into_iter().take(k) {
                    if master.live_nodes().len() <= 1 {
                        break;
                    }
                    if master.decommission_server(node).is_some() {
                        decommissioned.push(node);
                    }
                }
            }
        }

        // 4. Hot-region migration (at most one per tick).
        let (loads, live) = self.region_loads(master);
        let migration = self.detector.detect(&loads, &live).and_then(|p| {
            let rid = RegionId(p.region);
            master
                .move_region(rid, NodeId(p.to))
                .then_some((rid, NodeId(p.from), NodeId(p.to)))
        });

        ControlReport {
            tick,
            snapshot,
            observation,
            decision,
            added,
            decommissioned,
            migration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use pga_cluster::coordinator::Coordinator;
    use pga_minibase::{KeyValue, RegionConfig, TableDescriptor};

    /// Plays back a scripted decision sequence.
    struct Scripted(Vec<ScalingDecision>);

    impl ScalingPolicy for Scripted {
        fn observe(&mut self, _obs: &ClusterObservation) -> ScalingDecision {
            if self.0.is_empty() {
                ScalingDecision::Hold
            } else {
                self.0.remove(0)
            }
        }

        fn name(&self) -> &'static str {
            "scripted"
        }
    }

    fn boot(nodes: usize, splits: &[&[u8]]) -> Master {
        let coord = Coordinator::new(60_000);
        let mut m = Master::bootstrap(nodes, ServerConfig::default(), coord, 0);
        m.create_table(&TableDescriptor {
            name: "tsdb".into(),
            split_points: splits.iter().map(|s| Bytes::from(s.to_vec())).collect(),
            region_config: RegionConfig::default(),
        });
        m
    }

    #[test]
    fn scale_out_then_in_actuates_through_master() {
        let mut master = boot(2, &[b"m"]);
        let mut ctl = ElasticController::new(
            Scripted(vec![
                ScalingDecision::ScaleOut(1),
                ScalingDecision::Hold,
                ScalingDecision::ScaleIn(1),
            ]),
            ServerConfig::default(),
        );
        let r1 = ctl.step(&mut master, 1000);
        assert_eq!(r1.added, vec![NodeId(2)]);
        assert_eq!(master.live_nodes().len(), 3);
        // Stats were published for the original nodes.
        assert_eq!(r1.snapshot.nodes.len(), 2);

        let r2 = ctl.step(&mut master, 2000);
        assert_eq!(r2.decision, ScalingDecision::Hold);
        // The new node now publishes too.
        assert_eq!(r2.snapshot.nodes.len(), 3);

        let r3 = ctl.step(&mut master, 3000);
        assert_eq!(r3.decommissioned, vec![NodeId(2)]);
        assert_eq!(master.live_nodes().len(), 2);
        master.shutdown();
    }

    #[test]
    fn reported_ingest_stats_drive_backlog_pressure() {
        let mut master = boot(2, &[b"m"]);
        let mut ctl = ElasticController::new(Scripted(Vec::new()), ServerConfig::default());
        let mut proxy = NodeStats {
            node: 1000,
            tick: 0,
            queue_depth: 0,
            queue_capacity: 0,
            samples_written: 0,
            memstore_bytes: 0,
            flushes: 0,
            compactions: 0,
            overloads: 0,
            crashed: false,
            mean_batch: 0.0,
            is_proxy: true,
            shed_writes: 7,
            shed_reads: 0,
            deadline_expired: 0,
            breaker_trips: 1,
            ingest_buffer_depth: 80,
            ingest_buffer_capacity: 100,
            query_cache_hits: 0,
            query_cache_misses: 0,
            query_fanout: 0,
            query_partials: 0,
            repl_lag_batches: 0,
            repl_regions: 0,
            repl_failovers: 0,
            repl_fence_rejections: 0,
            repl_follower_reads: 0,
            repl_hedged_scans: 0,
            scrub_cells: 0,
            scrub_corrupt_blocks: 0,
            scrub_quarantined: 0,
            scrub_repairs: 0,
            scrub_rejected: 0,
            scrub_salvaged_reads: 0,
            sched_tasks: 0,
            sched_steals: 0,
            sched_steal_attempts: 0,
            sched_max_queue_depth: 0,
            sched_task_ns: 0,
            sched_dirty_units: 0,
        };
        ctl.report_ingest(proxy.clone());
        let r = ctl.step(&mut master, 1000);
        assert!((r.observation.backlog_pressure - 0.8).abs() < 1e-9);
        // The proxy appears in the fleet view but never in the serving count.
        assert!(r.snapshot.nodes.iter().any(|n| n.is_proxy));
        assert_eq!(r.observation.active_nodes, 2);
        // Re-reporting the same proxy replaces, not duplicates.
        proxy.ingest_buffer_depth = 10;
        ctl.report_ingest(proxy);
        let r = ctl.step(&mut master, 2000);
        assert!((r.observation.backlog_pressure - 0.1).abs() < 1e-9);
        assert_eq!(r.snapshot.nodes.iter().filter(|n| n.is_proxy).count(), 1);
        master.shutdown();
    }

    #[test]
    fn hot_region_is_migrated_off_the_loaded_node() {
        // 3 nodes so one node's 100% share clears the 2× fair-share bar.
        let mut master = boot(3, &[b"g", b"p"]);
        let mut ctl = ElasticController::new(Scripted(Vec::new()), ServerConfig::default());
        // Tick once to establish the write baseline.
        ctl.step(&mut master, 1000);
        // Hammer one region on node 0 so its share dwarfs the rest.
        let dir = master.directory();
        let info = dir
            .read()
            .iter()
            .find(|i| i.server == NodeId(0))
            .unwrap()
            .clone();
        let row: &[u8] = if info.range.contains(b"a") {
            b"a"
        } else if info.range.contains(b"j") {
            b"j"
        } else {
            b"z"
        };
        let server = master.server(NodeId(0)).unwrap();
        for i in 0..200u64 {
            server
                .handle()
                .call(Request::Put {
                    region: info.id,
                    kvs: vec![KeyValue::new(row.to_vec(), b"q".to_vec(), i, b"v".to_vec())],
                })
                .unwrap();
        }
        let r = ctl.step(&mut master, 2000);
        let (rid, from, to) = r.migration.expect("hot region must move");
        assert_eq!(rid, info.id);
        assert_eq!(from, NodeId(0));
        assert_eq!(to, NodeId(1));
        // Directory reflects the migration.
        assert!(dir
            .read()
            .iter()
            .any(|i| i.id == rid && i.server == NodeId(1)));
        master.shutdown();
    }
}
