//! Scaling policies: the pluggable decision layer between telemetry and
//! actuation.
//!
//! The default [`HysteresisPolicy`] implements the classic control-loop
//! guardrails: the raw load signal (queue occupancy ∪ backlog pressure) is
//! smoothed with an EMA, a scale-out fires only after the smoothed signal
//! has sat above the high-water mark for `k_ticks` **consecutive** ticks,
//! scale-in analogously below the low-water mark, and every action starts
//! a cooldown during which the policy holds. Together these prevent the
//! flapping a naive threshold policy exhibits on noisy telemetry.

use serde::{Deserialize, Serialize};

/// What a policy sees each control tick, distilled from a
/// [`crate::telemetry::FleetSnapshot`] or the elastic simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterObservation {
    /// Control tick number.
    pub tick: u64,
    /// Nodes currently serving traffic (active, not draining/crashed).
    pub active_nodes: usize,
    /// Mean queue occupancy across active nodes, `[0, 1]`.
    pub mean_queue_utilization: f64,
    /// Fraction of the fleet's aggregate service capacity spent since the
    /// previous tick, `[0, 1]` — the CPU-utilization analog.
    pub service_utilization: f64,
    /// Samples buffered upstream (proxy backlog) per unit of aggregate
    /// per-interval service capacity — 0 when the fleet keeps up, grows
    /// past 1 as the proxy falls behind by whole control intervals.
    pub backlog_pressure: f64,
    /// Nodes that crashed since the previous tick.
    pub crashed_nodes: usize,
}

impl ClusterObservation {
    /// The scalar load signal policies smooth and threshold: the worst of
    /// service utilization, queue occupancy and upstream backlog pressure.
    /// A fleet that keeps up sits at its service utilization; saturation
    /// pushes the signal past 1 through the queue/backlog terms.
    pub fn load_signal(&self) -> f64 {
        self.service_utilization
            .max(self.mean_queue_utilization)
            .max(self.backlog_pressure)
    }
}

/// A policy's verdict for one tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingDecision {
    /// Keep the current fleet.
    Hold,
    /// Provision this many additional nodes.
    ScaleOut(usize),
    /// Drain and decommission this many nodes.
    ScaleIn(usize),
}

impl ScalingDecision {
    /// Report form, e.g. `"scale_out(2)"`.
    pub fn describe(&self) -> String {
        match self {
            ScalingDecision::Hold => "hold".to_string(),
            ScalingDecision::ScaleOut(n) => format!("scale_out({n})"),
            ScalingDecision::ScaleIn(n) => format!("scale_in({n})"),
        }
    }
}

/// A scaling policy: observes the cluster once per control tick and emits
/// a decision. Implementations must be deterministic — same observation
/// sequence, same decisions — so experiment runs are reproducible.
pub trait ScalingPolicy {
    /// Observe one tick and decide.
    fn observe(&mut self, obs: &ClusterObservation) -> ScalingDecision;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Never scales — the paper's static provisioning, used as the E16
/// baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct StaticPolicy;

impl ScalingPolicy for StaticPolicy {
    fn observe(&mut self, _obs: &ClusterObservation) -> ScalingDecision {
        ScalingDecision::Hold
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

/// Tunables for [`HysteresisPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HysteresisConfig {
    /// Smoothed load above this arms scale-out.
    pub high_water: f64,
    /// Smoothed load below this arms scale-in.
    pub low_water: f64,
    /// Consecutive ticks beyond a mark before acting.
    pub k_ticks: u32,
    /// Ticks to hold after any action.
    pub cooldown_ticks: u32,
    /// EMA smoothing factor in `(0, 1]`; 1 = no smoothing.
    pub ema_alpha: f64,
    /// Nodes added per scale-out.
    pub scale_out_step: usize,
    /// Nodes removed per scale-in.
    pub scale_in_step: usize,
    /// Fleet floor.
    pub min_nodes: usize,
    /// Fleet ceiling.
    pub max_nodes: usize,
}

impl Default for HysteresisConfig {
    fn default() -> Self {
        HysteresisConfig {
            high_water: 0.75,
            low_water: 0.25,
            k_ticks: 3,
            cooldown_ticks: 5,
            ema_alpha: 0.5,
            scale_out_step: 2,
            scale_in_step: 1,
            min_nodes: 1,
            max_nodes: 64,
        }
    }
}

/// EMA + high/low water marks + K consecutive ticks + cooldown.
#[derive(Debug, Clone)]
pub struct HysteresisPolicy {
    cfg: HysteresisConfig,
    ema: Option<f64>,
    above: u32,
    below: u32,
    cooldown: u32,
}

impl HysteresisPolicy {
    /// Policy with the given tunables.
    ///
    /// # Panics
    /// Panics on inverted water marks, `ema_alpha` outside `(0, 1]`,
    /// `k_ticks == 0`, or an empty `[min_nodes, max_nodes]` interval.
    pub fn new(cfg: HysteresisConfig) -> Self {
        assert!(cfg.low_water < cfg.high_water, "water marks inverted");
        assert!(
            cfg.ema_alpha > 0.0 && cfg.ema_alpha <= 1.0,
            "alpha in (0,1]"
        );
        assert!(cfg.k_ticks >= 1, "k_ticks must be at least 1");
        assert!(cfg.min_nodes >= 1 && cfg.min_nodes <= cfg.max_nodes);
        HysteresisPolicy {
            cfg,
            ema: None,
            above: 0,
            below: 0,
            cooldown: 0,
        }
    }

    /// Current smoothed load (None before the first observation).
    pub fn smoothed(&self) -> Option<f64> {
        self.ema
    }
}

impl ScalingPolicy for HysteresisPolicy {
    fn observe(&mut self, obs: &ClusterObservation) -> ScalingDecision {
        let raw = obs.load_signal();
        let ema = match self.ema {
            None => raw,
            Some(prev) => self.cfg.ema_alpha * raw + (1.0 - self.cfg.ema_alpha) * prev,
        };
        self.ema = Some(ema);

        if ema > self.cfg.high_water {
            self.above += 1;
            self.below = 0;
        } else if ema < self.cfg.low_water {
            self.below += 1;
            self.above = 0;
        } else {
            self.above = 0;
            self.below = 0;
        }

        if self.cooldown > 0 {
            self.cooldown -= 1;
            return ScalingDecision::Hold;
        }

        if self.above >= self.cfg.k_ticks && obs.active_nodes < self.cfg.max_nodes {
            let step = self
                .cfg
                .scale_out_step
                .min(self.cfg.max_nodes - obs.active_nodes);
            self.above = 0;
            self.cooldown = self.cfg.cooldown_ticks;
            return ScalingDecision::ScaleOut(step);
        }
        if self.below >= self.cfg.k_ticks && obs.active_nodes > self.cfg.min_nodes {
            let step = self
                .cfg
                .scale_in_step
                .min(obs.active_nodes - self.cfg.min_nodes);
            self.below = 0;
            self.cooldown = self.cfg.cooldown_ticks;
            return ScalingDecision::ScaleIn(step);
        }
        ScalingDecision::Hold
    }

    fn name(&self) -> &'static str {
        "hysteresis"
    }
}

/// Per-region load sample for hot-region detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionLoad {
    /// Region id (numeric form).
    pub region: u64,
    /// Hosting node.
    pub node: u32,
    /// Fraction of the fleet's writes hitting this region, `[0, 1]`.
    pub write_share: f64,
}

/// A proposed region migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationProposal {
    /// Region to move.
    pub region: u64,
    /// Current host.
    pub from: u32,
    /// Suggested destination (the least-loaded node).
    pub to: u32,
}

/// Detects nodes whose aggregate write share exceeds `tolerance × fair`
/// (fair = 1/nodes) and proposes moving their hottest region to the
/// least-loaded node — the control plane's answer to residual key skew
/// left after the salting mitigation of §III-B.
#[derive(Debug, Clone, Copy)]
pub struct HotRegionDetector {
    /// A node is hot when its share exceeds `tolerance / nodes`.
    pub tolerance: f64,
}

impl Default for HotRegionDetector {
    fn default() -> Self {
        // 2× the fair share before we shuffle regions around.
        HotRegionDetector { tolerance: 2.0 }
    }
}

impl HotRegionDetector {
    /// Propose at most one migration per call (move, remeasure, repeat —
    /// migrations are not free). Deterministic: ties break toward the
    /// first node in `nodes` order and the first region in `loads` order.
    pub fn detect(&self, loads: &[RegionLoad], nodes: &[u32]) -> Option<MigrationProposal> {
        if nodes.len() < 2 || loads.is_empty() {
            return None;
        }
        let mut per_node: Vec<(u32, f64)> = nodes.iter().map(|&n| (n, 0.0)).collect();
        for l in loads {
            if let Some(e) = per_node.iter_mut().find(|(n, _)| *n == l.node) {
                e.1 += l.write_share;
            }
        }
        let fair = 1.0 / nodes.len() as f64;
        let &(hot_node, hot_share) = per_node
            .iter()
            .reduce(|a, b| if b.1 > a.1 { b } else { a })?;
        if hot_share <= self.tolerance * fair {
            return None;
        }
        let &(cold_node, _) = per_node
            .iter()
            .reduce(|a, b| if b.1 < a.1 { b } else { a })?;
        if cold_node == hot_node {
            return None;
        }
        // Hottest region on the hot node.
        let hottest = loads.iter().filter(|l| l.node == hot_node).reduce(|a, b| {
            if b.write_share > a.write_share {
                b
            } else {
                a
            }
        })?;
        Some(MigrationProposal {
            region: hottest.region,
            from: hot_node,
            to: cold_node,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(tick: u64, nodes: usize, load: f64) -> ClusterObservation {
        ClusterObservation {
            tick,
            active_nodes: nodes,
            mean_queue_utilization: load,
            service_utilization: 0.0,
            backlog_pressure: 0.0,
            crashed_nodes: 0,
        }
    }

    #[test]
    fn scale_out_needs_k_consecutive_ticks() {
        let mut p = HysteresisPolicy::new(HysteresisConfig {
            k_ticks: 3,
            ema_alpha: 1.0,
            cooldown_ticks: 0,
            ..HysteresisConfig::default()
        });
        assert_eq!(p.observe(&obs(0, 4, 0.9)), ScalingDecision::Hold);
        assert_eq!(p.observe(&obs(1, 4, 0.9)), ScalingDecision::Hold);
        // A dip resets the streak.
        assert_eq!(p.observe(&obs(2, 4, 0.5)), ScalingDecision::Hold);
        assert_eq!(p.observe(&obs(3, 4, 0.9)), ScalingDecision::Hold);
        assert_eq!(p.observe(&obs(4, 4, 0.9)), ScalingDecision::Hold);
        assert_eq!(p.observe(&obs(5, 4, 0.9)), ScalingDecision::ScaleOut(2));
    }

    #[test]
    fn cooldown_blocks_back_to_back_actions() {
        let mut p = HysteresisPolicy::new(HysteresisConfig {
            k_ticks: 1,
            cooldown_ticks: 3,
            ema_alpha: 1.0,
            ..HysteresisConfig::default()
        });
        assert_eq!(p.observe(&obs(0, 4, 0.9)), ScalingDecision::ScaleOut(2));
        // Still hot, but cooling down.
        assert_eq!(p.observe(&obs(1, 6, 0.9)), ScalingDecision::Hold);
        assert_eq!(p.observe(&obs(2, 6, 0.9)), ScalingDecision::Hold);
        assert_eq!(p.observe(&obs(3, 6, 0.9)), ScalingDecision::Hold);
        assert_eq!(p.observe(&obs(4, 6, 0.9)), ScalingDecision::ScaleOut(2));
    }

    #[test]
    fn oscillating_load_between_marks_never_flaps() {
        // Load oscillates inside the deadband: no decision ever fires.
        let mut p = HysteresisPolicy::new(HysteresisConfig {
            k_ticks: 2,
            cooldown_ticks: 2,
            ema_alpha: 0.5,
            ..HysteresisConfig::default()
        });
        for t in 0..100 {
            let load = if t % 2 == 0 { 0.35 } else { 0.65 };
            assert_eq!(p.observe(&obs(t, 4, load)), ScalingDecision::Hold);
        }
    }

    #[test]
    fn ema_smooths_single_tick_spikes() {
        let mut p = HysteresisPolicy::new(HysteresisConfig {
            k_ticks: 1,
            cooldown_ticks: 0,
            ema_alpha: 0.2,
            ..HysteresisConfig::default()
        });
        // One huge spike in otherwise calm load: EMA stays under the mark.
        assert_eq!(p.observe(&obs(0, 4, 0.4)), ScalingDecision::Hold);
        assert_eq!(p.observe(&obs(1, 4, 1.0)), ScalingDecision::Hold);
        assert!(p.smoothed().unwrap() < 0.75);
    }

    #[test]
    fn scale_in_respects_min_nodes() {
        let mut p = HysteresisPolicy::new(HysteresisConfig {
            k_ticks: 1,
            cooldown_ticks: 0,
            ema_alpha: 1.0,
            min_nodes: 2,
            ..HysteresisConfig::default()
        });
        assert_eq!(p.observe(&obs(0, 3, 0.05)), ScalingDecision::ScaleIn(1));
        assert_eq!(p.observe(&obs(1, 2, 0.05)), ScalingDecision::Hold);
    }

    #[test]
    fn scale_out_respects_max_nodes() {
        let mut p = HysteresisPolicy::new(HysteresisConfig {
            k_ticks: 1,
            cooldown_ticks: 0,
            ema_alpha: 1.0,
            max_nodes: 5,
            scale_out_step: 4,
            ..HysteresisConfig::default()
        });
        assert_eq!(p.observe(&obs(0, 4, 0.9)), ScalingDecision::ScaleOut(1));
        assert_eq!(p.observe(&obs(1, 5, 0.9)), ScalingDecision::Hold);
    }

    #[test]
    fn decisions_are_deterministic() {
        let run = || {
            let mut p = HysteresisPolicy::new(HysteresisConfig::default());
            (0..50)
                .map(|t| {
                    let load = 0.5 + 0.5 * ((t as f64) / 7.0).sin().abs();
                    p.observe(&obs(t, 4 + (t as usize % 3), load))
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn hot_region_detector_moves_hottest_region_to_coldest_node() {
        let det = HotRegionDetector::default();
        let loads = vec![
            RegionLoad {
                region: 1,
                node: 0,
                write_share: 0.5,
            },
            RegionLoad {
                region: 2,
                node: 0,
                write_share: 0.3,
            },
            RegionLoad {
                region: 3,
                node: 1,
                write_share: 0.15,
            },
            RegionLoad {
                region: 4,
                node: 2,
                write_share: 0.05,
            },
        ];
        let p = det.detect(&loads, &[0, 1, 2]).unwrap();
        assert_eq!(
            p,
            MigrationProposal {
                region: 1,
                from: 0,
                to: 2
            }
        );
    }

    #[test]
    fn balanced_cluster_yields_no_proposal() {
        let det = HotRegionDetector::default();
        let loads: Vec<RegionLoad> = (0..6)
            .map(|i| RegionLoad {
                region: i,
                node: (i % 3) as u32,
                write_share: 1.0 / 6.0,
            })
            .collect();
        assert!(det.detect(&loads, &[0, 1, 2]).is_none());
    }
}
