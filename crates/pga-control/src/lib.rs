//! Elastic control plane for the power-grid ingestion architecture.
//!
//! The paper provisions its HBase/OpenTSDB cluster statically (29 region
//! servers, §III-A) and demonstrates both linear scale-up (~11k samples
//! /sec/node, Fig. 2) and the failure mode of undersizing: unthrottled
//! writes overflow a region server's RPC queue until it crashes (§III-B).
//! This crate closes the loop between those two observations: it watches
//! per-node telemetry and grows or shrinks the cluster so the fleet stays
//! on the linear-scaling line without entering the overload regime.
//!
//! Three layers:
//!
//! * [`telemetry`] — a lock-free metrics registry embedded in each node,
//!   published as ephemeral znodes under `/stats` in the coordinator and
//!   scraped into a [`telemetry::FleetSnapshot`];
//! * [`policy`] — the pluggable [`policy::ScalingPolicy`] trait with a
//!   hysteresis default (EMA smoothing, high/low water marks, K
//!   consecutive ticks, cooldown) plus a hot-region detector proposing
//!   migrations;
//! * [`elastic`] — a deterministic discrete-time elastic-cluster simulator
//!   (the E16 vehicle) and [`controller`] — the same loop run against the
//!   real in-process [`pga_minibase::Master`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod elastic;
pub mod policy;
pub mod telemetry;

pub use controller::{ControlReport, ElasticController};
pub use elastic::{run_elastic, ElasticRunReport, ElasticSimConfig, ScaleEvent};
pub use policy::{
    ClusterObservation, HysteresisConfig, HysteresisPolicy, ScalingDecision, ScalingPolicy,
    StaticPolicy,
};
pub use telemetry::{FleetSnapshot, MetricsRegistry, NodeStats};
