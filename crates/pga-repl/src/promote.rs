//! Failover promotion policy.
//!
//! When a primary's server dies, the master promotes one surviving
//! follower. Correctness hinges on *which*: any acknowledged batch is
//! durable on at least `write_quorum - 1` followers, so the follower
//! with the highest applied sequence is guaranteed to hold every acked
//! write — promoting anything less-caught-up could silently lose acked
//! data. That guarantee leans on a second invariant: a follower's WAL is
//! always a **contiguous prefix** of the primary's numbering (ships that
//! would leave a hole are rejected as [`crate::ShipOutcome::Gap`] and
//! backfilled before the follower may vote), so an applied sequence is
//! proof of holding every batch at or below it, never just the highest
//! one that happened to arrive. Ties break toward the lowest node id so
//! the choice is deterministic across master replays.

use pga_cluster::NodeId;

/// Pick the follower to promote from `(node, applied_seq)` pairs of the
/// *surviving* followers. Returns `None` when no follower survives (the
/// region must fall back to single-copy lease recovery).
pub fn choose_promotee(survivors: &[(NodeId, u64)]) -> Option<NodeId> {
    survivors
        .iter()
        // max_by_key keeps the *last* max; order the key so higher seq
        // wins and, within a seq, the lower node id wins.
        .max_by_key(|(node, seq)| (*seq, std::cmp::Reverse(node.0)))
        .map(|(node, _)| *node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn picks_most_caught_up() {
        let survivors = [(NodeId(3), 10), (NodeId(1), 17), (NodeId(2), 4)];
        assert_eq!(choose_promotee(&survivors), Some(NodeId(1)));
    }

    #[test]
    fn ties_break_to_lowest_node_id() {
        let survivors = [(NodeId(9), 7), (NodeId(2), 7), (NodeId(5), 7)];
        assert_eq!(choose_promotee(&survivors), Some(NodeId(2)));
    }

    #[test]
    fn no_survivors_means_no_promotion() {
        assert_eq!(choose_promotee(&[]), None);
    }

    proptest! {
        /// The promotee is always a most-caught-up quorum member: no
        /// surviving follower has a strictly higher applied sequence,
        /// and among the equally-caught-up it is the lowest node id.
        #[test]
        fn promotee_is_always_most_caught_up(
            survivors in proptest::collection::vec((0u32..64, 0u64..1000), 1..12)
        ) {
            // A node hosts at most one follower of a region, so survivor
            // node ids are unique — dedupe through a map first.
            let survivors: Vec<(NodeId, u64)> = survivors
                .into_iter()
                .collect::<std::collections::BTreeMap<u32, u64>>()
                .into_iter()
                .map(|(n, s)| (NodeId(n), s))
                .collect();
            let chosen = choose_promotee(&survivors).expect("non-empty");
            let chosen_seq = survivors
                .iter()
                .find(|(n, _)| *n == chosen)
                .map(|(_, s)| *s)
                .expect("promotee must be a survivor");
            let max_seq = survivors.iter().map(|(_, s)| *s).max().unwrap();
            prop_assert_eq!(
                chosen_seq, max_seq,
                "promotee seq {} below max {}", chosen_seq, max_seq
            );
            let min_id_at_max = survivors
                .iter()
                .filter(|(_, s)| *s == max_seq)
                .map(|(n, _)| n.0)
                .min()
                .unwrap();
            prop_assert_eq!(chosen.0, min_id_at_max);
        }

        /// Deterministic under permutation: the same survivor set in any
        /// order yields the same promotee (master replays must agree).
        #[test]
        fn permutation_invariant(
            survivors in proptest::collection::vec((0u32..64, 0u64..1000), 1..10),
            rot in 0usize..10,
        ) {
            let a: Vec<(NodeId, u64)> = survivors
                .iter()
                .map(|&(n, s)| (NodeId(n), s))
                .collect();
            let mut b = a.clone();
            let len = b.len().max(1);
            b.rotate_left(rot % len);
            b.reverse();
            prop_assert_eq!(choose_promotee(&a), choose_promotee(&b));
        }
    }
}
