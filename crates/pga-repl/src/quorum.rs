//! Write-quorum accounting for one replicated put.
//!
//! The client-side replication driver creates one [`QuorumTracker`] per
//! put batch: the primary's `Appended` response is the first vote, each
//! follower `ShipAck` adds one, and any replica answering `Fenced`
//! (epoch mismatch) poisons the attempt — the writer's route is stale
//! and must be refreshed before retrying. The tracker is deliberately
//! pure state-machine: no channels, no clocks, so the fault simulator
//! and property tests can drive it through every interleaving.

use pga_cluster::NodeId;

use crate::Epoch;

/// Outcome of a replicated put attempt so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuorumDecision {
    /// Not enough durable copies yet; keep shipping.
    Pending,
    /// The write quorum is durable — the put may be acknowledged.
    Committed,
    /// A replica rejected the writer's epoch: the group has moved on
    /// (promotion happened). Carries the highest epoch seen so the
    /// writer can refresh its routes. The put MUST NOT be acked from
    /// this attempt.
    Fenced(Epoch),
}

/// Tracks durable-copy votes for a single put batch.
#[derive(Debug, Clone)]
pub struct QuorumTracker {
    need: usize,
    voters: Vec<NodeId>,
    fenced_at: Option<Epoch>,
}

impl QuorumTracker {
    /// Tracker requiring `write_quorum` durable copies (primary
    /// included). A quorum of 0 is treated as 1: the primary alone.
    pub fn new(write_quorum: usize) -> Self {
        QuorumTracker {
            need: write_quorum.max(1),
            voters: Vec::with_capacity(write_quorum.max(1)),
            fenced_at: None,
        }
    }

    /// Record that `node` has the batch durable in its WAL. Duplicate
    /// acks from the same node (retried ships) count once.
    pub fn record_ack(&mut self, node: NodeId) {
        if !self.voters.contains(&node) {
            self.voters.push(node);
        }
    }

    /// Record that `node` rejected the write with `their_epoch` — the
    /// writer is behind the group. The highest epoch seen is kept.
    pub fn record_fenced(&mut self, their_epoch: Epoch) {
        self.fenced_at = Some(match self.fenced_at {
            Some(e) => e.max(their_epoch),
            None => their_epoch,
        });
    }

    /// Durable copies recorded so far.
    pub fn votes(&self) -> usize {
        self.voters.len()
    }

    /// Current decision. Fencing dominates: once any replica has
    /// rejected the epoch, the attempt can never commit even if a quorum
    /// of stale replicas acked — the group membership the writer used is
    /// no longer authoritative.
    pub fn decision(&self) -> QuorumDecision {
        if let Some(e) = self.fenced_at {
            return QuorumDecision::Fenced(e);
        }
        if self.voters.len() >= self.need {
            QuorumDecision::Committed
        } else {
            QuorumDecision::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commits_at_quorum_not_before() {
        let mut t = QuorumTracker::new(2);
        assert_eq!(t.decision(), QuorumDecision::Pending);
        t.record_ack(NodeId(0));
        assert_eq!(t.decision(), QuorumDecision::Pending);
        t.record_ack(NodeId(2));
        assert_eq!(t.decision(), QuorumDecision::Committed);
    }

    #[test]
    fn duplicate_acks_count_once() {
        let mut t = QuorumTracker::new(2);
        t.record_ack(NodeId(1));
        t.record_ack(NodeId(1));
        t.record_ack(NodeId(1));
        assert_eq!(t.votes(), 1);
        assert_eq!(t.decision(), QuorumDecision::Pending);
    }

    #[test]
    fn fencing_dominates_even_after_quorum_votes() {
        let mut t = QuorumTracker::new(2);
        t.record_ack(NodeId(0));
        t.record_ack(NodeId(1));
        assert_eq!(t.decision(), QuorumDecision::Committed);
        t.record_fenced(7);
        assert_eq!(t.decision(), QuorumDecision::Fenced(7));
        // Later acks cannot un-fence.
        t.record_ack(NodeId(2));
        assert_eq!(t.decision(), QuorumDecision::Fenced(7));
    }

    #[test]
    fn highest_fencing_epoch_wins() {
        let mut t = QuorumTracker::new(3);
        t.record_fenced(4);
        t.record_fenced(2);
        assert_eq!(t.decision(), QuorumDecision::Fenced(4));
    }

    #[test]
    fn zero_quorum_degenerates_to_primary_only() {
        let mut t = QuorumTracker::new(0);
        assert_eq!(t.decision(), QuorumDecision::Pending);
        t.record_ack(NodeId(5));
        assert_eq!(t.decision(), QuorumDecision::Committed);
    }
}
