//! Replication-lag and failover bookkeeping.
//!
//! The client-side replication driver and the master both feed this
//! book; the control plane snapshots it into `NodeStats` so fleet
//! dashboards can show per-node replication health (max follower lag,
//! failovers performed, fencing rejections observed).

use std::collections::BTreeMap;

use parking_lot_free::Mutex;

/// `pga-repl` deliberately has no parking_lot dependency; a std mutex
/// poisons on panic, which we treat as unreachable (no lock-holding
/// code path panics) by taking the inner value either way.
mod parking_lot_free {
    /// Minimal non-poisoning wrapper over [`std::sync::Mutex`].
    #[derive(Debug, Default)]
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// Wrap a value.
        pub fn new(v: T) -> Self {
            Mutex(std::sync::Mutex::new(v))
        }

        /// Lock, recovering the guard from a poisoned lock.
        pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
            match self.0.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
        }
    }
}

/// Point-in-time replication health, cheap to copy into telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct LagSnapshot {
    /// Largest follower lag (in WAL batches) across tracked regions.
    pub max_lag_batches: u64,
    /// Regions currently tracked with at least one follower.
    pub replicated_regions: u64,
    /// Primary promotions performed since startup.
    pub failovers: u64,
    /// Writes or ships rejected because the sender's epoch was stale.
    pub fence_rejections: u64,
    /// Scans served by followers under the staleness bound.
    pub follower_reads: u64,
    /// Scans that hedged to a replica after primary silence.
    pub hedged_scans: u64,
}

impl LagSnapshot {
    /// Combine two snapshots: counters add, worst lag takes the max.
    /// Used to fold per-client lag books into one fleet-wide view.
    pub fn merge(&self, other: &LagSnapshot) -> LagSnapshot {
        LagSnapshot {
            max_lag_batches: self.max_lag_batches.max(other.max_lag_batches),
            replicated_regions: self.replicated_regions.max(other.replicated_regions),
            failovers: self.failovers + other.failovers,
            fence_rejections: self.fence_rejections + other.fence_rejections,
            follower_reads: self.follower_reads + other.follower_reads,
            hedged_scans: self.hedged_scans + other.hedged_scans,
        }
    }
}

#[derive(Debug, Default)]
struct BookInner {
    /// region id → (primary last seq, min follower applied seq).
    lags: BTreeMap<u64, (u64, u64)>,
    failovers: u64,
    fence_rejections: u64,
    follower_reads: u64,
    hedged_scans: u64,
}

/// Mutable replication-health ledger shared between the replication
/// driver (lag observations, fencing) and the master (failovers).
#[derive(Debug, Default)]
pub struct LagBook {
    inner: Mutex<BookInner>,
}

impl LagBook {
    /// Empty book.
    pub fn new() -> Self {
        LagBook {
            inner: Mutex::new(BookInner::default()),
        }
    }

    /// Record the latest (primary sequence, slowest-follower applied
    /// sequence) observation for `region`.
    pub fn observe(&self, region: u64, primary_seq: u64, min_applied_seq: u64) {
        let mut inner = self.inner.lock();
        inner.lags.insert(region, (primary_seq, min_applied_seq));
    }

    /// Forget a region (unassigned or collapsed to single-copy).
    pub fn forget(&self, region: u64) {
        self.inner.lock().lags.remove(&region);
    }

    /// Count a primary promotion.
    pub fn record_failover(&self) {
        self.inner.lock().failovers += 1;
    }

    /// Count an epoch-fencing rejection observed by a writer.
    pub fn record_fence_rejection(&self) {
        self.inner.lock().fence_rejections += 1;
    }

    /// Count a follower-served scan.
    pub fn record_follower_read(&self) {
        self.inner.lock().follower_reads += 1;
    }

    /// Count a hedged scan.
    pub fn record_hedged_scan(&self) {
        self.inner.lock().hedged_scans += 1;
    }

    /// Snapshot for telemetry export.
    pub fn snapshot(&self) -> LagSnapshot {
        let inner = self.inner.lock();
        LagSnapshot {
            max_lag_batches: inner
                .lags
                .values()
                .map(|&(p, a)| p.saturating_sub(a))
                .max()
                .unwrap_or(0),
            replicated_regions: inner.lags.len() as u64,
            failovers: inner.failovers,
            fence_rejections: inner.fence_rejections,
            follower_reads: inner.follower_reads,
            hedged_scans: inner.hedged_scans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reports_worst_lag() {
        let book = LagBook::new();
        book.observe(1, 10, 9);
        book.observe(2, 20, 13);
        book.observe(3, 5, 5);
        let snap = book.snapshot();
        assert_eq!(snap.max_lag_batches, 7);
        assert_eq!(snap.replicated_regions, 3);
    }

    #[test]
    fn counters_accumulate_and_forget_drops_lag() {
        let book = LagBook::new();
        book.observe(1, 4, 0);
        book.record_failover();
        book.record_failover();
        book.record_fence_rejection();
        book.record_follower_read();
        book.record_hedged_scan();
        book.forget(1);
        let snap = book.snapshot();
        assert_eq!(snap.max_lag_batches, 0);
        assert_eq!(snap.replicated_regions, 0);
        assert_eq!(snap.failovers, 2);
        assert_eq!(snap.fence_rejections, 1);
        assert_eq!(snap.follower_reads, 1);
        assert_eq!(snap.hedged_scans, 1);
    }

    #[test]
    fn observation_overwrites_stale_entry() {
        let book = LagBook::new();
        book.observe(7, 10, 2);
        book.observe(7, 10, 10);
        assert_eq!(book.snapshot().max_lag_batches, 0);
    }
}
