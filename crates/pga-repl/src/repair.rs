//! Repair-source selection for scrub-driven corruption repair.
//!
//! When a quarantined span needs an authoritative copy, the scrubber can
//! fetch it from the primary or from any follower. This module ranks the
//! candidates: the primary first (it defines the replication group's
//! truth), then followers by how caught-up they are — a trailing follower
//! may simply not hold the sealed bytes yet, so the most-advanced copy is
//! the best fallback. The fetch itself is epoch-fenced at the replica
//! (like `WalTail`), so a deposed primary can never serve a stale span as
//! authoritative; this ranking is pure preference, not a safety boundary.

/// One candidate copy of a region, by opaque node id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairSource {
    /// Node hosting the copy.
    pub node: u64,
    /// Applied WAL sequence the copy reported.
    pub applied_seq: u64,
    /// Whether this copy is the current primary.
    pub primary: bool,
}

/// Rank repair candidates: primary first, then followers by descending
/// applied sequence; ties break on node id for determinism. The input
/// order never matters.
pub fn rank_repair_sources(mut sources: Vec<RepairSource>) -> Vec<RepairSource> {
    sources.sort_by_key(|s| (!s.primary, std::cmp::Reverse(s.applied_seq), s.node));
    sources
}

/// How many verified-install attempts a single scrub tick may spend on
/// one quarantined span before deferring to the next tick. Bounded so a
/// copy that keeps failing verification (persistent bit-rot at the
/// source) cannot stall the rest of the repair queue.
pub const MAX_REPAIR_ATTEMPTS_PER_TICK: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;

    fn src(node: u64, applied_seq: u64, primary: bool) -> RepairSource {
        RepairSource {
            node,
            applied_seq,
            primary,
        }
    }

    #[test]
    fn primary_ranks_first_even_when_behind() {
        let ranked = rank_repair_sources(vec![src(2, 90, false), src(0, 10, true)]);
        assert_eq!(ranked[0].node, 0);
        assert_eq!(ranked[1].node, 2);
    }

    #[test]
    fn followers_rank_by_applied_seq_descending() {
        let ranked = rank_repair_sources(vec![
            src(3, 5, false),
            src(1, 40, false),
            src(2, 40, false),
            src(4, 80, false),
        ]);
        let order: Vec<u64> = ranked.iter().map(|s| s.node).collect();
        assert_eq!(order, vec![4, 1, 2, 3]);
    }

    #[test]
    fn ranking_is_input_order_independent() {
        let a = rank_repair_sources(vec![src(1, 7, false), src(2, 7, false), src(0, 3, true)]);
        let b = rank_repair_sources(vec![src(2, 7, false), src(0, 3, true), src(1, 7, false)]);
        assert_eq!(a, b);
    }
}
