//! Replication tuning knobs.

use serde::{Deserialize, Serialize};

/// Replication settings for the storage tier. The default is `factor: 1`
/// — no followers, byte-identical behaviour to the pre-replication
/// stack — so configs serialized before this crate existed keep working
/// through `#[serde(default)]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicationConfig {
    /// Total copies of each region (primary + followers). `1` disables
    /// replication entirely.
    pub factor: usize,
    /// Copies that must have a batch durable in their WAL before the put
    /// is acknowledged. `0` means "majority of `factor`", the safe
    /// default that tolerates `factor - quorum` replica losses without
    /// losing acked data.
    pub write_quorum: usize,
    /// A follower may serve a scan only when its applied sequence trails
    /// the primary's last sequence by at most this many WAL batches.
    pub follower_read_max_lag: u64,
    /// Hedge a shard scan to a replica when the primary has not answered
    /// within this many milliseconds — set this near the fleet's observed
    /// scan p99 so hedges fire only on genuine stragglers.
    pub hedge_delay_ms: u64,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            factor: 1,
            write_quorum: 0,
            follower_read_max_lag: 4,
            hedge_delay_ms: 40,
        }
    }
}

impl ReplicationConfig {
    /// The effective write quorum: the explicit setting, or a majority of
    /// `factor` when unset. Always at least 1 and at most `factor`.
    pub fn effective_quorum(&self) -> usize {
        let q = if self.write_quorum == 0 {
            self.factor / 2 + 1
        } else {
            self.write_quorum
        };
        q.clamp(1, self.factor.max(1))
    }

    /// Followers per region implied by the factor.
    pub fn followers(&self) -> usize {
        self.factor.saturating_sub(1)
    }

    /// Whether replication is active at all.
    pub fn replicated(&self) -> bool {
        self.factor > 1
    }

    /// Range checks. A quorum larger than the factor could never be met
    /// (every put would hang un-acked), and a quorum of 1 at factor ≥ 2
    /// would ack writes no follower has — a deposed primary could then
    /// lose them, so we refuse that too.
    pub fn validate(&self) -> Result<(), String> {
        if self.factor == 0 {
            return Err("replication factor must be at least 1".into());
        }
        if self.write_quorum > self.factor {
            return Err(format!(
                "write quorum {} exceeds replication factor {}",
                self.write_quorum, self.factor
            ));
        }
        if self.factor > 1 && self.effective_quorum() < 2 {
            return Err(format!(
                "write quorum {} at factor {} would ack writes held only by \
                 the primary; use quorum >= 2 or 0 for majority",
                self.write_quorum, self.factor
            ));
        }
        if self.hedge_delay_ms == 0 {
            return Err("hedge delay must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_single_copy_and_valid() {
        let c = ReplicationConfig::default();
        assert_eq!(c.factor, 1);
        assert!(!c.replicated());
        assert_eq!(c.effective_quorum(), 1);
        assert_eq!(c.followers(), 0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn majority_quorum_by_factor() {
        for (factor, want) in [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3)] {
            let c = ReplicationConfig {
                factor,
                ..ReplicationConfig::default()
            };
            assert_eq!(c.effective_quorum(), want, "factor {factor}");
            assert!(c.validate().is_ok(), "factor {factor}");
        }
    }

    #[test]
    fn validation_rejects_unsafe_quorums() {
        let mut c = ReplicationConfig {
            factor: 3,
            ..ReplicationConfig::default()
        };
        c.write_quorum = 4; // unreachable quorum
        assert!(c.validate().is_err());
        c.write_quorum = 1; // primary-only ack at RF 3
        assert!(c.validate().is_err());
        c.write_quorum = 2;
        assert!(c.validate().is_ok());
        c.factor = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn hedge_delay_must_be_positive() {
        let c = ReplicationConfig {
            hedge_delay_ms: 0,
            ..ReplicationConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn serde_defaults_fill_missing_fields() {
        // A config serialized before replication existed deserializes to
        // the single-copy default when the whole section is absent; the
        // platform wires this with #[serde(default)] on its field.
        let c: ReplicationConfig = serde_json::from_str(
            r#"{"factor":3,"write_quorum":0,"follower_read_max_lag":8,"hedge_delay_ms":25}"#,
        )
        .unwrap();
        assert_eq!(c.factor, 3);
        assert_eq!(c.follower_read_max_lag, 8);
        let json = serde_json::to_string(&c).unwrap();
        let back: ReplicationConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
