//! Region replication protocol for the minibase storage tier.
//!
//! The source paper's storage substrate descends from HBase/OpenTSDB,
//! where each region is served by exactly one server: a crash means the
//! region is unavailable until the master's lease recovery notices, and
//! the always-on dashboards the paper assumes go dark for the whole lease
//! window. This crate holds the *protocol* side of the fix — the pure,
//! mechanism-free rules for quorum-acked WAL shipping, epoch fencing,
//! bounded-staleness follower reads, hedged scans, and failover
//! promotion. The *mechanism* (region servers that apply shipped WAL,
//! clients that collect quorums, a master that promotes) lives in
//! `pga-minibase`, which depends on this crate; keeping the protocol
//! dependency-free lets the master, the client, and the fault simulator
//! all evaluate the same rules without import cycles.
//!
//! Protocol summary:
//!
//! * Every replicated region has one **primary** and `factor - 1`
//!   **followers**, each on a distinct server. The region's route entry
//!   carries an **epoch**; every write and ship is stamped with the epoch
//!   the writer believes is current, and replicas reject mismatches.
//! * A put is acknowledged only once a **write quorum** (majority of
//!   `factor`) has the batch durable in its WAL — the primary's own
//!   append plus `write_quorum - 1` follower ship-acks, tracked by
//!   [`QuorumTracker`].
//! * On primary failure the master promotes the **most-caught-up**
//!   surviving follower ([`choose_promotee`]) and bumps the epoch, so a
//!   deposed primary's acks can never reach quorum again (fencing).
//! * Followers serve **bounded-staleness reads** ([`FollowerReadPolicy`]):
//!   a scan is routed to a follower only when its applied sequence trails
//!   the primary by at most a configured number of WAL batches.
//! * Scatter-gather scans **hedge** ([`HedgePolicy`]): when the primary
//!   has not answered within a p99-derived delay, the same scan is sent
//!   to a replica and the first answer wins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lag;
pub mod promote;
pub mod quorum;
pub mod read;
pub mod repair;

pub use config::ReplicationConfig;
pub use lag::{LagBook, LagSnapshot};
pub use promote::choose_promotee;
pub use quorum::{QuorumDecision, QuorumTracker};
pub use read::{FollowerReadPolicy, HedgePolicy};
pub use repair::{rank_repair_sources, RepairSource, MAX_REPAIR_ATTEMPTS_PER_TICK};

/// Epoch (generation) number of a region's replication group. Bumped on
/// every promotion; replicas reject writes and ships stamped with any
/// other epoch, which fences a deposed primary out of the quorum.
pub type Epoch = u64;

/// A replica's role within a region's replication group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ReplicaRole {
    /// Serves writes, assigns WAL sequence ids, and is the scan authority.
    Primary,
    /// Applies shipped WAL and serves bounded-staleness reads.
    Follower,
}

/// Outcome of applying a primary-assigned WAL batch on a replica.
///
/// The promotion rule ([`choose_promotee`]) trusts a replica's applied
/// sequence as proof it holds *every* batch up to that sequence, so a
/// follower WAL must stay a contiguous prefix of the primary's: a ship
/// that would leave a hole is rejected as [`ShipOutcome::Gap`] and the
/// shipper backfills the missing batches before the follower may vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShipOutcome {
    /// The batch extended the replica's WAL (`seq == last + 1`).
    Applied,
    /// Duplicate or stale ship (`seq <= last`) — already durable here,
    /// so the shipper may still count the replica toward the quorum.
    Stale,
    /// The ship would leave a sequence hole (`seq > last + 1`); nothing
    /// was applied. The shipper must backfill `(last, seq)` from the
    /// primary's WAL tail before this replica can vote.
    Gap,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_roundtrip_through_serde() {
        for role in [ReplicaRole::Primary, ReplicaRole::Follower] {
            let json = serde_json::to_string(&role).unwrap();
            let back: ReplicaRole = serde_json::from_str(&json).unwrap();
            assert_eq!(role, back);
        }
    }
}
