//! Read-side policies: bounded-staleness follower reads and hedged scans.

use serde::{Deserialize, Serialize};

/// Decides whether a follower is fresh enough to serve a scan.
///
/// Staleness is measured in WAL *batches*, not wall time: the follower
/// reports the last sequence it applied, the primary reports the last
/// sequence it assigned, and the gap is the number of shipped batches
/// the follower has not yet replayed. Batch lag is exact under the
/// deterministic simulator (no clock needed) and translates directly to
/// "how many acked writes might this read miss".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FollowerReadPolicy {
    /// Maximum batches a follower may trail the primary and still serve.
    pub max_lag: u64,
}

impl FollowerReadPolicy {
    /// `true` when a follower at `applied_seq` may answer a scan while
    /// the primary is at `primary_seq`. A follower *ahead* of the last
    /// sequence the reader observed (a promotion raced the read) is
    /// trivially fresh.
    pub fn allow(&self, primary_seq: u64, applied_seq: u64) -> bool {
        primary_seq.saturating_sub(applied_seq) <= self.max_lag
    }
}

/// Hedged-scan trigger: when the primary has not answered within
/// `delay_ms`, re-issue the scan to a follower and take the first
/// answer. The delay should sit near the fleet's scan p99 so hedges
/// fire on genuine stragglers (a crashed or overloaded primary), not on
/// the latency body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HedgePolicy {
    /// Milliseconds to wait on the primary before hedging.
    pub delay_ms: u64,
}

impl HedgePolicy {
    /// `true` when `elapsed_ms` of silence from the primary justifies
    /// hedging to a replica.
    pub fn should_hedge(&self, elapsed_ms: u64) -> bool {
        elapsed_ms >= self.delay_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn follower_read_allows_within_lag_bound() {
        let p = FollowerReadPolicy { max_lag: 3 };
        assert!(p.allow(10, 10));
        assert!(p.allow(10, 7));
        assert!(!p.allow(10, 6));
        // Follower ahead of the observed primary seq: fresh.
        assert!(p.allow(5, 9));
    }

    #[test]
    fn zero_lag_means_fully_caught_up_only() {
        let p = FollowerReadPolicy { max_lag: 0 };
        assert!(p.allow(4, 4));
        assert!(!p.allow(4, 3));
    }

    #[test]
    fn hedge_fires_at_delay() {
        let h = HedgePolicy { delay_ms: 40 };
        assert!(!h.should_hedge(0));
        assert!(!h.should_hedge(39));
        assert!(h.should_hedge(40));
        assert!(h.should_hedge(400));
    }
}
