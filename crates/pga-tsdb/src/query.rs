//! Query results: series assembly, tag filtering, downsampling — plus the
//! block-aware columnar assembly both `Tsd::query` and `pga-query` share.

use std::collections::BTreeMap;

use pga_minibase::KeyValue;
use serde::{Deserialize, Serialize};

use crate::block::{self, BlockError};
use crate::codec::KeyCodec;

/// One timestamped value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataPoint {
    /// Seconds since epoch.
    pub timestamp: u64,
    /// Value.
    pub value: f64,
}

/// A series: one tag combination of one metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Metric name.
    pub metric: String,
    /// Sorted tag pairs identifying the series.
    pub tags: BTreeMap<String, String>,
    /// Points in ascending timestamp order.
    pub points: Vec<DataPoint>,
}

impl TimeSeries {
    /// Latest point, if any.
    pub fn last(&self) -> Option<DataPoint> {
        self.points.last().copied()
    }

    /// Downsample into fixed windows of `interval` seconds using `agg`.
    /// Window boundaries are anchored to epoch-aligned multiples of the
    /// interval (never to the first datapoint); empty windows produce no
    /// point (OpenTSDB semantics).
    ///
    /// The fold is keyed by window start, so a window revisited
    /// non-contiguously (unsorted input, or duplicate timestamps arriving
    /// out of order) accumulates into one bucket instead of emitting the
    /// same window twice. For input already in timestamp order each
    /// window's values are accumulated in that order, which keeps the
    /// floating-point sum bitwise reproducible — the rollup tiers in
    /// `pga-query` rely on that for their byte-for-byte cross-check.
    pub fn downsample(&self, interval: u64, agg: Aggregator) -> TimeSeries {
        assert!(interval > 0, "interval must be positive");
        let mut windows: BTreeMap<u64, AggState> = BTreeMap::new();
        for p in &self.points {
            let w = p.timestamp - p.timestamp % interval;
            windows.entry(w).or_insert_with(AggState::new).add(p.value);
        }
        TimeSeries {
            metric: self.metric.clone(),
            tags: self.tags.clone(),
            points: windows
                .into_iter()
                .map(|(timestamp, acc)| DataPoint {
                    timestamp,
                    value: acc.finish(agg),
                })
                .collect(),
        }
    }
}

/// Downsampling / aggregation operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregator {
    /// Arithmetic mean.
    Avg,
    /// Sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Point count.
    Count,
}

struct AggState {
    sum: f64,
    min: f64,
    max: f64,
    count: u64,
}

impl AggState {
    fn new() -> Self {
        AggState {
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            count: 0,
        }
    }

    fn add(&mut self, v: f64) {
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.count += 1;
    }

    fn finish(&self, agg: Aggregator) -> f64 {
        match agg {
            Aggregator::Avg => self.sum / self.count as f64,
            Aggregator::Sum => self.sum,
            Aggregator::Min => self.min,
            Aggregator::Max => self.max,
            Aggregator::Count => self.count as f64,
        }
    }
}

/// Aggregate multiple series into one (OpenTSDB's cross-series
/// aggregator): at every timestamp where *any* input series has a point,
/// combine the values present with `agg`. (OpenTSDB linearly interpolates
/// missing points before aggregating; with the platform's regular 1 Hz
/// sampling the distinction never arises, so present-value aggregation is
/// used.) The output's tags are the pairs common to every input; returns
/// `None` for an empty input.
pub fn aggregate_series(series: &[TimeSeries], agg: Aggregator) -> Option<TimeSeries> {
    let first = series.first()?;
    let mut tags = first.tags.clone();
    for s in &series[1..] {
        tags.retain(|k, v| s.tags.get(k) == Some(v));
    }
    let mut buckets: BTreeMap<u64, AggState> = BTreeMap::new();
    for s in series {
        for p in &s.points {
            buckets
                .entry(p.timestamp)
                .or_insert_with(AggState::new)
                .add(p.value);
        }
    }
    Some(TimeSeries {
        metric: first.metric.clone(),
        tags,
        points: buckets
            .into_iter()
            .map(|(timestamp, st)| DataPoint {
                timestamp,
                value: st.finish(agg),
            })
            .collect(),
    })
}

/// A series in columnar form: flat timestamp/value slices, ready for
/// vectorized batch kernels (`pga-linalg` tiles, `pga-detect` batch
/// evaluation) without per-point materialization.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSeries {
    /// Metric name.
    pub metric: String,
    /// Sorted tag pairs identifying the series.
    pub tags: BTreeMap<String, String>,
    /// Timestamps, strictly ascending.
    pub timestamps: Vec<u64>,
    /// Values, parallel to `timestamps`.
    pub values: Vec<f64>,
}

impl ColumnSeries {
    /// Convert to the row-of-structs [`TimeSeries`] form.
    pub fn to_series(&self) -> TimeSeries {
        TimeSeries {
            metric: self.metric.clone(),
            tags: self.tags.clone(),
            points: self
                .timestamps
                .iter()
                .zip(self.values.iter())
                .map(|(&timestamp, &value)| DataPoint { timestamp, value })
                .collect(),
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// True when the series holds no points.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }
}

/// Columns under assembly: codec-order tag pairs → (timestamps, values),
/// accumulated across per-salt scans before [`finish_columns`].
pub type AssembledColumns = BTreeMap<Vec<(String, String)>, (Vec<u64>, Vec<f64>)>;

/// A sealed block that failed CRC/decode during assembly, reported by
/// [`assemble_columns_salvage`] instead of aborting the query. Carries
/// everything the salvage layer needs to quarantine the block and re-read
/// its span from another replica.
#[derive(Debug, Clone)]
pub struct CorruptBlock {
    /// Row key holding the corrupt block cell.
    pub row: Vec<u8>,
    /// Qualifier of the block cell.
    pub qualifier: Vec<u8>,
    /// Codec-order tag pairs of the series (for re-attachment).
    pub tags: Vec<(String, String)>,
    /// Row base time — the block's span is `[base, base + row_span)`.
    pub base: u64,
    /// The typed decode failure.
    pub error: BlockError,
}

/// Assemble scanned cells — sealed blocks **and** raw cells — into one
/// columnar series per tag combination, windowed to `[start, end]` and
/// filtered by `filter`.
///
/// Mirrors the legacy cell-by-cell path exactly (the differential suite
/// pins this byte-for-byte): compacted-blob columns (`0xFFFF`) and rollup
/// qualifiers are skipped, duplicate timestamps keep the newest-version
/// cell, and within one row a raw cell beats a sealed block at the same
/// timestamp (late-arriving raw data is newer than the seal). A sealed
/// block that fails to decode surfaces as a typed [`BlockError`] — never
/// a silent wrong answer.
///
/// `cells` must arrive in storage scan order (row asc, qualifier asc,
/// version desc), the order MiniBase scans already produce.
pub fn assemble_columns(
    codec: &KeyCodec,
    cells: &[KeyValue],
    filter: &QueryFilter,
    start: u64,
    end: u64,
    out: &mut AssembledColumns,
) -> Result<(), BlockError> {
    assemble_columns_inner(codec, cells, filter, start, end, out, None)
}

/// [`assemble_columns`] in salvage mode: a block that fails CRC/decode is
/// reported in `corrupt` (with its row, tags and span) instead of
/// aborting the whole assembly, and the row's raw cells still contribute.
/// The caller owns the consequence: quarantine the block, re-read its
/// span from a healthy replica, or surface a typed partial — never
/// silently drop it.
pub fn assemble_columns_salvage(
    codec: &KeyCodec,
    cells: &[KeyValue],
    filter: &QueryFilter,
    start: u64,
    end: u64,
    out: &mut AssembledColumns,
    corrupt: &mut Vec<CorruptBlock>,
) {
    // With a corrupt sink installed, assembly never returns an error.
    let _ = assemble_columns_inner(codec, cells, filter, start, end, out, Some(corrupt));
}

fn assemble_columns_inner(
    codec: &KeyCodec,
    cells: &[KeyValue],
    filter: &QueryFilter,
    start: u64,
    end: u64,
    out: &mut AssembledColumns,
    mut corrupt: Option<&mut Vec<CorruptBlock>>,
) -> Result<(), BlockError> {
    let mut i = 0;
    while i < cells.len() {
        let Some(row) = cells.get(i).map(|kv| &kv.row) else {
            break;
        };
        let mut j = i;
        while cells.get(j).map(|kv| &kv.row) == Some(row) {
            j += 1;
        }
        let group = cells.get(i..j).unwrap_or(&[]);
        assemble_row(
            codec,
            group,
            filter,
            start,
            end,
            out,
            corrupt.as_deref_mut(),
        )?;
        i = j;
    }
    Ok(())
}

/// One row's worth of [`assemble_columns`].
fn assemble_row(
    codec: &KeyCodec,
    group: &[KeyValue],
    filter: &QueryFilter,
    start: u64,
    end: u64,
    out: &mut AssembledColumns,
    mut corrupt: Option<&mut Vec<CorruptBlock>>,
) -> Result<(), BlockError> {
    let Some(first) = group.first() else {
        return Ok(());
    };
    let Some((_metric, tags, base)) = codec.decode_row(&first.row) else {
        return Ok(()); // unknown UIDs / malformed row: same skip as legacy
    };
    let tag_map: BTreeMap<String, String> = tags.iter().cloned().collect();
    if !filter.matches(&tag_map) {
        return Ok(());
    }

    // Raw cells: qualifier ascending already, keep the newest version per
    // qualifier (the first seen, since versions sort descending).
    let mut raw: Vec<(u64, f64)> = Vec::new();
    let mut blocks: Vec<&KeyValue> = Vec::new();
    let mut last_qual: Option<&[u8]> = None;
    for cell in group {
        if last_qual == Some(&cell.qualifier[..]) {
            continue; // older version of a cell we already took
        }
        last_qual = Some(&cell.qualifier[..]);
        if block::is_block_qualifier(&cell.qualifier) {
            blocks.push(cell);
        } else if cell.qualifier.len() == 2 && cell.qualifier[..] != [0xFF, 0xFF] {
            let Some(q) = cell.qualifier.get(..2) else {
                continue;
            };
            let offset = u16::from_be_bytes([q[0], q[1]]) as u64;
            let Some(v) = cell.value.get(..8).filter(|_| cell.value.len() == 8) else {
                continue; // malformed value: legacy decode skips it too
            };
            let mut v8 = [0u8; 8];
            v8.copy_from_slice(v);
            raw.push((base + offset, f64::from_be_bytes(v8)));
        }
        // Anything else (0xFFFF blob, rollup qualifiers) carries no raw data.
    }

    // Sealed blocks: decode each into flat slices. Multiple block cells on
    // one row should not happen (compaction folds them), but merge
    // defensively, newest qualifier-version last so it wins collisions.
    let row_span = codec.config().row_span_secs;
    let mut block_points: Vec<(u64, f64)> = Vec::new();
    for cell in &blocks {
        // A sealed block only ever holds points from its own row's span,
        // and the row key is not part of the block payload — so a row
        // wholly outside `[start, end]` can be skipped without touching
        // the block bytes at all, corrupt or not.
        if base > end || base.saturating_add(row_span) <= start {
            continue;
        }
        // Within an overlapping row, the header's min/max bounds prune
        // further — but the peek alone is advisory (a flipped header byte
        // could hide in-window points), so an out-of-window verdict only
        // counts after the whole-buffer CRC authenticates it. A block
        // failing that CRC falls through to the decode below, which
        // surfaces the typed error / salvage path.
        if let Ok((_, min_ts, max_ts)) = block::peek_header(&cell.value) {
            if (max_ts < start || min_ts > end) && block::verify_block(&cell.value).is_ok() {
                continue;
            }
        }
        let decoded = match block::decode_block(&cell.value) {
            Ok(d) => d,
            Err(error) => match corrupt.as_deref_mut() {
                Some(sink) => {
                    sink.push(CorruptBlock {
                        row: first.row.to_vec(),
                        qualifier: cell.qualifier.to_vec(),
                        tags: tags.clone(),
                        base,
                        error,
                    });
                    continue; // raw cells still answer; caller salvages the rest
                }
                None => return Err(error),
            },
        };
        if block_points.is_empty() {
            block_points = decoded
                .timestamps
                .iter()
                .copied()
                .zip(decoded.values.iter().copied())
                .collect();
        } else {
            block_points.extend(
                decoded
                    .timestamps
                    .iter()
                    .copied()
                    .zip(decoded.values.iter().copied()),
            );
            block_points.sort_by_key(|&(ts, _)| ts);
            block_points.dedup_by_key(|&mut (ts, _)| ts);
        }
    }

    // Merge raw over blocks: both ascending; raw wins at equal timestamps.
    let mut merged: Vec<(u64, f64)> = Vec::with_capacity(raw.len() + block_points.len());
    let mut ri = raw.iter().peekable();
    let mut bi = block_points.iter().peekable();
    loop {
        match (ri.peek(), bi.peek()) {
            (Some(&&(rts, rv)), Some(&&(bts, _))) if rts <= bts => {
                if rts == bts {
                    bi.next(); // raw supersedes the sealed point
                }
                merged.push((rts, rv));
                ri.next();
            }
            (_, Some(&&(bts, bv))) => {
                merged.push((bts, bv));
                bi.next();
            }
            (Some(&&(rts, rv)), None) => {
                merged.push((rts, rv));
                ri.next();
            }
            (None, None) => break,
        }
    }
    merged.retain(|&(ts, _)| ts >= start && ts <= end);
    if merged.is_empty() {
        return Ok(()); // never emit an empty series (legacy parity)
    }
    let (timestamps, values) = out.entry(tags).or_default();
    for (ts, v) in merged {
        timestamps.push(ts);
        values.push(v);
    }
    Ok(())
}

/// Finalize assembled columns into [`ColumnSeries`], enforcing the same
/// sort + timestamp-dedup the legacy path applies (keeps the first point
/// in pre-sort order for duplicate timestamps — the newest-version cell).
pub fn finish_columns(metric: &str, assembled: AssembledColumns) -> Vec<ColumnSeries> {
    assembled
        .into_iter()
        .map(|(tags, (timestamps, values))| {
            let (timestamps, values) = canonicalize_columns(timestamps, values);
            ColumnSeries {
                metric: metric.to_string(),
                tags: tags.into_iter().collect(),
                timestamps,
                values,
            }
        })
        .collect()
}

/// Sort one assembled column pair by timestamp and drop duplicate
/// timestamps, keeping the first point in pre-sort order (the
/// newest-version cell) — exactly the legacy `sort_by_key` +
/// `dedup_by_key` discipline. Already-sorted columns (the common case:
/// rows arrive base-ascending, merged sorted within each row) pass
/// through untouched.
pub fn canonicalize_columns(timestamps: Vec<u64>, values: Vec<f64>) -> (Vec<u64>, Vec<f64>) {
    let sorted = timestamps.windows(2).all(|w| match w {
        [a, b] => a < b,
        _ => true,
    });
    if sorted {
        return (timestamps, values);
    }
    let mut idx: Vec<usize> = (0..timestamps.len()).collect();
    idx.sort_by_key(|&i| (timestamps.get(i).copied().unwrap_or(0), i));
    idx.dedup_by_key(|i| timestamps.get(*i).copied().unwrap_or(0));
    (
        idx.iter()
            .filter_map(|&i| timestamps.get(i).copied())
            .collect(),
        idx.iter().filter_map(|&i| values.get(i).copied()).collect(),
    )
}

/// Tag filter for queries: every listed pair must match exactly; unlisted
/// tags are unconstrained (and series are grouped by their full tag set).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryFilter {
    /// Required `(tag key, tag value)` pairs.
    pub tags: BTreeMap<String, String>,
}

impl QueryFilter {
    /// No constraints.
    pub fn any() -> Self {
        QueryFilter::default()
    }

    /// Require `key = value`.
    pub fn with(mut self, key: &str, value: &str) -> Self {
        self.tags.insert(key.to_string(), value.to_string());
        self
    }

    /// Does a series tag set satisfy the filter?
    pub fn matches(&self, tags: &BTreeMap<String, String>) -> bool {
        self.tags
            .iter()
            .all(|(k, v)| tags.get(k).is_some_and(|tv| tv == v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(points: &[(u64, f64)]) -> TimeSeries {
        TimeSeries {
            metric: "energy".into(),
            tags: BTreeMap::new(),
            points: points
                .iter()
                .map(|&(timestamp, value)| DataPoint { timestamp, value })
                .collect(),
        }
    }

    #[test]
    fn downsample_avg_aligned_windows() {
        let s = series(&[(0, 1.0), (5, 3.0), (10, 10.0), (19, 20.0), (20, 7.0)]);
        let d = s.downsample(10, Aggregator::Avg);
        assert_eq!(d.points.len(), 3);
        assert_eq!(
            d.points[0],
            DataPoint {
                timestamp: 0,
                value: 2.0
            }
        );
        assert_eq!(
            d.points[1],
            DataPoint {
                timestamp: 10,
                value: 15.0
            }
        );
        assert_eq!(
            d.points[2],
            DataPoint {
                timestamp: 20,
                value: 7.0
            }
        );
    }

    #[test]
    fn downsample_all_aggregators() {
        let s = series(&[(0, 1.0), (1, 5.0), (2, 3.0)]);
        assert_eq!(s.downsample(10, Aggregator::Sum).points[0].value, 9.0);
        assert_eq!(s.downsample(10, Aggregator::Min).points[0].value, 1.0);
        assert_eq!(s.downsample(10, Aggregator::Max).points[0].value, 5.0);
        assert_eq!(s.downsample(10, Aggregator::Count).points[0].value, 3.0);
    }

    #[test]
    fn downsample_skips_empty_windows() {
        let s = series(&[(0, 1.0), (100, 2.0)]);
        let d = s.downsample(10, Aggregator::Avg);
        assert_eq!(d.points.len(), 2);
        assert_eq!(d.points[1].timestamp, 100);
    }

    #[test]
    fn downsample_empty_series() {
        let s = series(&[]);
        assert!(s.downsample(10, Aggregator::Avg).points.is_empty());
    }

    #[test]
    fn downsample_windows_anchor_to_epoch_not_first_point() {
        // First datapoint at ts=7: the window must start at 0 (epoch
        // aligned), not at 7.
        let s = series(&[(7, 1.0), (9, 3.0), (12, 5.0)]);
        let d = s.downsample(10, Aggregator::Avg);
        assert_eq!(d.points.len(), 2);
        assert_eq!(d.points[0].timestamp, 0);
        assert_eq!(d.points[0].value, 2.0);
        assert_eq!(d.points[1].timestamp, 10);
        assert_eq!(d.points[1].value, 5.0);
    }

    #[test]
    fn downsample_merges_noncontiguous_window_revisits() {
        // Unsorted input revisits window 0 after window 10 was opened.
        // The old single-open-window fold emitted window 0 twice; the
        // keyed fold must merge the revisit into one bucket.
        let s = series(&[(0, 1.0), (10, 4.0), (5, 3.0)]);
        let d = s.downsample(10, Aggregator::Sum);
        assert_eq!(
            d.points,
            vec![
                DataPoint {
                    timestamp: 0,
                    value: 4.0
                },
                DataPoint {
                    timestamp: 10,
                    value: 4.0
                },
            ]
        );
    }

    #[test]
    fn filter_matching() {
        let mut tags = BTreeMap::new();
        tags.insert("unit".to_string(), "7".to_string());
        tags.insert("sensor".to_string(), "3".to_string());
        assert!(QueryFilter::any().matches(&tags));
        assert!(QueryFilter::any().with("unit", "7").matches(&tags));
        assert!(!QueryFilter::any().with("unit", "8").matches(&tags));
        assert!(!QueryFilter::any().with("missing", "x").matches(&tags));
        assert!(QueryFilter::any()
            .with("unit", "7")
            .with("sensor", "3")
            .matches(&tags));
    }

    #[test]
    fn aggregate_series_sums_across_units() {
        let mut a = series(&[(0, 1.0), (1, 2.0)]);
        a.tags.insert("unit".into(), "1".into());
        a.tags.insert("sensor".into(), "7".into());
        let mut b = series(&[(0, 10.0), (2, 30.0)]);
        b.tags.insert("unit".into(), "2".into());
        b.tags.insert("sensor".into(), "7".into());
        let agg = aggregate_series(&[a, b], Aggregator::Sum).unwrap();
        assert_eq!(
            agg.points,
            vec![
                DataPoint {
                    timestamp: 0,
                    value: 11.0
                },
                DataPoint {
                    timestamp: 1,
                    value: 2.0
                },
                DataPoint {
                    timestamp: 2,
                    value: 30.0
                },
            ]
        );
        // Common tags survive; differing tags are dropped.
        assert_eq!(agg.tags.get("sensor").map(String::as_str), Some("7"));
        assert!(!agg.tags.contains_key("unit"));
    }

    #[test]
    fn aggregate_series_avg_and_extremes() {
        let a = series(&[(5, 2.0)]);
        let b = series(&[(5, 4.0)]);
        let c = series(&[(5, 9.0)]);
        let input = [a, b, c];
        assert_eq!(
            aggregate_series(&input, Aggregator::Avg).unwrap().points[0].value,
            5.0
        );
        assert_eq!(
            aggregate_series(&input, Aggregator::Min).unwrap().points[0].value,
            2.0
        );
        assert_eq!(
            aggregate_series(&input, Aggregator::Max).unwrap().points[0].value,
            9.0
        );
        assert_eq!(
            aggregate_series(&input, Aggregator::Count).unwrap().points[0].value,
            3.0
        );
    }

    #[test]
    fn aggregate_series_empty_input() {
        assert!(aggregate_series(&[], Aggregator::Avg).is_none());
    }

    #[test]
    fn last_point() {
        assert_eq!(series(&[]).last(), None);
        assert_eq!(
            series(&[(1, 2.0), (5, 9.0)]).last(),
            Some(DataPoint {
                timestamp: 5,
                value: 9.0
            })
        );
    }
}
