//! Query results: series assembly, tag filtering, downsampling.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// One timestamped value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataPoint {
    /// Seconds since epoch.
    pub timestamp: u64,
    /// Value.
    pub value: f64,
}

/// A series: one tag combination of one metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Metric name.
    pub metric: String,
    /// Sorted tag pairs identifying the series.
    pub tags: BTreeMap<String, String>,
    /// Points in ascending timestamp order.
    pub points: Vec<DataPoint>,
}

impl TimeSeries {
    /// Latest point, if any.
    pub fn last(&self) -> Option<DataPoint> {
        self.points.last().copied()
    }

    /// Downsample into fixed windows of `interval` seconds using `agg`.
    /// Window boundaries are anchored to epoch-aligned multiples of the
    /// interval (never to the first datapoint); empty windows produce no
    /// point (OpenTSDB semantics).
    ///
    /// The fold is keyed by window start, so a window revisited
    /// non-contiguously (unsorted input, or duplicate timestamps arriving
    /// out of order) accumulates into one bucket instead of emitting the
    /// same window twice. For input already in timestamp order each
    /// window's values are accumulated in that order, which keeps the
    /// floating-point sum bitwise reproducible — the rollup tiers in
    /// `pga-query` rely on that for their byte-for-byte cross-check.
    pub fn downsample(&self, interval: u64, agg: Aggregator) -> TimeSeries {
        assert!(interval > 0, "interval must be positive");
        let mut windows: BTreeMap<u64, AggState> = BTreeMap::new();
        for p in &self.points {
            let w = p.timestamp - p.timestamp % interval;
            windows.entry(w).or_insert_with(AggState::new).add(p.value);
        }
        TimeSeries {
            metric: self.metric.clone(),
            tags: self.tags.clone(),
            points: windows
                .into_iter()
                .map(|(timestamp, acc)| DataPoint {
                    timestamp,
                    value: acc.finish(agg),
                })
                .collect(),
        }
    }
}

/// Downsampling / aggregation operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregator {
    /// Arithmetic mean.
    Avg,
    /// Sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Point count.
    Count,
}

struct AggState {
    sum: f64,
    min: f64,
    max: f64,
    count: u64,
}

impl AggState {
    fn new() -> Self {
        AggState {
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            count: 0,
        }
    }

    fn add(&mut self, v: f64) {
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.count += 1;
    }

    fn finish(&self, agg: Aggregator) -> f64 {
        match agg {
            Aggregator::Avg => self.sum / self.count as f64,
            Aggregator::Sum => self.sum,
            Aggregator::Min => self.min,
            Aggregator::Max => self.max,
            Aggregator::Count => self.count as f64,
        }
    }
}

/// Aggregate multiple series into one (OpenTSDB's cross-series
/// aggregator): at every timestamp where *any* input series has a point,
/// combine the values present with `agg`. (OpenTSDB linearly interpolates
/// missing points before aggregating; with the platform's regular 1 Hz
/// sampling the distinction never arises, so present-value aggregation is
/// used.) The output's tags are the pairs common to every input; returns
/// `None` for an empty input.
pub fn aggregate_series(series: &[TimeSeries], agg: Aggregator) -> Option<TimeSeries> {
    let first = series.first()?;
    let mut tags = first.tags.clone();
    for s in &series[1..] {
        tags.retain(|k, v| s.tags.get(k) == Some(v));
    }
    let mut buckets: BTreeMap<u64, AggState> = BTreeMap::new();
    for s in series {
        for p in &s.points {
            buckets
                .entry(p.timestamp)
                .or_insert_with(AggState::new)
                .add(p.value);
        }
    }
    Some(TimeSeries {
        metric: first.metric.clone(),
        tags,
        points: buckets
            .into_iter()
            .map(|(timestamp, st)| DataPoint {
                timestamp,
                value: st.finish(agg),
            })
            .collect(),
    })
}

/// Tag filter for queries: every listed pair must match exactly; unlisted
/// tags are unconstrained (and series are grouped by their full tag set).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryFilter {
    /// Required `(tag key, tag value)` pairs.
    pub tags: BTreeMap<String, String>,
}

impl QueryFilter {
    /// No constraints.
    pub fn any() -> Self {
        QueryFilter::default()
    }

    /// Require `key = value`.
    pub fn with(mut self, key: &str, value: &str) -> Self {
        self.tags.insert(key.to_string(), value.to_string());
        self
    }

    /// Does a series tag set satisfy the filter?
    pub fn matches(&self, tags: &BTreeMap<String, String>) -> bool {
        self.tags
            .iter()
            .all(|(k, v)| tags.get(k).is_some_and(|tv| tv == v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(points: &[(u64, f64)]) -> TimeSeries {
        TimeSeries {
            metric: "energy".into(),
            tags: BTreeMap::new(),
            points: points
                .iter()
                .map(|&(timestamp, value)| DataPoint { timestamp, value })
                .collect(),
        }
    }

    #[test]
    fn downsample_avg_aligned_windows() {
        let s = series(&[(0, 1.0), (5, 3.0), (10, 10.0), (19, 20.0), (20, 7.0)]);
        let d = s.downsample(10, Aggregator::Avg);
        assert_eq!(d.points.len(), 3);
        assert_eq!(
            d.points[0],
            DataPoint {
                timestamp: 0,
                value: 2.0
            }
        );
        assert_eq!(
            d.points[1],
            DataPoint {
                timestamp: 10,
                value: 15.0
            }
        );
        assert_eq!(
            d.points[2],
            DataPoint {
                timestamp: 20,
                value: 7.0
            }
        );
    }

    #[test]
    fn downsample_all_aggregators() {
        let s = series(&[(0, 1.0), (1, 5.0), (2, 3.0)]);
        assert_eq!(s.downsample(10, Aggregator::Sum).points[0].value, 9.0);
        assert_eq!(s.downsample(10, Aggregator::Min).points[0].value, 1.0);
        assert_eq!(s.downsample(10, Aggregator::Max).points[0].value, 5.0);
        assert_eq!(s.downsample(10, Aggregator::Count).points[0].value, 3.0);
    }

    #[test]
    fn downsample_skips_empty_windows() {
        let s = series(&[(0, 1.0), (100, 2.0)]);
        let d = s.downsample(10, Aggregator::Avg);
        assert_eq!(d.points.len(), 2);
        assert_eq!(d.points[1].timestamp, 100);
    }

    #[test]
    fn downsample_empty_series() {
        let s = series(&[]);
        assert!(s.downsample(10, Aggregator::Avg).points.is_empty());
    }

    #[test]
    fn downsample_windows_anchor_to_epoch_not_first_point() {
        // First datapoint at ts=7: the window must start at 0 (epoch
        // aligned), not at 7.
        let s = series(&[(7, 1.0), (9, 3.0), (12, 5.0)]);
        let d = s.downsample(10, Aggregator::Avg);
        assert_eq!(d.points.len(), 2);
        assert_eq!(d.points[0].timestamp, 0);
        assert_eq!(d.points[0].value, 2.0);
        assert_eq!(d.points[1].timestamp, 10);
        assert_eq!(d.points[1].value, 5.0);
    }

    #[test]
    fn downsample_merges_noncontiguous_window_revisits() {
        // Unsorted input revisits window 0 after window 10 was opened.
        // The old single-open-window fold emitted window 0 twice; the
        // keyed fold must merge the revisit into one bucket.
        let s = series(&[(0, 1.0), (10, 4.0), (5, 3.0)]);
        let d = s.downsample(10, Aggregator::Sum);
        assert_eq!(
            d.points,
            vec![
                DataPoint {
                    timestamp: 0,
                    value: 4.0
                },
                DataPoint {
                    timestamp: 10,
                    value: 4.0
                },
            ]
        );
    }

    #[test]
    fn filter_matching() {
        let mut tags = BTreeMap::new();
        tags.insert("unit".to_string(), "7".to_string());
        tags.insert("sensor".to_string(), "3".to_string());
        assert!(QueryFilter::any().matches(&tags));
        assert!(QueryFilter::any().with("unit", "7").matches(&tags));
        assert!(!QueryFilter::any().with("unit", "8").matches(&tags));
        assert!(!QueryFilter::any().with("missing", "x").matches(&tags));
        assert!(QueryFilter::any()
            .with("unit", "7")
            .with("sensor", "3")
            .matches(&tags));
    }

    #[test]
    fn aggregate_series_sums_across_units() {
        let mut a = series(&[(0, 1.0), (1, 2.0)]);
        a.tags.insert("unit".into(), "1".into());
        a.tags.insert("sensor".into(), "7".into());
        let mut b = series(&[(0, 10.0), (2, 30.0)]);
        b.tags.insert("unit".into(), "2".into());
        b.tags.insert("sensor".into(), "7".into());
        let agg = aggregate_series(&[a, b], Aggregator::Sum).unwrap();
        assert_eq!(
            agg.points,
            vec![
                DataPoint {
                    timestamp: 0,
                    value: 11.0
                },
                DataPoint {
                    timestamp: 1,
                    value: 2.0
                },
                DataPoint {
                    timestamp: 2,
                    value: 30.0
                },
            ]
        );
        // Common tags survive; differing tags are dropped.
        assert_eq!(agg.tags.get("sensor").map(String::as_str), Some("7"));
        assert!(!agg.tags.contains_key("unit"));
    }

    #[test]
    fn aggregate_series_avg_and_extremes() {
        let a = series(&[(5, 2.0)]);
        let b = series(&[(5, 4.0)]);
        let c = series(&[(5, 9.0)]);
        let input = [a, b, c];
        assert_eq!(
            aggregate_series(&input, Aggregator::Avg).unwrap().points[0].value,
            5.0
        );
        assert_eq!(
            aggregate_series(&input, Aggregator::Min).unwrap().points[0].value,
            2.0
        );
        assert_eq!(
            aggregate_series(&input, Aggregator::Max).unwrap().points[0].value,
            9.0
        );
        assert_eq!(
            aggregate_series(&input, Aggregator::Count).unwrap().points[0].value,
            3.0
        );
    }

    #[test]
    fn aggregate_series_empty_input() {
        assert!(aggregate_series(&[], Aggregator::Avg).is_none());
    }

    #[test]
    fn last_point() {
        assert_eq!(series(&[]).last(), None);
        assert_eq!(
            series(&[(1, 2.0), (5, 9.0)]).last(),
            Some(DataPoint {
                timestamp: 5,
                value: 9.0
            })
        );
    }
}
