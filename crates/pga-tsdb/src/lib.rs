//! A time-series database layer in the mould of OpenTSDB (§III of the
//! paper), built on [`pga_minibase`].
//!
//! "OpenTSDB organizes time series data into metrics and allows for the
//! assignment of multiple tags per metric. … The simulated data generated
//! for this project is stored into a metric called 'energy' with tags for
//! 'unit' and 'sensor'." (§III-A)
//!
//! * [`uid`] — string → fixed-width UID assignment for metrics, tag keys
//!   and tag values (OpenTSDB's `tsdb-uid` table).
//! * [`codec`] — the binary row-key layout, **including the salt byte**
//!   whose addition §III-B credits with "a dramatic increase to the
//!   ingestion rate", plus qualifier/value encoding.
//! * [`tsd`] — the TSD daemon: put/query over a MiniBase client, RPC
//!   accounting, optional write-path row compaction (the paper disables it
//!   "to reduce RPC calls to HBase"; the ablation E8 measures exactly
//!   that).
//! * [`block`] — the columnar sealed-block codec: delta-of-delta
//!   timestamps + Gorilla XOR floats behind a checksummed header.
//! * [`compact`] — the compaction rewriter that seals finished rows into
//!   canonical blocks during MiniBase compaction.
//! * [`query`] — series assembly, tag filtering, downsampling aggregators,
//!   and the columnar [`ColumnSeries`] form block scans decode into.
//! * [`api`] — the OpenTSDB-compatible JSON API (`/api/put`, `/api/query`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod block;
pub mod codec;
pub mod compact;
pub mod query;
pub mod tsd;
pub mod uid;

pub use api::{
    handle_put, handle_query, handle_query_with, handle_suggest, parse_downsample, ApiError,
    DegradedBody, ExecOutcome, PartialInfo, PutDatapoint, QueryExecutor, QueryRequest,
    QueryResponseSeries, ShardError, SubQuery,
};
pub use block::{
    decode_block, encode_block, is_block_qualifier, peek_header, verify_block, BlockError,
    DecodedBlock, BLOCK_MAGIC, BLOCK_QUALIFIER, BLOCK_VERSION,
};
pub use codec::{KeyCodec, KeyCodecConfig};
pub use compact::BlockRewriter;
pub use query::{
    aggregate_series, Aggregator, ColumnSeries, CorruptBlock, DataPoint, QueryFilter, TimeSeries,
};
pub use tsd::{
    block_verifier, BatchPoint, BlockVerifier, PutObserver, Tsd, TsdConfig, TsdError, TsdMetrics,
};
pub use uid::{Uid, UidTable};
