//! The TSD daemon: put/query over MiniBase, with RPC accounting and
//! optional write-path row compaction.
//!
//! §III-A: "For storing data, the TSD Daemon takes a metric, timestamp,
//! data value, and tag identifiers as input and produces an entry to be
//! written to an HBase table."
//!
//! §III-B: "Compaction was also disabled on OpenTSDB to reduce RPC calls
//! to HBase." When [`TsdConfig::write_path_compaction`] is on, every
//! series-row rollover triggers a read-modify-write of the finished row
//! (one extra scan RPC + one extra put RPC), exactly the extra chatter the
//! paper eliminated; experiment E8 measures the difference.

use std::collections::BTreeMap;
use std::collections::HashMap;

use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pga_minibase::{Client, ClientError, KeyValue, RowRange};

use crate::block::BlockError;
use crate::codec::KeyCodec;
use crate::query::{
    assemble_columns, assemble_columns_salvage, finish_columns, AssembledColumns, ColumnSeries,
    CorruptBlock, DataPoint, QueryFilter, TimeSeries,
};

/// One `(tags, timestamp, value)` element of a batched put.
pub type BatchPoint<'a> = (&'a [(&'a str, &'a str)], u64, f64);

/// Write-path observer: sees every **successfully acknowledged** batch and
/// may derive extra cells (rollup pre-aggregates, indexes) to be persisted
/// alongside the raw data. Derived cells are buffered by the TSD and ride
/// along with the *next* storage RPC, so a failed or shed batch never
/// contributes — the observer only accumulates data the storage layer has
/// acked, and buffered cells are retried until a put succeeds (or
/// [`Tsd::flush_observer`] writes them out).
pub trait PutObserver: Send + Sync {
    /// `points` of `metric` were durably acknowledged. Returns derived
    /// cells now ready to persist (typically aggregate buckets sealed by
    /// this batch's arrival).
    fn on_batch(&self, metric: &str, points: &[BatchPoint<'_>]) -> Vec<KeyValue>;

    /// Seal and return every open accumulator (shutdown / idle flush).
    fn flush(&self) -> Vec<KeyValue>;
}

/// TSD configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TsdConfig {
    /// Enable OpenTSDB-style write-path row compaction (the paper runs
    /// with this **disabled**, so the default is off).
    pub write_path_compaction: bool,
    /// Salvage reads (default **on**): a sealed block failing CRC/decode
    /// is quarantined and its span transparently re-read from a healthy
    /// replica, so the query still answers exactly. Off, the pre-salvage
    /// behaviour: any corrupt block aborts the query with a typed
    /// [`TsdError::Corrupt`] (the E22 benchmark's "before" arm).
    pub salvage_reads: bool,
}

impl Default for TsdConfig {
    fn default() -> Self {
        TsdConfig {
            write_path_compaction: false,
            salvage_reads: true,
        }
    }
}

/// Counters for one TSD daemon.
#[derive(Debug, Default)]
pub struct TsdMetrics {
    /// Data points written.
    pub points_written: AtomicU64,
    /// Put RPCs issued to the storage layer.
    pub put_rpcs: AtomicU64,
    /// Scan RPCs issued to the storage layer.
    pub scan_rpcs: AtomicU64,
    /// Row compactions performed on the write path.
    pub row_compactions: AtomicU64,
    /// Corrupt sealed blocks encountered on the read path.
    pub corrupt_blocks_seen: AtomicU64,
    /// Reads answered exactly by splicing a healthy replica's copy over a
    /// corrupt local block.
    pub salvaged_reads: AtomicU64,
}

impl TsdMetrics {
    /// Total storage RPCs. Approximate under concurrent traffic: the two
    /// counters are independent monotonic totals read for reporting, so
    /// one being a beat ahead of the other is tolerated.
    pub fn total_rpcs(&self) -> u64 {
        // pga-allow(relaxed-atomics): independent monotonic counters; reporting tolerates skew
        self.put_rpcs.load(Ordering::Relaxed) + self.scan_rpcs.load(Ordering::Relaxed)
    }

    /// RPCs per written data point (the E8 ablation metric).
    pub fn rpcs_per_point(&self) -> f64 {
        let points = self.points_written.load(Ordering::Relaxed);
        if points == 0 {
            0.0
        } else {
            self.total_rpcs() as f64 / points as f64
        }
    }
}

/// TSD errors.
#[derive(Debug)]
pub enum TsdError {
    /// Storage-layer failure.
    Storage(ClientError),
    /// A sealed block failed to decode — corrupt storage surfaced as a
    /// typed error instead of a silent wrong answer.
    Corrupt(BlockError),
}

impl std::fmt::Display for TsdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsdError::Storage(e) => write!(f, "storage error: {e}"),
            TsdError::Corrupt(e) => write!(f, "corrupt sealed block: {e}"),
        }
    }
}

impl TsdError {
    /// `true` when the storage layer shed the request with a typed `Busy`
    /// (admission control) — safe to retry after the hinted delay.
    pub fn is_busy(&self) -> bool {
        self.retry_after_ms().is_some()
    }

    /// Retry hint carried by a `Busy` rejection, if any.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            TsdError::Storage(e) => e.retry_after_ms(),
            TsdError::Corrupt(_) => None,
        }
    }

    /// `true` when the request's deadline expired before service.
    pub fn is_deadline_expired(&self) -> bool {
        matches!(self, TsdError::Storage(ClientError::DeadlineExpired))
    }
}

impl From<ClientError> for TsdError {
    fn from(e: ClientError) -> Self {
        TsdError::Storage(e)
    }
}

/// [`pga_minibase::CellVerifier`] over the sealed-block codec: covers
/// exactly the block-qualifier cells and verifies them by the whole-buffer
/// CRC ([`crate::block::verify_block`]). This is the integrity check the
/// background scrubber walks store files with, and the pre-install gate
/// every replica-fetched repair payload must round-trip.
#[derive(Debug, Default, Clone, Copy)]
pub struct BlockVerifier;

impl pga_minibase::CellVerifier for BlockVerifier {
    fn covers(&self, kv: &KeyValue) -> bool {
        crate::block::is_block_qualifier(&kv.qualifier)
    }

    fn verify(&self, kv: &KeyValue) -> bool {
        crate::block::verify_block(&kv.value).is_ok()
    }
}

/// Shared handle to the sealed-block verifier (what
/// [`pga_minibase::scrub_tick`] and the scrub CLI install).
pub fn block_verifier() -> pga_minibase::VerifierHandle {
    Arc::new(BlockVerifier)
}

/// A TSD daemon bound to one MiniBase client.
pub struct Tsd {
    codec: KeyCodec,
    client: Client,
    config: TsdConfig,
    metrics: Arc<TsdMetrics>,
    /// Last row key seen per series hash — detects row rollover for the
    /// write-path compaction model.
    open_rows: Mutex<HashMap<u64, Bytes>>,
    /// Write-path observer (rollup maintenance), if installed.
    observer: parking_lot::RwLock<Option<Arc<dyn PutObserver>>>,
    /// Observer-derived cells awaiting the next successful put.
    pending_derived: Mutex<Vec<KeyValue>>,
    /// Highest acknowledged write timestamp — the seal watermark. The
    /// compaction rewriter only seals rows wholly below it, so a row with
    /// in-flight writers is never frozen mid-fill.
    seal_watermark: Arc<AtomicU64>,
    /// Quarantine set + scrub counters, shared with the background
    /// scrubber: the read path feeds it on every corrupt block it trips
    /// over, so scrub repair does not wait for the next full walk.
    scrub: Arc<pga_minibase::ScrubState>,
}

impl Tsd {
    /// Create a daemon.
    pub fn new(codec: KeyCodec, client: Client, config: TsdConfig) -> Self {
        Tsd {
            codec,
            client,
            config,
            metrics: Arc::new(TsdMetrics::default()),
            open_rows: Mutex::new(HashMap::new()),
            observer: parking_lot::RwLock::new(None),
            pending_derived: Mutex::new(Vec::new()),
            seal_watermark: Arc::new(AtomicU64::new(0)),
            scrub: pga_minibase::ScrubState::new(),
        }
    }

    /// Shared quarantine/scrub state. Pass the same handle to
    /// [`pga_minibase::scrub_tick`] (or [`Tsd::scrub_tick`]) so
    /// read-path-detected corruption and scrub-walk-detected corruption
    /// drain through one repair queue.
    pub fn scrub_state(&self) -> Arc<pga_minibase::ScrubState> {
        self.scrub.clone()
    }

    /// One background scrub pass over the cluster this daemon is bound
    /// to, using the sealed-block verifier and this daemon's shared
    /// quarantine state. See [`pga_minibase::scrub_tick`].
    pub fn scrub_tick(
        &self,
        master: &pga_minibase::Master,
        fault: &pga_minibase::FaultHandle,
    ) -> pga_minibase::ScrubTickReport {
        pga_minibase::scrub_tick(master, &self.client, &block_verifier(), &self.scrub, fault)
    }

    /// Shared seal-watermark handle: the highest timestamp this daemon has
    /// acknowledged. Wire it into a
    /// [`crate::compact::BlockRewriter`] so compaction only seals rows
    /// every writer has moved past.
    pub fn seal_watermark(&self) -> Arc<AtomicU64> {
        self.seal_watermark.clone()
    }

    /// Build a compaction rewriter wired to this daemon's codec geometry
    /// and seal watermark. Install it on the storage master
    /// (`Master::set_compaction_rewriter`) to enable background sealing of
    /// finished rows into columnar blocks.
    pub fn block_rewriter(&self) -> pga_minibase::RewriterHandle {
        Arc::new(crate::compact::BlockRewriter::new(
            self.codec.config().row_span_secs,
            self.seal_watermark.clone(),
        ))
    }

    /// Flush memstores and major-compact every region, running any
    /// installed compaction rewriter (block sealing) over the result.
    pub fn compact_now(&self) -> Result<(), TsdError> {
        self.client.compact_all().map_err(TsdError::from)
    }

    /// Borrow the codec.
    pub fn codec(&self) -> &KeyCodec {
        &self.codec
    }

    /// Borrow the storage client (read-path subsystems issue their own
    /// scans through it).
    pub fn client(&self) -> &Client {
        &self.client
    }

    /// Install a write-path observer. At most one; installing replaces
    /// the previous one (pending derived cells are kept — they are
    /// already acknowledged data).
    pub fn set_observer(&self, observer: Arc<dyn PutObserver>) {
        *self.observer.write() = Some(observer);
    }

    /// Seal every open observer accumulator and persist all buffered
    /// derived cells in one put. No-op without an observer or pending
    /// cells. On failure the cells stay buffered for the next attempt.
    pub fn flush_observer(&self) -> Result<(), TsdError> {
        let observer = self.observer.read().clone();
        let mut cells = std::mem::take(&mut *self.pending_derived.lock());
        if let Some(obs) = observer {
            cells.extend(obs.flush());
        }
        if cells.is_empty() {
            return Ok(());
        }
        // pga-allow(lock-discipline): the observer read guard above is a temporary dropped at its own statement; only the cloned Arc reaches this put
        match self.client.put(cells.clone()) {
            Ok(_) => {
                self.metrics.put_rpcs.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                let mut pending = self.pending_derived.lock();
                cells.append(&mut pending);
                *pending = cells;
                Err(e.into())
            }
        }
    }

    /// Shared metrics handle.
    pub fn metrics(&self) -> Arc<TsdMetrics> {
        self.metrics.clone()
    }

    /// Write one data point.
    pub fn put(
        &self,
        metric: &str,
        tags: &[(&str, &str)],
        timestamp: u64,
        value: f64,
    ) -> Result<(), TsdError> {
        self.put_batch(metric, &[(tags, timestamp, value)])
    }

    /// Write a batch of points of one metric in a single storage RPC
    /// per region (OpenTSDB's batched `put`). Each element is
    /// `(tags, timestamp, value)`.
    pub fn put_batch(&self, metric: &str, points: &[BatchPoint<'_>]) -> Result<(), TsdError> {
        self.put_batch_inner(metric, points, None)
    }

    /// Admission-controlled batched put: the storage layer sheds with a
    /// typed `Busy` instead of blocking, and an optional absolute deadline
    /// (server-clock ms) rides with the batch so servers drop expired work
    /// rather than serving it. Duplicate resubmission after `Busy` is safe:
    /// the read path dedups by timestamp.
    pub fn put_batch_admitted(
        &self,
        metric: &str,
        points: &[BatchPoint<'_>],
        deadline_ms: Option<u64>,
    ) -> Result<(), TsdError> {
        self.put_batch_inner(metric, points, Some(deadline_ms))
    }

    fn put_batch_inner(
        &self,
        metric: &str,
        points: &[BatchPoint<'_>],
        admitted: Option<Option<u64>>,
    ) -> Result<(), TsdError> {
        if points.is_empty() {
            return Ok(());
        }
        let mut kvs = Vec::with_capacity(points.len());
        for &(tags, ts, value) in points {
            let row = self.codec.row_key(metric, tags, ts);
            if self.config.write_path_compaction {
                self.maybe_compact_previous_row(tags, &row)?;
            }
            kvs.push(KeyValue::new(
                row,
                self.codec.qualifier(ts),
                ts * 1000,
                self.codec.value(value),
            ));
        }
        let n = kvs.len() as u64;
        // Derived cells buffered by the observer ride along with this RPC.
        let carried: Vec<KeyValue> = std::mem::take(&mut *self.pending_derived.lock());
        let carried_n = carried.len();
        kvs.extend(carried.iter().cloned());
        let result = match admitted {
            None => self.client.put(kvs),
            Some(deadline_ms) => self.client.put_admitted(kvs, deadline_ms),
        };
        if let Err(e) = result {
            // Re-buffer the derived cells (ahead of any buffered since);
            // the raw batch itself is the caller's to retry.
            if carried_n > 0 {
                let mut pending = self.pending_derived.lock();
                let mut restored = carried;
                restored.append(&mut pending);
                *pending = restored;
            }
            return Err(e.into());
        }
        self.metrics.put_rpcs.fetch_add(1, Ordering::Relaxed);
        self.metrics.points_written.fetch_add(n, Ordering::Relaxed);
        if let Some(max_ts) = points.iter().map(|&(_, ts, _)| ts).max() {
            self.seal_watermark.fetch_max(max_ts, Ordering::AcqRel);
        }
        // Only acknowledged points reach the observer: a shed or failed
        // batch above returned early, so a proxy retrying it elsewhere
        // cannot double-count its contribution.
        let observer = self.observer.read().clone();
        if let Some(obs) = observer {
            let sealed = obs.on_batch(metric, points);
            if !sealed.is_empty() {
                self.pending_derived.lock().extend(sealed);
            }
        }
        Ok(())
    }

    /// Row-rollover hook for the write-path compaction model: when a series
    /// moves to a new row, read the finished row back and rewrite it as one
    /// consolidated cell.
    fn maybe_compact_previous_row(
        &self,
        tags: &[(&str, &str)],
        new_row: &Bytes,
    ) -> Result<(), TsdError> {
        let mut h = 0xcbf29ce484222325u64;
        for (k, v) in tags {
            for b in k.bytes().chain(v.bytes()) {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        let mut open = self.open_rows.lock();
        let prev = open.insert(h, new_row.clone());
        drop(open);
        if let Some(prev_row) = prev {
            if &prev_row != new_row {
                // Read the finished row…
                let mut end = prev_row.to_vec();
                end.push(0);
                let cells = self.client.scan(&RowRange::new(prev_row.clone(), end))?;
                self.metrics.scan_rpcs.fetch_add(1, Ordering::Relaxed);
                // …and rewrite it as one consolidated cell (qualifier 0xFFFF
                // marks a compacted column, mirroring OpenTSDB's wide column).
                if !cells.is_empty() {
                    let mut blob = Vec::with_capacity(cells.len() * 10);
                    for c in &cells {
                        blob.extend_from_slice(&c.qualifier);
                        blob.extend_from_slice(&c.value);
                    }
                    self.client.put(vec![KeyValue::new(
                        prev_row,
                        Bytes::copy_from_slice(&[0xFF, 0xFF]),
                        u64::MAX / 2,
                        blob,
                    )])?;
                    self.metrics.put_rpcs.fetch_add(1, Ordering::Relaxed);
                    self.metrics.row_compactions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(())
    }

    /// Query `[start, end]` of one metric, filtered by tags, grouped into
    /// one series per distinct tag combination, points ascending.
    ///
    /// Block-aware: sealed columnar blocks and the mutable raw tail are
    /// spliced into one answer (raw wins where the two overlap). A block
    /// that fails to decode is a typed [`TsdError::Corrupt`], never a
    /// silent hole.
    pub fn query(
        &self,
        metric: &str,
        filter: &QueryFilter,
        start: u64,
        end: u64,
    ) -> Result<Vec<TimeSeries>, TsdError> {
        Ok(self
            .query_columns(metric, filter, start, end)?
            .iter()
            .map(ColumnSeries::to_series)
            .collect())
    }

    /// [`Tsd::query`] in columnar form: flat timestamp/value slices per
    /// series, the shape the batch detector kernels consume directly.
    pub fn query_columns(
        &self,
        metric: &str,
        filter: &QueryFilter,
        start: u64,
        end: u64,
    ) -> Result<Vec<ColumnSeries>, TsdError> {
        let mut assembled = AssembledColumns::new();
        let mut corrupt: Vec<CorruptBlock> = Vec::new();
        for salt in self.codec.salt_range() {
            let (s, e) = self.codec.scan_range(salt, metric, start, end);
            if s.is_empty() && e.is_empty() {
                continue; // unknown metric
            }
            let cells = self.client.scan(&RowRange::new(s, e))?;
            self.metrics.scan_rpcs.fetch_add(1, Ordering::Relaxed);
            if self.config.salvage_reads {
                assemble_columns_salvage(
                    &self.codec,
                    &cells,
                    filter,
                    start,
                    end,
                    &mut assembled,
                    &mut corrupt,
                );
            } else {
                assemble_columns(&self.codec, &cells, filter, start, end, &mut assembled)
                    .map_err(TsdError::Corrupt)?;
            }
        }
        self.salvage_corrupt_blocks(corrupt, start, end, &mut assembled)?;
        Ok(finish_columns(metric, assembled))
    }

    /// Replica-backed read salvage: every corrupt block the assembly
    /// reported is quarantined (the scrubber repairs it in the
    /// background), and its span is re-read from the region's other
    /// copies right now so *this* query still answers exactly. Only when
    /// no copy decodes does the original typed error surface — partial
    /// silence is never an option.
    fn salvage_corrupt_blocks(
        &self,
        corrupt: Vec<CorruptBlock>,
        start: u64,
        end: u64,
        assembled: &mut AssembledColumns,
    ) -> Result<(), TsdError> {
        for cb in corrupt {
            self.metrics
                .corrupt_blocks_seen
                .fetch_add(1, Ordering::Relaxed);
            self.scrub.quarantine(
                Bytes::copy_from_slice(&cb.row),
                Bytes::copy_from_slice(&cb.qualifier),
            );
            let mut row_end = cb.row.clone();
            row_end.push(0);
            let copies = self
                .client
                .repair_fetch(&RowRange::new(cb.row.clone(), row_end));
            let mut healed = false;
            for copy in &copies {
                let Some(cell) = copy
                    .cells
                    .iter()
                    .find(|kv| kv.row == cb.row[..] && kv.qualifier == cb.qualifier[..])
                else {
                    continue;
                };
                let Ok(decoded) = crate::block::decode_block(&cell.value) else {
                    continue;
                };
                // Splice the healthy copy's windowed points in. They are
                // appended *after* everything assembly produced, so at a
                // duplicate timestamp the local raw cell still wins
                // (canonicalization keeps the first point in push order).
                let (timestamps, values) = assembled.entry(cb.tags.clone()).or_default();
                for (&ts, &v) in decoded.timestamps.iter().zip(decoded.values.iter()) {
                    if ts >= start && ts <= end {
                        timestamps.push(ts);
                        values.push(v);
                    }
                }
                healed = true;
                self.metrics.salvaged_reads.fetch_add(1, Ordering::Relaxed);
                break;
            }
            if !healed {
                return Err(TsdError::Corrupt(cb.error));
            }
        }
        Ok(())
    }

    /// The pre-block cell-by-cell read path, kept as the differential
    /// baseline: byte-for-byte equal to [`Tsd::query`] on any store, and
    /// the E21 benchmark's "before" side. Sealed blocks are invisible to
    /// it (their 3-byte qualifier is skipped like any non-raw column), so
    /// it only answers completely on stores that never sealed — exactly
    /// the legacy deployments it represents.
    pub fn query_legacy(
        &self,
        metric: &str,
        filter: &QueryFilter,
        start: u64,
        end: u64,
    ) -> Result<Vec<TimeSeries>, TsdError> {
        let mut series: BTreeMap<Vec<(String, String)>, Vec<DataPoint>> = BTreeMap::new();
        for salt in self.codec.salt_range() {
            let (s, e) = self.codec.scan_range(salt, metric, start, end);
            if s.is_empty() && e.is_empty() {
                continue; // unknown metric
            }
            let cells = self.client.scan(&RowRange::new(s, e))?;
            self.metrics.scan_rpcs.fetch_add(1, Ordering::Relaxed);
            for cell in cells {
                if cell.qualifier.len() != 2 || cell.qualifier[..] == [0xFF, 0xFF] {
                    continue; // compacted blob column: raw cells carry the data
                }
                if let Some(p) = self.codec.decode(&cell.row, &cell.qualifier, &cell.value) {
                    if p.timestamp < start || p.timestamp > end {
                        continue;
                    }
                    let tag_map: BTreeMap<String, String> = p.tags.iter().cloned().collect();
                    if !filter.matches(&tag_map) {
                        continue;
                    }
                    series.entry(p.tags.clone()).or_default().push(DataPoint {
                        timestamp: p.timestamp,
                        value: p.value,
                    });
                }
            }
        }
        Ok(series
            .into_iter()
            .map(|(tags, mut points)| {
                points.sort_by_key(|p| p.timestamp);
                points.dedup_by_key(|p| p.timestamp);
                TimeSeries {
                    metric: metric.to_string(),
                    tags: tags.into_iter().collect(),
                    points,
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::KeyCodecConfig;
    use crate::uid::UidTable;
    use bytes::Bytes;
    use pga_cluster::coordinator::Coordinator;
    use pga_minibase::{Master, RegionConfig, ServerConfig, TableDescriptor};

    fn tsd(nodes: usize, salt_buckets: u8, compaction: bool) -> (Master, Tsd) {
        let codec = KeyCodec::new(
            KeyCodecConfig {
                salt_buckets,
                row_span_secs: 3600,
            },
            UidTable::new(),
        );
        let coord = Coordinator::new(10_000);
        let mut master = Master::bootstrap(nodes, ServerConfig::default(), coord, 0);
        master.create_table(&TableDescriptor {
            name: "tsdb".into(),
            split_points: codec.split_points(),
            region_config: RegionConfig::default(),
        });
        let client = Client::connect(&master);
        let t = Tsd::new(
            codec,
            client,
            TsdConfig {
                write_path_compaction: compaction,
                ..TsdConfig::default()
            },
        );
        (master, t)
    }

    #[test]
    fn put_query_roundtrip() {
        let (m, t) = tsd(3, 8, false);
        for ts in 0..10u64 {
            t.put("energy", &[("unit", "1"), ("sensor", "2")], ts, ts as f64)
                .unwrap();
        }
        let series = t.query("energy", &QueryFilter::any(), 0, 100).unwrap();
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].points.len(), 10);
        assert_eq!(series[0].points[3].value, 3.0);
        assert_eq!(series[0].tags.get("unit").unwrap(), "1");
        m.shutdown();
    }

    #[test]
    fn query_filters_by_tag() {
        let (m, t) = tsd(2, 4, false);
        t.put("energy", &[("unit", "1"), ("sensor", "a")], 5, 1.0)
            .unwrap();
        t.put("energy", &[("unit", "2"), ("sensor", "a")], 5, 2.0)
            .unwrap();
        t.put("energy", &[("unit", "1"), ("sensor", "b")], 5, 3.0)
            .unwrap();
        let unit1 = t
            .query("energy", &QueryFilter::any().with("unit", "1"), 0, 10)
            .unwrap();
        assert_eq!(unit1.len(), 2);
        let s_a = t
            .query(
                "energy",
                &QueryFilter::any().with("unit", "1").with("sensor", "a"),
                0,
                10,
            )
            .unwrap();
        assert_eq!(s_a.len(), 1);
        assert_eq!(s_a[0].points[0].value, 1.0);
        m.shutdown();
    }

    #[test]
    fn query_time_window_is_inclusive() {
        let (m, t) = tsd(1, 2, false);
        for ts in [10u64, 20, 30] {
            t.put("energy", &[("unit", "1")], ts, ts as f64).unwrap();
        }
        let s = t.query("energy", &QueryFilter::any(), 10, 20).unwrap();
        assert_eq!(s[0].points.len(), 2);
        m.shutdown();
    }

    #[test]
    fn unknown_metric_returns_empty() {
        let (m, t) = tsd(1, 2, false);
        assert!(t
            .query("nope", &QueryFilter::any(), 0, 10)
            .unwrap()
            .is_empty());
        m.shutdown();
    }

    #[test]
    fn batch_put_counts_one_rpc() {
        let (m, t) = tsd(2, 4, false);
        let tags: &[(&str, &str)] = &[("unit", "1"), ("sensor", "1")];
        let points: Vec<BatchPoint> = (0..50u64).map(|ts| (tags, ts, 1.0)).collect();
        t.put_batch("energy", &points).unwrap();
        let metrics = t.metrics();
        assert_eq!(metrics.points_written.load(Ordering::Relaxed), 50);
        assert_eq!(metrics.put_rpcs.load(Ordering::Relaxed), 1);
        m.shutdown();
    }

    #[test]
    fn write_path_compaction_adds_rpcs_on_rollover() {
        let (m, t) = tsd(1, 2, true);
        let tags = [("unit", "1"), ("sensor", "1")];
        // Fill two consecutive hourly rows.
        for ts in [100u64, 200, 3700, 3800, 7300] {
            t.put("energy", &tags, ts, 1.0).unwrap();
        }
        let metrics = t.metrics();
        assert_eq!(metrics.row_compactions.load(Ordering::Relaxed), 2);
        assert!(metrics.scan_rpcs.load(Ordering::Relaxed) >= 2);
        // Data is still fully queryable after compaction rewrites.
        let s = t.query("energy", &QueryFilter::any(), 0, 10_000).unwrap();
        assert_eq!(s[0].points.len(), 5);
        m.shutdown();
    }

    #[test]
    fn compaction_disabled_keeps_rpcs_near_one_per_batch() {
        let (m, t) = tsd(1, 2, false);
        let tags = [("unit", "1"), ("sensor", "1")];
        for ts in [100u64, 3700, 7300, 10900] {
            t.put("energy", &tags, ts, 1.0).unwrap();
        }
        let metrics = t.metrics();
        assert_eq!(metrics.row_compactions.load(Ordering::Relaxed), 0);
        assert_eq!(metrics.scan_rpcs.load(Ordering::Relaxed), 0);
        assert_eq!(metrics.put_rpcs.load(Ordering::Relaxed), 4);
        m.shutdown();
    }

    #[test]
    fn salted_writes_touch_many_servers() {
        let (m, t) = tsd(4, 8, false);
        for unit in 0..40 {
            let u = unit.to_string();
            t.put("energy", &[("unit", &u), ("sensor", "0")], 0, 1.0)
                .unwrap();
        }
        let mut busy = 0;
        for node in m.nodes() {
            if m.server(node).unwrap().total_cells_written() > 0 {
                busy += 1;
            }
        }
        assert!(busy >= 3, "expected most servers busy, got {busy}");
        m.shutdown();
    }

    #[test]
    fn unsalted_writes_hotspot_one_server() {
        let (m, t) = tsd(4, 0, false);
        for unit in 0..40 {
            let u = unit.to_string();
            t.put("energy", &[("unit", &u), ("sensor", "0")], 0, 1.0)
                .unwrap();
        }
        let writes: Vec<u64> = m
            .nodes()
            .iter()
            .map(|&n| m.server(n).unwrap().total_cells_written())
            .collect();
        let busy = writes.iter().filter(|&&w| w > 0).count();
        assert_eq!(busy, 1, "unsalted keys must land on one region: {writes:?}");
        m.shutdown();
    }

    #[test]
    fn compacted_blob_column_is_skipped_by_queries() {
        let (m, t) = tsd(1, 2, true);
        let tags = [("unit", "9")];
        t.put("energy", &tags, 10, 5.0).unwrap();
        t.put("energy", &tags, 3700, 6.0).unwrap(); // rollover compacts row 0
        let s = t.query("energy", &QueryFilter::any(), 0, 4000).unwrap();
        assert_eq!(s.len(), 1);
        let vals: Vec<f64> = s[0].points.iter().map(|p| p.value).collect();
        assert_eq!(vals, vec![5.0, 6.0]);
        m.shutdown();
    }

    #[test]
    fn sealing_compaction_preserves_query_results() {
        let (mut m, t) = tsd(2, 4, false);
        m.set_compaction_rewriter(t.block_rewriter());
        let tags = [("unit", "1"), ("sensor", "a")];
        // Two full rows plus a partial third (watermark sits inside it).
        for ts in (0..9000u64).step_by(600) {
            t.put("energy", &tags, ts, (ts as f64).sin()).unwrap();
        }
        let before = t.query("energy", &QueryFilter::any(), 0, 20_000).unwrap();
        let legacy_before = t
            .query_legacy("energy", &QueryFilter::any(), 0, 20_000)
            .unwrap();
        assert_eq!(before, legacy_before, "paths agree pre-seal");
        t.compact_now().unwrap();
        let after = t.query("energy", &QueryFilter::any(), 0, 20_000).unwrap();
        assert_eq!(before, after, "sealing must not change query answers");
        // The legacy path cannot see sealed blocks — rows 0 and 1 are gone
        // from it, proving the seal physically replaced raw cells.
        let legacy_after = t
            .query_legacy("energy", &QueryFilter::any(), 0, 20_000)
            .unwrap();
        let legacy_pts: usize = legacy_after.iter().map(|s| s.points.len()).sum();
        let all_pts: usize = after.iter().map(|s| s.points.len()).sum();
        assert!(
            legacy_pts < all_pts,
            "expected sealed rows to vanish from the legacy path ({legacy_pts} vs {all_pts})"
        );
        m.shutdown();
    }

    #[test]
    fn late_write_after_seal_wins_on_requery() {
        let (mut m, t) = tsd(1, 2, false);
        m.set_compaction_rewriter(t.block_rewriter());
        let tags = [("unit", "7")];
        for ts in [10u64, 20, 30] {
            t.put("energy", &tags, ts, ts as f64).unwrap();
        }
        // Advance the watermark past row 0 and seal it.
        t.put("energy", &tags, 4000, 0.0).unwrap();
        t.compact_now().unwrap();
        // A late raw write into the sealed row must override the block.
        t.put("energy", &tags, 20, 99.0).unwrap();
        let s = t.query("energy", &QueryFilter::any(), 0, 100).unwrap();
        let vals: Vec<f64> = s[0].points.iter().map(|p| p.value).collect();
        assert_eq!(vals, vec![10.0, 99.0, 30.0]);
        // Re-sealing folds the late write in.
        t.compact_now().unwrap();
        let s2 = t.query("energy", &QueryFilter::any(), 0, 100).unwrap();
        assert_eq!(s, s2);
        m.shutdown();
    }

    #[test]
    fn split_points_bytes_are_salt_aligned() {
        let (m, t) = tsd(2, 4, false);
        let pts = t.codec().split_points();
        assert_eq!(
            pts,
            vec![
                Bytes::copy_from_slice(&[1]),
                Bytes::copy_from_slice(&[2]),
                Bytes::copy_from_slice(&[3]),
            ]
        );
        m.shutdown();
    }
}
