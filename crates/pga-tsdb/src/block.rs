//! Columnar sealed-block codec: delta-of-delta timestamps + XOR/Gorilla
//! float compression behind a checksummed header.
//!
//! The read path the paper inherits from OpenTSDB decodes one cell per
//! qualifier delta; Facebook's Gorilla showed the same data compresses
//! ~10× and scans an order of magnitude faster when a whole row's points
//! are sealed into one columnar blob. A sealed block stores every point of
//! one row (one series × one row span) as two packed bit streams —
//! timestamps as zigzag delta-of-delta with bucketed bit widths, values as
//! XOR with leading/trailing-zero windows — prefixed by a fixed header:
//!
//! ```text
//! [ magic "PGBK":4 ][ version:1 ][ count:u32 ]
//! [ first_ts:u64 ][ min_ts:u64 ][ max_ts:u64 ][ crc32:u32 ]
//! [ packed timestamp bits … ][ packed value bits … ]
//! ```
//!
//! All integers are big-endian. The CRC covers every byte of the encoded
//! block except the 4 CRC bytes themselves, so any single-byte flip —
//! header or payload — is detected. Decoding never panics: every
//! truncation or corruption maps to a typed [`BlockError`] (this module is
//! inside the pga-analyze panic-path scope).
//!
//! Blocks are *sequence-preserving*: encode→decode returns exactly the
//! input sequence — out-of-order, duplicate timestamps, NaN and -0.0
//! payloads survive bit-for-bit. Ordering/dedup policy belongs to the
//! compactor that builds blocks, not the codec.

use std::fmt;

/// Magic bytes opening every sealed block.
pub const BLOCK_MAGIC: [u8; 4] = *b"PGBK";

/// Current block format version.
pub const BLOCK_VERSION: u8 = 1;

/// Cell qualifier for a sealed-block cell: 3 bytes, so the legacy raw
/// reader (which requires `len == 2`) and the rollup reader (`len == 4`)
/// both skip it, while the block-aware reader recognises it exactly.
pub const BLOCK_QUALIFIER: [u8; 3] = [0xFB, BLOCK_VERSION, 0x00];

/// Hard cap on points per block: one row span at 1 Hz is 3600 points; the
/// cap leaves generous headroom while bounding the allocation a corrupt
/// (but CRC-colliding) count field could request.
pub const MAX_BLOCK_POINTS: usize = 1 << 20;

/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 4 + 1 + 4 + 8 + 8 + 8 + 4;

/// Typed decode/encode failure. Every truncation and corruption path of
/// [`decode_block`] returns one of these; none panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockError {
    /// Buffer shorter than the region being read.
    Truncated {
        /// Bytes required by the structure being decoded.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// Header does not start with `PGBK`.
    BadMagic,
    /// Version byte is not one this reader understands.
    UnsupportedVersion(u8),
    /// Stored CRC does not match the recomputed one.
    CrcMismatch {
        /// CRC stored in the header.
        stored: u32,
        /// CRC recomputed over the buffer.
        computed: u32,
    },
    /// Count field is zero or exceeds [`MAX_BLOCK_POINTS`].
    BadCount(u64),
    /// The packed bit streams ended before `count` entries were decoded.
    BitstreamExhausted,
    /// Encoder rejected the input (empty, mismatched lengths, too large).
    BadInput(&'static str),
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::Truncated { needed, have } => {
                write!(f, "block truncated: need {needed} bytes, have {have}")
            }
            BlockError::BadMagic => write!(f, "bad block magic"),
            BlockError::UnsupportedVersion(v) => write!(f, "unsupported block version {v}"),
            BlockError::CrcMismatch { stored, computed } => {
                write!(
                    f,
                    "block crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            BlockError::BadCount(n) => write!(f, "bad block point count {n}"),
            BlockError::BitstreamExhausted => write!(f, "block bitstream exhausted"),
            BlockError::BadInput(why) => write!(f, "bad block encoder input: {why}"),
        }
    }
}

impl std::error::Error for BlockError {}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. Hand-rolled:
/// the workspace vendors no checksum crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = build_crc_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        let entry = TABLE.get(idx).copied().unwrap_or(0); // idx < 256 by construction
        crc = (crc >> 8) ^ entry;
    }
    !crc
}

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        // pga-allow(panic-path): i < 256 by the loop bound; const fn cannot use get_mut
        table[i] = c;
        i += 1;
    }
    table
}

/// MSB-first bit writer over a growable byte buffer.
struct BitWriter {
    buf: Vec<u8>,
    /// Bits already used in the final byte of `buf` (0 means byte-aligned).
    used: u8,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            buf: Vec::new(),
            used: 0,
        }
    }

    fn write_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.buf.push(0);
        }
        if bit {
            if let Some(last) = self.buf.last_mut() {
                *last |= 1 << (7 - self.used);
            }
        }
        self.used = (self.used + 1) % 8;
    }

    /// Write the low `n` bits of `v`, MSB first. `n <= 64`.
    fn write_bits(&mut self, v: u64, n: u8) {
        let mut i = n;
        while i > 0 {
            i -= 1;
            self.write_bit((v >> i) & 1 == 1);
        }
    }

    /// Write the low `n` bits of a u128, MSB first. `n <= 128`.
    fn write_bits_wide(&mut self, v: u128, n: u8) {
        let mut i = n;
        while i > 0 {
            i -= 1;
            self.write_bit((v >> i) & 1 == 1);
        }
    }

    fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// MSB-first bit reader over a byte slice.
struct BitReader<'a> {
    buf: &'a [u8],
    /// Absolute bit cursor.
    pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    fn read_bit(&mut self) -> Result<bool, BlockError> {
        let byte = self
            .buf
            .get(self.pos / 8)
            .ok_or(BlockError::BitstreamExhausted)?;
        let bit = (byte >> (7 - (self.pos % 8) as u8)) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Read `n <= 64` bits, MSB first.
    fn read_bits(&mut self, n: u8) -> Result<u64, BlockError> {
        let mut v = 0u64;
        let mut i = 0;
        while i < n {
            v = (v << 1) | self.read_bit()? as u64;
            i += 1;
        }
        Ok(v)
    }

    /// Read `n <= 128` bits, MSB first.
    fn read_bits_wide(&mut self, n: u8) -> Result<u128, BlockError> {
        let mut v = 0u128;
        let mut i = 0;
        while i < n {
            v = (v << 1) | self.read_bit()? as u128;
            i += 1;
        }
        Ok(v)
    }
}

/// Zigzag-encode a signed 128-bit delta-of-delta into an unsigned value.
fn zigzag(v: i128) -> u128 {
    ((v << 1) ^ (v >> 127)) as u128
}

fn unzigzag(v: u128) -> i128 {
    ((v >> 1) as i128) ^ -((v & 1) as i128)
}

/// A decoded sealed block: flat column slices ready for vectorized
/// consumption, plus the header's summary range.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedBlock {
    /// Timestamps in encode order (compactors write them ascending, but the
    /// codec preserves whatever sequence it was given).
    pub timestamps: Vec<u64>,
    /// Values, parallel to `timestamps`.
    pub values: Vec<f64>,
    /// Minimum timestamp recorded in the header.
    pub min_ts: u64,
    /// Maximum timestamp recorded in the header.
    pub max_ts: u64,
}

/// Encode `(timestamps, values)` into a sealed block. The two slices must
/// be the same non-zero length, at most [`MAX_BLOCK_POINTS`]. The sequence
/// is preserved exactly — callers wanting canonical blocks sort/dedup
/// first.
pub fn encode_block(timestamps: &[u64], values: &[f64]) -> Result<Vec<u8>, BlockError> {
    if timestamps.is_empty() {
        return Err(BlockError::BadInput("empty block"));
    }
    if timestamps.len() != values.len() {
        return Err(BlockError::BadInput("timestamp/value length mismatch"));
    }
    if timestamps.len() > MAX_BLOCK_POINTS {
        return Err(BlockError::BadCount(timestamps.len() as u64));
    }
    let first_ts = timestamps.first().copied().unwrap_or(0);
    let min_ts = timestamps.iter().copied().min().unwrap_or(0);
    let max_ts = timestamps.iter().copied().max().unwrap_or(0);

    let mut bits = BitWriter::new();

    // --- Timestamp stream: zigzag delta-of-delta with bucketed widths.
    //   '0'                       dod == 0 (regular cadence)
    //   '10'  +  7 bits           |zigzag| < 2^7
    //   '110' + 12 bits           |zigzag| < 2^12
    //   '1110'+ 20 bits           |zigzag| < 2^20
    //   '11110'+32 bits           |zigzag| < 2^32
    //   '11111'+66 bits           escape: raw zigzag (covers full u64 range)
    let mut prev_ts = first_ts;
    let mut prev_delta: i128 = 0;
    for &ts in timestamps.iter().skip(1) {
        let delta = ts as i128 - prev_ts as i128;
        let dod = delta - prev_delta;
        let z = zigzag(dod);
        if z == 0 {
            bits.write_bit(false);
        } else if z < (1 << 7) {
            bits.write_bits(0b10, 2);
            bits.write_bits(z as u64, 7);
        } else if z < (1 << 12) {
            bits.write_bits(0b110, 3);
            bits.write_bits(z as u64, 12);
        } else if z < (1 << 20) {
            bits.write_bits(0b1110, 4);
            bits.write_bits(z as u64, 20);
        } else if z < (1 << 32) {
            bits.write_bits(0b11110, 5);
            bits.write_bits(z as u64, 32);
        } else {
            bits.write_bits(0b11111, 5);
            bits.write_bits_wide(z, 66);
        }
        prev_ts = ts;
        prev_delta = delta;
    }

    // --- Value stream: Gorilla XOR with leading/trailing-zero windows.
    //   first value: raw 64 bits
    //   '0'                       xor == 0 (repeat)
    //   '10' + sig bits           reuse previous window
    //   '11' + 6b leading + 6b (sig_len-1) + sig bits
    let mut prev_bits_v = values.first().copied().unwrap_or(0.0).to_bits();
    bits.write_bits(prev_bits_v, 64);
    let mut prev_leading: u8 = 64;
    let mut prev_sig: u8 = 0;
    for &v in values.iter().skip(1) {
        let vb = v.to_bits();
        let xor = vb ^ prev_bits_v;
        if xor == 0 {
            bits.write_bit(false);
        } else {
            bits.write_bit(true);
            let leading = (xor.leading_zeros() as u8).min(63);
            let trailing = xor.trailing_zeros() as u8;
            let sig = 64 - leading - trailing;
            let prev_trailing = 64u8.saturating_sub(prev_leading).saturating_sub(prev_sig);
            if prev_sig > 0 && leading >= prev_leading && trailing >= prev_trailing {
                // Reuse window: shift out the previous trailing zeros.
                bits.write_bit(false);
                bits.write_bits(xor >> prev_trailing, prev_sig);
            } else {
                bits.write_bit(true);
                bits.write_bits(leading as u64, 6);
                bits.write_bits((sig - 1) as u64, 6);
                bits.write_bits(xor >> trailing, sig);
                prev_leading = leading;
                prev_sig = sig;
            }
        }
        prev_bits_v = vb;
    }

    let payload = bits.into_bytes();
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&BLOCK_MAGIC);
    out.push(BLOCK_VERSION);
    out.extend_from_slice(&(timestamps.len() as u32).to_be_bytes());
    out.extend_from_slice(&first_ts.to_be_bytes());
    out.extend_from_slice(&min_ts.to_be_bytes());
    out.extend_from_slice(&max_ts.to_be_bytes());
    // CRC over everything except these 4 bytes: header-so-far + payload.
    let mut crc = crc32(&out);
    crc = crc32_extend(crc, &payload);
    out.extend_from_slice(&crc.to_be_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Continue a CRC-32 across a second buffer (`crc32(a ++ b)` without
/// concatenating).
fn crc32_extend(prev: u32, bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = build_crc_table();
    let mut crc = !prev;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        let entry = TABLE.get(idx).copied().unwrap_or(0);
        crc = (crc >> 8) ^ entry;
    }
    !crc
}

fn read_u32(buf: &[u8], at: usize) -> Result<u32, BlockError> {
    let s = buf.get(at..at + 4).ok_or(BlockError::Truncated {
        needed: at + 4,
        have: buf.len(),
    })?;
    let mut b = [0u8; 4];
    b.copy_from_slice(s);
    Ok(u32::from_be_bytes(b))
}

fn read_u64(buf: &[u8], at: usize) -> Result<u64, BlockError> {
    let s = buf.get(at..at + 8).ok_or(BlockError::Truncated {
        needed: at + 8,
        have: buf.len(),
    })?;
    let mut b = [0u8; 8];
    b.copy_from_slice(s);
    Ok(u64::from_be_bytes(b))
}

/// Decode a sealed block into flat column slices. Every malformed input —
/// truncated at any prefix, any byte flipped — yields a typed error.
pub fn decode_block(buf: &[u8]) -> Result<DecodedBlock, BlockError> {
    if buf.len() < HEADER_LEN {
        return Err(BlockError::Truncated {
            needed: HEADER_LEN,
            have: buf.len(),
        });
    }
    if buf.get(..4) != Some(&BLOCK_MAGIC[..]) {
        return Err(BlockError::BadMagic);
    }
    let version = buf.get(4).copied().unwrap_or(0);
    if version != BLOCK_VERSION {
        return Err(BlockError::UnsupportedVersion(version));
    }
    let count = read_u32(buf, 5)? as usize;
    let first_ts = read_u64(buf, 9)?;
    let min_ts = read_u64(buf, 17)?;
    let max_ts = read_u64(buf, 25)?;
    let stored_crc = read_u32(buf, 33)?;
    if count == 0 || count > MAX_BLOCK_POINTS {
        return Err(BlockError::BadCount(count as u64));
    }
    let head = buf.get(..33).unwrap_or(&[]);
    let payload = buf.get(HEADER_LEN..).unwrap_or(&[]);
    let computed = crc32_extend(crc32(head), payload);
    if computed != stored_crc {
        return Err(BlockError::CrcMismatch {
            stored: stored_crc,
            computed,
        });
    }

    let mut r = BitReader::new(payload);

    // Timestamp stream.
    let mut timestamps = Vec::with_capacity(count);
    timestamps.push(first_ts);
    let mut prev_ts = first_ts;
    let mut prev_delta: i128 = 0;
    for _ in 1..count {
        let z = if !r.read_bit()? {
            0u128
        } else if !r.read_bit()? {
            r.read_bits(7)? as u128
        } else if !r.read_bit()? {
            r.read_bits(12)? as u128
        } else if !r.read_bit()? {
            r.read_bits(20)? as u128
        } else if !r.read_bit()? {
            r.read_bits(32)? as u128
        } else {
            r.read_bits_wide(66)?
        };
        let dod = unzigzag(z);
        let delta = prev_delta.wrapping_add(dod);
        let ts_wide = (prev_ts as i128).wrapping_add(delta);
        // Encoders only produce deltas between valid u64 timestamps; a
        // CRC-colliding corruption could still push outside u64, so clamp
        // via wrap rather than panic.
        let ts = ts_wide as u64;
        timestamps.push(ts);
        prev_ts = ts;
        prev_delta = delta;
    }

    // Value stream.
    let mut values = Vec::with_capacity(count);
    let mut prev_bits = r.read_bits(64)?;
    values.push(f64::from_bits(prev_bits));
    let mut leading: u8 = 0;
    let mut sig: u8 = 0;
    for _ in 1..count {
        if !r.read_bit()? {
            values.push(f64::from_bits(prev_bits));
            continue;
        }
        if r.read_bit()? {
            leading = r.read_bits(6)? as u8;
            sig = r.read_bits(6)? as u8 + 1;
        } else if sig == 0 {
            // '10' before any '11' set a window: corrupt stream.
            return Err(BlockError::BitstreamExhausted);
        }
        let trailing = 64u8.saturating_sub(leading).saturating_sub(sig);
        let xor = r.read_bits(sig)? << trailing;
        prev_bits ^= xor;
        values.push(f64::from_bits(prev_bits));
    }

    Ok(DecodedBlock {
        timestamps,
        values,
        min_ts,
        max_ts,
    })
}

/// Peek at a block header without decoding the payload: returns
/// `(count, min_ts, max_ts)`. The CRC is *not* verified — use for scan
/// pruning only, never to answer queries.
pub fn peek_header(buf: &[u8]) -> Result<(usize, u64, u64), BlockError> {
    if buf.len() < HEADER_LEN {
        return Err(BlockError::Truncated {
            needed: HEADER_LEN,
            have: buf.len(),
        });
    }
    if buf.get(..4) != Some(&BLOCK_MAGIC[..]) {
        return Err(BlockError::BadMagic);
    }
    let version = buf.get(4).copied().unwrap_or(0);
    if version != BLOCK_VERSION {
        return Err(BlockError::UnsupportedVersion(version));
    }
    let count = read_u32(buf, 5)? as usize;
    let min_ts = read_u64(buf, 17)?;
    let max_ts = read_u64(buf, 25)?;
    Ok((count, min_ts, max_ts))
}

/// Verify a block buffer's integrity — header shape plus whole-buffer
/// CRC — without decoding the payload. The cheap authoritative check
/// behind scan pruning ([`peek_header`] alone is advisory) and scrub
/// passes: `Ok(())` means every header field, including the min/max
/// timestamp bounds, is trustworthy.
pub fn verify_block(buf: &[u8]) -> Result<(), BlockError> {
    if buf.len() < HEADER_LEN {
        return Err(BlockError::Truncated {
            needed: HEADER_LEN,
            have: buf.len(),
        });
    }
    if buf.get(..4) != Some(&BLOCK_MAGIC[..]) {
        return Err(BlockError::BadMagic);
    }
    let version = buf.get(4).copied().unwrap_or(0);
    if version != BLOCK_VERSION {
        return Err(BlockError::UnsupportedVersion(version));
    }
    let count = read_u32(buf, 5)? as usize;
    if count == 0 || count > MAX_BLOCK_POINTS {
        return Err(BlockError::BadCount(count as u64));
    }
    let stored_crc = read_u32(buf, 33)?;
    let head = buf.get(..33).unwrap_or(&[]);
    let payload = buf.get(HEADER_LEN..).unwrap_or(&[]);
    let computed = crc32_extend(crc32(head), payload);
    if computed != stored_crc {
        return Err(BlockError::CrcMismatch {
            stored: stored_crc,
            computed,
        });
    }
    Ok(())
}

/// True if `qualifier` marks a sealed-block cell.
pub fn is_block_qualifier(qualifier: &[u8]) -> bool {
    qualifier.len() == 3 && qualifier.first() == Some(&0xFB)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ts: &[u64], vs: &[f64]) {
        let enc = encode_block(ts, vs).expect("encode");
        let dec = decode_block(&enc).expect("decode");
        assert_eq!(dec.timestamps, ts);
        assert_eq!(dec.values.len(), vs.len());
        for (a, b) in dec.values.iter().zip(vs.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "values must be bit-identical");
        }
        assert_eq!(dec.min_ts, ts.iter().copied().min().unwrap());
        assert_eq!(dec.max_ts, ts.iter().copied().max().unwrap());
    }

    #[test]
    fn roundtrip_regular_cadence() {
        let ts: Vec<u64> = (0..3600).map(|i| 1_600_000_000 + i).collect();
        let vs: Vec<f64> = (0..3600).map(|i| (i as f64).sin() * 100.0).collect();
        roundtrip(&ts, &vs);
    }

    #[test]
    fn roundtrip_single_point() {
        roundtrip(&[42], &[3.125]);
    }

    #[test]
    fn roundtrip_adversarial_payloads() {
        let ts = [0, u64::MAX, 5, 5, 1_000_000, 3];
        let vs = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
        ];
        roundtrip(&ts, &vs);
    }

    #[test]
    fn compresses_regular_series() {
        let ts: Vec<u64> = (0..3600).map(|i| 1_600_000_000 + i).collect();
        let vs: Vec<f64> = vec![21.5; 3600];
        let enc = encode_block(&ts, &vs).unwrap();
        // Raw cells cost 10 bytes each (2 qual + 8 value); constant series
        // at fixed cadence should compress far below that.
        assert!(
            enc.len() < 3600 * 2,
            "expected strong compression, got {} bytes for 3600 points",
            enc.len()
        );
    }

    #[test]
    fn empty_and_mismatched_inputs_rejected() {
        assert!(matches!(
            encode_block(&[], &[]),
            Err(BlockError::BadInput(_))
        ));
        assert!(matches!(
            encode_block(&[1], &[]),
            Err(BlockError::BadInput(_))
        ));
    }

    #[test]
    fn every_prefix_truncation_is_typed_error() {
        let ts: Vec<u64> = (0..64).map(|i| 100 + i * 7).collect();
        let vs: Vec<f64> = (0..64).map(|i| i as f64 * 0.25).collect();
        let enc = encode_block(&ts, &vs).unwrap();
        for cut in 0..enc.len() {
            let res = decode_block(&enc[..cut]);
            assert!(res.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let ts: Vec<u64> = (0..64).map(|i| 100 + i * 7).collect();
        let vs: Vec<f64> = (0..64).map(|i| i as f64 * 0.25).collect();
        let enc = encode_block(&ts, &vs).unwrap();
        for i in 0..enc.len() {
            for bit in 0..8 {
                let mut bad = enc.clone();
                bad[i] ^= 1 << bit;
                let res = decode_block(&bad);
                assert!(
                    res.is_err(),
                    "flip of byte {i} bit {bit} must not decode clean"
                );
            }
        }
    }

    #[test]
    fn peek_matches_decode() {
        let ts = [10, 20, 30];
        let vs = [1.0, 2.0, 3.0];
        let enc = encode_block(&ts, &vs).unwrap();
        let (count, min, max) = peek_header(&enc).unwrap();
        assert_eq!((count, min, max), (3, 10, 30));
    }

    #[test]
    fn qualifier_shape() {
        assert!(is_block_qualifier(&BLOCK_QUALIFIER));
        assert!(!is_block_qualifier(&[0x00, 0x01]));
        assert!(!is_block_qualifier(&[0x00, 0x01, 0x02, 0x03]));
    }
}
