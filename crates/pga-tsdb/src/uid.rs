//! UID assignment: strings to fixed-width 3-byte identifiers.
//!
//! OpenTSDB never stores metric or tag strings in data rows; it interns
//! them through the `tsdb-uid` table into 3-byte ids and encodes those into
//! row keys. This table is the in-process equivalent, shared by every TSD
//! daemon in the deployment.

use std::collections::HashMap;

use parking_lot::RwLock;
use std::sync::Arc;

/// Reserved name prefix for system-internal series (rollup tiers and the
/// like). Names carrying it are interned and queryable but hidden from
/// `/api/suggest`, the way OpenTSDB hides its rollup shadow metrics.
pub const RESERVED_PREFIX: char = '\u{1}';

/// A 3-byte unique id (16.7M distinct names per kind, like OpenTSDB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Uid(pub [u8; 3]);

impl Uid {
    /// Construct from the low 3 bytes of a counter.
    fn from_counter(c: u32) -> Uid {
        Uid([(c >> 16) as u8, (c >> 8) as u8, c as u8])
    }

    /// Numeric view.
    pub fn as_u32(self) -> u32 {
        ((self.0[0] as u32) << 16) | ((self.0[1] as u32) << 8) | self.0[2] as u32
    }
}

/// Kind of name being interned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UidKind {
    /// Metric names ("energy").
    Metric,
    /// Tag keys ("unit", "sensor").
    TagKey,
    /// Tag values ("42", "917").
    TagValue,
}

#[derive(Default)]
struct Space {
    forward: HashMap<String, Uid>,
    reverse: HashMap<Uid, String>,
    next: u32,
}

impl Space {
    fn get_or_create(&mut self, name: &str) -> Uid {
        if let Some(&uid) = self.forward.get(name) {
            return uid;
        }
        self.next += 1;
        assert!(self.next < (1 << 24), "uid space exhausted");
        let uid = Uid::from_counter(self.next);
        self.forward.insert(name.to_string(), uid);
        self.reverse.insert(uid, name.to_string());
        uid
    }
}

/// Thread-safe, shared UID table covering all three namespaces.
#[derive(Clone, Default)]
pub struct UidTable {
    metrics: Arc<RwLock<Space>>,
    tag_keys: Arc<RwLock<Space>>,
    tag_values: Arc<RwLock<Space>>,
}

impl UidTable {
    /// Empty table.
    pub fn new() -> Self {
        UidTable::default()
    }

    fn space(&self, kind: UidKind) -> &Arc<RwLock<Space>> {
        match kind {
            UidKind::Metric => &self.metrics,
            UidKind::TagKey => &self.tag_keys,
            UidKind::TagValue => &self.tag_values,
        }
    }

    /// Intern `name`, assigning a new UID on first sight.
    pub fn get_or_create(&self, kind: UidKind, name: &str) -> Uid {
        // Fast path: read lock only.
        {
            let space = self.space(kind).read();
            if let Some(&uid) = space.forward.get(name) {
                return uid;
            }
        }
        self.space(kind).write().get_or_create(name)
    }

    /// Look up an existing UID without creating one.
    pub fn lookup(&self, kind: UidKind, name: &str) -> Option<Uid> {
        self.space(kind).read().forward.get(name).copied()
    }

    /// Reverse-resolve a UID to its name.
    pub fn resolve(&self, kind: UidKind, uid: Uid) -> Option<String> {
        self.space(kind).read().reverse.get(&uid).cloned()
    }

    /// Number of names interned in a namespace.
    pub fn len(&self, kind: UidKind) -> usize {
        self.space(kind).read().forward.len()
    }

    /// Names interned in a namespace that start with `prefix`, sorted,
    /// capped at `max` (backs the `/api/suggest` endpoint). Reserved
    /// system names ([`RESERVED_PREFIX`]) never appear.
    pub fn suggest(&self, kind: UidKind, prefix: &str, max: usize) -> Vec<String> {
        let space = self.space(kind).read();
        let mut names: Vec<String> = space
            .forward
            .keys()
            .filter(|n| n.starts_with(prefix) && !n.starts_with(RESERVED_PREFIX))
            .cloned()
            .collect();
        names.sort();
        names.truncate(max);
        names
    }

    /// True when the namespace has no names interned.
    pub fn is_empty(&self, kind: UidKind) -> bool {
        self.len(kind) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let t = UidTable::new();
        let a = t.get_or_create(UidKind::Metric, "energy");
        let b = t.get_or_create(UidKind::Metric, "energy");
        assert_eq!(a, b);
        assert_eq!(t.len(UidKind::Metric), 1);
    }

    #[test]
    fn namespaces_are_independent() {
        let t = UidTable::new();
        let m = t.get_or_create(UidKind::Metric, "x");
        let k = t.get_or_create(UidKind::TagKey, "x");
        let v = t.get_or_create(UidKind::TagValue, "x");
        // Same first-assigned id in each space — they do not collide
        // because the spaces are separate.
        assert_eq!(m.as_u32(), 1);
        assert_eq!(k.as_u32(), 1);
        assert_eq!(v.as_u32(), 1);
    }

    #[test]
    fn reverse_resolution() {
        let t = UidTable::new();
        let uid = t.get_or_create(UidKind::TagKey, "unit");
        assert_eq!(t.resolve(UidKind::TagKey, uid).unwrap(), "unit");
        assert!(t.resolve(UidKind::TagKey, Uid([9, 9, 9])).is_none());
    }

    #[test]
    fn lookup_does_not_create() {
        let t = UidTable::new();
        assert!(t.lookup(UidKind::Metric, "nope").is_none());
        assert!(t.is_empty(UidKind::Metric));
    }

    #[test]
    fn uids_are_dense_and_distinct() {
        let t = UidTable::new();
        let mut uids = Vec::new();
        for i in 0..300 {
            uids.push(t.get_or_create(UidKind::TagValue, &format!("v{i}")));
        }
        let set: std::collections::HashSet<_> = uids.iter().collect();
        assert_eq!(set.len(), 300);
        assert_eq!(uids[0].as_u32(), 1);
        assert_eq!(uids[299].as_u32(), 300);
        // Byte layout is big-endian-ish: 256th id rolls the middle byte.
        assert_eq!(uids[255].0, [0, 1, 0]);
    }

    #[test]
    fn suggest_hides_reserved_names() {
        let t = UidTable::new();
        t.get_or_create(UidKind::Metric, "energy");
        t.get_or_create(UidKind::Metric, &format!("{RESERVED_PREFIX}ru:60:energy"));
        assert_eq!(t.suggest(UidKind::Metric, "", 10), vec!["energy"]);
        assert!(t
            .suggest(UidKind::Metric, &RESERVED_PREFIX.to_string(), 10)
            .is_empty());
        assert_eq!(t.len(UidKind::Metric), 2, "reserved names still intern");
    }

    #[test]
    fn shared_across_clones() {
        let t = UidTable::new();
        let c = t.clone();
        let uid = t.get_or_create(UidKind::Metric, "energy");
        assert_eq!(c.lookup(UidKind::Metric, "energy"), Some(uid));
    }
}
