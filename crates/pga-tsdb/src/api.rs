//! OpenTSDB-compatible JSON API (`/api/put`, `/api/query`).
//!
//! Transport-agnostic: these functions map JSON request bodies to TSD
//! operations and produce JSON responses in OpenTSDB's wire format, so any
//! HTTP layer (the platform mounts them on [`pga-viz`]'s server) or test
//! can drive them directly. Downstream tools that speak OpenTSDB's HTTP
//! API — the point of building on OpenTSDB in the first place — work
//! against this endpoint.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::query::{Aggregator, QueryFilter, TimeSeries};
use crate::tsd::{Tsd, TsdError};

/// One datapoint of an `/api/put` body (OpenTSDB's schema).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct PutDatapoint {
    /// Metric name.
    pub metric: String,
    /// Timestamp in seconds.
    pub timestamp: u64,
    /// Value.
    pub value: f64,
    /// Tags (OpenTSDB requires at least one).
    pub tags: BTreeMap<String, String>,
}

/// `/api/query` request body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryRequest {
    /// Start timestamp (seconds, inclusive).
    pub start: u64,
    /// End timestamp (seconds, inclusive). Defaults to `u64::MAX/2`.
    #[serde(default = "default_end")]
    pub end: u64,
    /// Sub-queries.
    pub queries: Vec<SubQuery>,
}

fn default_end() -> u64 {
    u64::MAX / 2
}

/// One sub-query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubQuery {
    /// Metric to read.
    pub metric: String,
    /// Exact-match tag filters.
    #[serde(default)]
    pub tags: BTreeMap<String, String>,
    /// Optional downsample spec, e.g. `"60s-avg"`.
    #[serde(default)]
    pub downsample: Option<String>,
}

/// One output series (OpenTSDB's response element: `dps` maps timestamp
/// strings to values).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryResponseSeries {
    /// Metric name.
    pub metric: String,
    /// Series tags.
    pub tags: BTreeMap<String, String>,
    /// Data points keyed by stringified timestamp.
    pub dps: BTreeMap<String, f64>,
}

/// Typed description of one failed shard of a scatter-gather query —
/// the wire form of the read path's partial-result contract. `kind` is
/// one of `"busy"`, `"deadline_expired"`, `"storage"`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardError {
    /// Salt shard (region) that failed.
    pub shard: u8,
    /// Failure class: `busy`, `deadline_expired`, or `storage`.
    pub kind: String,
    /// Retry hint carried by a `busy` rejection.
    #[serde(default)]
    pub retry_after_ms: Option<u64>,
}

/// Partial-result descriptor attached to degraded query responses: which
/// shards failed out of how many, so a dashboard can render the series it
/// did get and badge the chart as degraded instead of hanging or showing
/// an empty plot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialInfo {
    /// Shards that failed, with their typed failure class.
    pub failed_shards: Vec<ShardError>,
    /// Total shards the query fanned out to.
    pub total_shards: u32,
}

impl PartialInfo {
    /// Merge another sub-query's partial info into this one.
    pub fn merge(&mut self, other: PartialInfo) {
        self.failed_shards.extend(other.failed_shards);
        self.total_shards += other.total_shards;
    }
}

/// Result of executing one sub-query: the series that were assembled plus
/// an optional partial-result marker when some shards failed.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Series assembled (downsampling already applied when requested).
    pub series: Vec<TimeSeries>,
    /// Present when one or more shards failed.
    pub partial: Option<PartialInfo>,
}

/// A query execution strategy behind `/api/query`. The raw [`Tsd`] path
/// implements it directly; `pga-query`'s planned rollup/scatter-gather
/// engine implements it for the dashboard serving layer.
pub trait QueryExecutor {
    /// Execute one `(metric, filter, range, downsample)` sub-query.
    /// Never blocks unboundedly: failed or slow shards surface in
    /// [`ExecOutcome::partial`] instead of an error.
    fn execute(
        &self,
        metric: &str,
        filter: &QueryFilter,
        start: u64,
        end: u64,
        downsample: Option<(u64, Aggregator)>,
    ) -> ExecOutcome;
}

impl QueryExecutor for Tsd {
    /// The raw path: full scans, serial per shard. A storage failure
    /// degrades the whole request (the serial scan cannot tell which
    /// later shards would have succeeded).
    fn execute(
        &self,
        metric: &str,
        filter: &QueryFilter,
        start: u64,
        end: u64,
        downsample: Option<(u64, Aggregator)>,
    ) -> ExecOutcome {
        let total_shards = self.codec().salt_range().len() as u32;
        match self.query(metric, filter, start, end) {
            Ok(series) => ExecOutcome {
                series: series
                    .into_iter()
                    .map(|s| match downsample {
                        Some((interval, agg)) => s.downsample(interval, agg),
                        None => s,
                    })
                    .collect(),
                partial: None,
            },
            Err(e) => ExecOutcome {
                series: Vec::new(),
                partial: Some(PartialInfo {
                    failed_shards: vec![ShardError {
                        shard: 0,
                        kind: shard_error_kind(&e),
                        retry_after_ms: e.retry_after_ms(),
                    }],
                    total_shards,
                }),
            },
        }
    }
}

/// Map a storage error to its wire failure class.
pub fn shard_error_kind(e: &TsdError) -> String {
    if e.is_busy() {
        "busy".into()
    } else if e.is_deadline_expired() {
        "deadline_expired".into()
    } else {
        "storage".into()
    }
}

/// Body of a degraded (HTTP 503) query response: the typed partial-result
/// descriptor plus every series that *was* assembled, so clients can
/// render a degraded chart rather than an empty one.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DegradedBody {
    /// Which shards failed, out of how many.
    pub partial: PartialInfo,
    /// Series that were assembled despite the failures.
    pub series: Vec<QueryResponseSeries>,
}

/// API failure, rendered as an OpenTSDB-style error JSON.
#[derive(Debug)]
pub enum ApiError {
    /// Malformed request body.
    BadRequest(String),
    /// Storage failure.
    Storage(TsdError),
    /// Some query shards failed: partial results attached.
    Degraded(Box<DegradedBody>),
}

impl ApiError {
    /// HTTP status code for this error.
    pub fn status(&self) -> u16 {
        match self {
            ApiError::BadRequest(_) => 400,
            ApiError::Storage(_) => 500,
            ApiError::Degraded(_) => 503,
        }
    }

    /// OpenTSDB-style error body. Degraded responses additionally carry
    /// `partial` and `series` alongside `error`.
    pub fn to_json(&self) -> String {
        let (code, msg) = match self {
            ApiError::BadRequest(m) => (400, m.clone()),
            ApiError::Storage(e) => (500, e.to_string()),
            ApiError::Degraded(d) => {
                let msg = format!(
                    "partial results: {}/{} shards failed",
                    d.partial.failed_shards.len(),
                    d.partial.total_shards
                );
                let partial = serde_json::to_value(&d.partial);
                let series = serde_json::to_value(&d.series);
                let body = serde_json::json!({
                    "error": {"code": 503, "message": msg},
                    "partial": partial,
                    "series": series,
                });
                return serde_json::to_string(&body).unwrap_or_default();
            }
        };
        serde_json::json!({"error": {"code": code, "message": msg}}).to_string()
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::BadRequest(m) => write!(f, "bad request: {m}"),
            ApiError::Storage(e) => write!(f, "storage: {e}"),
            ApiError::Degraded(d) => write!(
                f,
                "degraded: {}/{} shards failed",
                d.partial.failed_shards.len(),
                d.partial.total_shards
            ),
        }
    }
}

impl std::error::Error for ApiError {}

/// Handle an `/api/put` body: a single datapoint object or an array of
/// them (both accepted, like OpenTSDB). Returns the number of points
/// written.
pub fn handle_put(tsd: &Tsd, body: &str) -> Result<usize, ApiError> {
    let points: Vec<PutDatapoint> = if body.trim_start().starts_with('[') {
        serde_json::from_str(body).map_err(|e| ApiError::BadRequest(e.to_string()))?
    } else {
        let one: PutDatapoint =
            serde_json::from_str(body).map_err(|e| ApiError::BadRequest(e.to_string()))?;
        vec![one]
    };
    for p in &points {
        if p.tags.is_empty() {
            return Err(ApiError::BadRequest(format!(
                "datapoint for metric {} has no tags",
                p.metric
            )));
        }
        if !p.value.is_finite() {
            return Err(ApiError::BadRequest("non-finite value".into()));
        }
    }
    for p in &points {
        let tags: Vec<(&str, &str)> = p
            .tags
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        tsd.put(&p.metric, &tags, p.timestamp, p.value)
            .map_err(ApiError::Storage)?;
    }
    Ok(points.len())
}

/// Parse a downsample spec like `"60s-avg"` into `(interval, aggregator)`.
pub fn parse_downsample(spec: &str) -> Result<(u64, Aggregator), ApiError> {
    let (interval_part, agg_part) = spec
        .split_once('-')
        .ok_or_else(|| ApiError::BadRequest(format!("bad downsample spec: {spec}")))?;
    let interval: u64 = interval_part
        .strip_suffix('s')
        .unwrap_or(interval_part)
        .parse()
        .map_err(|_| ApiError::BadRequest(format!("bad downsample interval: {spec}")))?;
    if interval == 0 {
        return Err(ApiError::BadRequest(
            "downsample interval must be > 0".into(),
        ));
    }
    let agg = match agg_part {
        "avg" => Aggregator::Avg,
        "sum" => Aggregator::Sum,
        "min" => Aggregator::Min,
        "max" => Aggregator::Max,
        "count" => Aggregator::Count,
        other => return Err(ApiError::BadRequest(format!("unknown aggregator: {other}"))),
    };
    Ok((interval, agg))
}

/// Handle an `/api/suggest` query string (e.g. `type=metrics&q=ener&max=10`).
/// Types follow OpenTSDB: `metrics`, `tagk`, `tagv`. Returns a JSON array
/// of names.
pub fn handle_suggest(tsd: &Tsd, query_string: &str) -> Result<String, ApiError> {
    use crate::uid::UidKind;
    let mut kind = None;
    let mut q = String::new();
    let mut max = 25usize;
    for pair in query_string.trim_start_matches('?').split('&') {
        let Some((k, v)) = pair.split_once('=') else {
            continue;
        };
        match k {
            "type" => {
                kind = Some(match v {
                    "metrics" => UidKind::Metric,
                    "tagk" => UidKind::TagKey,
                    "tagv" => UidKind::TagValue,
                    other => {
                        return Err(ApiError::BadRequest(format!(
                            "unknown suggest type: {other}"
                        )))
                    }
                })
            }
            "q" => q = v.to_string(),
            "max" => {
                max = v
                    .parse()
                    .map_err(|_| ApiError::BadRequest(format!("bad max: {v}")))?
            }
            _ => {}
        }
    }
    let kind = kind.ok_or_else(|| ApiError::BadRequest("missing type parameter".into()))?;
    let names = tsd.codec().uids().suggest(kind, &q, max);
    serde_json::to_string(&names).map_err(|e| ApiError::BadRequest(e.to_string()))
}

/// Handle an `/api/query` body against the raw [`Tsd`] path. Shard
/// failures surface as [`ApiError::Degraded`] (HTTP 503) with the typed
/// partial-result body.
pub fn handle_query(tsd: &Tsd, body: &str) -> Result<String, ApiError> {
    handle_query_with(tsd, body)
}

/// Handle an `/api/query` body through any [`QueryExecutor`] — the raw
/// TSD path or the serving-layer engine from `pga-query`. When every
/// shard answers, returns the OpenTSDB-style series array; when some
/// shards fail, returns [`ApiError::Degraded`] carrying both the typed
/// shard errors and every series that was assembled.
pub fn handle_query_with<E: QueryExecutor + ?Sized>(
    exec: &E,
    body: &str,
) -> Result<String, ApiError> {
    let req: QueryRequest =
        serde_json::from_str(body).map_err(|e| ApiError::BadRequest(e.to_string()))?;
    if req.end < req.start {
        return Err(ApiError::BadRequest("end before start".into()));
    }
    let mut out: Vec<QueryResponseSeries> = Vec::new();
    let mut partial: Option<PartialInfo> = None;
    for sub in &req.queries {
        let mut filter = QueryFilter::any();
        for (k, v) in &sub.tags {
            filter = filter.with(k, v);
        }
        let downsample = sub
            .downsample
            .as_deref()
            .map(parse_downsample)
            .transpose()?;
        let outcome = exec.execute(&sub.metric, &filter, req.start, req.end, downsample);
        for s in outcome.series {
            out.push(QueryResponseSeries {
                metric: s.metric.clone(),
                tags: s.tags.clone(),
                dps: s
                    .points
                    .iter()
                    .map(|p| (p.timestamp.to_string(), p.value))
                    .collect(),
            });
        }
        if let Some(p) = outcome.partial {
            match &mut partial {
                Some(acc) => acc.merge(p),
                None => partial = Some(p),
            }
        }
    }
    if let Some(partial) = partial {
        return Err(ApiError::Degraded(Box::new(DegradedBody {
            partial,
            series: out,
        })));
    }
    serde_json::to_string(&out).map_err(|e| ApiError::BadRequest(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{KeyCodec, KeyCodecConfig};
    use crate::tsd::TsdConfig;
    use crate::uid::UidTable;
    use pga_cluster::coordinator::Coordinator;
    use pga_minibase::{Client, Master, RegionConfig, ServerConfig, TableDescriptor};

    fn tsd() -> (Master, Tsd) {
        let codec = KeyCodec::new(
            KeyCodecConfig {
                salt_buckets: 4,
                row_span_secs: 3600,
            },
            UidTable::new(),
        );
        let coord = Coordinator::new(10_000);
        let mut master = Master::bootstrap(2, ServerConfig::default(), coord, 0);
        master.create_table(&TableDescriptor {
            name: "tsdb".into(),
            split_points: codec.split_points(),
            region_config: RegionConfig::default(),
        });
        let t = Tsd::new(codec, Client::connect(&master), TsdConfig::default());
        (master, t)
    }

    #[test]
    fn put_single_and_array_bodies() {
        let (m, t) = tsd();
        let one =
            r#"{"metric":"energy","timestamp":5,"value":1.5,"tags":{"unit":"1","sensor":"2"}}"#;
        assert_eq!(handle_put(&t, one).unwrap(), 1);
        let many = r#"[
            {"metric":"energy","timestamp":6,"value":2.5,"tags":{"unit":"1","sensor":"2"}},
            {"metric":"energy","timestamp":7,"value":3.5,"tags":{"unit":"1","sensor":"3"}}
        ]"#;
        assert_eq!(handle_put(&t, many).unwrap(), 2);
        m.shutdown();
    }

    #[test]
    fn put_rejects_bad_bodies() {
        let (m, t) = tsd();
        assert!(matches!(
            handle_put(&t, "not json"),
            Err(ApiError::BadRequest(_))
        ));
        let no_tags = r#"{"metric":"energy","timestamp":5,"value":1.0,"tags":{}}"#;
        assert!(matches!(
            handle_put(&t, no_tags),
            Err(ApiError::BadRequest(_))
        ));
        m.shutdown();
    }

    #[test]
    fn query_roundtrip_through_json() {
        let (m, t) = tsd();
        for ts in 0..10u64 {
            t.put("energy", &[("unit", "1"), ("sensor", "2")], ts, ts as f64)
                .unwrap();
        }
        let body = r#"{"start":2,"end":5,"queries":[{"metric":"energy","tags":{"unit":"1"}}]}"#;
        let resp = handle_query(&t, body).unwrap();
        let series: Vec<QueryResponseSeries> = serde_json::from_str(&resp).unwrap();
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].dps.len(), 4);
        assert_eq!(series[0].dps["3"], 3.0);
        m.shutdown();
    }

    #[test]
    fn query_with_downsample() {
        let (m, t) = tsd();
        for ts in 0..20u64 {
            t.put("energy", &[("unit", "1")], ts, ts as f64).unwrap();
        }
        let body = r#"{"start":0,"end":19,"queries":[{"metric":"energy","downsample":"10s-avg"}]}"#;
        let resp = handle_query(&t, body).unwrap();
        let series: Vec<QueryResponseSeries> = serde_json::from_str(&resp).unwrap();
        assert_eq!(series[0].dps.len(), 2);
        assert_eq!(series[0].dps["0"], 4.5);
        assert_eq!(series[0].dps["10"], 14.5);
        m.shutdown();
    }

    #[test]
    fn query_rejects_bad_ranges_and_specs() {
        let (m, t) = tsd();
        let backwards = r#"{"start":10,"end":5,"queries":[]}"#;
        assert!(matches!(
            handle_query(&t, backwards),
            Err(ApiError::BadRequest(_))
        ));
        assert!(parse_downsample("10s-median").is_err());
        assert!(parse_downsample("0s-avg").is_err());
        assert!(parse_downsample("nonsense").is_err());
        m.shutdown();
    }

    #[test]
    fn parse_downsample_variants() {
        assert!(matches!(
            parse_downsample("60s-avg").unwrap(),
            (60, Aggregator::Avg)
        ));
        assert!(matches!(
            parse_downsample("5-sum").unwrap(),
            (5, Aggregator::Sum)
        ));
        assert!(matches!(
            parse_downsample("1s-count").unwrap(),
            (1, Aggregator::Count)
        ));
    }

    #[test]
    fn suggest_lists_interned_names() {
        let (m, t) = tsd();
        t.put("energy", &[("unit", "1"), ("sensor", "2")], 1, 1.0)
            .unwrap();
        t.put("energy.aux", &[("unit", "1")], 1, 1.0).unwrap();
        let metrics: Vec<String> =
            serde_json::from_str(&handle_suggest(&t, "type=metrics&q=ener").unwrap()).unwrap();
        assert_eq!(
            metrics,
            vec!["energy".to_string(), "energy.aux".to_string()]
        );
        let tagks: Vec<String> =
            serde_json::from_str(&handle_suggest(&t, "type=tagk&q=").unwrap()).unwrap();
        assert_eq!(tagks, vec!["sensor".to_string(), "unit".to_string()]);
        let capped: Vec<String> =
            serde_json::from_str(&handle_suggest(&t, "type=tagv&q=&max=1").unwrap()).unwrap();
        assert_eq!(capped.len(), 1);
        assert!(matches!(
            handle_suggest(&t, "type=bogus&q="),
            Err(ApiError::BadRequest(_))
        ));
        assert!(matches!(
            handle_suggest(&t, "q=x"),
            Err(ApiError::BadRequest(_))
        ));
        m.shutdown();
    }

    #[test]
    fn api_error_json_shape() {
        let e = ApiError::BadRequest("nope".into());
        assert_eq!(e.status(), 400);
        let v: serde_json::Value = serde_json::from_str(&e.to_json()).unwrap();
        assert_eq!(v["error"]["code"], 400);
        assert_eq!(v["error"]["message"], "nope");
    }

    /// Executor that fails one shard but still returns a series — the
    /// partial-result contract a slow region server produces.
    struct HalfDeadExecutor;

    impl QueryExecutor for HalfDeadExecutor {
        fn execute(
            &self,
            metric: &str,
            _filter: &QueryFilter,
            _start: u64,
            _end: u64,
            _downsample: Option<(u64, Aggregator)>,
        ) -> ExecOutcome {
            ExecOutcome {
                series: vec![TimeSeries {
                    metric: metric.to_string(),
                    tags: BTreeMap::new(),
                    points: vec![crate::query::DataPoint {
                        timestamp: 1,
                        value: 2.0,
                    }],
                }],
                partial: Some(PartialInfo {
                    failed_shards: vec![ShardError {
                        shard: 3,
                        kind: "busy".into(),
                        retry_after_ms: Some(40),
                    }],
                    total_shards: 4,
                }),
            }
        }
    }

    #[test]
    fn degraded_query_returns_typed_503_with_partial_series() {
        let body = r#"{"start":0,"end":10,"queries":[{"metric":"energy"}]}"#;
        let err = handle_query_with(&HalfDeadExecutor, body).unwrap_err();
        assert_eq!(err.status(), 503);
        let v: serde_json::Value = serde_json::from_str(&err.to_json()).unwrap();
        assert_eq!(v["error"]["code"], 503);
        assert_eq!(v["partial"]["total_shards"], 4);
        assert_eq!(v["partial"]["failed_shards"][0]["shard"], 3);
        assert_eq!(v["partial"]["failed_shards"][0]["kind"], "busy");
        assert_eq!(v["partial"]["failed_shards"][0]["retry_after_ms"], 40);
        // The series that did come back ride along for degraded charts.
        assert_eq!(v["series"][0]["dps"]["1"], 2.0);
    }

    #[test]
    fn tsd_implements_executor_with_downsample() {
        let (m, t) = tsd();
        for ts in 0..20u64 {
            t.put("energy", &[("unit", "1")], ts, ts as f64).unwrap();
        }
        let out = QueryExecutor::execute(
            &t,
            "energy",
            &QueryFilter::any(),
            0,
            19,
            Some((10, Aggregator::Avg)),
        );
        assert!(out.partial.is_none());
        assert_eq!(out.series[0].points.len(), 2);
        assert_eq!(out.series[0].points[0].value, 4.5);
        m.shutdown();
    }

    #[test]
    fn put_then_query_via_api_only() {
        let (m, t) = tsd();
        handle_put(
            &t,
            r#"{"metric":"anomaly","timestamp":100,"value":9.5,"tags":{"unit":"80","sensor":"7"}}"#,
        )
        .unwrap();
        let resp = handle_query(
            &t,
            r#"{"start":0,"end":200,"queries":[{"metric":"anomaly","tags":{"unit":"80"}}]}"#,
        )
        .unwrap();
        let series: Vec<QueryResponseSeries> = serde_json::from_str(&resp).unwrap();
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].dps["100"], 9.5);
        m.shutdown();
    }
}
