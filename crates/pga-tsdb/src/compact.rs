//! Background sealing: a [`pga_minibase::CompactionRewriter`] that folds
//! finished rows of raw cells into canonical columnar blocks.
//!
//! During a MiniBase major compaction every row of the merged output is
//! offered to the installed rewriter. The [`BlockRewriter`] seals a row
//! when two conditions hold:
//!
//! 1. the row is **finished** — `base_time + row_span <= watermark`, where
//!    the watermark is the highest timestamp the ingest tier has
//!    acknowledged (see `Tsd::seal_watermark`), so a row with in-flight
//!    writers is never frozen mid-fill; and
//! 2. it holds raw cells (or more than one sealed block to fold).
//!
//! Sealing is a pure rewrite: the raw cells' points and any existing
//! block's points are merged (raw wins at equal timestamps — a raw cell
//! that postdates a seal is newer information), sorted, deduplicated, and
//! encoded as one [`crate::block`] cell. MiniBase has no deletes, so this
//! rewrite is the only mechanism that ever physically supersedes cells —
//! which is why the pga-faultsim compaction oracle and the seeded mutant E
//! (drop-the-overlap, via
//! [`pga_minibase::FaultPlane::drop_sealed_overlap`]) guard this path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use pga_minibase::{CompactionRewriter, KeyValue, RewriteContext};

use crate::block::{self, BLOCK_QUALIFIER};

/// Compaction rewriter sealing finished TSDB rows into columnar blocks.
#[derive(Debug)]
pub struct BlockRewriter {
    row_span_secs: u64,
    /// Highest acknowledged write timestamp; rows wholly below it seal.
    watermark: Arc<AtomicU64>,
}

impl BlockRewriter {
    /// Build a rewriter for tables written with `row_span_secs` rows,
    /// gated by `watermark` (share the handle from `Tsd::seal_watermark`,
    /// or drive it manually in tests/benches).
    pub fn new(row_span_secs: u64, watermark: Arc<AtomicU64>) -> Self {
        BlockRewriter {
            row_span_secs: row_span_secs.max(1),
            watermark,
        }
    }

    /// Current watermark value.
    pub fn watermark(&self) -> u64 {
        self.watermark.load(Ordering::Acquire)
    }

    /// Advance the watermark to at least `ts` (monotonic).
    pub fn advance(&self, ts: u64) {
        self.watermark.fetch_max(ts, Ordering::AcqRel);
    }
}

/// Base time parsed from a TSDB row key, or `None` when the row does not
/// follow the `[salt][metric:3][base:4][tagk:3 tagv:3]*` layout.
fn row_base_time(row: &[u8]) -> Option<u64> {
    if row.len() < 8 || !(row.len() - 8).is_multiple_of(6) {
        return None;
    }
    let b = row.get(4..8)?;
    let mut b4 = [0u8; 4];
    b4.copy_from_slice(b);
    Some(u32::from_be_bytes(b4) as u64)
}

impl CompactionRewriter for BlockRewriter {
    fn rewrite_row(&self, ctx: &RewriteContext<'_>, cells: &[KeyValue]) -> Option<Vec<KeyValue>> {
        let base = row_base_time(ctx.row)?;
        // Only seal rows every acked writer has moved past.
        let finished = base
            .checked_add(self.row_span_secs)
            .is_some_and(|end| end <= self.watermark.load(Ordering::Acquire));
        if !finished {
            return None;
        }

        // Partition the row: raw cells to consume (newest version per
        // qualifier), existing sealed blocks to fold, everything else
        // (write-path blobs, rollup qualifiers) passes through untouched.
        let mut raw: Vec<(u64, f64, u64)> = Vec::new(); // (ts, value, version)
        let mut sealed: Vec<&KeyValue> = Vec::new();
        let mut passthrough: Vec<KeyValue> = Vec::new();
        let mut last_qual: Option<&[u8]> = None;
        for cell in cells {
            let newest_of_qual = last_qual != Some(&cell.qualifier[..]);
            last_qual = Some(&cell.qualifier[..]);
            if block::is_block_qualifier(&cell.qualifier) {
                if newest_of_qual {
                    sealed.push(cell);
                }
                // Older block versions are dropped: superseded seals.
                continue;
            }
            let is_raw = cell.qualifier.len() == 2 && cell.qualifier[..] != [0xFF, 0xFF];
            if !is_raw {
                passthrough.push(cell.clone());
                continue;
            }
            if !newest_of_qual {
                continue; // older version of a raw cell: superseded
            }
            let (Some(q), Some(v)) = (cell.qualifier.get(..2), cell.value.get(..8)) else {
                passthrough.push(cell.clone());
                continue;
            };
            if cell.value.len() != 8 {
                passthrough.push(cell.clone());
                continue;
            }
            let mut q2 = [0u8; 2];
            q2.copy_from_slice(q);
            let offset = u16::from_be_bytes(q2) as u64;
            let mut v8 = [0u8; 8];
            v8.copy_from_slice(v);
            raw.push((base + offset, f64::from_be_bytes(v8), cell.timestamp));
        }

        if raw.is_empty() && sealed.len() <= 1 {
            return None; // nothing to seal or fold
        }

        // Deliberate injection site: mutant E drops the raw cells that
        // overlap an existing seal ("the block is already complete"),
        // silently losing late-arriving acked points. The faithful path
        // always merges.
        if ctx.drop_sealed_overlap && !sealed.is_empty() {
            let mut out = passthrough;
            out.extend(sealed.iter().map(|&c| c.clone()));
            return Some(out);
        }

        // Decode existing seals; a block we cannot read means we leave the
        // whole row untouched — never discard cells behind undecodable
        // data.
        let mut merged: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
        let mut version: u64 = 0;
        for cell in &sealed {
            let Ok(decoded) = block::decode_block(&cell.value) else {
                return None;
            };
            for (&ts, &v) in decoded.timestamps.iter().zip(decoded.values.iter()) {
                merged.insert(ts, v);
            }
            version = version.max(cell.timestamp);
        }
        for &(ts, v, cell_version) in &raw {
            merged.insert(ts, v); // raw wins at equal timestamps
            version = version.max(cell_version);
        }
        if merged.is_empty() || merged.len() > block::MAX_BLOCK_POINTS {
            return None;
        }

        let timestamps: Vec<u64> = merged.keys().copied().collect();
        let values: Vec<f64> = merged.values().copied().collect();
        let Ok(encoded) = block::encode_block(&timestamps, &values) else {
            return None; // encoder rejected the row: keep it as-is
        };
        let mut out = passthrough;
        out.push(KeyValue {
            row: Bytes::copy_from_slice(ctx.row),
            qualifier: Bytes::copy_from_slice(&BLOCK_QUALIFIER),
            timestamp: version,
            value: Bytes::from(encoded),
        });
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_minibase::RegionId;

    fn raw_cell(row: &[u8], offset: u16, value: f64, version: u64) -> KeyValue {
        KeyValue::new(
            row.to_vec(),
            offset.to_be_bytes().to_vec(),
            version,
            value.to_be_bytes().to_vec(),
        )
    }

    /// A minimal well-formed TSDB row key: salt + metric + base + one tag.
    fn row_key(base: u32) -> Vec<u8> {
        let mut row = vec![0u8; 14];
        row[1..4].copy_from_slice(&[0, 0, 1]);
        row[4..8].copy_from_slice(&base.to_be_bytes());
        row[8..14].copy_from_slice(&[0, 0, 1, 0, 0, 1]);
        row
    }

    fn ctx<'a>(row: &'a [u8], drop_overlap: bool) -> RewriteContext<'a> {
        RewriteContext {
            region: RegionId(1),
            row,
            drop_sealed_overlap: drop_overlap,
        }
    }

    fn rewriter(span: u64, watermark: u64) -> BlockRewriter {
        BlockRewriter::new(span, Arc::new(AtomicU64::new(watermark)))
    }

    #[test]
    fn unfinished_row_is_left_alone() {
        let row = row_key(3600);
        let cells = vec![raw_cell(&row, 0, 1.0, 3_600_000)];
        // Watermark inside the row: writers may still be filling it.
        let rw = rewriter(3600, 7199);
        assert!(rw.rewrite_row(&ctx(&row, false), &cells).is_none());
        // Watermark at the row boundary: sealed.
        let rw = rewriter(3600, 7200);
        assert!(rw.rewrite_row(&ctx(&row, false), &cells).is_some());
    }

    #[test]
    fn seals_raw_cells_into_one_block() {
        let row = row_key(0);
        let cells: Vec<KeyValue> = (0..10u16)
            .map(|i| raw_cell(&row, i * 7, i as f64, (i as u64) * 7000))
            .collect();
        let rw = rewriter(3600, 10_000);
        let out = rw.rewrite_row(&ctx(&row, false), &cells).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(&out[0].qualifier[..], &BLOCK_QUALIFIER);
        let decoded = block::decode_block(&out[0].value).unwrap();
        assert_eq!(
            decoded.timestamps,
            (0..10).map(|i| i * 7).collect::<Vec<u64>>()
        );
        assert_eq!(
            decoded.values,
            (0..10).map(|i| i as f64).collect::<Vec<f64>>()
        );
        assert_eq!(out[0].timestamp, 63_000, "version = newest consumed cell");
    }

    #[test]
    fn reseal_merges_block_with_late_raw_and_raw_wins_ties() {
        let row = row_key(0);
        let first: Vec<KeyValue> = vec![
            raw_cell(&row, 10, 1.0, 10_000),
            raw_cell(&row, 20, 2.0, 20_000),
        ];
        let rw = rewriter(3600, 10_000);
        let sealed = rw.rewrite_row(&ctx(&row, false), &first).unwrap();
        // Late raw arrivals: a new point at 15 and an overwrite at 20.
        let mut cells = sealed.clone();
        cells.push(raw_cell(&row, 15, 1.5, 15_000));
        cells.push(raw_cell(&row, 20, 9.9, 21_000));
        cells.sort();
        let out = rw.rewrite_row(&ctx(&row, false), &cells).unwrap();
        assert_eq!(out.len(), 1);
        let decoded = block::decode_block(&out[0].value).unwrap();
        assert_eq!(decoded.timestamps, vec![10, 15, 20]);
        assert_eq!(decoded.values, vec![1.0, 1.5, 9.9]);
    }

    #[test]
    fn mutant_drop_overlap_loses_late_points() {
        let row = row_key(0);
        let first = vec![raw_cell(&row, 10, 1.0, 10_000)];
        let rw = rewriter(3600, 10_000);
        let sealed = rw.rewrite_row(&ctx(&row, false), &first).unwrap();
        let mut cells = sealed.clone();
        cells.push(raw_cell(&row, 15, 1.5, 15_000));
        cells.sort();
        let out = rw.rewrite_row(&ctx(&row, true), &cells).unwrap();
        let decoded = block::decode_block(&out[0].value).unwrap();
        assert_eq!(decoded.timestamps, vec![10], "mutant drops the late point");
    }

    #[test]
    fn non_tsdb_rows_and_foreign_cells_pass_through() {
        let rw = rewriter(3600, u64::MAX);
        // Malformed row key: not ours to touch.
        assert!(rw
            .rewrite_row(
                &ctx(b"free-form-row", false),
                &[raw_cell(b"free-form-row", 0, 1.0, 0)]
            )
            .is_none());
        // Rollup-style 4-byte qualifiers ride along unchanged.
        let row = row_key(0);
        let rollup = KeyValue::new(row.clone(), vec![0, 1, 2, 3], 5, b"agg".to_vec());
        let mut cells = vec![rollup.clone(), raw_cell(&row, 1, 2.0, 1000)];
        cells.sort();
        let out = rw.rewrite_row(&ctx(&row, false), &cells).unwrap();
        assert!(out.contains(&rollup));
        assert!(out.iter().any(|c| block::is_block_qualifier(&c.qualifier)));
    }

    #[test]
    fn rollup_only_row_is_untouched() {
        let rw = rewriter(3600, u64::MAX);
        let row = row_key(0);
        let cells = vec![KeyValue::new(
            row.clone(),
            vec![0, 1, 2, 3],
            5,
            b"agg".to_vec(),
        )];
        assert!(rw.rewrite_row(&ctx(&row, false), &cells).is_none());
    }

    #[test]
    fn undecodable_existing_block_freezes_the_row() {
        let rw = rewriter(3600, u64::MAX);
        let row = row_key(0);
        let mut cells = vec![
            KeyValue::new(
                row.clone(),
                BLOCK_QUALIFIER.to_vec(),
                9,
                b"garbage".to_vec(),
            ),
            raw_cell(&row, 1, 2.0, 1000),
        ];
        cells.sort();
        assert!(
            rw.rewrite_row(&ctx(&row, false), &cells).is_none(),
            "never rewrite behind a block we cannot decode"
        );
    }
}
