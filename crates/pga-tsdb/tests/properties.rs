//! Property tests for the TSDB layer: codec roundtrips, salt stability,
//! put/query equivalence against a naive model, block-codec round-trips
//! over adversarial series, corruption/truncation behaviour, and the
//! sealed-block vs legacy-scan differential.

use std::collections::BTreeMap;

use proptest::prelude::*;

use pga_cluster::coordinator::Coordinator;
use pga_minibase::{Client, Master, RegionConfig, ServerConfig, TableDescriptor};
use pga_tsdb::{
    decode_block, encode_block, is_block_qualifier, BlockError, KeyCodec, KeyCodecConfig,
    QueryFilter, Tsd, TsdConfig, TsdError, UidTable,
};

fn codec(buckets: u8) -> KeyCodec {
    KeyCodec::new(
        KeyCodecConfig {
            salt_buckets: buckets,
            row_span_secs: 3600,
        },
        UidTable::new(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_roundtrip_any_point(
        unit in 0u32..10_000,
        sensor in 0u32..10_000,
        ts in 0u64..100_000_000,
        value in -1e12f64..1e12,
        buckets in 1u8..32,
    ) {
        let c = codec(buckets);
        let u = unit.to_string();
        let s = sensor.to_string();
        let tags = [("unit", u.as_str()), ("sensor", s.as_str())];
        let row = c.row_key("energy", &tags, ts);
        let point = c.decode(&row, &c.qualifier(ts), &c.value(value)).unwrap();
        prop_assert_eq!(point.metric, "energy");
        prop_assert_eq!(point.timestamp, ts);
        prop_assert_eq!(point.value, value);
        let tag_map: BTreeMap<_, _> = point.tags.into_iter().collect();
        prop_assert_eq!(tag_map.get("unit").map(String::as_str), Some(u.as_str()));
        prop_assert_eq!(tag_map.get("sensor").map(String::as_str), Some(s.as_str()));
    }

    #[test]
    fn salt_is_stable_over_time_and_within_range(
        unit in 0u32..1000,
        sensor in 0u32..1000,
        t1 in 0u64..10_000_000,
        t2 in 0u64..10_000_000,
        buckets in 1u8..32,
    ) {
        let c = codec(buckets);
        let u = unit.to_string();
        let s = sensor.to_string();
        let tags = [("unit", u.as_str()), ("sensor", s.as_str())];
        let r1 = c.row_key("energy", &tags, t1);
        let r2 = c.row_key("energy", &tags, t2);
        prop_assert_eq!(r1[0], r2[0], "series hops buckets");
        prop_assert!(r1[0] < buckets);
    }

    #[test]
    fn row_keys_order_by_time_within_series(
        unit in 0u32..100,
        hours in proptest::collection::vec(0u64..10_000, 2..8),
        buckets in 1u8..8,
    ) {
        let c = codec(buckets);
        let u = unit.to_string();
        let tags = [("unit", u.as_str()), ("sensor", "0")];
        let mut sorted = hours.clone();
        sorted.sort_unstable();
        let keys: Vec<_> = sorted.iter().map(|h| c.row_key("energy", &tags, h * 3600)).collect();
        for w in keys.windows(2) {
            prop_assert!(w[0] <= w[1], "later hour must not sort earlier");
        }
    }
}

/// Adversarial series strategy: timestamps from the full `u64` range (so
/// out-of-order and duplicate timestamps, huge deltas and wrap-adjacent
/// values all occur) paired with values drawn from raw bit patterns (so
/// NaNs with arbitrary payloads, ±Inf, -0.0 and subnormals all occur).
fn adversarial_series() -> impl Strategy<Value = (Vec<u64>, Vec<f64>)> {
    proptest::collection::vec(
        (
            prop_oneof![
                any::<u64>(),
                0u64..10_000,                           // realistic small timestamps
                (0u64..100).prop_map(|d| u64::MAX - d), // wrap-adjacent
            ],
            any::<u64>().prop_map(f64::from_bits),
        ),
        1..300,
    )
    .prop_map(|pairs| pairs.into_iter().unzip())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Satellite 1: encode→decode is lossless for any input series —
    /// sequence-preserving, bit-exact values, exact timestamps.
    #[test]
    fn block_roundtrip_is_lossless((ts, vals) in adversarial_series()) {
        let encoded = encode_block(&ts, &vals).unwrap();
        let decoded = decode_block(&encoded).unwrap();
        prop_assert_eq!(&decoded.timestamps, &ts);
        prop_assert_eq!(decoded.values.len(), vals.len());
        for (a, b) in decoded.values.iter().zip(&vals) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "value bits must survive");
        }
        prop_assert_eq!(decoded.min_ts, ts.iter().copied().min().unwrap());
        prop_assert_eq!(decoded.max_ts, ts.iter().copied().max().unwrap());
    }

    /// Satellite 2a: every prefix truncation decodes to a typed error —
    /// no panic, no silently shortened answer.
    #[test]
    fn block_truncation_never_panics((ts, vals) in adversarial_series()) {
        let encoded = encode_block(&ts, &vals).unwrap();
        // Truncation points: all short-header cases plus a spread through
        // the payload (checking every length would be quadratic).
        for len in (0..encoded.len()).step_by(1 + encoded.len() / 64) {
            let r = decode_block(&encoded[..len]);
            prop_assert!(r.is_err(), "prefix of {len}/{} bytes decoded", encoded.len());
        }
    }

    /// Satellite 2b: any single-byte flip anywhere in the block is caught
    /// by the whole-buffer CRC (or an earlier typed header check).
    #[test]
    fn block_byte_flip_is_detected(
        (ts, vals) in adversarial_series(),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let encoded = encode_block(&ts, &vals).unwrap();
        let pos = (pos_seed % encoded.len() as u64) as usize;
        let mut corrupt = encoded.clone();
        corrupt[pos] ^= flip;
        match decode_block(&corrupt) {
            Ok(_) => prop_assert!(false, "flip at {pos} went undetected"),
            Err(
                BlockError::CrcMismatch { .. }
                | BlockError::BadMagic
                | BlockError::UnsupportedVersion(_)
                | BlockError::BadCount(_)
                | BlockError::Truncated { .. }
            ) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
    }
}

#[test]
fn block_roundtrip_at_max_size() {
    let n = pga_tsdb::block::MAX_BLOCK_POINTS;
    let ts: Vec<u64> = (0..n as u64).map(|i| i * 7).collect();
    let vals: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    let encoded = encode_block(&ts, &vals).unwrap();
    let decoded = decode_block(&encoded).unwrap();
    assert_eq!(decoded.timestamps.len(), n);
    assert_eq!(decoded.timestamps, ts);
    assert_eq!(decoded.values, vals);
    // One past the cap is rejected up front.
    let ts2: Vec<u64> = (0..=n as u64).collect();
    let vals2 = vec![0.0; n + 1];
    assert!(matches!(
        encode_block(&ts2, &vals2),
        Err(BlockError::BadCount(_))
    ));
}

proptest! {
    // The full-stack model check is heavier: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn put_query_equals_naive_model(
        points in proptest::collection::vec(
            (0u32..4, 0u32..4, 0u64..8000, -100.0f64..100.0),
            1..60
        ),
        buckets in 1u8..6,
    ) {
        let c = codec(buckets);
        let coord = Coordinator::new(60_000);
        let mut master = Master::bootstrap(2, ServerConfig::default(), coord, 0);
        master.create_table(&TableDescriptor {
            name: "t".into(),
            split_points: c.split_points(),
            region_config: RegionConfig::default(),
        });
        let tsd = Tsd::new(c, Client::connect(&master), TsdConfig::default());
        // Model: (unit, sensor) → ts → value (last write wins).
        let mut model: BTreeMap<(u32, u32), BTreeMap<u64, f64>> = BTreeMap::new();
        for &(unit, sensor, ts, value) in &points {
            let u = unit.to_string();
            let s = sensor.to_string();
            tsd.put("energy", &[("unit", &u), ("sensor", &s)], ts, value).unwrap();
            model.entry((unit, sensor)).or_default().insert(ts, value);
        }
        let series = tsd.query("energy", &QueryFilter::any(), 0, 10_000).unwrap();
        prop_assert_eq!(series.len(), model.len(), "series count");
        for s in &series {
            let unit: u32 = s.tags.get("unit").unwrap().parse().unwrap();
            let sensor: u32 = s.tags.get("sensor").unwrap().parse().unwrap();
            let m = &model[&(unit, sensor)];
            prop_assert_eq!(s.points.len(), m.len(), "points for {}/{}", unit, sensor);
            for p in &s.points {
                prop_assert_eq!(m.get(&p.timestamp).copied(), Some(p.value));
            }
            // Ascending timestamps.
            for w in s.points.windows(2) {
                prop_assert!(w[0].timestamp < w[1].timestamp);
            }
        }
        master.shutdown();
    }

    /// Satellite 3 (storage differential): over any seeded ingest, the
    /// block-path scan after sealing is byte-for-byte equal to the legacy
    /// cell-by-cell decode before sealing — and the legacy path itself
    /// agrees with the block-aware path while everything is still raw.
    #[test]
    fn sealed_scan_equals_legacy_scan(
        points in proptest::collection::vec(
            (0u32..3, 0u32..3, 0u64..8000, any::<u64>().prop_map(f64::from_bits)),
            1..60
        ),
        late in proptest::collection::vec(
            (0u32..3, 0u32..3, 0u64..3600, -10.0f64..10.0),
            0..8
        ),
        buckets in 1u8..4,
    ) {
        let c = codec(buckets);
        let coord = Coordinator::new(60_000);
        let mut master = Master::bootstrap(2, ServerConfig::default(), coord, 0);
        master.create_table(&TableDescriptor {
            name: "t".into(),
            split_points: c.split_points(),
            region_config: RegionConfig::default(),
        });
        let tsd = Tsd::new(c, Client::connect(&master), TsdConfig::default());
        master.set_compaction_rewriter(tsd.block_rewriter());
        for &(unit, sensor, ts, value) in &points {
            let u = unit.to_string();
            let s = sensor.to_string();
            tsd.put("energy", &[("unit", &u), ("sensor", &s)], ts, value).unwrap();
        }
        let legacy_before = tsd.query_legacy("energy", &QueryFilter::any(), 0, 10_000).unwrap();
        let block_before = tsd.query("energy", &QueryFilter::any(), 0, 10_000).unwrap();
        prop_assert_eq!(&legacy_before, &block_before, "paths must agree pre-seal");
        tsd.compact_now().unwrap();
        let after = tsd.query("energy", &QueryFilter::any(), 0, 10_000).unwrap();
        prop_assert_eq!(&legacy_before, &after, "sealing must not change answers");
        // Late raw writes into sealed rows override blocks, and survive a
        // second sealing round.
        for &(unit, sensor, ts, value) in &late {
            let u = unit.to_string();
            let s = sensor.to_string();
            tsd.put("energy", &[("unit", &u), ("sensor", &s)], ts, value).unwrap();
        }
        let with_late = tsd.query("energy", &QueryFilter::any(), 0, 10_000).unwrap();
        tsd.compact_now().unwrap();
        let resealed = tsd.query("energy", &QueryFilter::any(), 0, 10_000).unwrap();
        prop_assert_eq!(&with_late, &resealed, "re-seal must fold late writes in place");
        master.shutdown();
    }

    /// Corruption resilience (ISSUE 9): flipping any stored byte of any
    /// sealed block yields exactly one of two outcomes — the exact
    /// pre-corruption answer, or the typed corruption error. Never a
    /// silently wrong answer, never a panic. The fixture runs
    /// unreplicated, so a flip that lands in a queried block cannot be
    /// salvaged and must surface as `TsdError::Corrupt`.
    #[test]
    fn stored_block_byte_flips_never_yield_wrong_answers(
        points in proptest::collection::vec(
            (0u32..3, 0u32..3, 0u64..8000, -1e6f64..1e6),
            10..60
        ),
        pick in any::<u64>(),
        mask in 1u8..=255,
        buckets in 1u8..4,
    ) {
        let c = codec(buckets);
        let coord = Coordinator::new(60_000);
        let mut master = Master::bootstrap(2, ServerConfig::default(), coord, 0);
        master.create_table(&TableDescriptor {
            name: "t".into(),
            split_points: c.split_points(),
            region_config: RegionConfig::default(),
        });
        let tsd = Tsd::new(c, Client::connect(&master), TsdConfig::default());
        master.set_compaction_rewriter(tsd.block_rewriter());
        for &(unit, sensor, ts, value) in &points {
            let u = unit.to_string();
            let s = sensor.to_string();
            tsd.put("energy", &[("unit", &u), ("sensor", &s)], ts, value).unwrap();
        }
        tsd.compact_now().unwrap();
        let truth = tsd.query("energy", &QueryFilter::any(), 0, 10_000).unwrap();
        // XOR `mask` into one stored byte of the `pick`-th sealed block
        // (if any rows sealed — short histories may stay raw).
        let infos = {
            let dir = master.directory();
            let dir = dir.read();
            dir.clone()
        };
        let mut hit = false;
        for info in &infos {
            let Some(server) = master.server(info.server) else { continue };
            let flipped = server.corrupt_region_cell(
                info.id,
                pick,
                &|kv| is_block_qualifier(&kv.qualifier),
                &|value: &mut Vec<u8>| {
                    if value.is_empty() {
                        return;
                    }
                    let idx = (pick as usize) % value.len();
                    value[idx] ^= mask;
                },
            );
            if flipped.is_some() {
                hit = true;
                break;
            }
        }
        match tsd.query("energy", &QueryFilter::any(), 0, 10_000) {
            Ok(answer) => {
                prop_assert!(!hit, "a flipped block in range cannot decode cleanly");
                prop_assert_eq!(&truth, &answer, "untouched store must answer exactly");
            }
            Err(TsdError::Corrupt(_)) => {
                prop_assert!(hit, "typed corruption requires an injected flip");
            }
            Err(e) => {
                prop_assert!(
                    false,
                    "byte flip must yield exact answer or typed corruption, got: {}",
                    e
                );
            }
        }
        master.shutdown();
    }
}
