//! Property tests for the TSDB layer: codec roundtrips, salt stability,
//! and put/query equivalence against a naive model.

use std::collections::BTreeMap;

use proptest::prelude::*;

use pga_cluster::coordinator::Coordinator;
use pga_minibase::{Client, Master, RegionConfig, ServerConfig, TableDescriptor};
use pga_tsdb::{KeyCodec, KeyCodecConfig, QueryFilter, Tsd, TsdConfig, UidTable};

fn codec(buckets: u8) -> KeyCodec {
    KeyCodec::new(
        KeyCodecConfig {
            salt_buckets: buckets,
            row_span_secs: 3600,
        },
        UidTable::new(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_roundtrip_any_point(
        unit in 0u32..10_000,
        sensor in 0u32..10_000,
        ts in 0u64..100_000_000,
        value in -1e12f64..1e12,
        buckets in 1u8..32,
    ) {
        let c = codec(buckets);
        let u = unit.to_string();
        let s = sensor.to_string();
        let tags = [("unit", u.as_str()), ("sensor", s.as_str())];
        let row = c.row_key("energy", &tags, ts);
        let point = c.decode(&row, &c.qualifier(ts), &c.value(value)).unwrap();
        prop_assert_eq!(point.metric, "energy");
        prop_assert_eq!(point.timestamp, ts);
        prop_assert_eq!(point.value, value);
        let tag_map: BTreeMap<_, _> = point.tags.into_iter().collect();
        prop_assert_eq!(tag_map.get("unit").map(String::as_str), Some(u.as_str()));
        prop_assert_eq!(tag_map.get("sensor").map(String::as_str), Some(s.as_str()));
    }

    #[test]
    fn salt_is_stable_over_time_and_within_range(
        unit in 0u32..1000,
        sensor in 0u32..1000,
        t1 in 0u64..10_000_000,
        t2 in 0u64..10_000_000,
        buckets in 1u8..32,
    ) {
        let c = codec(buckets);
        let u = unit.to_string();
        let s = sensor.to_string();
        let tags = [("unit", u.as_str()), ("sensor", s.as_str())];
        let r1 = c.row_key("energy", &tags, t1);
        let r2 = c.row_key("energy", &tags, t2);
        prop_assert_eq!(r1[0], r2[0], "series hops buckets");
        prop_assert!(r1[0] < buckets);
    }

    #[test]
    fn row_keys_order_by_time_within_series(
        unit in 0u32..100,
        hours in proptest::collection::vec(0u64..10_000, 2..8),
        buckets in 1u8..8,
    ) {
        let c = codec(buckets);
        let u = unit.to_string();
        let tags = [("unit", u.as_str()), ("sensor", "0")];
        let mut sorted = hours.clone();
        sorted.sort_unstable();
        let keys: Vec<_> = sorted.iter().map(|h| c.row_key("energy", &tags, h * 3600)).collect();
        for w in keys.windows(2) {
            prop_assert!(w[0] <= w[1], "later hour must not sort earlier");
        }
    }
}

proptest! {
    // The full-stack model check is heavier: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn put_query_equals_naive_model(
        points in proptest::collection::vec(
            (0u32..4, 0u32..4, 0u64..8000, -100.0f64..100.0),
            1..60
        ),
        buckets in 1u8..6,
    ) {
        let c = codec(buckets);
        let coord = Coordinator::new(60_000);
        let mut master = Master::bootstrap(2, ServerConfig::default(), coord, 0);
        master.create_table(&TableDescriptor {
            name: "t".into(),
            split_points: c.split_points(),
            region_config: RegionConfig::default(),
        });
        let tsd = Tsd::new(c, Client::connect(&master), TsdConfig::default());
        // Model: (unit, sensor) → ts → value (last write wins).
        let mut model: BTreeMap<(u32, u32), BTreeMap<u64, f64>> = BTreeMap::new();
        for &(unit, sensor, ts, value) in &points {
            let u = unit.to_string();
            let s = sensor.to_string();
            tsd.put("energy", &[("unit", &u), ("sensor", &s)], ts, value).unwrap();
            model.entry((unit, sensor)).or_default().insert(ts, value);
        }
        let series = tsd.query("energy", &QueryFilter::any(), 0, 10_000).unwrap();
        prop_assert_eq!(series.len(), model.len(), "series count");
        for s in &series {
            let unit: u32 = s.tags.get("unit").unwrap().parse().unwrap();
            let sensor: u32 = s.tags.get("sensor").unwrap().parse().unwrap();
            let m = &model[&(unit, sensor)];
            prop_assert_eq!(s.points.len(), m.len(), "points for {}/{}", unit, sensor);
            for p in &s.points {
                prop_assert_eq!(m.get(&p.timestamp).copied(), Some(p.value));
            }
            // Ascending timestamps.
            for w in s.points.windows(2) {
                prop_assert!(w[0].timestamp < w[1].timestamp);
            }
        }
        master.shutdown();
    }
}
