//! Property tests for the detector: model well-formedness, evaluator
//! calibration invariants, and streaming/batch equivalence on arbitrary
//! fleets.

use proptest::prelude::*;

use pga_detect::{train_unit, OnlineEvaluator, StreamingTrainer};
use pga_sensorgen::{Fleet, FleetConfig};
use pga_stats::Procedure;

fn fleet_strategy() -> impl Strategy<Value = (Fleet, usize)> {
    (1u32..5, 4u32..48, any::<u64>(), 10usize..60).prop_map(|(units, sensors, seed, window)| {
        (
            Fleet::new(FleetConfig {
                units,
                sensors_per_unit: sensors,
                ..FleetConfig::paper_scale(seed)
            }),
            window,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn trained_models_validate((fleet, window) in fleet_strategy()) {
        let obs = fleet.observation_window(0, window as u64 - 1, window.max(2));
        let model = train_unit(0, &obs).unwrap();
        prop_assert!(model.validate().is_ok());
        prop_assert_eq!(model.sensors(), fleet.config().sensors_per_unit as usize);
        prop_assert!(model.stds.iter().all(|s| s.is_finite() && *s >= 0.0));
        // Block eigenvalues are non-negative (covariance is PSD) and sorted.
        for b in &model.blocks {
            for w in b.eigenvalues.windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-9);
            }
            prop_assert!(b.eigenvalues.iter().all(|&l| l > -1e-8));
        }
    }

    #[test]
    fn p_values_are_probabilities((fleet, window) in fleet_strategy()) {
        let w = window.max(2);
        let obs = fleet.observation_window(0, w as u64 - 1, w);
        let model = train_unit(0, &obs).unwrap();
        let ev = OnlineEvaluator::new(model, Procedure::BenjaminiHochberg, 0.05);
        let eval_w = fleet.observation_window(0, w as u64 * 3, w);
        let out = ev.evaluate(&eval_w);
        prop_assert!(out.p_values.iter().all(|p| (0.0..=1.0).contains(p)));
        prop_assert!(out.block_p_values.iter().all(|(_, p)| (0.0..=1.0).contains(p)));
        // Flags agree with the rejection mask.
        let from_mask: Vec<u32> = out
            .rejected
            .iter()
            .enumerate()
            .filter_map(|(i, &r)| r.then_some(i as u32))
            .collect();
        let from_flags: Vec<u32> = out.flags.iter().map(|f| f.sensor).collect();
        prop_assert_eq!(from_mask, from_flags);
    }

    #[test]
    fn stricter_alpha_flags_no_more((fleet, window) in fleet_strategy()) {
        let w = window.max(2);
        let obs = fleet.observation_window(0, w as u64 - 1, w);
        let model = train_unit(0, &obs).unwrap();
        let eval_w = fleet.observation_window(0, 2000, w);
        let loose = OnlineEvaluator::new(model.clone(), Procedure::BenjaminiHochberg, 0.10)
            .evaluate(&eval_w);
        let strict = OnlineEvaluator::new(model, Procedure::BenjaminiHochberg, 0.01)
            .evaluate(&eval_w);
        prop_assert!(strict.flags.len() <= loose.flags.len());
    }

    #[test]
    fn streaming_equals_batch_for_any_fleet((fleet, window) in fleet_strategy()) {
        let w = window.max(2);
        let obs = fleet.observation_window(0, w as u64 - 1, w);
        let batch = train_unit(0, &obs).unwrap();
        let mut st = StreamingTrainer::new(0, obs.cols());
        for r in 0..obs.rows() {
            st.update(obs.row(r));
        }
        let streaming = st.finish().unwrap();
        for (a, b) in streaming.means.iter().zip(&batch.means) {
            prop_assert!((a - b).abs() < 1e-8, "means {a} vs {b}");
        }
        for (a, b) in streaming.stds.iter().zip(&batch.stds) {
            prop_assert!((a - b).abs() < 1e-8, "stds {a} vs {b}");
        }
    }

    #[test]
    fn merge_is_associative_enough(
        (fleet, window) in fleet_strategy(),
        split1 in 0.2f64..0.8,
    ) {
        let w = window.max(6);
        let obs = fleet.observation_window(0, w as u64 - 1, w);
        let cut = ((w as f64) * split1) as usize;
        // (A ∪ B) vs (B ∪ A).
        let mut left = StreamingTrainer::new(0, obs.cols());
        let mut right = StreamingTrainer::new(0, obs.cols());
        for r in 0..cut {
            left.update(obs.row(r));
        }
        for r in cut..w {
            right.update(obs.row(r));
        }
        let mut ab = left.clone();
        ab.merge(&right);
        let mut ba = right;
        ba.merge(&left);
        let ma = ab.finish().unwrap();
        let mb = ba.finish().unwrap();
        for (a, b) in ma.means.iter().zip(&mb.means) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        for (ba_, bb) in ma.blocks.iter().zip(&mb.blocks) {
            for (la, lb) in ba_.eigenvalues.iter().zip(&bb.eigenvalues) {
                prop_assert!((la - lb).abs() < 1e-7);
            }
        }
    }
}
