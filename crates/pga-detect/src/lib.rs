//! FDR-based anomaly detection for power-generating assets.
//!
//! The paper's §IV pipeline, end to end:
//!
//! 1. **Offline training** (batch, Spark in the paper / [`pga_dataflow`]
//!    here): per unit, estimate each sensor's baseline mean/variance and —
//!    per sensor *block* — the covariance matrix and its SVD. "Model
//!    estimation of each sensor on each unit begins by calculating the
//!    covariance matrix of each data set. Singular Value Decomposition is
//!    then performed on each covariance matrix to obtain the mean and
//!    variance. Results from the decomposition are cached to HDFS."
//! 2. **Online evaluation**: a window of new observations per unit is
//!    scored against the model — one z-test per sensor producing a p-value
//!    family, plus a Hotelling T² per block in the whitened eigenbasis
//!    (the "single matrix multiplication per iteration").
//! 3. **Multiple-testing control**: the per-sensor p-values go through the
//!    Benjamini–Hochberg FDR procedure (or any baseline from
//!    [`pga_stats::multiple`]) to decide which sensors to flag.
//!
//! Columnar path: the block store serves windows as per-sensor column
//! slices, so training ([`train_unit_columns`],
//! [`StreamingTrainer::update_columns`]) and evaluation
//! ([`OnlineEvaluator::evaluate_columns`], fleet-wide via
//! [`BatchEvaluator`]) accept that shape directly — many units per pass,
//! bit-identical to the row-major paths.
//!
//! Blocks: with 1000 sensors per unit a full 1000×1000 Jacobi SVD is
//! wasteful — fault correlation in the generator (and in the physical
//! systems the paper describes) is local to small sensor groups, so models
//! use a block-diagonal covariance with blocks of [`BLOCK_SENSORS`]
//! sensors. DESIGN.md records this substitution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
pub mod brownout;
mod cusum;
mod incremental;
mod model;
mod online;
mod streaming;
mod trainer;

pub use batch::{BatchEvaluator, ColumnWindow};
pub use brownout::{BrownoutConfig, BrownoutGate, EvalMode};
pub use cusum::{CusumDetector, CusumState};
pub use incremental::{model_divergence, FleetTrainer};
pub use model::{BlockModel, UnitModel, BLOCK_SENSORS};
pub use online::{EvalOutcome, OnlineEvaluator, SensorFlag};
pub use streaming::StreamingTrainer;
pub use trainer::{train_fleet, train_unit, train_unit_columns, TrainError};
