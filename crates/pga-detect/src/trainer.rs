//! Offline (batch) training — the Spark stage of §IV-A.

use pga_dataflow::{Dataflow, DiskCache};
use pga_linalg::{covariance_matrix, eigh, JacobiOptions, Matrix};
use pga_sensorgen::Fleet;

use crate::model::{BlockModel, UnitModel, BLOCK_SENSORS};

/// Training failures.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// Not enough observations for covariance estimation.
    InsufficientData {
        /// Rows provided.
        rows: usize,
    },
    /// The eigendecomposition failed to converge or errored.
    Decomposition(String),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::InsufficientData { rows } => {
                write!(f, "need at least 2 observation rows, got {rows}")
            }
            TrainError::Decomposition(e) => write!(f, "decomposition failed: {e}"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Train one unit's model from an observation window (rows = time steps,
/// columns = sensors).
pub fn train_unit(unit: u32, observations: &Matrix) -> Result<UnitModel, TrainError> {
    let (n, p) = observations.shape();
    if n < 2 {
        return Err(TrainError::InsufficientData { rows: n });
    }
    let means = pga_linalg::column_means(observations);
    let vars = pga_linalg::column_variances(observations)
        .map_err(|e| TrainError::Decomposition(e.to_string()))?;
    let stds: Vec<f64> = vars.iter().map(|v| v.max(0.0).sqrt()).collect();
    let mut blocks = Vec::with_capacity(p.div_ceil(BLOCK_SENSORS));
    let mut start = 0usize;
    while start < p {
        let len = BLOCK_SENSORS.min(p - start);
        // Slice the block's columns into a dense sub-matrix.
        let mut sub = Matrix::zeros(n, len);
        for r in 0..n {
            let row = observations.row(r);
            sub.row_mut(r).copy_from_slice(&row[start..start + len]);
        }
        let cov = covariance_matrix(&sub).map_err(|e| TrainError::Decomposition(e.to_string()))?;
        // The paper performs SVD on the covariance; for a symmetric PSD
        // matrix this is the eigendecomposition, computed directly.
        let eig = eigh(&cov, JacobiOptions::default())
            .map_err(|e| TrainError::Decomposition(e.to_string()))?;
        blocks.push(BlockModel {
            start,
            len,
            eigenvalues: eig.values,
            eigenvectors: eig.vectors,
        });
        start += len;
    }
    let model = UnitModel {
        unit,
        means,
        stds,
        blocks,
        trained_rows: n,
    };
    debug_assert!(model.validate().is_ok());
    Ok(model)
}

/// Train one unit's model from **per-sensor column slices** — the shape
/// the columnar block store hands back. The columns are transposed into
/// the row-major observation window and trained with [`train_unit`], so
/// the resulting model is identical to batch training on the same data.
pub fn train_unit_columns(unit: u32, columns: &[&[f64]]) -> Result<UnitModel, TrainError> {
    let p = columns.len();
    let n = columns.first().map_or(0, |c| c.len());
    if n < 2 {
        return Err(TrainError::InsufficientData { rows: n });
    }
    if columns.iter().any(|c| c.len() != n) {
        return Err(TrainError::Decomposition(format!(
            "ragged columns: every sensor needs {n} samples"
        )));
    }
    let mut obs = Matrix::zeros(n, p);
    for (j, col) in columns.iter().enumerate() {
        for (r, &v) in col.iter().enumerate() {
            obs.set(r, j, v);
        }
    }
    train_unit(unit, &obs)
}

/// Train the whole fleet in parallel on the dataflow engine, optionally
/// caching each model ("results … are cached to HDFS").
///
/// The training window is samples `[0, window)` of each unit — the
/// pre-fault head of every stream (fault onsets start at sample 200, so a
/// window ≤ 200 is guaranteed clean; larger windows model realistic
/// contaminated training).
pub fn train_fleet(
    fleet: &Fleet,
    window: usize,
    dataflow: &Dataflow,
    cache: Option<&DiskCache>,
) -> Result<Vec<UnitModel>, TrainError> {
    let units: Vec<u32> = (0..fleet.config().units).collect();
    let partitions = dataflow.workers().max(1) * 2;
    let results: Vec<Result<UnitModel, TrainError>> = dataflow
        .parallelize(units, partitions)
        .map(|unit| {
            let obs = fleet.observation_window(unit, window as u64 - 1, window);
            train_unit(unit, &obs)
        })
        .collect();
    let mut models = Vec::with_capacity(results.len());
    for r in results {
        let model = r?;
        if let Some(cache) = cache {
            cache
                .store(&format!("unit-model-{}", model.unit), &model)
                .map_err(|e| TrainError::Decomposition(e.to_string()))?;
        }
        models.push(model);
    }
    models.sort_by_key(|m| m.unit);
    Ok(models)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_sensorgen::FleetConfig;

    #[test]
    fn trained_model_matches_data_moments() {
        let fleet = Fleet::new(FleetConfig::small(5));
        let obs = fleet.observation_window(0, 149, 150);
        let model = train_unit(0, &obs).unwrap();
        assert!(model.validate().is_ok());
        assert_eq!(model.sensors(), fleet.config().sensors_per_unit as usize);
        // Healthy baseline: means near the configured baseline, stds near
        // the noise std.
        let cfg = fleet.config();
        for (&m, &s) in model.means.iter().zip(&model.stds) {
            assert!((m - cfg.baseline_mean).abs() < 0.5, "mean {m}");
            assert!((s - cfg.noise_std).abs() < 0.4, "std {s}");
        }
    }

    #[test]
    fn block_eigenvalues_sum_to_total_variance() {
        let fleet = Fleet::new(FleetConfig::small(9));
        let obs = fleet.observation_window(1, 99, 100);
        let model = train_unit(1, &obs).unwrap();
        let vars = pga_linalg::column_variances(&obs).unwrap();
        for b in &model.blocks {
            let trace: f64 = vars[b.start..b.start + b.len].iter().sum();
            let lam_sum: f64 = b.eigenvalues.iter().sum();
            assert!(
                (trace - lam_sum).abs() < 1e-8 * trace.max(1.0),
                "block {}: trace {trace} vs Σλ {lam_sum}",
                b.start
            );
        }
    }

    #[test]
    fn columnar_training_equals_row_major() {
        let fleet = Fleet::new(FleetConfig::small(17));
        let obs = fleet.observation_window(0, 119, 120);
        let cols: Vec<Vec<f64>> = (0..obs.cols()).map(|c| obs.col(c)).collect();
        let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let a = train_unit(0, &obs).unwrap();
        let b = train_unit_columns(0, &refs).unwrap();
        assert_eq!(a, b, "transposed input must yield the identical model");
        assert!(matches!(
            train_unit_columns(0, &[&[1.0][..]]),
            Err(TrainError::InsufficientData { rows: 1 })
        ));
        assert!(train_unit_columns(0, &[&[1.0, 2.0][..], &[3.0][..]]).is_err());
    }

    #[test]
    fn insufficient_rows_rejected() {
        let fleet = Fleet::new(FleetConfig::small(5));
        let obs = fleet.observation_window(0, 0, 1);
        assert!(matches!(
            train_unit(0, &obs),
            Err(TrainError::InsufficientData { rows: 1 })
        ));
    }

    #[test]
    fn fleet_training_covers_every_unit_and_caches() {
        let fleet = Fleet::new(FleetConfig::small(11));
        let dir = std::env::temp_dir().join(format!("pga-train-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = DiskCache::open(&dir).unwrap();
        let df = Dataflow::new(4);
        let models = train_fleet(&fleet, 100, &df, Some(&cache)).unwrap();
        assert_eq!(models.len(), fleet.config().units as usize);
        for (i, m) in models.iter().enumerate() {
            assert_eq!(m.unit, i as u32);
        }
        // Cached copies round-trip.
        let back: UnitModel = cache.load("unit-model-0").unwrap().unwrap();
        assert_eq!(back, models[0]);
    }

    #[test]
    fn training_is_deterministic() {
        let fleet = Fleet::new(FleetConfig::small(13));
        let df = Dataflow::new(2);
        let a = train_fleet(&fleet, 80, &df, None).unwrap();
        let b = train_fleet(&fleet, 80, &df, None).unwrap();
        assert_eq!(a, b);
    }
}
