//! Streaming (incremental) training — the paper's ongoing work of
//! "migrating our anomaly detection implementation to Spark Streaming for
//! online training" (§VI), implemented here as a Welford-style incremental
//! moment estimator plus streaming block covariance.

use serde::{Deserialize, Serialize};

use pga_linalg::{eigh, symmetric_from_packed_lower, JacobiOptions};

use crate::model::{BlockModel, UnitModel, BLOCK_SENSORS};
use crate::trainer::TrainError;

/// Incrementally ingests observation rows and can produce a [`UnitModel`]
/// at any point — no batch re-read required.
///
/// Maintains per-sensor running means and, per block, the running
/// co-moment matrix, using the numerically stable Welford/Chan update.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamingTrainer {
    unit: u32,
    sensors: usize,
    count: u64,
    means: Vec<f64>,
    /// Per-block lower-triangular co-moment accumulators
    /// `M2[b][i][j] = Σ (x_i - mean_i)(x_j - mean_j)` laid out packed.
    comoments: Vec<Vec<f64>>,
}

fn block_count(sensors: usize) -> usize {
    sensors.div_ceil(BLOCK_SENSORS)
}

fn packed_len(len: usize) -> usize {
    len * (len + 1) / 2
}

impl StreamingTrainer {
    /// New trainer for a unit with `sensors` sensors.
    pub fn new(unit: u32, sensors: usize) -> Self {
        assert!(sensors > 0, "need at least one sensor");
        let blocks = block_count(sensors);
        let comoments = (0..blocks)
            .map(|b| {
                let len = BLOCK_SENSORS.min(sensors - b * BLOCK_SENSORS);
                vec![0.0; packed_len(len)]
            })
            .collect();
        StreamingTrainer {
            unit,
            sensors,
            count: 0,
            means: vec![0.0; sensors],
            comoments,
        }
    }

    /// Rows ingested so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Ingest one observation row (length must equal the sensor count).
    pub fn update(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.sensors, "row width mismatch");
        self.count += 1;
        let n = self.count as f64;
        // Per-sensor deltas before the mean update.
        let deltas: Vec<f64> = row.iter().zip(&self.means).map(|(&x, &m)| x - m).collect();
        for (m, d) in self.means.iter_mut().zip(&deltas) {
            *m += d / n;
        }
        // Co-moment update per block: M2 += delta_before ⊗ delta_after.
        for (b, m2) in self.comoments.iter_mut().enumerate() {
            let start = b * BLOCK_SENSORS;
            let len = BLOCK_SENSORS.min(self.sensors - start);
            let mut idx = 0;
            for i in 0..len {
                let d_after_i = row[start + i] - self.means[start + i];
                for j in 0..=i {
                    m2[idx] += deltas[start + j] * d_after_i;
                    idx += 1;
                }
            }
        }
    }

    /// Ingest a whole window presented as per-sensor column slices (the
    /// columnar block store's shape), row by row — exactly equivalent to
    /// calling [`StreamingTrainer::update`] on each transposed row.
    pub fn update_columns(&mut self, columns: &[&[f64]]) {
        assert_eq!(columns.len(), self.sensors, "column count mismatch");
        let n = columns.first().map_or(0, |c| c.len());
        assert!(
            columns.iter().all(|c| c.len() == n),
            "ragged columns: every sensor needs {n} samples"
        );
        let mut row = vec![0.0; self.sensors];
        for r in 0..n {
            for (slot, col) in row.iter_mut().zip(columns) {
                *slot = col[r];
            }
            self.update(&row);
        }
    }

    /// Produce a model from the moments accumulated so far.
    pub fn finish(&self) -> Result<UnitModel, TrainError> {
        if self.count < 2 {
            return Err(TrainError::InsufficientData {
                rows: self.count as usize,
            });
        }
        let denom = (self.count - 1) as f64;
        let mut blocks = Vec::with_capacity(self.comoments.len());
        let mut stds = vec![0.0; self.sensors];
        for (b, m2) in self.comoments.iter().enumerate() {
            let start = b * BLOCK_SENSORS;
            let len = BLOCK_SENSORS.min(self.sensors - start);
            let cov = symmetric_from_packed_lower(len, m2, 1.0 / denom)
                .map_err(|e| TrainError::Decomposition(e.to_string()))?;
            for i in 0..len {
                stds[start + i] = cov.get(i, i).max(0.0).sqrt();
            }
            let eig = eigh(&cov, JacobiOptions::default())
                .map_err(|e| TrainError::Decomposition(e.to_string()))?;
            blocks.push(BlockModel {
                start,
                len,
                eigenvalues: eig.values,
                eigenvectors: eig.vectors,
            });
        }
        let model = UnitModel {
            unit: self.unit,
            means: self.means.clone(),
            stds,
            blocks,
            trained_rows: self.count as usize,
        };
        debug_assert!(model.validate().is_ok());
        Ok(model)
    }

    /// Merge another trainer's moments into this one (Chan's parallel
    /// update) — the building block for distributed streaming training.
    pub fn merge(&mut self, other: &StreamingTrainer) {
        assert_eq!(self.sensors, other.sensors, "sensor count mismatch");
        assert_eq!(self.unit, other.unit, "unit mismatch");
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let n = n1 + n2;
        let deltas: Vec<f64> = other
            .means
            .iter()
            .zip(&self.means)
            .map(|(&m2, &m1)| m2 - m1)
            .collect();
        for (b, m2_acc) in self.comoments.iter_mut().enumerate() {
            let start = b * BLOCK_SENSORS;
            let len = BLOCK_SENSORS.min(self.sensors - start);
            let other_m2 = &other.comoments[b];
            let mut idx = 0;
            for i in 0..len {
                for j in 0..=i {
                    m2_acc[idx] +=
                        other_m2[idx] + deltas[start + i] * deltas[start + j] * n1 * n2 / n;
                    idx += 1;
                }
            }
        }
        for (m, d) in self.means.iter_mut().zip(&deltas) {
            *m += d * n2 / n;
        }
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::train_unit;
    use pga_linalg::Matrix;
    use pga_sensorgen::{Fleet, FleetConfig};

    fn feed(trainer: &mut StreamingTrainer, obs: &Matrix) {
        for r in 0..obs.rows() {
            trainer.update(obs.row(r));
        }
    }

    #[test]
    fn streaming_matches_batch_training() {
        let fleet = Fleet::new(FleetConfig::small(61));
        let obs = fleet.observation_window(0, 119, 120);
        let batch = train_unit(0, &obs).unwrap();
        let mut st = StreamingTrainer::new(0, obs.cols());
        feed(&mut st, &obs);
        let streaming = st.finish().unwrap();
        assert_eq!(streaming.trained_rows, batch.trained_rows);
        for (a, b) in streaming.means.iter().zip(&batch.means) {
            assert!((a - b).abs() < 1e-9, "means differ: {a} vs {b}");
        }
        for (a, b) in streaming.stds.iter().zip(&batch.stds) {
            assert!((a - b).abs() < 1e-9, "stds differ: {a} vs {b}");
        }
        for (ba, bb) in streaming.blocks.iter().zip(&batch.blocks) {
            for (la, lb) in ba.eigenvalues.iter().zip(&bb.eigenvalues) {
                assert!((la - lb).abs() < 1e-7, "eigenvalues differ: {la} vs {lb}");
            }
        }
    }

    #[test]
    fn merge_equals_sequential_ingest() {
        let fleet = Fleet::new(FleetConfig::small(67));
        let obs = fleet.observation_window(1, 99, 100);
        // Sequential.
        let mut seq = StreamingTrainer::new(1, obs.cols());
        feed(&mut seq, &obs);
        // Split in two and merge.
        let mut left = StreamingTrainer::new(1, obs.cols());
        let mut right = StreamingTrainer::new(1, obs.cols());
        for r in 0..60 {
            left.update(obs.row(r));
        }
        for r in 60..100 {
            right.update(obs.row(r));
        }
        left.merge(&right);
        assert_eq!(left.count(), seq.count());
        let a = left.finish().unwrap();
        let b = seq.finish().unwrap();
        for (x, y) in a.means.iter().zip(&b.means) {
            assert!((x - y).abs() < 1e-9);
        }
        for (ba, bb) in a.blocks.iter().zip(&b.blocks) {
            for (la, lb) in ba.eigenvalues.iter().zip(&bb.eigenvalues) {
                assert!((la - lb).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn merge_into_empty_copies() {
        let fleet = Fleet::new(FleetConfig::small(71));
        let obs = fleet.observation_window(0, 49, 50);
        let mut full = StreamingTrainer::new(0, obs.cols());
        feed(&mut full, &obs);
        let mut empty = StreamingTrainer::new(0, obs.cols());
        empty.merge(&full);
        assert_eq!(empty.count(), 50);
        let a = empty.finish().unwrap();
        let b = full.finish().unwrap();
        assert_eq!(a.means, b.means);
    }

    #[test]
    fn columnar_ingest_equals_row_ingest() {
        let fleet = Fleet::new(FleetConfig::small(73));
        let obs = fleet.observation_window(0, 79, 80);
        let mut by_rows = StreamingTrainer::new(0, obs.cols());
        feed(&mut by_rows, &obs);
        let cols: Vec<Vec<f64>> = (0..obs.cols()).map(|c| obs.col(c)).collect();
        let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let mut by_cols = StreamingTrainer::new(0, obs.cols());
        by_cols.update_columns(&refs);
        assert_eq!(by_cols.count(), by_rows.count());
        assert_eq!(by_cols.finish().unwrap(), by_rows.finish().unwrap());
    }

    #[test]
    fn too_few_rows_rejected() {
        let mut st = StreamingTrainer::new(0, 4);
        assert!(matches!(
            st.finish(),
            Err(TrainError::InsufficientData { rows: 0 })
        ));
        st.update(&[1.0, 2.0, 3.0, 4.0]);
        assert!(st.finish().is_err());
        st.update(&[2.0, 3.0, 4.0, 5.0]);
        assert!(st.finish().is_ok());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_row_width_panics() {
        StreamingTrainer::new(0, 4).update(&[1.0, 2.0]);
    }
}
