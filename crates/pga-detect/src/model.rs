//! Trained per-unit models.

use serde::{Deserialize, Serialize};

use pga_linalg::Matrix;

/// Sensors per covariance block. Fault groups in the generator span 8
/// sensors; 32 gives each block several groups of headroom while keeping
/// the Jacobi SVD of a block (32×32) trivially fast.
pub const BLOCK_SENSORS: usize = 32;

/// Eigen-model of one contiguous sensor block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockModel {
    /// First sensor index covered by this block.
    pub start: usize,
    /// Number of sensors in the block.
    pub len: usize,
    /// Eigenvalues of the block covariance, descending.
    pub eigenvalues: Vec<f64>,
    /// Eigenvectors as columns (`len × len`), matching `eigenvalues`.
    pub eigenvectors: Matrix,
}

impl BlockModel {
    /// Project a centred observation slice into the eigenbasis — the
    /// "single matrix multiplication per iteration" of §IV-A. Returns the
    /// principal-component scores.
    pub fn project(&self, centered: &[f64]) -> Vec<f64> {
        assert_eq!(centered.len(), self.len, "block width mismatch");
        // scores = Vᵀ x
        (0..self.len)
            .map(|c| {
                (0..self.len)
                    .map(|r| self.eigenvectors.get(r, c) * centered[r])
                    .sum()
            })
            .collect()
    }
}

/// The trained model of one unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitModel {
    /// Unit id.
    pub unit: u32,
    /// Per-sensor baseline means.
    pub means: Vec<f64>,
    /// Per-sensor baseline standard deviations.
    pub stds: Vec<f64>,
    /// Covariance blocks in sensor order.
    pub blocks: Vec<BlockModel>,
    /// Observations the model was trained on.
    pub trained_rows: usize,
}

impl UnitModel {
    /// Number of sensors modelled.
    pub fn sensors(&self) -> usize {
        self.means.len()
    }

    /// Validate internal consistency (block coverage, shapes).
    pub fn validate(&self) -> Result<(), String> {
        if self.means.len() != self.stds.len() {
            return Err("means/stds length mismatch".into());
        }
        let mut covered = 0usize;
        for b in &self.blocks {
            if b.start != covered {
                return Err(format!("block gap at sensor {covered}"));
            }
            if b.eigenvalues.len() != b.len || b.eigenvectors.shape() != (b.len, b.len) {
                return Err(format!("block at {} has inconsistent shapes", b.start));
            }
            covered += b.len;
        }
        if covered != self.means.len() {
            return Err(format!(
                "blocks cover {covered} sensors, model has {}",
                self.means.len()
            ));
        }
        if self.stds.iter().any(|s| !s.is_finite() || *s < 0.0) {
            return Err("invalid standard deviation".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity_block(start: usize, len: usize) -> BlockModel {
        BlockModel {
            start,
            len,
            eigenvalues: vec![1.0; len],
            eigenvectors: Matrix::identity(len),
        }
    }

    #[test]
    fn projection_with_identity_basis_is_identity() {
        let b = identity_block(0, 3);
        let x = vec![1.0, -2.0, 0.5];
        assert_eq!(b.project(&x), x);
    }

    #[test]
    fn projection_rotates() {
        // 2D rotation by 90°: columns are e2, -e1.
        let mut v = Matrix::zeros(2, 2);
        v.set(0, 1, -1.0);
        v.set(1, 0, 1.0);
        let b = BlockModel {
            start: 0,
            len: 2,
            eigenvalues: vec![1.0, 1.0],
            eigenvectors: v,
        };
        let scores = b.project(&[3.0, 4.0]);
        // Vᵀ [3,4] = [col0·x, col1·x] = [4, -3]
        assert_eq!(scores, vec![4.0, -3.0]);
    }

    #[test]
    fn validation_accepts_consistent_model() {
        let m = UnitModel {
            unit: 0,
            means: vec![0.0; 5],
            stds: vec![1.0; 5],
            blocks: vec![identity_block(0, 3), identity_block(3, 2)],
            trained_rows: 100,
        };
        assert!(m.validate().is_ok());
        assert_eq!(m.sensors(), 5);
    }

    #[test]
    fn validation_rejects_gaps_and_mismatches() {
        let gap = UnitModel {
            unit: 0,
            means: vec![0.0; 5],
            stds: vec![1.0; 5],
            blocks: vec![identity_block(0, 2), identity_block(3, 2)],
            trained_rows: 10,
        };
        assert!(gap.validate().is_err());

        let short = UnitModel {
            unit: 0,
            means: vec![0.0; 5],
            stds: vec![1.0; 5],
            blocks: vec![identity_block(0, 3)],
            trained_rows: 10,
        };
        assert!(short.validate().is_err());

        let bad_std = UnitModel {
            unit: 0,
            means: vec![0.0; 2],
            stds: vec![1.0, -0.5],
            blocks: vec![identity_block(0, 2)],
            trained_rows: 10,
        };
        assert!(bad_std.validate().is_err());
    }

    #[test]
    fn model_serde_roundtrip() {
        let m = UnitModel {
            unit: 7,
            means: vec![1.0, 2.0],
            stds: vec![0.5, 0.6],
            blocks: vec![identity_block(0, 2)],
            trained_rows: 42,
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: UnitModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
