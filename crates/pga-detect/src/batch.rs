//! Fleet-wide batch evaluation over columnar windows.
//!
//! The columnar block store hands back per-sensor column slices
//! (`ColumnSeries::values`), so the natural high-throughput shape is:
//! score **many units in one pass**, each unit straight from its column
//! slices, with no row-major window materialisation in between. Results
//! are bit-identical to looping [`OnlineEvaluator::evaluate`] over
//! row-major windows (the columnar mean sums in the same sample order) —
//! the differential suite pins this.

use rayon::prelude::*;

use pga_stats::Procedure;

use crate::model::UnitModel;
use crate::online::{EvalOutcome, OnlineEvaluator};

/// One unit's evaluation input: per-sensor column slices, all the same
/// length (samples of the window, oldest first).
pub type ColumnWindow<'a> = Vec<&'a [f64]>;

/// Scores a whole fleet of unit models in one pass per batch.
#[derive(Debug, Clone)]
pub struct BatchEvaluator {
    evaluators: Vec<OnlineEvaluator>,
}

impl BatchEvaluator {
    /// Build one evaluator per model, all using `procedure` at level
    /// `alpha`. Models keep their order; `windows` passed to
    /// [`BatchEvaluator::evaluate_columns`] align by index.
    pub fn new(models: Vec<UnitModel>, procedure: Procedure, alpha: f64) -> Self {
        BatchEvaluator {
            evaluators: models
                .into_iter()
                .map(|m| OnlineEvaluator::new(m, procedure, alpha))
                .collect(),
        }
    }

    /// Number of unit evaluators.
    pub fn units(&self) -> usize {
        self.evaluators.len()
    }

    /// Borrow the per-unit evaluators (index-aligned with the models
    /// passed to [`BatchEvaluator::new`]).
    pub fn evaluators(&self) -> &[OnlineEvaluator] {
        &self.evaluators
    }

    /// Evaluate one columnar window per unit, in parallel. `windows[i]`
    /// feeds evaluator `i`; a unit with no fresh window passes `None` and
    /// yields `None`.
    pub fn evaluate_columns(
        &self,
        windows: &[Option<ColumnWindow<'_>>],
    ) -> Vec<Option<EvalOutcome>> {
        assert_eq!(
            windows.len(),
            self.evaluators.len(),
            "one window slot per unit"
        );
        self.evaluators
            .par_iter()
            .zip(windows.par_iter())
            .map(|(ev, w)| w.as_ref().map(|cols| ev.evaluate_columns(cols)))
            .collect()
    }

    /// Total samples scored across a batch result (the E21 throughput
    /// numerator).
    pub fn samples_scored(outcomes: &[Option<EvalOutcome>]) -> u64 {
        outcomes.iter().flatten().map(|o| o.samples_scored).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::train_unit;
    use pga_linalg::Matrix;
    use pga_sensorgen::{Fleet, FleetConfig};

    fn columns_of(window: &Matrix) -> Vec<Vec<f64>> {
        (0..window.cols()).map(|c| window.col(c)).collect()
    }

    #[test]
    fn batch_columnar_is_bit_identical_to_row_major_loop() {
        let fleet = Fleet::new(FleetConfig::small(73));
        let units = fleet.config().units;
        let models: Vec<UnitModel> = (0..units)
            .map(|u| train_unit(u, &fleet.observation_window(u, 149, 150)).unwrap())
            .collect();
        let batch = BatchEvaluator::new(models.clone(), Procedure::BenjaminiHochberg, 0.05);
        let windows: Vec<Matrix> = (0..units)
            .map(|u| fleet.observation_window(u, 249, 50))
            .collect();
        let col_windows: Vec<Vec<Vec<f64>>> = windows.iter().map(columns_of).collect();
        let slots: Vec<Option<ColumnWindow<'_>>> = col_windows
            .iter()
            .map(|cols| Some(cols.iter().map(|c| c.as_slice()).collect()))
            .collect();
        let batched = batch.evaluate_columns(&slots);
        for (u, out) in batched.iter().enumerate() {
            let out = out.as_ref().unwrap();
            let single = batch.evaluators()[u].evaluate(&windows[u]);
            assert_eq!(out.unit, single.unit);
            // Bit-for-bit: the columnar mean sums in row order.
            for (a, b) in out.p_values.iter().zip(&single.p_values) {
                assert_eq!(a.to_be_bytes(), b.to_be_bytes(), "unit {u}");
            }
            assert_eq!(out.rejected, single.rejected);
            for ((sa, pa), (sb, pb)) in out.block_p_values.iter().zip(&single.block_p_values) {
                assert_eq!(sa, sb);
                assert_eq!(pa.to_be_bytes(), pb.to_be_bytes());
            }
            assert_eq!(out.samples_scored, single.samples_scored);
        }
        assert_eq!(
            BatchEvaluator::samples_scored(&batched),
            units as u64 * 50 * fleet.config().sensors_per_unit as u64
        );
    }

    #[test]
    fn missing_windows_yield_none() {
        let fleet = Fleet::new(FleetConfig::small(79));
        let model = train_unit(0, &fleet.observation_window(0, 99, 100)).unwrap();
        let batch = BatchEvaluator::new(vec![model], Procedure::Bonferroni, 0.05);
        let out = batch.evaluate_columns(&[None]);
        assert_eq!(out.len(), 1);
        assert!(out[0].is_none());
        assert_eq!(BatchEvaluator::samples_scored(&out), 0);
    }

    #[test]
    #[should_panic(expected = "one window slot per unit")]
    fn misaligned_batch_panics() {
        let fleet = Fleet::new(FleetConfig::small(83));
        let model = train_unit(0, &fleet.observation_window(0, 99, 100)).unwrap();
        let batch = BatchEvaluator::new(vec![model], Procedure::Bonferroni, 0.05);
        batch.evaluate_columns(&[]);
    }
}
