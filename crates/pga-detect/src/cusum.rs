//! CUSUM — the classical Statistical Process Control baseline.
//!
//! The paper positions its FDR approach against the traditional SPC
//! toolbox ("a multitude of detection algorithms … applied in the
//! manufacturing domain for what has become known as Statistical Process
//! Control", §I refs [1][2]). The tabular two-sided CUSUM is the canonical
//! member of that toolbox: per sensor, accumulate standardised deviations
//! exceeding a slack `k` and alarm when either cumulative sum crosses `h`.
//! It detects small persistent shifts quickly but offers **no multiplicity
//! control** — its fleet-wide false-alarm behaviour is exactly the problem
//! §IV describes.

use serde::{Deserialize, Serialize};

use crate::model::UnitModel;

/// Tabular two-sided CUSUM state for one sensor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CusumState {
    /// Upper cumulative sum (detects upward shifts).
    pub high: f64,
    /// Lower cumulative sum (detects downward shifts).
    pub low: f64,
}

/// A per-unit CUSUM detector over all sensors, parameterised in units of
/// each sensor's baseline standard deviation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CusumDetector {
    model: UnitModel,
    /// Slack parameter `k` in σ (typically half the shift to detect).
    pub k: f64,
    /// Decision threshold `h` in σ (typically 4–5).
    pub h: f64,
    states: Vec<CusumState>,
}

impl CusumDetector {
    /// Build from a trained baseline model with slack `k` and threshold
    /// `h`, both in units of σ.
    pub fn new(model: UnitModel, k: f64, h: f64) -> Self {
        assert!(k >= 0.0 && h > 0.0, "need k >= 0 and h > 0");
        model.validate().expect("valid model");
        let n = model.sensors();
        CusumDetector {
            model,
            k,
            h,
            states: vec![CusumState::default(); n],
        }
    }

    /// Borrow the per-sensor states.
    pub fn states(&self) -> &[CusumState] {
        &self.states
    }

    /// Reset one sensor's accumulators (done after an acknowledged alarm).
    pub fn reset_sensor(&mut self, sensor: usize) {
        self.states[sensor] = CusumState::default();
    }

    /// Feed one observation row; returns the sensors whose CUSUM crossed
    /// `h` on this step.
    pub fn update(&mut self, row: &[f64]) -> Vec<u32> {
        assert_eq!(row.len(), self.model.sensors(), "row width mismatch");
        let mut alarms = Vec::new();
        for (j, (&x, state)) in row.iter().zip(self.states.iter_mut()).enumerate() {
            let std = self.model.stds[j];
            if std == 0.0 {
                continue;
            }
            let z = (x - self.model.means[j]) / std;
            state.high = (state.high + z - self.k).max(0.0);
            state.low = (state.low - z - self.k).max(0.0);
            if state.high > self.h || state.low > self.h {
                alarms.push(j as u32);
            }
        }
        alarms
    }

    /// Feed a whole window; returns sensors that alarmed at least once,
    /// deduplicated and sorted.
    pub fn update_window(&mut self, rows: impl Iterator<Item = Vec<f64>>) -> Vec<u32> {
        let mut all = Vec::new();
        for row in rows {
            all.extend(self.update(&row));
        }
        all.sort_unstable();
        all.dedup();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::train_unit;
    use pga_sensorgen::{FaultClass, Fleet, FleetConfig};

    fn detector(fleet: &Fleet, unit: u32, k: f64, h: f64) -> CusumDetector {
        let obs = fleet.observation_window(unit, 149, 150);
        CusumDetector::new(train_unit(unit, &obs).unwrap(), k, h)
    }

    #[test]
    fn detects_sharp_shift_quickly() {
        let fleet = Fleet::new(FleetConfig::paper_scale(71));
        let unit = fleet.units_with_class(FaultClass::SharpShift)[0];
        let spec = *fleet.fault(unit);
        let mut det = detector(&fleet, unit, 0.5, 5.0);
        let mut first_alarm = None;
        for t in spec.onset..spec.onset + 50 {
            let row: Vec<f64> = (0..fleet.config().sensors_per_unit)
                .map(|s| fleet.sample(unit, s, t))
                .collect();
            let alarms = det.update(&row);
            if alarms.iter().any(|&s| spec.affects(s)) {
                first_alarm = Some(t - spec.onset);
                break;
            }
        }
        // A 3σ shift with k=0.5, h=5: expected delay ≈ h/(δ−k) = 2 steps.
        let delay = first_alarm.expect("shift must be detected");
        assert!(delay <= 6, "CUSUM delay {delay} too long");
    }

    #[test]
    fn per_sensor_cusum_floods_a_large_fleet_with_false_alarms() {
        // The paper's §IV motivation, demonstrated: textbook CUSUM
        // parameters (k=0.5, h=5) are tuned for ONE chart. Across 1000
        // sensors the per-sensor false-alarm rate compounds — hundreds of
        // healthy sensors alarm within a few hundred ticks, exactly the
        // multiplicity problem FDR control addresses.
        let fleet = Fleet::new(FleetConfig::paper_scale(73));
        let unit = fleet.units_with_class(FaultClass::Healthy)[0];
        let mut det = detector(&fleet, unit, 0.5, 5.0);
        let mut alarmed_sensors = std::collections::HashSet::new();
        for t in 200..500u64 {
            let row: Vec<f64> = (0..fleet.config().sensors_per_unit)
                .map(|s| fleet.sample(unit, s, t))
                .collect();
            for s in det.update(&row) {
                alarmed_sensors.insert(s);
            }
        }
        assert!(
            alarmed_sensors.len() > 100,
            "expected the multiplicity flood, got {}",
            alarmed_sensors.len()
        );
        // Raising h to 8σ damps the flood dramatically — the classical
        // (but power-sapping) fix, analogous to Bonferroni's tradeoff.
        let mut strict = detector(&fleet, unit, 0.5, 8.0);
        let mut strict_alarms = std::collections::HashSet::new();
        for t in 200..500u64 {
            let row: Vec<f64> = (0..fleet.config().sensors_per_unit)
                .map(|s| fleet.sample(unit, s, t))
                .collect();
            for s in strict.update(&row) {
                strict_alarms.insert(s);
            }
        }
        assert!(
            strict_alarms.len() * 4 < alarmed_sensors.len(),
            "h=8 should cut alarms sharply: {} vs {}",
            strict_alarms.len(),
            alarmed_sensors.len()
        );
    }

    #[test]
    fn detects_slow_drift_that_single_windows_miss() {
        let fleet = Fleet::new(FleetConfig::paper_scale(79));
        let unit = fleet.units_with_class(FaultClass::GradualDegradation)[0];
        let spec = *fleet.fault(unit);
        let mut det = detector(&fleet, unit, 0.25, 5.0);
        let mut detected = false;
        for t in spec.onset..spec.onset + 600 {
            let row: Vec<f64> = (0..fleet.config().sensors_per_unit)
                .map(|s| fleet.sample(unit, s, t))
                .collect();
            if det.update(&row).iter().any(|&s| spec.affects(s)) {
                detected = true;
                break;
            }
        }
        assert!(detected, "drift must eventually trip the CUSUM");
    }

    #[test]
    fn reset_clears_accumulation() {
        let fleet = Fleet::new(FleetConfig::paper_scale(83));
        let unit = fleet.units_with_class(FaultClass::SharpShift)[0];
        let spec = *fleet.fault(unit);
        let mut det = detector(&fleet, unit, 0.5, 4.0);
        let sensor = spec.group_start as usize;
        for t in spec.onset..spec.onset + 10 {
            let row: Vec<f64> = (0..fleet.config().sensors_per_unit)
                .map(|s| fleet.sample(unit, s, t))
                .collect();
            det.update(&row);
        }
        assert!(det.states()[sensor].high > det.h);
        det.reset_sensor(sensor);
        assert_eq!(det.states()[sensor], CusumState::default());
    }

    #[test]
    fn update_window_dedups_alarms() {
        let fleet = Fleet::new(FleetConfig::paper_scale(89));
        let unit = fleet.units_with_class(FaultClass::SharpShift)[0];
        let spec = *fleet.fault(unit);
        let mut det = detector(&fleet, unit, 0.5, 5.0);
        let p = fleet.config().sensors_per_unit;
        let alarms = det.update_window(
            (spec.onset..spec.onset + 30)
                .map(|t| (0..p).map(|s| fleet.sample(unit, s, t)).collect()),
        );
        // Each faulted sensor appears exactly once despite alarming on
        // many consecutive steps.
        let faulted: Vec<u32> = alarms
            .iter()
            .copied()
            .filter(|&s| spec.affects(s))
            .collect();
        assert_eq!(faulted.len(), spec.group_len as usize);
        let dedup: std::collections::HashSet<u32> = alarms.iter().copied().collect();
        assert_eq!(dedup.len(), alarms.len());
    }

    #[test]
    #[should_panic(expected = "need k >= 0 and h > 0")]
    fn invalid_parameters_rejected() {
        let fleet = Fleet::new(FleetConfig::small(97));
        let obs = fleet.observation_window(0, 99, 100);
        let model = train_unit(0, &obs).unwrap();
        CusumDetector::new(model, 0.5, 0.0);
    }
}
