//! Incremental fleet retraining on dirty-unit tracking.
//!
//! The paper retrains offline in batch — every unit's covariance/SVD is
//! recomputed even when only one unit saw new samples (§IV-A). Here each
//! unit keeps its Welford/Chan sufficient statistics
//! ([`StreamingTrainer`]) resident; ingesting samples marks the unit
//! *dirty*, and [`FleetTrainer::retrain_dirty`] re-enqueues
//! covariance/SVD finish tasks for dirty units only, on the
//! `pga-dataflow` → `pga-sched` work-stealing substrate. The
//! incrementality invariant (DESIGN.md §13): a unit's model is a pure
//! function of its sufficient statistics, so re-finishing only dirty
//! units yields models identical to a full recompute — which
//! [`model_divergence`] and the E23 differential oracle verify.

use std::collections::{BTreeMap, BTreeSet};

use pga_dataflow::Dataflow;

use crate::model::UnitModel;
use crate::streaming::StreamingTrainer;
use crate::trainer::TrainError;

/// Per-unit Welford sufficient statistics with dirty-set tracking and
/// scheduler-backed selective re-finishing.
#[derive(Debug, Clone)]
pub struct FleetTrainer {
    sensors: usize,
    trainers: BTreeMap<u32, StreamingTrainer>,
    dirty: BTreeSet<u32>,
    models: BTreeMap<u32, UnitModel>,
}

impl FleetTrainer {
    /// A trainer covering `units`, each with `sensors` sensors. All
    /// units start dirty (nothing has a model yet).
    pub fn new(units: &[u32], sensors: usize) -> Self {
        let trainers: BTreeMap<u32, StreamingTrainer> = units
            .iter()
            .map(|&u| (u, StreamingTrainer::new(u, sensors)))
            .collect();
        let dirty = trainers.keys().copied().collect();
        FleetTrainer {
            sensors,
            trainers,
            dirty,
            models: BTreeMap::new(),
        }
    }

    /// Sensors per unit.
    pub fn sensors(&self) -> usize {
        self.sensors
    }

    /// Units tracked.
    pub fn unit_count(&self) -> usize {
        self.trainers.len()
    }

    /// Ingest one observation row for `unit`, marking it dirty. Rows for
    /// unknown units are ignored (returns `false`).
    pub fn ingest_row(&mut self, unit: u32, row: &[f64]) -> bool {
        match self.trainers.get_mut(&unit) {
            Some(t) => {
                t.update(row);
                self.dirty.insert(unit);
                true
            }
            None => false,
        }
    }

    /// Ingest a batch of rows for `unit`.
    pub fn ingest(&mut self, unit: u32, rows: &[Vec<f64>]) -> bool {
        if rows.is_empty() {
            return self.trainers.contains_key(&unit);
        }
        match self.trainers.get_mut(&unit) {
            Some(t) => {
                for row in rows {
                    t.update(row);
                }
                self.dirty.insert(unit);
                true
            }
            None => false,
        }
    }

    /// Number of units whose statistics changed since their last finish.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// The dirty units, ascending.
    pub fn dirty_units(&self) -> Vec<u32> {
        self.dirty.iter().copied().collect()
    }

    /// Rows ingested for `unit` so far.
    pub fn rows_ingested(&self, unit: u32) -> Option<u64> {
        self.trainers.get(&unit).map(StreamingTrainer::count)
    }

    /// Re-finish covariance/SVD for the dirty units only, as a
    /// `pga-sched` task graph (one finish task per dirty unit). Units
    /// whose statistics still hold fewer than 2 rows stay dirty and are
    /// reported as errors; successfully finished units are cleaned.
    pub fn retrain_dirty(&mut self, dataflow: &Dataflow) -> Vec<(u32, TrainError)> {
        let dirty: Vec<u32> = self.dirty.iter().copied().collect();
        self.retrain_units(&dirty, dataflow)
    }

    /// Re-finish every unit regardless of dirtiness — the full-recompute
    /// arm of the differential oracle.
    pub fn retrain_full(&mut self, dataflow: &Dataflow) -> Vec<(u32, TrainError)> {
        let all: Vec<u32> = self.trainers.keys().copied().collect();
        self.retrain_units(&all, dataflow)
    }

    fn retrain_units(&mut self, units: &[u32], dataflow: &Dataflow) -> Vec<(u32, TrainError)> {
        if units.is_empty() {
            return Vec::new();
        }
        // Snapshot the per-unit statistics so the finish tasks can run
        // on worker threads; each task is covariance expansion + Jacobi
        // SVD, which dwarfs the clone of the packed accumulators.
        let snapshots: Vec<(u32, StreamingTrainer)> = units
            .iter()
            .filter_map(|u| self.trainers.get(u).map(|t| (*u, t.clone())))
            .collect();
        let partitions = dataflow.workers().max(1) * 2;
        let results = dataflow
            .parallelize(snapshots, partitions)
            .map(|(unit, trainer)| (unit, trainer.finish()))
            .collect();
        let mut errors = Vec::new();
        for (unit, result) in results {
            match result {
                Ok(model) => {
                    self.models.insert(unit, model);
                    self.dirty.remove(&unit);
                }
                Err(e) => errors.push((unit, e)),
            }
        }
        errors
    }

    /// The current models, keyed by unit (only units that finished at
    /// least once).
    pub fn models(&self) -> &BTreeMap<u32, UnitModel> {
        &self.models
    }

    /// Take the model for one unit, if trained.
    pub fn model(&self, unit: u32) -> Option<&UnitModel> {
        self.models.get(&unit)
    }
}

/// Worst-case absolute divergence between two models of the same unit:
/// the max over per-sensor means, per-sensor stds, and per-block
/// eigenvalues of the elementwise absolute difference. Eigenvector signs
/// are Jacobi-rotation artifacts, so columns are compared up to sign
/// (`min(|a-b|, |a+b|)`). Returns `f64::INFINITY` on shape mismatch.
pub fn model_divergence(a: &UnitModel, b: &UnitModel) -> f64 {
    if a.means.len() != b.means.len() || a.blocks.len() != b.blocks.len() {
        return f64::INFINITY;
    }
    let mut worst: f64 = 0.0;
    for (x, y) in a.means.iter().zip(&b.means) {
        worst = worst.max((x - y).abs());
    }
    for (x, y) in a.stds.iter().zip(&b.stds) {
        worst = worst.max((x - y).abs());
    }
    for (ba, bb) in a.blocks.iter().zip(&b.blocks) {
        if ba.len != bb.len {
            return f64::INFINITY;
        }
        for (x, y) in ba.eigenvalues.iter().zip(&bb.eigenvalues) {
            worst = worst.max((x - y).abs());
        }
        for c in 0..ba.len {
            let mut same: f64 = 0.0;
            let mut flipped: f64 = 0.0;
            for r in 0..ba.len {
                let x = ba.eigenvectors.get(r, c);
                let y = bb.eigenvectors.get(r, c);
                same = same.max((x - y).abs());
                flipped = flipped.max((x + y).abs());
            }
            worst = worst.max(same.min(flipped));
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use pga_sensorgen::{Fleet, FleetConfig};

    fn window_rows(fleet: &Fleet, unit: u32, t_end: u64, len: usize) -> Vec<Vec<f64>> {
        let obs = fleet.observation_window(unit, t_end, len);
        (0..obs.rows()).map(|r| obs.row(r).to_vec()).collect()
    }

    #[test]
    fn everything_starts_dirty_and_cleans_after_retrain() {
        let fleet = Fleet::new(FleetConfig::small(5));
        let units: Vec<u32> = (0..4).collect();
        let sensors = fleet.config().sensors_per_unit as usize;
        let mut ft = FleetTrainer::new(&units, sensors);
        assert_eq!(ft.dirty_count(), 4);
        for &u in &units {
            assert!(ft.ingest(u, &window_rows(&fleet, u, 99, 100)));
        }
        let df = Dataflow::new(2);
        let errors = ft.retrain_dirty(&df);
        assert!(errors.is_empty(), "unexpected errors: {errors:?}");
        assert_eq!(ft.dirty_count(), 0);
        assert_eq!(ft.models().len(), 4);
    }

    #[test]
    fn only_dirty_units_get_new_models() {
        let fleet = Fleet::new(FleetConfig::small(7));
        let units: Vec<u32> = (0..3).collect();
        let sensors = fleet.config().sensors_per_unit as usize;
        let mut ft = FleetTrainer::new(&units, sensors);
        for &u in &units {
            ft.ingest(u, &window_rows(&fleet, u, 99, 100));
        }
        let df = Dataflow::new(2);
        assert!(ft.retrain_dirty(&df).is_empty());
        let before: Vec<usize> = units
            .iter()
            .map(|u| ft.model(*u).unwrap().trained_rows)
            .collect();
        // New samples for unit 1 only.
        ft.ingest(1, &window_rows(&fleet, 1, 149, 50));
        assert_eq!(ft.dirty_units(), vec![1]);
        assert!(ft.retrain_dirty(&df).is_empty());
        for (&u, &rows_before) in units.iter().zip(&before) {
            let rows_now = ft.model(u).unwrap().trained_rows;
            if u == 1 {
                assert_eq!(rows_now, rows_before + 50);
            } else {
                assert_eq!(rows_now, rows_before);
            }
        }
    }

    #[test]
    fn incremental_matches_full_recompute_exactly() {
        // The incrementality invariant: models are pure functions of the
        // sufficient statistics, so dirty-only re-finishing equals a full
        // recompute bit-for-bit (divergence 0, well under the 1e-9 bar).
        let fleet = Fleet::new(FleetConfig::small(11));
        let units: Vec<u32> = (0..4).collect();
        let sensors = fleet.config().sensors_per_unit as usize;
        let mut incremental = FleetTrainer::new(&units, sensors);
        for &u in &units {
            incremental.ingest(u, &window_rows(&fleet, u, 99, 100));
        }
        let df = Dataflow::new(3);
        assert!(incremental.retrain_dirty(&df).is_empty());
        incremental.ingest(1, &window_rows(&fleet, 1, 129, 30));
        incremental.ingest(3, &window_rows(&fleet, 3, 129, 30));
        assert!(incremental.retrain_dirty(&df).is_empty());

        let mut full = incremental.clone();
        assert!(full.retrain_full(&df).is_empty());

        for &u in &units {
            let d = model_divergence(incremental.model(u).unwrap(), full.model(u).unwrap());
            assert!(d <= 1e-9, "unit {u} diverged by {d}");
            assert_eq!(d, 0.0, "same statistics must finish identically");
        }
    }

    #[test]
    fn insufficient_data_stays_dirty() {
        let mut ft = FleetTrainer::new(&[0, 1], 4);
        ft.ingest_row(0, &[1.0, 2.0, 3.0, 4.0]);
        let df = Dataflow::new(1);
        let errors = ft.retrain_dirty(&df);
        assert_eq!(errors.len(), 2);
        assert!(errors
            .iter()
            .all(|(_, e)| matches!(e, TrainError::InsufficientData { .. })));
        assert_eq!(ft.dirty_count(), 2);
        assert!(ft.models().is_empty());
    }

    #[test]
    fn unknown_units_are_ignored() {
        let mut ft = FleetTrainer::new(&[0], 4);
        assert!(!ft.ingest_row(9, &[1.0, 2.0, 3.0, 4.0]));
        assert!(!ft.ingest(9, &[vec![1.0, 2.0, 3.0, 4.0]]));
        assert_eq!(ft.rows_ingested(9), None);
        assert_eq!(ft.rows_ingested(0), Some(0));
    }

    #[test]
    fn divergence_detects_differences() {
        let fleet = Fleet::new(FleetConfig::small(13));
        let sensors = fleet.config().sensors_per_unit as usize;
        let mut ft = FleetTrainer::new(&[0], sensors);
        ft.ingest(0, &window_rows(&fleet, 0, 99, 100));
        let df = Dataflow::new(1);
        assert!(ft.retrain_dirty(&df).is_empty());
        let a = ft.model(0).unwrap().clone();
        ft.ingest(0, &window_rows(&fleet, 0, 199, 100));
        assert!(ft.retrain_dirty(&df).is_empty());
        let b = ft.model(0).unwrap().clone();
        assert!(
            model_divergence(&a, &b) > 0.0,
            "different data, different model"
        );
        assert_eq!(model_divergence(&a, &a), 0.0);
    }
}
