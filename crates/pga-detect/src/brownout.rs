//! Brownout: graceful degradation of online evaluation under overload.
//!
//! When the ingest/storage side is saturated, the worst response is to
//! stall the fleet view while full-resolution scoring queues up behind
//! overloaded scans. Instead the monitor *browns out*: it keeps
//! refreshing every unit on a documented sampled-sensor subset (every
//! `stride`-th sensor) and marks outcomes degraded, so operators see a
//! coarser but *live* picture rather than a stale one. The gate is a
//! hysteresis loop on the overload signal — enter high, exit low — so a
//! noisy signal cannot flap the pipeline between modes every tick.

use serde::{Deserialize, Serialize};

/// Brownout tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BrownoutConfig {
    /// Overload pressure (0..=1) at or above which brownout engages.
    pub enter_pressure: f64,
    /// Pressure at or below which brownout disengages. Must be below
    /// `enter_pressure` for hysteresis.
    pub exit_pressure: f64,
    /// Sensor stride in degraded mode: score sensors `{0, s, 2s, …}`.
    pub stride: usize,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            enter_pressure: 0.75,
            exit_pressure: 0.50,
            stride: 4,
        }
    }
}

impl BrownoutConfig {
    /// Validate the invariants the gate relies on.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.enter_pressure) {
            return Err(format!(
                "enter_pressure {} not in [0,1]",
                self.enter_pressure
            ));
        }
        if !(0.0..=1.0).contains(&self.exit_pressure) {
            return Err(format!("exit_pressure {} not in [0,1]", self.exit_pressure));
        }
        if self.exit_pressure >= self.enter_pressure {
            return Err(format!(
                "exit_pressure {} must be below enter_pressure {}",
                self.exit_pressure, self.enter_pressure
            ));
        }
        if self.stride == 0 {
            return Err("stride must be at least 1".into());
        }
        Ok(())
    }
}

/// Evaluation fidelity chosen by the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalMode {
    /// Score every sensor.
    Full,
    /// Score the sampled subset; outcomes are flagged degraded.
    Degraded,
}

/// Hysteresis gate over the overload signal. Deterministic: mode depends
/// only on the sequence of observed pressures.
#[derive(Debug, Clone)]
pub struct BrownoutGate {
    config: BrownoutConfig,
    engaged: bool,
    transitions: u64,
}

impl BrownoutGate {
    /// A disengaged gate. Panics on an invalid config (construction-time
    /// check, not a serving path).
    pub fn new(config: BrownoutConfig) -> Self {
        config.validate().expect("valid brownout config");
        BrownoutGate {
            config,
            engaged: false,
            transitions: 0,
        }
    }

    /// Feed the current overload pressure (0..=1); returns the mode to
    /// evaluate with this tick.
    pub fn observe(&mut self, pressure: f64) -> EvalMode {
        if self.engaged {
            if pressure <= self.config.exit_pressure {
                self.engaged = false;
                self.transitions += 1;
            }
        } else if pressure >= self.config.enter_pressure {
            self.engaged = true;
            self.transitions += 1;
        }
        self.mode()
    }

    /// Current mode without feeding a new observation.
    pub fn mode(&self) -> EvalMode {
        if self.engaged {
            EvalMode::Degraded
        } else {
            EvalMode::Full
        }
    }

    /// Stride to use when the mode is [`EvalMode::Degraded`].
    pub fn stride(&self) -> usize {
        self.config.stride
    }

    /// Mode changes so far (monitoring; flapping indicator).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_engages_high_exits_low_with_hysteresis() {
        let mut g = BrownoutGate::new(BrownoutConfig::default());
        assert_eq!(g.observe(0.3), EvalMode::Full);
        assert_eq!(g.observe(0.74), EvalMode::Full, "below enter");
        assert_eq!(g.observe(0.80), EvalMode::Degraded, "entered");
        // In the hysteresis band: stays degraded.
        assert_eq!(g.observe(0.60), EvalMode::Degraded);
        assert_eq!(g.observe(0.74), EvalMode::Degraded);
        // Below exit: recovers.
        assert_eq!(g.observe(0.50), EvalMode::Full);
        assert_eq!(g.transitions(), 2);
    }

    #[test]
    fn noisy_signal_in_band_does_not_flap() {
        let mut g = BrownoutGate::new(BrownoutConfig::default());
        g.observe(0.9);
        for i in 0..100 {
            // Oscillate inside (exit, enter): mode must not change.
            let p = 0.55 + 0.015 * ((i % 10) as f64);
            assert_eq!(g.observe(p), EvalMode::Degraded);
        }
        assert_eq!(g.transitions(), 1);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(BrownoutConfig {
            enter_pressure: 0.5,
            exit_pressure: 0.6,
            stride: 2,
        }
        .validate()
        .is_err());
        assert!(BrownoutConfig {
            enter_pressure: 0.5,
            exit_pressure: 0.2,
            stride: 0,
        }
        .validate()
        .is_err());
        assert!(BrownoutConfig::default().validate().is_ok());
    }
}
