//! Online evaluation: score new windows against a trained model and flag
//! anomalies under FDR control.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use pga_linalg::Matrix;
use pga_stats::{t_square_p_value, t_square_statistic, Procedure};

use crate::model::UnitModel;

/// One flagged sensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorFlag {
    /// Sensor index within the unit.
    pub sensor: u32,
    /// Raw p-value of the sensor's mean-shift test.
    pub p_value: f64,
    /// Window mean that triggered the flag.
    pub window_mean: f64,
    /// Baseline mean.
    pub baseline_mean: f64,
}

/// Result of evaluating one window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalOutcome {
    /// Unit evaluated.
    pub unit: u32,
    /// Per-sensor p-values (index = sensor).
    pub p_values: Vec<f64>,
    /// Sensors flagged by the configured procedure.
    pub flags: Vec<SensorFlag>,
    /// Rejection mask aligned with `p_values`.
    pub rejected: Vec<bool>,
    /// Per-block Hotelling T² p-values `(block start, p)` — the grouped,
    /// correlation-aware view.
    pub block_p_values: Vec<(usize, f64)>,
    /// Samples scored (rows × sensors).
    pub samples_scored: u64,
    /// `true` when this outcome was produced in brownout mode from a
    /// sampled sensor subset — consumers must treat unsampled sensors as
    /// *unknown*, not healthy.
    #[serde(default)]
    pub degraded: bool,
    /// Sensors actually scored (equals `p_values.len()` in full mode;
    /// the stride subset size in brownout mode).
    #[serde(default)]
    pub sensors_evaluated: u64,
}

/// Evaluator bound to one trained unit model.
///
/// ```
/// use pga_detect::{train_unit, OnlineEvaluator};
/// use pga_sensorgen::{Fleet, FleetConfig};
/// use pga_stats::Procedure;
///
/// let fleet = Fleet::new(FleetConfig::small(7));
/// let training = fleet.observation_window(0, 149, 150);
/// let model = train_unit(0, &training).unwrap();
/// let ev = OnlineEvaluator::new(model, Procedure::BenjaminiHochberg, 0.05);
/// let outcome = ev.evaluate(&fleet.observation_window(0, 249, 50));
/// assert_eq!(outcome.p_values.len(), fleet.config().sensors_per_unit as usize);
/// ```
#[derive(Debug, Clone)]
pub struct OnlineEvaluator {
    model: UnitModel,
    procedure: Procedure,
    alpha: f64,
}

impl OnlineEvaluator {
    /// Create an evaluator using `procedure` at level `alpha` (the paper
    /// uses Benjamini–Hochberg).
    pub fn new(model: UnitModel, procedure: Procedure, alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha in [0,1]");
        model.validate().expect("valid model");
        OnlineEvaluator {
            model,
            procedure,
            alpha,
        }
    }

    /// Borrow the model.
    pub fn model(&self) -> &UnitModel {
        &self.model
    }

    /// Evaluate a window (rows = time, columns = sensors; must match the
    /// model's sensor count).
    pub fn evaluate(&self, window: &Matrix) -> EvalOutcome {
        let (n, p) = window.shape();
        assert_eq!(p, self.model.sensors(), "sensor count mismatch");
        assert!(n > 0, "window must be non-empty");
        // Per-sensor window means.
        let mut means = vec![0.0; p];
        for r in 0..n {
            pga_linalg::axpy(1.0, window.row(r), &mut means);
        }
        let inv = 1.0 / n as f64;
        pga_linalg::scale(&mut means, inv);
        self.score_means(n, means)
    }

    /// Evaluate a window presented as **per-sensor column slices** — the
    /// shape the columnar block store hands back ([`pga_tsdb`]'s
    /// `ColumnSeries::values`) — without materialising a row-major window.
    ///
    /// Each column sums in sample order, the exact addition sequence the
    /// row-major `axpy` loop of [`OnlineEvaluator::evaluate`] performs, so
    /// the two paths agree **bit-for-bit** (the differential suite pins
    /// this).
    pub fn evaluate_columns(&self, columns: &[&[f64]]) -> EvalOutcome {
        let p = columns.len();
        assert_eq!(p, self.model.sensors(), "sensor count mismatch");
        let n = columns.first().map_or(0, |c| c.len());
        assert!(n > 0, "window must be non-empty");
        assert!(
            columns.iter().all(|c| c.len() == n),
            "ragged columns: every sensor needs {n} samples"
        );
        let inv = 1.0 / n as f64;
        let means: Vec<f64> = columns
            .iter()
            .map(|col| {
                let mut acc = 0.0;
                for &x in *col {
                    acc += x;
                }
                acc * inv
            })
            .collect();
        self.score_means(n, means)
    }

    /// Shared scoring core: per-sensor z-tests, FDR control, and block T²
    /// from a window-mean vector computed over `n` samples.
    fn score_means(&self, n: usize, means: Vec<f64>) -> EvalOutcome {
        let p = means.len();
        // Per-sensor z-test p-values. The baseline mean is itself an
        // estimate from `trained_rows` observations, so the standard error
        // of (window mean − trained mean) is σ·√(1/n + 1/n_train);
        // ignoring the training term miscalibrates the nulls and lets
        // borderline sensors free-ride on the BH threshold.
        let var_factor = (1.0 / n as f64 + 1.0 / self.model.trained_rows.max(1) as f64).sqrt();
        let p_values: Vec<f64> = (0..p)
            .map(|j| {
                let std = self.model.stds[j];
                if std == 0.0 {
                    return if means[j] == self.model.means[j] {
                        1.0
                    } else {
                        0.0
                    };
                }
                let z = (means[j] - self.model.means[j]) / (std * var_factor);
                pga_stats::two_sided_p_from_z(z)
            })
            .collect();
        let rej = self.procedure.apply(&p_values, self.alpha);
        let flags: Vec<SensorFlag> = rej
            .rejected
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r)
            .map(|(j, _)| SensorFlag {
                sensor: j as u32,
                p_value: p_values[j],
                window_mean: means[j],
                baseline_mean: self.model.means[j],
            })
            .collect();
        // Per-block T² on the mean vector (centred, projected, whitened).
        // Var(mean difference) = Σ(1/n + 1/n_train), so scores scale by
        // 1/var_factor before the χ² comparison.
        let inv_vf = 1.0 / var_factor;
        let block_p_values: Vec<(usize, f64)> = self
            .model
            .blocks
            .iter()
            .map(|b| {
                let centered: Vec<f64> = (0..b.len)
                    .map(|k| (means[b.start + k] - self.model.means[b.start + k]) * inv_vf)
                    .collect();
                let scores = b.project(&centered);
                let (t2, dof) = t_square_statistic(&scores, &b.eigenvalues, 1e-9);
                (b.start, t_square_p_value(t2, dof))
            })
            .collect();
        EvalOutcome {
            unit: self.model.unit,
            p_values,
            flags,
            rejected: rej.rejected,
            block_p_values,
            samples_scored: (n * p) as u64,
            degraded: false,
            sensors_evaluated: p as u64,
        }
    }

    /// Brownout evaluation: score only every `stride`-th sensor (the
    /// documented sampled subset `{0, stride, 2·stride, …}`) so the fleet
    /// view keeps refreshing under overload at a fraction of the cost.
    ///
    /// Contract: unsampled sensors get `p = 1.0` and are never rejected —
    /// they are *unknown*, not cleared; the outcome is marked
    /// [`EvalOutcome::degraded`] so dashboards can badge it; the block T²
    /// view is omitted (it needs every sensor in a block). FDR control is
    /// applied to the sampled p-values only, preserving calibration on
    /// the subset actually tested.
    pub fn evaluate_sampled(&self, window: &Matrix, stride: usize) -> EvalOutcome {
        let stride = stride.max(1);
        if stride == 1 {
            return self.evaluate(window);
        }
        let (n, p) = window.shape();
        assert_eq!(p, self.model.sensors(), "sensor count mismatch");
        assert!(n > 0, "window must be non-empty");
        let sampled: Vec<usize> = (0..p).step_by(stride).collect();
        // Window means for sampled sensors only.
        let mut means = vec![0.0; p];
        for r in 0..n {
            let row = window.row(r);
            for &j in &sampled {
                means[j] += row[j];
            }
        }
        let inv = 1.0 / n as f64;
        for &j in &sampled {
            means[j] *= inv;
        }
        let var_factor = (1.0 / n as f64 + 1.0 / self.model.trained_rows.max(1) as f64).sqrt();
        let sampled_p: Vec<f64> = sampled
            .iter()
            .map(|&j| {
                let std = self.model.stds[j];
                if std == 0.0 {
                    return if means[j] == self.model.means[j] {
                        1.0
                    } else {
                        0.0
                    };
                }
                let z = (means[j] - self.model.means[j]) / (std * var_factor);
                pga_stats::two_sided_p_from_z(z)
            })
            .collect();
        let rej = self.procedure.apply(&sampled_p, self.alpha);
        // Expand back to full width: unsampled sensors are unknown.
        let mut p_values = vec![1.0; p];
        let mut rejected = vec![false; p];
        let mut flags = Vec::new();
        for (k, &j) in sampled.iter().enumerate() {
            p_values[j] = sampled_p[k];
            rejected[j] = rej.rejected[k];
            if rej.rejected[k] {
                flags.push(SensorFlag {
                    sensor: j as u32,
                    p_value: sampled_p[k],
                    window_mean: means[j],
                    baseline_mean: self.model.means[j],
                });
            }
        }
        EvalOutcome {
            unit: self.model.unit,
            p_values,
            flags,
            rejected,
            block_p_values: Vec::new(),
            samples_scored: (n * sampled.len()) as u64,
            degraded: true,
            sensors_evaluated: sampled.len() as u64,
        }
    }

    /// Evaluate many windows in parallel (one per unit-evaluator pair is
    /// the common shape; this helper parallelises over windows for the
    /// throughput benchmark E3).
    pub fn evaluate_many(&self, windows: &[Matrix]) -> Vec<EvalOutcome> {
        windows.par_iter().map(|w| self.evaluate(w)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::train_unit;
    use pga_sensorgen::{FaultClass, Fleet, FleetConfig};
    use pga_stats::Procedure;

    fn trained_evaluator(fleet: &Fleet, unit: u32) -> OnlineEvaluator {
        let obs = fleet.observation_window(unit, 149, 150);
        let model = train_unit(unit, &obs).unwrap();
        OnlineEvaluator::new(model, Procedure::BenjaminiHochberg, 0.05)
    }

    #[test]
    fn healthy_window_raises_few_flags() {
        let fleet = Fleet::new(FleetConfig::paper_scale(31));
        let unit = fleet.units_with_class(FaultClass::Healthy)[0];
        let ev = trained_evaluator(&fleet, unit);
        // A later healthy window.
        let w = fleet.observation_window(unit, 1999, 50);
        let out = ev.evaluate(&w);
        // BH at q=0.05 under the global null: expected false flags ≈ 0.
        assert!(
            out.flags.len() <= 2,
            "healthy unit flagged {} sensors",
            out.flags.len()
        );
    }

    #[test]
    fn shifted_window_flags_the_faulted_group() {
        let fleet = Fleet::new(FleetConfig::paper_scale(31));
        let unit = fleet.units_with_class(FaultClass::SharpShift)[0];
        let spec = *fleet.fault(unit);
        let ev = trained_evaluator(&fleet, unit);
        let w = fleet.observation_window(unit, spec.onset + 49, 50);
        let out = ev.evaluate(&w);
        let flagged: std::collections::HashSet<u32> = out.flags.iter().map(|f| f.sensor).collect();
        for s in spec.group_start..spec.group_start + spec.group_len {
            assert!(flagged.contains(&s), "faulted sensor {s} not flagged");
        }
        // Flags should be concentrated on the fault group.
        assert!(
            out.flags.len() <= spec.group_len as usize + 3,
            "too many flags: {}",
            out.flags.len()
        );
    }

    #[test]
    fn block_t2_detects_group_fault() {
        let fleet = Fleet::new(FleetConfig::paper_scale(37));
        let unit = fleet.units_with_class(FaultClass::SharpShift)[0];
        let spec = *fleet.fault(unit);
        let ev = trained_evaluator(&fleet, unit);
        let w = fleet.observation_window(unit, spec.onset + 49, 50);
        let out = ev.evaluate(&w);
        // The block containing the fault group must have a tiny T² p-value.
        let fault_block_start =
            (spec.group_start as usize / crate::model::BLOCK_SENSORS) * crate::model::BLOCK_SENSORS;
        let (_, p) = out
            .block_p_values
            .iter()
            .find(|(s, _)| *s == fault_block_start)
            .copied()
            .unwrap();
        assert!(p < 1e-4, "fault block p-value {p}");
    }

    #[test]
    fn degradation_detected_late_not_early() {
        let fleet = Fleet::new(FleetConfig::paper_scale(41));
        let unit = fleet.units_with_class(FaultClass::GradualDegradation)[0];
        let spec = *fleet.fault(unit);
        let ev = trained_evaluator(&fleet, unit);
        // Immediately after onset the drift is tiny.
        let early = ev.evaluate(&fleet.observation_window(unit, spec.onset + 19, 20));
        let early_hits = early
            .flags
            .iter()
            .filter(|f| spec.affects(f.sensor))
            .count();
        // Long after onset the drift dominates.
        let late_t = spec.onset + 3000;
        let late = ev.evaluate(&fleet.observation_window(unit, late_t + 49, 50));
        let late_hits = late.flags.iter().filter(|f| spec.affects(f.sensor)).count();
        assert!(
            late_hits >= spec.group_len as usize - 1,
            "late hits {late_hits}"
        );
        assert!(
            late_hits > early_hits,
            "drift should grow: {early_hits} → {late_hits}"
        );
    }

    #[test]
    fn bonferroni_flags_no_more_than_bh() {
        let fleet = Fleet::new(FleetConfig::paper_scale(43));
        let unit = fleet.units_with_class(FaultClass::SharpShift)[0];
        let spec = *fleet.fault(unit);
        let obs = fleet.observation_window(unit, 149, 150);
        let model = train_unit(unit, &obs).unwrap();
        let w = fleet.observation_window(unit, spec.onset + 29, 30);
        let bh =
            OnlineEvaluator::new(model.clone(), Procedure::BenjaminiHochberg, 0.05).evaluate(&w);
        let bon = OnlineEvaluator::new(model, Procedure::Bonferroni, 0.05).evaluate(&w);
        assert!(bon.flags.len() <= bh.flags.len());
    }

    #[test]
    fn evaluate_many_matches_single() {
        let fleet = Fleet::new(FleetConfig::small(47));
        let ev = trained_evaluator(&fleet, 0);
        let w1 = fleet.observation_window(0, 199, 25);
        let w2 = fleet.observation_window(0, 299, 25);
        let batch = ev.evaluate_many(&[w1.clone(), w2.clone()]);
        assert_eq!(batch[0].p_values, ev.evaluate(&w1).p_values);
        assert_eq!(batch[1].p_values, ev.evaluate(&w2).p_values);
        assert_eq!(
            batch[0].samples_scored,
            25 * fleet.config().sensors_per_unit as u64
        );
    }

    #[test]
    #[should_panic(expected = "sensor count mismatch")]
    fn wrong_width_window_panics() {
        let fleet = Fleet::new(FleetConfig::small(53));
        let ev = trained_evaluator(&fleet, 0);
        let w = Matrix::zeros(5, 3);
        ev.evaluate(&w);
    }

    #[test]
    fn sampled_evaluation_is_flagged_degraded_and_scores_subset() {
        let fleet = Fleet::new(FleetConfig::paper_scale(59));
        let unit = fleet.units_with_class(FaultClass::SharpShift)[0];
        let spec = *fleet.fault(unit);
        let ev = trained_evaluator(&fleet, unit);
        let w = fleet.observation_window(unit, spec.onset + 49, 50);
        let p = fleet.config().sensors_per_unit as usize;

        let full = ev.evaluate(&w);
        assert!(!full.degraded);
        assert_eq!(full.sensors_evaluated, p as u64);

        let stride = 4usize;
        let out = ev.evaluate_sampled(&w, stride);
        assert!(out.degraded, "sampled outcome must carry the degraded flag");
        let expected = (0..p).step_by(stride).count() as u64;
        assert_eq!(out.sensors_evaluated, expected);
        assert_eq!(out.samples_scored, 50 * expected);
        assert_eq!(out.p_values.len(), p, "full-width p-value family");
        // Unsampled sensors are unknown, never flagged healthy-or-faulty.
        for (s, pv) in out.p_values.iter().enumerate() {
            if s % stride != 0 {
                assert_eq!(*pv, 1.0, "unsampled sensor {s} must not carry evidence");
            }
        }
        assert!(out
            .flags
            .iter()
            .all(|f| (f.sensor as usize).is_multiple_of(stride)));
        // The fault group spans >= stride sensors, so sampled scoring must
        // still land flags inside it.
        let sampled_fault_hits = out.flags.iter().filter(|f| spec.affects(f.sensor)).count();
        assert!(
            sampled_fault_hits > 0,
            "brownout evaluation must still surface the fault group"
        );
        assert!(
            out.block_p_values.is_empty(),
            "block T² omitted in brownout"
        );
    }

    #[test]
    fn stride_one_sampling_matches_full_evaluation() {
        let fleet = Fleet::new(FleetConfig::small(61));
        let ev = trained_evaluator(&fleet, 0);
        let w = fleet.observation_window(0, 199, 25);
        let full = ev.evaluate(&w);
        let sampled = ev.evaluate_sampled(&w, 1);
        assert_eq!(sampled.p_values, full.p_values);
        assert!(!sampled.degraded, "stride 1 is full fidelity");
    }
}
