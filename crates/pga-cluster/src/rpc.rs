//! Typed in-process RPC with bounded queues and overload crash semantics.
//!
//! Each server is one OS thread draining a bounded crossbeam channel — the
//! analog of an HBase region server's RPC queue. Two call paths exist:
//!
//! * [`RpcHandle::call`] — blocking send: the caller waits for queue space.
//!   This is what the reverse proxy's backpressure gives the system.
//! * [`RpcHandle::cast`] — non-blocking send: a full queue returns
//!   [`RpcError::Overloaded`] and charges an overload strike against the
//!   server. Once strikes reach the configured threshold the server
//!   *crashes* (stops serving), modelling the paper's observed region
//!   server failures under unthrottled OpenTSDB write storms.
//! * [`RpcHandle::call_with`] — admission-controlled send: once queue
//!   occupancy crosses a per-class watermark the request is rejected with
//!   a typed [`RpcError::Busy`] carrying a `retry_after_ms` hint, instead
//!   of blocking the producer forever. Ingest writes degrade first (lower
//!   watermark — the proxy buffers and retries them without loss); scan
//!   reads are shed only past a higher critical watermark so the fleet
//!   view stays alive as long as possible. Requests may also carry an
//!   absolute deadline: the server drops expired work with a typed
//!   [`RpcError::DeadlineExpired`] rather than serving dead requests.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::sync::OnceLock;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam_channel::{bounded, Sender, TrySendError};

/// Millisecond clock used for deadlines and admission `retry_after` hints.
/// Injectable so deterministic simulations can drive it from sim time.
pub type ClockMs = Arc<dyn Fn() -> u64 + Send + Sync>;

/// Milliseconds since the first call in this process — the default
/// [`ClockMs`]. A single shared epoch means every server and caller in the
/// process agrees on absolute deadline values.
pub fn default_clock_ms() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_millis() as u64
}

/// Priority class of an admission-controlled request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestClass {
    /// Ingest write: degraded *first* (lower watermark). Writes are
    /// buffered and retried by the proxy, so shedding them converts
    /// overload into delay, never loss.
    Write,
    /// Detection/scan read: shed only past the higher critical watermark,
    /// keeping the operator fleet view alive while writes back off.
    Read,
}

/// Watermark-based admission policy for one server queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Queue occupancy (0..=1) at which writes get `Busy`.
    pub write_shed_watermark: f64,
    /// Queue occupancy (0..=1) at which reads get `Busy`. Must be ≥ the
    /// write watermark: reads are shed *after* writes degrade.
    pub read_shed_watermark: f64,
    /// Base of the `retry_after_ms` hint; scaled up with occupancy.
    pub retry_after_base_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            write_shed_watermark: 0.75,
            read_shed_watermark: 0.90,
            retry_after_base_ms: 2,
        }
    }
}

impl AdmissionConfig {
    /// Admission control disabled: nothing is ever shed pre-queue. This is
    /// the seed-equivalent configuration used as the E18 control arm.
    pub fn disabled() -> Self {
        AdmissionConfig {
            write_shed_watermark: f64::INFINITY,
            read_shed_watermark: f64::INFINITY,
            retry_after_base_ms: 2,
        }
    }

    /// Watermark for a request class.
    pub fn watermark(&self, class: RequestClass) -> f64 {
        match class {
            RequestClass::Write => self.write_shed_watermark,
            RequestClass::Read => self.read_shed_watermark,
        }
    }

    /// Deterministic `retry_after_ms` hint: grows with occupancy so
    /// callers back off harder the deeper the queue is.
    pub fn retry_after_ms(&self, occupancy: f64) -> u64 {
        let scale = 1 + (occupancy.clamp(0.0, 2.0) * 4.0) as u64;
        self.retry_after_base_ms.max(1) * scale
    }
}

/// Lifecycle of an RPC server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerState {
    /// Serving normally.
    Healthy,
    /// Crashed after sustained queue overload; no longer serving.
    Crashed,
    /// Shut down cleanly.
    Stopped,
}

impl ServerState {
    fn from_u8(v: u8) -> ServerState {
        match v {
            0 => ServerState::Healthy,
            1 => ServerState::Crashed,
            _ => ServerState::Stopped,
        }
    }
}

/// Errors surfaced to RPC callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The queue was full (only from [`RpcHandle::cast`]).
    Overloaded,
    /// Admission control shed the request: queue occupancy crossed the
    /// watermark for this request's class. Retry after the hinted delay.
    Busy {
        /// Suggested minimum backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The request's deadline expired before the server could serve it.
    DeadlineExpired,
    /// The server has crashed from overload.
    Crashed,
    /// The server was stopped cleanly.
    Stopped,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Overloaded => write!(f, "rpc queue full"),
            RpcError::Busy { retry_after_ms } => {
                write!(f, "server busy, retry after {retry_after_ms}ms")
            }
            RpcError::DeadlineExpired => write!(f, "deadline expired before service"),
            RpcError::Crashed => write!(f, "server crashed from overload"),
            RpcError::Stopped => write!(f, "server stopped"),
        }
    }
}

impl std::error::Error for RpcError {}

/// Counters exported by a server. All loads are `Relaxed`: these are
/// monitoring counters, not synchronisation points.
#[derive(Debug, Default)]
pub struct RpcStats {
    /// Requests fully processed.
    pub processed: AtomicU64,
    /// Cast attempts rejected because the queue was full.
    pub overloads: AtomicU64,
    /// Nanoseconds spent inside the handler.
    pub busy_ns: AtomicU64,
    /// Writes shed by admission control (`Busy`).
    pub shed_writes: AtomicU64,
    /// Reads shed by admission control (`Busy`).
    pub shed_reads: AtomicU64,
    /// Requests dropped because their deadline expired.
    pub deadline_expired: AtomicU64,
}

struct Shared {
    state: AtomicU8,
    stats: RpcStats,
    crash_threshold: u64,
    admission: AdmissionConfig,
    clock: ClockMs,
}

impl Shared {
    fn state(&self) -> ServerState {
        ServerState::from_u8(self.state.load(Ordering::Acquire))
    }
}

struct Envelope<Req, Resp> {
    req: Req,
    /// Absolute deadline on the server's [`ClockMs`]; expired envelopes
    /// are dropped with a typed error instead of being served.
    deadline_ms: Option<u64>,
    /// `None` for one-way casts: the response is discarded.
    reply: Option<Sender<Result<Resp, RpcError>>>,
}

/// Client handle to a spawned RPC server. Cloneable; the server thread
/// exits when all handles are dropped or [`RpcHandle::shutdown`] is called.
pub struct RpcHandle<Req, Resp> {
    tx: Sender<Envelope<Req, Resp>>,
    shared: Arc<Shared>,
    name: String,
}

impl<Req, Resp> Clone for RpcHandle<Req, Resp> {
    fn clone(&self) -> Self {
        RpcHandle {
            tx: self.tx.clone(),
            shared: self.shared.clone(),
            name: self.name.clone(),
        }
    }
}

/// Builder for an RPC server.
pub struct RpcServerBuilder {
    name: String,
    queue_capacity: usize,
    crash_threshold: u64,
    admission: AdmissionConfig,
    clock: Option<ClockMs>,
}

impl RpcServerBuilder {
    /// Start configuring a server with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        RpcServerBuilder {
            name: name.into(),
            queue_capacity: 1024,
            crash_threshold: u64::MAX,
            admission: AdmissionConfig::disabled(),
            clock: None,
        }
    }

    /// Enable watermark-based admission control for [`RpcHandle::call_with`]
    /// callers. Default: disabled (seed behavior).
    pub fn admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }

    /// Override the millisecond clock used for deadline checks and
    /// `retry_after` hints. Default: [`default_clock_ms`]. Deterministic
    /// simulations inject sim time here.
    pub fn clock(mut self, clock: ClockMs) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Bound the RPC queue (HBase `hbase.regionserver.handler.count` ×
    /// queue depth analog). Default 1024.
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        self.queue_capacity = cap;
        self
    }

    /// Number of overload strikes after which the server crashes. Default:
    /// never (only meaningful for `try_call` workloads).
    pub fn crash_after_overloads(mut self, strikes: u64) -> Self {
        self.crash_threshold = strikes;
        self
    }

    /// Spawn the server thread with the given request handler.
    pub fn spawn<Req, Resp, H>(self, mut handler: H) -> (RpcHandle<Req, Resp>, ServerRunner)
    where
        Req: Send + 'static,
        Resp: Send + 'static,
        H: FnMut(Req) -> Resp + Send + 'static,
    {
        let (tx, rx) = bounded::<Envelope<Req, Resp>>(self.queue_capacity);
        let shared = Arc::new(Shared {
            state: AtomicU8::new(0),
            stats: RpcStats::default(),
            crash_threshold: self.crash_threshold,
            admission: self.admission,
            clock: self.clock.unwrap_or_else(|| Arc::new(default_clock_ms)),
        });
        let worker_shared = shared.clone();
        let thread_name = self.name.clone();
        let join = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                for env in rx.iter() {
                    if worker_shared.state() == ServerState::Crashed {
                        // Crashed mid-flight: drop remaining requests.
                        drop(env.reply);
                        continue;
                    }
                    if let Some(d) = env.deadline_ms {
                        if (worker_shared.clock)() >= d {
                            // Dead request: reply typed, never serve it.
                            worker_shared
                                .stats
                                .deadline_expired
                                .fetch_add(1, Ordering::Relaxed);
                            if let Some(reply) = env.reply {
                                let _ = reply.send(Err(RpcError::DeadlineExpired));
                            }
                            continue;
                        }
                    }
                    let start = Instant::now();
                    let resp = handler(env.req);
                    worker_shared
                        .stats
                        .busy_ns
                        .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    worker_shared
                        .stats
                        .processed
                        .fetch_add(1, Ordering::Relaxed);
                    // Caller may have given up (or cast one-way); ignore
                    // send failures.
                    if let Some(reply) = env.reply {
                        let _ = reply.send(Ok(resp));
                    }
                }
            })
            // pga-allow(panic-path): server startup, before any request is accepted — not a serving path
            .expect("spawn rpc server thread");
        (
            RpcHandle {
                tx,
                shared,
                name: self.name,
            },
            ServerRunner { join: Some(join) },
        )
    }
}

/// Owns the server thread.
///
/// Dropping the runner *detaches* the thread (it exits once every
/// [`RpcHandle`] clone is gone); call [`ServerRunner::join`] only after
/// dropping all handles, or the join would wait forever on the open
/// channel.
pub struct ServerRunner {
    join: Option<JoinHandle<()>>,
}

impl ServerRunner {
    /// Wait for the server thread to exit. All [`RpcHandle`] clones must be
    /// dropped first, otherwise the channel stays open and this blocks.
    pub fn join(mut self) {
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for ServerRunner {
    fn drop(&mut self) {
        // Detach: joining here could deadlock while handles are alive.
        self.join.take();
    }
}

impl<Req: Send + 'static, Resp: Send + 'static> RpcHandle<Req, Resp> {
    /// Server display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ServerState {
        self.shared.state()
    }

    /// Requests processed so far.
    pub fn processed(&self) -> u64 {
        self.shared.stats.processed.load(Ordering::Relaxed)
    }

    /// Overload strikes recorded so far.
    pub fn overloads(&self) -> u64 {
        self.shared.stats.overloads.load(Ordering::Relaxed)
    }

    /// Nanoseconds the handler has been busy.
    pub fn busy_ns(&self) -> u64 {
        self.shared.stats.busy_ns.load(Ordering::Relaxed)
    }

    /// Writes shed by admission control.
    pub fn shed_writes(&self) -> u64 {
        self.shared.stats.shed_writes.load(Ordering::Relaxed)
    }

    /// Reads shed by admission control.
    pub fn shed_reads(&self) -> u64 {
        self.shared.stats.shed_reads.load(Ordering::Relaxed)
    }

    /// Requests dropped because their deadline expired.
    pub fn deadline_expired(&self) -> u64 {
        self.shared.stats.deadline_expired.load(Ordering::Relaxed)
    }

    /// Milliseconds on this server's deadline clock right now.
    pub fn now_ms(&self) -> u64 {
        (self.shared.clock)()
    }

    /// Requests currently waiting in the RPC queue — the telemetry signal
    /// the control plane scales on (§III-B's overload precursor).
    pub fn queue_depth(&self) -> usize {
        self.tx.len()
    }

    /// Configured queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.tx.capacity().unwrap_or(usize::MAX)
    }

    /// Blocking call: waits for queue space (backpressure), then for the
    /// response.
    pub fn call(&self, req: Req) -> Result<Resp, RpcError> {
        match self.shared.state() {
            ServerState::Healthy => {}
            ServerState::Crashed => return Err(RpcError::Crashed),
            ServerState::Stopped => return Err(RpcError::Stopped),
        }
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Envelope {
                req,
                deadline_ms: None,
                reply: Some(reply_tx),
            })
            .map_err(|_| RpcError::Stopped)?;
        match reply_rx.recv() {
            Ok(result) => result,
            Err(_) => Err(match self.shared.state() {
                ServerState::Crashed => RpcError::Crashed,
                _ => RpcError::Stopped,
            }),
        }
    }

    /// Admission-controlled call: never blocks the producer on a full or
    /// over-watermark queue. Sheds the request with a typed
    /// [`RpcError::Busy`] (plus a `retry_after_ms` hint) once occupancy
    /// crosses the watermark for `class`, and tags the enqueued request
    /// with an optional absolute deadline (server-clock milliseconds) past
    /// which the server drops it as [`RpcError::DeadlineExpired`].
    pub fn call_with(
        &self,
        req: Req,
        class: RequestClass,
        deadline_ms: Option<u64>,
    ) -> Result<Resp, RpcError> {
        match self.shared.state() {
            ServerState::Healthy => {}
            ServerState::Crashed => return Err(RpcError::Crashed),
            ServerState::Stopped => return Err(RpcError::Stopped),
        }
        if let Some(d) = deadline_ms {
            if (self.shared.clock)() >= d {
                // Already dead on arrival: don't waste queue space.
                self.shared
                    .stats
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
                return Err(RpcError::DeadlineExpired);
            }
        }
        let capacity = self.tx.capacity().unwrap_or(usize::MAX).max(1);
        let occupancy = self.tx.len() as f64 / capacity as f64;
        if occupancy >= self.shared.admission.watermark(class) {
            return Err(self.shed(class, occupancy));
        }
        let (reply_tx, reply_rx) = bounded(1);
        match self.tx.try_send(Envelope {
            req,
            deadline_ms,
            reply: Some(reply_tx),
        }) {
            Ok(()) => match reply_rx.recv() {
                Ok(result) => result,
                Err(_) => Err(match self.shared.state() {
                    ServerState::Crashed => RpcError::Crashed,
                    _ => RpcError::Stopped,
                }),
            },
            // Queue filled between the occupancy probe and the send: the
            // same shed path, never a blocking producer.
            Err(TrySendError::Full(_)) => Err(self.shed(class, 1.0)),
            Err(TrySendError::Disconnected(_)) => Err(RpcError::Stopped),
        }
    }

    fn shed(&self, class: RequestClass, occupancy: f64) -> RpcError {
        let counter = match class {
            RequestClass::Write => &self.shared.stats.shed_writes,
            RequestClass::Read => &self.shared.stats.shed_reads,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        RpcError::Busy {
            retry_after_ms: self.shared.admission.retry_after_ms(occupancy),
        }
    }

    /// One-way, non-blocking cast: enqueue the request and return without
    /// waiting for a response (asynchronous OpenTSDB-style writes). A full
    /// queue is an overload strike; sustained strikes (≥ the configured
    /// threshold) crash the server — the paper's unprotected ingestion
    /// path.
    pub fn cast(&self, req: Req) -> Result<(), RpcError> {
        match self.shared.state() {
            ServerState::Healthy => {}
            ServerState::Crashed => return Err(RpcError::Crashed),
            ServerState::Stopped => return Err(RpcError::Stopped),
        }
        match self.tx.try_send(Envelope {
            req,
            deadline_ms: None,
            reply: None,
        }) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => {
                let strikes = self.shared.stats.overloads.fetch_add(1, Ordering::AcqRel) + 1;
                if strikes >= self.shared.crash_threshold {
                    self.shared.state.store(1, Ordering::Release);
                }
                Err(RpcError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => Err(RpcError::Stopped),
        }
    }

    /// Signal shutdown: subsequent calls fail, the thread drains and exits
    /// once all clones of this handle are dropped.
    pub fn shutdown(&self) {
        self.shared.state.store(2, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn call_roundtrip() {
        let (h, runner) = RpcServerBuilder::new("echo").spawn(|x: u32| x * 2);
        assert_eq!(h.call(21).unwrap(), 42);
        assert_eq!(h.processed(), 1);
        assert_eq!(h.state(), ServerState::Healthy);
        drop(h);
        runner.join();
    }

    #[test]
    fn many_callers_share_one_server() {
        let (h, runner) = RpcServerBuilder::new("adder").spawn(|x: u64| x + 1);
        let mut joins = Vec::new();
        for i in 0..8u64 {
            let h = h.clone();
            joins.push(std::thread::spawn(move || {
                for j in 0..100 {
                    assert_eq!(h.call(i * 100 + j).unwrap(), i * 100 + j + 1);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(h.processed(), 800);
        drop(h);
        runner.join();
    }

    #[test]
    fn cast_overflow_strikes_and_crashes() {
        // Slow handler + capacity 1 + unthrottled casts → overload strikes
        // → crash: the §III-B failure mode.
        let (h, runner) = RpcServerBuilder::new("slow")
            .queue_capacity(1)
            .crash_after_overloads(3)
            .spawn(|_: u32| {
                std::thread::sleep(Duration::from_millis(20));
                0u32
            });
        let mut overloads = 0;
        let mut crashed = false;
        for i in 0..200 {
            match h.cast(i) {
                Err(RpcError::Overloaded) => overloads += 1,
                Err(RpcError::Crashed) => {
                    crashed = true;
                    break;
                }
                _ => {}
            }
        }
        assert!(overloads >= 3, "expected strikes, got {overloads}");
        assert!(crashed, "server should have crashed");
        assert_eq!(h.state(), ServerState::Crashed);
        // Blocking calls now refuse too.
        assert_eq!(h.call(1).unwrap_err(), RpcError::Crashed);
        drop(h);
        runner.join();
    }

    #[test]
    fn cast_is_fire_and_forget() {
        let (h, runner) = RpcServerBuilder::new("counter")
            .queue_capacity(64)
            .spawn(|x: u32| x);
        for i in 0..50 {
            h.cast(i).unwrap();
        }
        drop(h.clone()); // clones do not end the service
                         // Drain by dropping the last handle; the thread then exits.
        let probe = h.clone();
        drop(h);
        // The queued casts are all processed before exit.
        while probe.processed() < 50 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(probe.overloads(), 0);
        drop(probe);
        runner.join();
    }

    #[test]
    fn blocking_call_applies_backpressure_without_crashing() {
        // Same slow server, but blocking calls: no overloads, no crash.
        let (h, runner) = RpcServerBuilder::new("slow-bp")
            .queue_capacity(1)
            .crash_after_overloads(3)
            .spawn(|x: u32| {
                std::thread::sleep(Duration::from_millis(1));
                x
            });
        for i in 0..50 {
            assert_eq!(h.call(i).unwrap(), i);
        }
        assert_eq!(h.overloads(), 0);
        assert_eq!(h.state(), ServerState::Healthy);
        assert!(h.busy_ns() > 0);
        drop(h);
        runner.join();
    }

    #[test]
    fn admission_sheds_writes_before_reads() {
        // Slow handler, capacity 10: writes shed at 40%, reads at 80%.
        let (h, runner) = RpcServerBuilder::new("admit")
            .queue_capacity(10)
            .admission(AdmissionConfig {
                write_shed_watermark: 0.4,
                read_shed_watermark: 0.8,
                retry_after_base_ms: 2,
            })
            .spawn(|x: u32| {
                std::thread::sleep(Duration::from_millis(30));
                x
            });
        // Fill the queue past the write watermark with one-way casts.
        for i in 0..6 {
            h.cast(i).unwrap();
        }
        // Writes now get Busy with a retry hint…
        let w = h.call_with(99, RequestClass::Write, None);
        match w {
            Err(RpcError::Busy { retry_after_ms }) => assert!(retry_after_ms >= 2),
            other => panic!("expected Busy for write, got {other:?}"),
        }
        // …while reads are still admitted (occupancy below read watermark).
        let depth_before = h.queue_depth();
        assert!(depth_before < 8, "test setup: below read watermark");
        assert_eq!(h.call_with(7, RequestClass::Read, None).unwrap(), 7);
        assert!(h.shed_writes() >= 1);
        assert_eq!(h.shed_reads(), 0);
        drop(h);
        runner.join();
    }

    #[test]
    fn reads_shed_past_critical_watermark() {
        let (h, runner) = RpcServerBuilder::new("admit-read")
            .queue_capacity(4)
            .admission(AdmissionConfig {
                write_shed_watermark: 0.25,
                read_shed_watermark: 0.5,
                retry_after_base_ms: 1,
            })
            .spawn(|x: u32| {
                std::thread::sleep(Duration::from_millis(100));
                x
            });
        for i in 0..3 {
            h.cast(i).unwrap();
        }
        assert!(matches!(
            h.call_with(8, RequestClass::Read, None),
            Err(RpcError::Busy { .. })
        ));
        assert!(h.shed_reads() >= 1);
        drop(h);
        runner.join();
    }

    #[test]
    fn expired_deadline_is_a_typed_error_not_service() {
        use std::sync::atomic::AtomicU64 as Clock;
        let now = Arc::new(Clock::new(100));
        let clock_now = now.clone();
        let (h, runner) = RpcServerBuilder::new("deadline")
            .clock(Arc::new(move || clock_now.load(Ordering::SeqCst)))
            .spawn(|x: u32| x);
        // Deadline in the future: served.
        assert_eq!(h.call_with(1, RequestClass::Write, Some(500)).unwrap(), 1);
        // Deadline in the past: typed rejection before enqueue.
        now.store(1_000, Ordering::SeqCst);
        assert_eq!(
            h.call_with(2, RequestClass::Write, Some(500)).unwrap_err(),
            RpcError::DeadlineExpired
        );
        assert_eq!(h.deadline_expired(), 1);
        assert_eq!(h.processed(), 1);
        drop(h);
        runner.join();
    }

    #[test]
    fn server_drops_work_that_expires_in_queue() {
        use std::sync::atomic::AtomicU64 as Clock;
        let now = Arc::new(Clock::new(0));
        let server_now = now.clone();
        // Handler advances the clock past every later deadline: requests
        // behind the first one expire while queued.
        let tick = now.clone();
        let (h, runner) = RpcServerBuilder::new("queue-expiry")
            .queue_capacity(8)
            .clock(Arc::new(move || server_now.load(Ordering::SeqCst)))
            .spawn(move |x: u32| {
                tick.store(10_000, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(5));
                x
            });
        let mut joins = Vec::new();
        for i in 0..4u32 {
            let h = h.clone();
            joins.push(std::thread::spawn(move || {
                h.call_with(i, RequestClass::Write, Some(5_000))
            }));
        }
        let mut served = 0u32;
        let mut expired = 0u32;
        for j in joins {
            match j.join().unwrap() {
                Ok(_) => served += 1,
                Err(RpcError::DeadlineExpired) => expired += 1,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        // At least the first request is served; everything that waited
        // behind the clock jump is dropped with a typed error.
        assert!(served >= 1, "one request must be served");
        assert_eq!(served + expired, 4);
        assert_eq!(h.deadline_expired() as u32, expired);
        drop(h);
        runner.join();
    }

    #[test]
    fn call_with_never_blocks_on_full_queue() {
        let (h, runner) = RpcServerBuilder::new("nonblock")
            .queue_capacity(1)
            .spawn(|x: u32| {
                std::thread::sleep(Duration::from_millis(100));
                x
            });
        // Saturate: one in service, one queued.
        h.cast(0).unwrap();
        while h.queue_depth() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        h.cast(1).unwrap();
        // Even with admission disabled, call_with resolves immediately
        // with Busy instead of blocking the producer.
        let start = Instant::now();
        let r = h.call_with(2, RequestClass::Write, None);
        assert!(matches!(r, Err(RpcError::Busy { .. })));
        assert!(start.elapsed() < Duration::from_millis(50));
        drop(h);
        runner.join();
    }

    #[test]
    fn shutdown_stops_service() {
        let (h, runner) = RpcServerBuilder::new("stopper").spawn(|x: u8| x);
        h.shutdown();
        assert_eq!(h.call(1).unwrap_err(), RpcError::Stopped);
        assert_eq!(h.state(), ServerState::Stopped);
        drop(h);
        runner.join();
    }
}
