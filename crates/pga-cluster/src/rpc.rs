//! Typed in-process RPC with bounded queues and overload crash semantics.
//!
//! Each server is one OS thread draining a bounded crossbeam channel — the
//! analog of an HBase region server's RPC queue. Two call paths exist:
//!
//! * [`RpcHandle::call`] — blocking send: the caller waits for queue space.
//!   This is what the reverse proxy's backpressure gives the system.
//! * [`RpcHandle::try_call`] — non-blocking send: a full queue returns
//!   [`RpcError::Overloaded`] and charges an overload strike against the
//!   server. Once strikes reach the configured threshold the server
//!   *crashes* (stops serving), modelling the paper's observed region
//!   server failures under unthrottled OpenTSDB write storms.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam_channel::{bounded, Sender, TrySendError};

/// Lifecycle of an RPC server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerState {
    /// Serving normally.
    Healthy,
    /// Crashed after sustained queue overload; no longer serving.
    Crashed,
    /// Shut down cleanly.
    Stopped,
}

impl ServerState {
    fn from_u8(v: u8) -> ServerState {
        match v {
            0 => ServerState::Healthy,
            1 => ServerState::Crashed,
            _ => ServerState::Stopped,
        }
    }
}

/// Errors surfaced to RPC callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The queue was full (only from [`RpcHandle::try_call`]).
    Overloaded,
    /// The server has crashed from overload.
    Crashed,
    /// The server was stopped cleanly.
    Stopped,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Overloaded => write!(f, "rpc queue full"),
            RpcError::Crashed => write!(f, "server crashed from overload"),
            RpcError::Stopped => write!(f, "server stopped"),
        }
    }
}

impl std::error::Error for RpcError {}

/// Counters exported by a server. All loads are `Relaxed`: these are
/// monitoring counters, not synchronisation points.
#[derive(Debug, Default)]
pub struct RpcStats {
    /// Requests fully processed.
    pub processed: AtomicU64,
    /// try_call attempts rejected because the queue was full.
    pub overloads: AtomicU64,
    /// Nanoseconds spent inside the handler.
    pub busy_ns: AtomicU64,
}

struct Shared {
    state: AtomicU8,
    stats: RpcStats,
    crash_threshold: u64,
}

impl Shared {
    fn state(&self) -> ServerState {
        ServerState::from_u8(self.state.load(Ordering::Acquire))
    }
}

struct Envelope<Req, Resp> {
    req: Req,
    /// `None` for one-way casts: the response is discarded.
    reply: Option<Sender<Resp>>,
}

/// Client handle to a spawned RPC server. Cloneable; the server thread
/// exits when all handles are dropped or [`RpcHandle::shutdown`] is called.
pub struct RpcHandle<Req, Resp> {
    tx: Sender<Envelope<Req, Resp>>,
    shared: Arc<Shared>,
    name: String,
}

impl<Req, Resp> Clone for RpcHandle<Req, Resp> {
    fn clone(&self) -> Self {
        RpcHandle {
            tx: self.tx.clone(),
            shared: self.shared.clone(),
            name: self.name.clone(),
        }
    }
}

/// Builder for an RPC server.
pub struct RpcServerBuilder {
    name: String,
    queue_capacity: usize,
    crash_threshold: u64,
}

impl RpcServerBuilder {
    /// Start configuring a server with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        RpcServerBuilder {
            name: name.into(),
            queue_capacity: 1024,
            crash_threshold: u64::MAX,
        }
    }

    /// Bound the RPC queue (HBase `hbase.regionserver.handler.count` ×
    /// queue depth analog). Default 1024.
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        self.queue_capacity = cap;
        self
    }

    /// Number of overload strikes after which the server crashes. Default:
    /// never (only meaningful for `try_call` workloads).
    pub fn crash_after_overloads(mut self, strikes: u64) -> Self {
        self.crash_threshold = strikes;
        self
    }

    /// Spawn the server thread with the given request handler.
    pub fn spawn<Req, Resp, H>(self, mut handler: H) -> (RpcHandle<Req, Resp>, ServerRunner)
    where
        Req: Send + 'static,
        Resp: Send + 'static,
        H: FnMut(Req) -> Resp + Send + 'static,
    {
        let (tx, rx) = bounded::<Envelope<Req, Resp>>(self.queue_capacity);
        let shared = Arc::new(Shared {
            state: AtomicU8::new(0),
            stats: RpcStats::default(),
            crash_threshold: self.crash_threshold,
        });
        let worker_shared = shared.clone();
        let thread_name = self.name.clone();
        let join = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                for env in rx.iter() {
                    if worker_shared.state() == ServerState::Crashed {
                        // Crashed mid-flight: drop remaining requests.
                        drop(env.reply);
                        continue;
                    }
                    let start = Instant::now();
                    let resp = handler(env.req);
                    worker_shared
                        .stats
                        .busy_ns
                        .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    worker_shared
                        .stats
                        .processed
                        .fetch_add(1, Ordering::Relaxed);
                    // Caller may have given up (or cast one-way); ignore
                    // send failures.
                    if let Some(reply) = env.reply {
                        let _ = reply.send(resp);
                    }
                }
            })
            // pga-allow(panic-path): server startup, before any request is accepted — not a serving path
            .expect("spawn rpc server thread");
        (
            RpcHandle {
                tx,
                shared,
                name: self.name,
            },
            ServerRunner { join: Some(join) },
        )
    }
}

/// Owns the server thread.
///
/// Dropping the runner *detaches* the thread (it exits once every
/// [`RpcHandle`] clone is gone); call [`ServerRunner::join`] only after
/// dropping all handles, or the join would wait forever on the open
/// channel.
pub struct ServerRunner {
    join: Option<JoinHandle<()>>,
}

impl ServerRunner {
    /// Wait for the server thread to exit. All [`RpcHandle`] clones must be
    /// dropped first, otherwise the channel stays open and this blocks.
    pub fn join(mut self) {
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for ServerRunner {
    fn drop(&mut self) {
        // Detach: joining here could deadlock while handles are alive.
        self.join.take();
    }
}

impl<Req: Send + 'static, Resp: Send + 'static> RpcHandle<Req, Resp> {
    /// Server display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ServerState {
        self.shared.state()
    }

    /// Requests processed so far.
    pub fn processed(&self) -> u64 {
        self.shared.stats.processed.load(Ordering::Relaxed)
    }

    /// Overload strikes recorded so far.
    pub fn overloads(&self) -> u64 {
        self.shared.stats.overloads.load(Ordering::Relaxed)
    }

    /// Nanoseconds the handler has been busy.
    pub fn busy_ns(&self) -> u64 {
        self.shared.stats.busy_ns.load(Ordering::Relaxed)
    }

    /// Requests currently waiting in the RPC queue — the telemetry signal
    /// the control plane scales on (§III-B's overload precursor).
    pub fn queue_depth(&self) -> usize {
        self.tx.len()
    }

    /// Configured queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.tx.capacity().unwrap_or(usize::MAX)
    }

    /// Blocking call: waits for queue space (backpressure), then for the
    /// response.
    pub fn call(&self, req: Req) -> Result<Resp, RpcError> {
        match self.shared.state() {
            ServerState::Healthy => {}
            ServerState::Crashed => return Err(RpcError::Crashed),
            ServerState::Stopped => return Err(RpcError::Stopped),
        }
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Envelope {
                req,
                reply: Some(reply_tx),
            })
            .map_err(|_| RpcError::Stopped)?;
        reply_rx.recv().map_err(|_| match self.shared.state() {
            ServerState::Crashed => RpcError::Crashed,
            _ => RpcError::Stopped,
        })
    }

    /// One-way, non-blocking cast: enqueue the request and return without
    /// waiting for a response (asynchronous OpenTSDB-style writes). A full
    /// queue is an overload strike; sustained strikes (≥ the configured
    /// threshold) crash the server — the paper's unprotected ingestion
    /// path.
    pub fn cast(&self, req: Req) -> Result<(), RpcError> {
        match self.shared.state() {
            ServerState::Healthy => {}
            ServerState::Crashed => return Err(RpcError::Crashed),
            ServerState::Stopped => return Err(RpcError::Stopped),
        }
        match self.tx.try_send(Envelope { req, reply: None }) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => {
                let strikes = self.shared.stats.overloads.fetch_add(1, Ordering::AcqRel) + 1;
                if strikes >= self.shared.crash_threshold {
                    self.shared.state.store(1, Ordering::Release);
                }
                Err(RpcError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => Err(RpcError::Stopped),
        }
    }

    /// Signal shutdown: subsequent calls fail, the thread drains and exits
    /// once all clones of this handle are dropped.
    pub fn shutdown(&self) {
        self.shared.state.store(2, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn call_roundtrip() {
        let (h, runner) = RpcServerBuilder::new("echo").spawn(|x: u32| x * 2);
        assert_eq!(h.call(21).unwrap(), 42);
        assert_eq!(h.processed(), 1);
        assert_eq!(h.state(), ServerState::Healthy);
        drop(h);
        runner.join();
    }

    #[test]
    fn many_callers_share_one_server() {
        let (h, runner) = RpcServerBuilder::new("adder").spawn(|x: u64| x + 1);
        let mut joins = Vec::new();
        for i in 0..8u64 {
            let h = h.clone();
            joins.push(std::thread::spawn(move || {
                for j in 0..100 {
                    assert_eq!(h.call(i * 100 + j).unwrap(), i * 100 + j + 1);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(h.processed(), 800);
        drop(h);
        runner.join();
    }

    #[test]
    fn cast_overflow_strikes_and_crashes() {
        // Slow handler + capacity 1 + unthrottled casts → overload strikes
        // → crash: the §III-B failure mode.
        let (h, runner) = RpcServerBuilder::new("slow")
            .queue_capacity(1)
            .crash_after_overloads(3)
            .spawn(|_: u32| {
                std::thread::sleep(Duration::from_millis(20));
                0u32
            });
        let mut overloads = 0;
        let mut crashed = false;
        for i in 0..200 {
            match h.cast(i) {
                Err(RpcError::Overloaded) => overloads += 1,
                Err(RpcError::Crashed) => {
                    crashed = true;
                    break;
                }
                _ => {}
            }
        }
        assert!(overloads >= 3, "expected strikes, got {overloads}");
        assert!(crashed, "server should have crashed");
        assert_eq!(h.state(), ServerState::Crashed);
        // Blocking calls now refuse too.
        assert_eq!(h.call(1).unwrap_err(), RpcError::Crashed);
        drop(h);
        runner.join();
    }

    #[test]
    fn cast_is_fire_and_forget() {
        let (h, runner) = RpcServerBuilder::new("counter")
            .queue_capacity(64)
            .spawn(|x: u32| x);
        for i in 0..50 {
            h.cast(i).unwrap();
        }
        drop(h.clone()); // clones do not end the service
                         // Drain by dropping the last handle; the thread then exits.
        let probe = h.clone();
        drop(h);
        // The queued casts are all processed before exit.
        while probe.processed() < 50 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(probe.overloads(), 0);
        drop(probe);
        runner.join();
    }

    #[test]
    fn blocking_call_applies_backpressure_without_crashing() {
        // Same slow server, but blocking calls: no overloads, no crash.
        let (h, runner) = RpcServerBuilder::new("slow-bp")
            .queue_capacity(1)
            .crash_after_overloads(3)
            .spawn(|x: u32| {
                std::thread::sleep(Duration::from_millis(1));
                x
            });
        for i in 0..50 {
            assert_eq!(h.call(i).unwrap(), i);
        }
        assert_eq!(h.overloads(), 0);
        assert_eq!(h.state(), ServerState::Healthy);
        assert!(h.busy_ns() > 0);
        drop(h);
        runner.join();
    }

    #[test]
    fn shutdown_stops_service() {
        let (h, runner) = RpcServerBuilder::new("stopper").spawn(|x: u8| x);
        h.shutdown();
        assert_eq!(h.call(1).unwrap_err(), RpcError::Stopped);
        assert_eq!(h.state(), ServerState::Stopped);
        drop(h);
        runner.join();
    }
}
