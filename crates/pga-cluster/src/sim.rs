//! Deterministic discrete-time queueing simulator for cluster-scale
//! ingestion experiments.
//!
//! The paper's Figure 2 sweeps a physical cluster from 10 to 30 storage
//! nodes; this repository's host has far fewer cores, so the node-count
//! sweeps run on a calibrated queueing model instead of wall-clock threads
//! (DESIGN.md §6). The model is intentionally simple and fully
//! deterministic:
//!
//! * each server drains its own bounded queue at a fixed service rate
//!   (samples/sec, with a per-RPC overhead folded in);
//! * the workload is routed to servers by a *share vector* computed by the
//!   caller from the real storage-layer key encoding — this is what makes
//!   the salting ablation (E6) exercise the actual OpenTSDB key design;
//! * without a proxy, writes are fired at the servers unthrottled: queue
//!   overflow drops the RPC and charges an overload strike, and sustained
//!   strikes crash the server (§III-B's observed failure);
//! * with the buffering reverse proxy, admission is clamped to available
//!   queue space and the excess waits in the proxy buffer — backpressure.

use serde::{Deserialize, Serialize};

/// Reverse-proxy configuration for a simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ProxyMode {
    /// No proxy: clients fire RPCs directly at region servers (try_send
    /// semantics). Overflow drops and may crash servers.
    None,
    /// Buffering reverse proxy (the paper's remedy): requests queue in the
    /// proxy and are admitted only when the target server has room.
    Buffered,
}

/// Parameters of the simulated cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimClusterConfig {
    /// Number of region-server nodes.
    pub nodes: usize,
    /// Sustained per-node service rate in samples/sec (excluding RPC
    /// overhead). Calibrated so 30 nodes land near the paper's 399k.
    pub per_node_rate: f64,
    /// Fixed CPU cost per RPC, in seconds.
    pub rpc_overhead_secs: f64,
    /// Samples carried per RPC (OpenTSDB batched puts).
    pub samples_per_rpc: f64,
    /// Per-server queue capacity in samples.
    pub queue_capacity: f64,
    /// Overload strikes after which a server crashes.
    pub crash_overflow_threshold: u64,
    /// Simulation step in seconds.
    pub dt_secs: f64,
    /// Safety cap on simulated steps.
    pub max_steps: u64,
}

impl SimClusterConfig {
    /// Calibration used by the Figure-2 reproduction: ~13.3k samples/sec of
    /// effective per-node service so that 30 nodes sustain ≈ 400k/sec.
    pub fn paper_calibration(nodes: usize) -> Self {
        SimClusterConfig {
            nodes,
            per_node_rate: 14_000.0,
            rpc_overhead_secs: 0.000_05,
            samples_per_rpc: 50.0,
            queue_capacity: 20_000.0,
            crash_overflow_threshold: 50,
            dt_secs: 0.05,
            max_steps: 2_000_000,
        }
    }

    /// Effective service rate once per-RPC overhead is folded in.
    pub fn effective_rate(&self) -> f64 {
        let per_sample = 1.0 / self.per_node_rate + self.rpc_overhead_secs / self.samples_per_rpc;
        1.0 / per_sample
    }
}

/// Per-server terminal state of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimServerState {
    /// Samples fully processed.
    pub processed: f64,
    /// Samples dropped on the floor (no-proxy overflow, or lost at crash).
    pub dropped: f64,
    /// Overload strikes.
    pub overloads: u64,
    /// Whether the server crashed.
    pub crashed: bool,
    /// Seconds spent servicing requests.
    pub busy_secs: f64,
}

/// Outcome of one simulated ingestion run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IngestReport {
    /// Total samples offered to the cluster.
    pub offered: f64,
    /// Samples successfully ingested.
    pub ingested: f64,
    /// Samples dropped.
    pub dropped: f64,
    /// Virtual seconds until the workload finished (or stalled).
    pub duration_secs: f64,
    /// Per-server terminal states.
    pub servers: Vec<SimServerState>,
    /// `(virtual seconds, cumulative ingested)` snapshots — the series
    /// behind the paper's Fig. 2 (right).
    pub timeline: Vec<(f64, f64)>,
    /// Servers that crashed during the run.
    pub crashes: usize,
}

impl IngestReport {
    /// Sustained ingestion throughput in samples/sec.
    pub fn throughput(&self) -> f64 {
        if self.duration_secs == 0.0 {
            0.0
        } else {
            self.ingested / self.duration_secs
        }
    }

    /// Fraction of processed work carried by the busiest server — 1/n for a
    /// perfectly balanced cluster, →1.0 for a hotspotted one.
    pub fn max_server_share(&self) -> f64 {
        let total: f64 = self.servers.iter().map(|s| s.processed).sum();
        if total == 0.0 {
            return 0.0;
        }
        self.servers
            .iter()
            .map(|s| s.processed / total)
            .fold(0.0, f64::max)
    }
}

/// Run one ingestion workload through the simulated cluster.
///
/// * `shares` — fraction of the write stream routed to each server; must
///   have `cfg.nodes` entries summing to ≈ 1. Computed by the caller from
///   real row-key → region routing.
/// * `total_samples` — workload size.
/// * `offered_rate` — samples/sec the ingestion tier fires at the cluster
///   (effectively ∞ for a firehose benchmark).
///
/// # Panics
/// Panics if `shares.len() != cfg.nodes` or the shares are not a
/// distribution.
pub fn simulate_ingestion(
    cfg: &SimClusterConfig,
    shares: &[f64],
    total_samples: f64,
    offered_rate: f64,
    proxy: ProxyMode,
) -> IngestReport {
    assert_eq!(shares.len(), cfg.nodes, "one share per node required");
    let share_sum: f64 = shares.iter().sum();
    assert!(
        (share_sum - 1.0).abs() < 1e-6 && shares.iter().all(|&s| s >= 0.0),
        "shares must form a distribution (sum {share_sum})"
    );
    let rate = cfg.effective_rate();
    let mut servers: Vec<SimServerState> = (0..cfg.nodes)
        .map(|_| SimServerState {
            processed: 0.0,
            dropped: 0.0,
            overloads: 0,
            crashed: false,
            busy_secs: 0.0,
        })
        .collect();
    let mut queues = vec![0.0f64; cfg.nodes];
    // Per-server proxy-side FIFO credit (Buffered mode only).
    let mut proxy_buffer = vec![0.0f64; cfg.nodes];
    let mut remaining = total_samples;
    let mut ingested = 0.0;
    let mut dropped = 0.0;
    let mut timeline = Vec::new();
    let snapshot_every = ((1.0 / cfg.dt_secs).round() as u64).max(1); // ~1 Hz
    let mut step = 0u64;
    let dt = cfg.dt_secs;
    while step < cfg.max_steps {
        // 1. Source offers work this step.
        let offer = (offered_rate * dt).min(remaining);
        remaining -= offer;
        // 2. Route to servers.
        for s in 0..cfg.nodes {
            let arriving = offer * shares[s];
            if arriving == 0.0 {
                continue;
            }
            match proxy {
                ProxyMode::Buffered => {
                    proxy_buffer[s] += arriving;
                }
                ProxyMode::None => {
                    if servers[s].crashed {
                        servers[s].dropped += arriving;
                        dropped += arriving;
                        continue;
                    }
                    let room = cfg.queue_capacity - queues[s];
                    let admitted = arriving.min(room.max(0.0));
                    let overflow = arriving - admitted;
                    queues[s] += admitted;
                    if overflow > 0.0 {
                        servers[s].dropped += overflow;
                        dropped += overflow;
                        // One strike per rejected RPC: a dropped batch of
                        // `samples_per_rpc` samples is one failed call.
                        servers[s].overloads += (overflow / cfg.samples_per_rpc).ceil() as u64;
                        if servers[s].overloads >= cfg.crash_overflow_threshold {
                            servers[s].crashed = true;
                            // In-queue work dies with the server.
                            servers[s].dropped += queues[s];
                            dropped += queues[s];
                            queues[s] = 0.0;
                        }
                    }
                }
            }
        }
        // 3. Proxy admits buffered work up to available queue space.
        if proxy == ProxyMode::Buffered {
            for s in 0..cfg.nodes {
                if servers[s].crashed {
                    continue; // proxy holds the data rather than losing it
                }
                let room = (cfg.queue_capacity - queues[s]).max(0.0);
                let admit = proxy_buffer[s].min(room);
                proxy_buffer[s] -= admit;
                queues[s] += admit;
            }
        }
        // 4. Servers drain their queues.
        for s in 0..cfg.nodes {
            if servers[s].crashed {
                continue;
            }
            let capacity = rate * dt;
            let done = queues[s].min(capacity);
            queues[s] -= done;
            servers[s].processed += done;
            servers[s].busy_secs += done / rate;
            ingested += done;
        }
        step += 1;
        if step.is_multiple_of(snapshot_every) {
            timeline.push((step as f64 * dt, ingested));
        }
        // Done when nothing is left anywhere (or everything left is stuck
        // behind crashed servers).
        let in_flight: f64 = queues.iter().sum::<f64>() + proxy_buffer.iter().sum::<f64>();
        if remaining <= 0.0 && in_flight < 1e-9 {
            break;
        }
        // Stalled: all live work targets crashed servers.
        if remaining <= 0.0 {
            let live_flight: f64 = (0..cfg.nodes)
                .filter(|&s| !servers[s].crashed)
                .map(|s| queues[s] + proxy_buffer[s])
                .sum();
            if live_flight < 1e-9 {
                // Anything still buffered for crashed servers is stuck.
                for s in 0..cfg.nodes {
                    if servers[s].crashed {
                        dropped += queues[s] + proxy_buffer[s];
                        servers[s].dropped += queues[s] + proxy_buffer[s];
                        queues[s] = 0.0;
                        proxy_buffer[s] = 0.0;
                    }
                }
                break;
            }
        }
    }
    let duration = step as f64 * dt;
    timeline.push((duration, ingested));
    IngestReport {
        offered: total_samples,
        ingested,
        dropped,
        duration_secs: duration,
        crashes: servers.iter().filter(|s| s.crashed).count(),
        servers,
        timeline,
    }
}

/// Uniform share vector (perfectly salted keys over pre-split regions).
pub fn uniform_shares(nodes: usize) -> Vec<f64> {
    vec![1.0 / nodes as f64; nodes]
}

/// Hotspot share vector: `hot_fraction` of traffic on one server, the rest
/// spread evenly (unsalted sequential keys all land in one region).
pub fn hotspot_shares(nodes: usize, hot_fraction: f64) -> Vec<f64> {
    assert!(nodes >= 1 && (0.0..=1.0).contains(&hot_fraction));
    if nodes == 1 {
        return vec![1.0];
    }
    let rest = (1.0 - hot_fraction) / (nodes - 1) as f64;
    let mut v = vec![rest; nodes];
    v[0] = hot_fraction;
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(nodes: usize) -> SimClusterConfig {
        SimClusterConfig::paper_calibration(nodes)
    }

    #[test]
    fn balanced_cluster_scales_linearly() {
        let w = 2_000_000.0;
        let t10 = simulate_ingestion(
            &cfg(10),
            &uniform_shares(10),
            w,
            f64::INFINITY,
            ProxyMode::Buffered,
        )
        .throughput();
        let t20 = simulate_ingestion(
            &cfg(20),
            &uniform_shares(20),
            w,
            f64::INFINITY,
            ProxyMode::Buffered,
        )
        .throughput();
        let t30 = simulate_ingestion(
            &cfg(30),
            &uniform_shares(30),
            w,
            f64::INFINITY,
            ProxyMode::Buffered,
        )
        .throughput();
        assert!(
            t20 / t10 > 1.8 && t20 / t10 < 2.2,
            "10→20 ratio {}",
            t20 / t10
        );
        assert!(
            t30 / t10 > 2.7 && t30 / t10 < 3.3,
            "10→30 ratio {}",
            t30 / t10
        );
    }

    #[test]
    fn paper_calibration_reaches_399k_at_30_nodes() {
        let w = 4_000_000.0;
        let r = simulate_ingestion(
            &cfg(30),
            &uniform_shares(30),
            w,
            f64::INFINITY,
            ProxyMode::Buffered,
        );
        let t = r.throughput();
        assert!(t > 350_000.0 && t < 450_000.0, "throughput {t}");
        assert_eq!(r.crashes, 0);
        assert_eq!(r.dropped, 0.0);
        assert!((r.ingested - w).abs() < 1.0);
    }

    #[test]
    fn hotspot_throttles_throughput_to_one_server() {
        let w = 1_000_000.0;
        let hot = simulate_ingestion(
            &cfg(30),
            &hotspot_shares(30, 0.95),
            w,
            f64::INFINITY,
            ProxyMode::Buffered,
        );
        let balanced = simulate_ingestion(
            &cfg(30),
            &uniform_shares(30),
            w,
            f64::INFINITY,
            ProxyMode::Buffered,
        );
        // A 95% hotspot cannot beat ~1/0.95 of a single server's rate.
        assert!(hot.throughput() < balanced.throughput() / 10.0);
        assert!(hot.max_server_share() > 0.9);
        assert!(balanced.max_server_share() < 0.05);
    }

    #[test]
    fn no_proxy_firehose_crashes_servers() {
        let mut c = cfg(5);
        c.crash_overflow_threshold = 10;
        let r = simulate_ingestion(
            &c,
            &uniform_shares(5),
            5_000_000.0,
            f64::INFINITY,
            ProxyMode::None,
        );
        assert!(r.crashes > 0, "expected crashes under unthrottled load");
        assert!(r.dropped > 0.0);
    }

    #[test]
    fn proxy_prevents_crashes_under_same_load() {
        let mut c = cfg(5);
        c.crash_overflow_threshold = 10;
        let r = simulate_ingestion(
            &c,
            &uniform_shares(5),
            5_000_000.0,
            f64::INFINITY,
            ProxyMode::Buffered,
        );
        assert_eq!(r.crashes, 0);
        assert_eq!(r.dropped, 0.0);
        assert!((r.ingested - 5_000_000.0).abs() < 1.0);
    }

    #[test]
    fn moderate_offered_rate_never_overflows_without_proxy() {
        let c = cfg(10);
        // Offered rate well under cluster capacity: no overloads either way.
        let r = simulate_ingestion(
            &c,
            &uniform_shares(10),
            500_000.0,
            50_000.0,
            ProxyMode::None,
        );
        assert_eq!(r.crashes, 0);
        assert_eq!(r.dropped, 0.0);
    }

    #[test]
    fn timeline_is_monotone_and_rate_stable() {
        let r = simulate_ingestion(
            &cfg(15),
            &uniform_shares(15),
            3_000_000.0,
            f64::INFINITY,
            ProxyMode::Buffered,
        );
        assert!(r.timeline.len() >= 3);
        for w in r.timeline.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 > w[0].0);
        }
        // Steady-state slope between interior snapshots within 10% of mean throughput.
        let t = r.throughput();
        for w in r
            .timeline
            .windows(2)
            .take(r.timeline.len().saturating_sub(2))
        {
            let slope = (w[1].1 - w[0].1) / (w[1].0 - w[0].0);
            assert!((slope - t).abs() / t < 0.1, "slope {slope} vs {t}");
        }
    }

    #[test]
    fn effective_rate_below_raw_rate() {
        let c = cfg(1);
        assert!(c.effective_rate() < c.per_node_rate);
        assert!(c.effective_rate() > 0.9 * c.per_node_rate);
    }

    #[test]
    #[should_panic(expected = "one share per node")]
    fn share_length_mismatch_panics() {
        simulate_ingestion(&cfg(3), &[0.5, 0.5], 10.0, 1.0, ProxyMode::Buffered);
    }

    #[test]
    fn deterministic_repeatability() {
        let a = simulate_ingestion(
            &cfg(7),
            &uniform_shares(7),
            100_000.0,
            f64::INFINITY,
            ProxyMode::Buffered,
        );
        let b = simulate_ingestion(
            &cfg(7),
            &uniform_shares(7),
            100_000.0,
            f64::INFINITY,
            ProxyMode::Buffered,
        );
        assert_eq!(a.ingested, b.ingested);
        assert_eq!(a.duration_secs, b.duration_secs);
        assert_eq!(a.timeline, b.timeline);
    }
}
