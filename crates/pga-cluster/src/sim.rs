//! Deterministic discrete-time queueing simulator for cluster-scale
//! ingestion experiments.
//!
//! The paper's Figure 2 sweeps a physical cluster from 10 to 30 storage
//! nodes; this repository's host has far fewer cores, so the node-count
//! sweeps run on a calibrated queueing model instead of wall-clock threads
//! (DESIGN.md §6). The model is intentionally simple and fully
//! deterministic:
//!
//! * each server drains its own bounded queue at a fixed service rate
//!   (samples/sec, with a per-RPC overhead folded in);
//! * the workload is routed to servers by a *share vector* computed by the
//!   caller from the real storage-layer key encoding — this is what makes
//!   the salting ablation (E6) exercise the actual OpenTSDB key design;
//! * without a proxy, writes are fired at the servers unthrottled: queue
//!   overflow drops the RPC and charges an overload strike, and sustained
//!   strikes crash the server (§III-B's observed failure);
//! * with the buffering reverse proxy, admission is clamped to available
//!   queue space and the excess waits in the proxy buffer — backpressure.

use serde::{Deserialize, Serialize};

/// Reverse-proxy configuration for a simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ProxyMode {
    /// No proxy: clients fire RPCs directly at region servers (try_send
    /// semantics). Overflow drops and may crash servers.
    None,
    /// Buffering reverse proxy (the paper's remedy): requests queue in the
    /// proxy and are admitted only when the target server has room.
    Buffered,
}

/// Parameters of the simulated cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimClusterConfig {
    /// Number of region-server nodes.
    pub nodes: usize,
    /// Sustained per-node service rate in samples/sec (excluding RPC
    /// overhead). Calibrated so 30 nodes land near the paper's 399k.
    pub per_node_rate: f64,
    /// Fixed CPU cost per RPC, in seconds.
    pub rpc_overhead_secs: f64,
    /// Samples carried per RPC (OpenTSDB batched puts).
    pub samples_per_rpc: f64,
    /// Per-server queue capacity in samples.
    pub queue_capacity: f64,
    /// Overload strikes after which a server crashes.
    pub crash_overflow_threshold: u64,
    /// Simulation step in seconds.
    pub dt_secs: f64,
    /// Safety cap on simulated steps.
    pub max_steps: u64,
}

impl SimClusterConfig {
    /// Calibration used by the Figure-2 reproduction: ~13.3k samples/sec of
    /// effective per-node service so that 30 nodes sustain ≈ 400k/sec.
    pub fn paper_calibration(nodes: usize) -> Self {
        SimClusterConfig {
            nodes,
            per_node_rate: 14_000.0,
            rpc_overhead_secs: 0.000_05,
            samples_per_rpc: 50.0,
            queue_capacity: 20_000.0,
            crash_overflow_threshold: 50,
            dt_secs: 0.05,
            max_steps: 2_000_000,
        }
    }

    /// Effective service rate once per-RPC overhead is folded in.
    pub fn effective_rate(&self) -> f64 {
        let per_sample = 1.0 / self.per_node_rate + self.rpc_overhead_secs / self.samples_per_rpc;
        1.0 / per_sample
    }
}

/// Per-server terminal state of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimServerState {
    /// Samples fully processed.
    pub processed: f64,
    /// Samples dropped on the floor (no-proxy overflow, or lost at crash).
    pub dropped: f64,
    /// Overload strikes.
    pub overloads: u64,
    /// Whether the server crashed.
    pub crashed: bool,
    /// Seconds spent servicing requests.
    pub busy_secs: f64,
}

/// Outcome of one simulated ingestion run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IngestReport {
    /// Total samples offered to the cluster.
    pub offered: f64,
    /// Samples successfully ingested.
    pub ingested: f64,
    /// Samples dropped.
    pub dropped: f64,
    /// Virtual seconds until the workload finished (or stalled).
    pub duration_secs: f64,
    /// Per-server terminal states.
    pub servers: Vec<SimServerState>,
    /// `(virtual seconds, cumulative ingested)` snapshots — the series
    /// behind the paper's Fig. 2 (right).
    pub timeline: Vec<(f64, f64)>,
    /// Servers that crashed during the run.
    pub crashes: usize,
}

impl IngestReport {
    /// Sustained ingestion throughput in samples/sec.
    pub fn throughput(&self) -> f64 {
        if self.duration_secs == 0.0 {
            0.0
        } else {
            self.ingested / self.duration_secs
        }
    }

    /// Fraction of processed work carried by the busiest server — 1/n for a
    /// perfectly balanced cluster, →1.0 for a hotspotted one.
    pub fn max_server_share(&self) -> f64 {
        let total: f64 = self.servers.iter().map(|s| s.processed).sum();
        if total == 0.0 {
            return 0.0;
        }
        self.servers
            .iter()
            .map(|s| s.processed / total)
            .fold(0.0, f64::max)
    }
}

/// Run one ingestion workload through the simulated cluster.
///
/// * `shares` — fraction of the write stream routed to each server; must
///   have `cfg.nodes` entries summing to ≈ 1. Computed by the caller from
///   real row-key → region routing.
/// * `total_samples` — workload size.
/// * `offered_rate` — samples/sec the ingestion tier fires at the cluster
///   (effectively ∞ for a firehose benchmark).
///
/// # Panics
/// Panics if `shares.len() != cfg.nodes` or the shares are not a
/// distribution.
pub fn simulate_ingestion(
    cfg: &SimClusterConfig,
    shares: &[f64],
    total_samples: f64,
    offered_rate: f64,
    proxy: ProxyMode,
) -> IngestReport {
    assert_eq!(shares.len(), cfg.nodes, "one share per node required");
    let share_sum: f64 = shares.iter().sum();
    assert!(
        (share_sum - 1.0).abs() < 1e-6 && shares.iter().all(|&s| s >= 0.0),
        "shares must form a distribution (sum {share_sum})"
    );
    let rate = cfg.effective_rate();
    let mut servers: Vec<SimServerState> = (0..cfg.nodes)
        .map(|_| SimServerState {
            processed: 0.0,
            dropped: 0.0,
            overloads: 0,
            crashed: false,
            busy_secs: 0.0,
        })
        .collect();
    let mut queues = vec![0.0f64; cfg.nodes];
    // Per-server proxy-side FIFO credit (Buffered mode only).
    let mut proxy_buffer = vec![0.0f64; cfg.nodes];
    let mut remaining = total_samples;
    let mut ingested = 0.0;
    let mut dropped = 0.0;
    let mut timeline = Vec::new();
    let snapshot_every = ((1.0 / cfg.dt_secs).round() as u64).max(1); // ~1 Hz
    let mut step = 0u64;
    let dt = cfg.dt_secs;
    while step < cfg.max_steps {
        // 1. Source offers work this step.
        let offer = (offered_rate * dt).min(remaining);
        remaining -= offer;
        // 2. Route to servers.
        for s in 0..cfg.nodes {
            let arriving = offer * shares[s];
            if arriving == 0.0 {
                continue;
            }
            match proxy {
                ProxyMode::Buffered => {
                    proxy_buffer[s] += arriving;
                }
                ProxyMode::None => {
                    if servers[s].crashed {
                        servers[s].dropped += arriving;
                        dropped += arriving;
                        continue;
                    }
                    let room = cfg.queue_capacity - queues[s];
                    let admitted = arriving.min(room.max(0.0));
                    let overflow = arriving - admitted;
                    queues[s] += admitted;
                    if overflow > 0.0 {
                        servers[s].dropped += overflow;
                        dropped += overflow;
                        // One strike per rejected RPC: a dropped batch of
                        // `samples_per_rpc` samples is one failed call.
                        servers[s].overloads += (overflow / cfg.samples_per_rpc).ceil() as u64;
                        if servers[s].overloads >= cfg.crash_overflow_threshold {
                            servers[s].crashed = true;
                            // In-queue work dies with the server.
                            servers[s].dropped += queues[s];
                            dropped += queues[s];
                            queues[s] = 0.0;
                        }
                    }
                }
            }
        }
        // 3. Proxy admits buffered work up to available queue space.
        if proxy == ProxyMode::Buffered {
            for s in 0..cfg.nodes {
                if servers[s].crashed {
                    continue; // proxy holds the data rather than losing it
                }
                let room = (cfg.queue_capacity - queues[s]).max(0.0);
                let admit = proxy_buffer[s].min(room);
                proxy_buffer[s] -= admit;
                queues[s] += admit;
            }
        }
        // 4. Servers drain their queues.
        for s in 0..cfg.nodes {
            if servers[s].crashed {
                continue;
            }
            let capacity = rate * dt;
            let done = queues[s].min(capacity);
            queues[s] -= done;
            servers[s].processed += done;
            servers[s].busy_secs += done / rate;
            ingested += done;
        }
        step += 1;
        if step.is_multiple_of(snapshot_every) {
            timeline.push((step as f64 * dt, ingested));
        }
        // Done when nothing is left anywhere (or everything left is stuck
        // behind crashed servers).
        let in_flight: f64 = queues.iter().sum::<f64>() + proxy_buffer.iter().sum::<f64>();
        if remaining <= 0.0 && in_flight < 1e-9 {
            break;
        }
        // Stalled: all live work targets crashed servers.
        if remaining <= 0.0 {
            let live_flight: f64 = (0..cfg.nodes)
                .filter(|&s| !servers[s].crashed)
                .map(|s| queues[s] + proxy_buffer[s])
                .sum();
            if live_flight < 1e-9 {
                // Anything still buffered for crashed servers is stuck.
                for s in 0..cfg.nodes {
                    if servers[s].crashed {
                        dropped += queues[s] + proxy_buffer[s];
                        servers[s].dropped += queues[s] + proxy_buffer[s];
                        queues[s] = 0.0;
                        proxy_buffer[s] = 0.0;
                    }
                }
                break;
            }
        }
    }
    let duration = step as f64 * dt;
    timeline.push((duration, ingested));
    IngestReport {
        offered: total_samples,
        ingested,
        dropped,
        duration_secs: duration,
        crashes: servers.iter().filter(|s| s.crashed).count(),
        servers,
        timeline,
    }
}

/// Which overload-control stack a simulated storm runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverloadMode {
    /// Full overload control: bounded proxy buffer with typed submit
    /// rejection, watermark admission at the servers, per-target circuit
    /// breakers with hedged re-routing, and deadline expiry of stale
    /// buffered work.
    Controlled,
    /// The seed stack: unbounded proxy buffers, fixed per-target routing,
    /// no server pushback, no deadlines. Nothing is dropped — and nothing
    /// tells the producer to slow down, so latency grows without bound.
    SeedBuffered,
    /// No proxy at all: producers fire at the servers directly; overflow
    /// drops RPCs, strikes accumulate, servers crash (§III-B's failure).
    SeedDirect,
}

/// Parameters of an E18 overload storm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverloadConfig {
    /// Underlying cluster shape and calibration.
    pub cluster: SimClusterConfig,
    /// Offered load as a multiple of calibrated (all-healthy) capacity.
    pub overload_factor: f64,
    /// Index of the slow server.
    pub slow_node: usize,
    /// Slow server's service rate as a fraction of a healthy node's.
    pub slow_factor: f64,
    /// Storm duration in virtual seconds (the source stops after this;
    /// the run continues until all in-flight work resolves).
    pub storm_secs: f64,
    /// Which stack handles the storm.
    pub mode: OverloadMode,
    /// Server-side admission watermark: a put is Busy-rejected when queue
    /// occupancy is at or above `watermark × queue_capacity`.
    pub shed_watermark: f64,
    /// Deadline budget per batch, from submit to server admission.
    pub deadline_secs: f64,
    /// Consecutive Busy responses that trip a target's breaker.
    pub breaker_failure_threshold: u32,
    /// Seconds an open breaker excludes its target.
    pub breaker_cooldown_secs: f64,
    /// Proxy buffer capacity in samples (Controlled mode only).
    pub proxy_buffer_capacity: f64,
}

impl OverloadConfig {
    /// The E18 shape: a small cluster at 3× offered load with one server
    /// at quarter speed for a 30-second storm.
    pub fn e18(nodes: usize, mode: OverloadMode) -> Self {
        OverloadConfig {
            cluster: SimClusterConfig::paper_calibration(nodes),
            overload_factor: 3.0,
            slow_node: 0,
            slow_factor: 0.25,
            storm_secs: 30.0,
            mode,
            shed_watermark: 0.75,
            deadline_secs: 1.0,
            breaker_failure_threshold: 3,
            breaker_cooldown_secs: 0.5,
            proxy_buffer_capacity: 80_000.0,
        }
    }

    /// All-healthy cluster capacity in samples/sec — the goodput yardstick.
    pub fn calibrated_capacity(&self) -> f64 {
        self.cluster.nodes as f64 * self.cluster.effective_rate()
    }
}

/// Outcome of one simulated overload storm. The conservation ledger holds
/// exactly: `offered = completed + busy_rejected + deadline_expired +
/// dropped + lost_in_queue + backlog_end`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverloadReport {
    /// Stack the storm ran against.
    pub mode: OverloadMode,
    /// Samples the source offered during the storm.
    pub offered: f64,
    /// Samples durably processed (acked).
    pub completed: f64,
    /// Samples rejected at submit with a typed Busy (producer retried or
    /// shed knowingly — never silent).
    pub busy_rejected: f64,
    /// Samples dropped with a typed deadline expiry before admission.
    pub deadline_expired: f64,
    /// Samples dropped silently (SeedDirect overflow only).
    pub dropped: f64,
    /// Admitted-but-unacked samples lost to server crashes.
    pub lost_in_queue: f64,
    /// Samples still in flight when the run hit its step cap.
    pub backlog_end: f64,
    /// Completed samples/sec during the storm window.
    pub goodput: f64,
    /// `goodput / calibrated_capacity`.
    pub goodput_fraction: f64,
    /// 99th-percentile submit→ack latency over completed samples.
    pub p99_latency_secs: f64,
    /// Worst-case completed-sample latency.
    pub max_latency_secs: f64,
    /// Servers that crashed.
    pub crashes: usize,
    /// Circuit-breaker trips (Controlled mode).
    pub breaker_trips: u64,
    /// Virtual seconds until every in-flight sample resolved.
    pub duration_secs: f64,
}

impl OverloadReport {
    /// `true` when every offered sample is accounted for by the typed
    /// ledger (no silent loss anywhere).
    pub fn conserves_samples(&self) -> bool {
        let ledger = self.completed
            + self.busy_rejected
            + self.deadline_expired
            + self.dropped
            + self.lost_in_queue
            + self.backlog_end;
        (ledger - self.offered).abs() < 1.0
    }
}

/// Per-target step breaker for the overload model: consecutive Busy
/// responses trip it open for a cooldown; any accepted put closes it.
struct StepBreaker {
    consecutive: u32,
    open_until: f64,
    trips: u64,
}

impl StepBreaker {
    fn new() -> Self {
        StepBreaker {
            consecutive: 0,
            open_until: 0.0,
            trips: 0,
        }
    }

    fn allow(&self, now: f64) -> bool {
        now >= self.open_until
    }

    fn on_busy(&mut self, now: f64, threshold: u32, cooldown: f64) {
        self.consecutive += 1;
        if self.consecutive >= threshold && now >= self.open_until {
            self.open_until = now + cooldown;
            self.trips += 1;
            self.consecutive = 0;
        }
    }

    fn on_ok(&mut self) {
        self.consecutive = 0;
    }
}

/// One buffered batch: submit time plus sample count.
#[derive(Clone, Copy)]
struct Batch {
    submitted: f64,
    samples: f64,
}

/// Run one E18 overload storm: a source at `overload_factor ×` calibrated
/// capacity against a cluster with one slow server, through the stack
/// selected by `cfg.mode`. Batch-granular and fully deterministic.
pub fn simulate_overload(cfg: &OverloadConfig) -> OverloadReport {
    let n = cfg.cluster.nodes;
    assert!(cfg.slow_node < n, "slow node must exist");
    let rate = cfg.cluster.effective_rate();
    let rates: Vec<f64> = (0..n)
        .map(|s| {
            if s == cfg.slow_node {
                rate * cfg.slow_factor
            } else {
                rate
            }
        })
        .collect();
    let batch = cfg.cluster.samples_per_rpc;
    let qcap = cfg.cluster.queue_capacity;
    let watermark_cap = cfg.shed_watermark * qcap;
    let offered_rate = cfg.overload_factor * cfg.calibrated_capacity();
    let dt = cfg.cluster.dt_secs;

    let mut queues: Vec<std::collections::VecDeque<Batch>> =
        (0..n).map(|_| std::collections::VecDeque::new()).collect();
    let mut queue_depth = vec![0.0f64; n];
    let mut carry = vec![0.0f64; n]; // partial service progress
    let mut strikes = vec![0u64; n];
    let mut crashed = vec![false; n];
    let mut breakers: Vec<StepBreaker> = (0..n).map(|_| StepBreaker::new()).collect();
    // Controlled: one shared FIFO. Seed arms: per-target FIFOs.
    let mut shared: std::collections::VecDeque<Batch> = std::collections::VecDeque::new();
    let mut shared_depth = 0.0f64;
    let mut per_target: Vec<std::collections::VecDeque<Batch>> =
        (0..n).map(|_| std::collections::VecDeque::new()).collect();
    let mut per_target_depth = vec![0.0f64; n];

    let mut offered = 0.0;
    let mut completed = 0.0;
    let mut completed_in_window = 0.0;
    let mut busy_rejected = 0.0;
    let mut deadline_expired = 0.0;
    let mut dropped = 0.0;
    let mut lost_in_queue = 0.0;
    let mut latencies: Vec<(f64, f64)> = Vec::new(); // (latency, samples)
    let mut arrival_frac = 0.0f64;
    let mut rr = 0usize;
    let mut step = 0u64;

    loop {
        let now = step as f64 * dt;
        let storming = now < cfg.storm_secs;
        // 1. Source submits batches.
        if storming {
            arrival_frac += offered_rate * dt;
            while arrival_frac >= batch {
                arrival_frac -= batch;
                offered += batch;
                let b = Batch {
                    submitted: now,
                    samples: batch,
                };
                match cfg.mode {
                    OverloadMode::Controlled => {
                        if shared_depth + batch <= cfg.proxy_buffer_capacity {
                            shared.push_back(b);
                            shared_depth += batch;
                        } else {
                            // Typed Busy at submit: the producer knows.
                            busy_rejected += batch;
                        }
                    }
                    OverloadMode::SeedBuffered => {
                        let t = rr % n;
                        rr += 1;
                        per_target[t].push_back(b);
                        per_target_depth[t] += batch;
                    }
                    OverloadMode::SeedDirect => {
                        let t = rr % n;
                        rr += 1;
                        if crashed[t] {
                            dropped += batch;
                            continue;
                        }
                        if queue_depth[t] + batch <= qcap {
                            queues[t].push_back(b);
                            queue_depth[t] += batch;
                        } else {
                            dropped += batch;
                            strikes[t] += 1;
                            if strikes[t] >= cfg.cluster.crash_overflow_threshold {
                                crashed[t] = true;
                                lost_in_queue += queue_depth[t];
                                queues[t].clear();
                                queue_depth[t] = 0.0;
                            }
                        }
                    }
                }
            }
        }
        // 2. Proxy admits buffered work into server queues.
        match cfg.mode {
            OverloadMode::Controlled => {
                'admit: while let Some(&head) = shared.front() {
                    if now - head.submitted > cfg.deadline_secs {
                        // Stale work is dropped with a typed error, never
                        // served late and never silently lost.
                        shared.pop_front();
                        shared_depth -= head.samples;
                        deadline_expired += head.samples;
                        continue;
                    }
                    // Hedged placement: rotate through targets, skipping
                    // open breakers; a watermark refusal is a Busy.
                    let mut placed = false;
                    for _ in 0..n {
                        let t = rr % n;
                        rr += 1;
                        if !breakers[t].allow(now) {
                            continue;
                        }
                        if queue_depth[t] + head.samples <= watermark_cap {
                            shared.pop_front();
                            shared_depth -= head.samples;
                            queues[t].push_back(head);
                            queue_depth[t] += head.samples;
                            breakers[t].on_ok();
                            placed = true;
                            break;
                        }
                        breakers[t].on_busy(
                            now,
                            cfg.breaker_failure_threshold,
                            cfg.breaker_cooldown_secs,
                        );
                    }
                    if !placed {
                        break 'admit; // every routable target is saturated
                    }
                }
            }
            OverloadMode::SeedBuffered => {
                for t in 0..n {
                    while let Some(&head) = per_target[t].front() {
                        if queue_depth[t] + head.samples > qcap {
                            break;
                        }
                        per_target[t].pop_front();
                        per_target_depth[t] -= head.samples;
                        queues[t].push_back(head);
                        queue_depth[t] += head.samples;
                    }
                }
            }
            OverloadMode::SeedDirect => {}
        }
        // 3. Servers drain.
        let done_at = now + dt;
        for t in 0..n {
            if crashed[t] {
                continue;
            }
            let mut budget = rates[t] * dt + carry[t];
            while let Some(&head) = queues[t].front() {
                if head.samples > budget {
                    break;
                }
                budget -= head.samples;
                queues[t].pop_front();
                queue_depth[t] -= head.samples;
                completed += head.samples;
                if done_at <= cfg.storm_secs {
                    completed_in_window += head.samples;
                }
                latencies.push((done_at - head.submitted, head.samples));
            }
            carry[t] = if queues[t].is_empty() { 0.0 } else { budget };
        }
        step += 1;
        let in_flight =
            shared_depth + per_target_depth.iter().sum::<f64>() + queue_depth.iter().sum::<f64>();
        if !storming && in_flight < 1e-9 {
            break;
        }
        if step >= cfg.cluster.max_steps {
            // Whatever is still buffered is the terminal backlog.
            let mut backlog = shared_depth + per_target_depth.iter().sum::<f64>();
            backlog += queue_depth.iter().sum::<f64>();
            return finish_overload(
                cfg,
                offered,
                completed,
                completed_in_window,
                busy_rejected,
                deadline_expired,
                dropped,
                lost_in_queue,
                backlog,
                &latencies,
                &crashed,
                &breakers,
                step as f64 * dt,
            );
        }
        // SeedDirect with everyone crashed: nothing will ever drain.
        if !storming && crashed.iter().all(|&c| c) {
            break;
        }
    }
    finish_overload(
        cfg,
        offered,
        completed,
        completed_in_window,
        busy_rejected,
        deadline_expired,
        dropped,
        lost_in_queue,
        0.0,
        &latencies,
        &crashed,
        &breakers,
        step as f64 * dt,
    )
}

#[allow(clippy::too_many_arguments)]
fn finish_overload(
    cfg: &OverloadConfig,
    offered: f64,
    completed: f64,
    completed_in_window: f64,
    busy_rejected: f64,
    deadline_expired: f64,
    dropped: f64,
    lost_in_queue: f64,
    backlog_end: f64,
    latencies: &[(f64, f64)],
    crashed: &[bool],
    breakers: &[StepBreaker],
    duration_secs: f64,
) -> OverloadReport {
    let total_mass: f64 = latencies.iter().map(|&(_, m)| m).sum();
    let (p99, max) = if total_mass <= 0.0 {
        (0.0, 0.0)
    } else {
        let mut sorted: Vec<(f64, f64)> = latencies.to_vec();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let target = 0.99 * total_mass;
        let mut seen = 0.0;
        let mut p99 = sorted.last().map(|&(l, _)| l).unwrap_or(0.0);
        for &(lat, mass) in &sorted {
            seen += mass;
            if seen >= target {
                p99 = lat;
                break;
            }
        }
        (p99, sorted.last().map(|&(l, _)| l).unwrap_or(0.0))
    };
    let goodput = completed_in_window / cfg.storm_secs;
    OverloadReport {
        mode: cfg.mode,
        offered,
        completed,
        busy_rejected,
        deadline_expired,
        dropped,
        lost_in_queue,
        backlog_end,
        goodput,
        goodput_fraction: goodput / cfg.calibrated_capacity(),
        p99_latency_secs: p99,
        max_latency_secs: max,
        crashes: crashed.iter().filter(|&&c| c).count(),
        breaker_trips: breakers.iter().map(|b| b.trips).sum(),
        duration_secs,
    }
}

/// Uniform share vector (perfectly salted keys over pre-split regions).
pub fn uniform_shares(nodes: usize) -> Vec<f64> {
    vec![1.0 / nodes as f64; nodes]
}

/// Hotspot share vector: `hot_fraction` of traffic on one server, the rest
/// spread evenly (unsalted sequential keys all land in one region).
pub fn hotspot_shares(nodes: usize, hot_fraction: f64) -> Vec<f64> {
    assert!(nodes >= 1 && (0.0..=1.0).contains(&hot_fraction));
    if nodes == 1 {
        return vec![1.0];
    }
    let rest = (1.0 - hot_fraction) / (nodes - 1) as f64;
    let mut v = vec![rest; nodes];
    v[0] = hot_fraction;
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(nodes: usize) -> SimClusterConfig {
        SimClusterConfig::paper_calibration(nodes)
    }

    #[test]
    fn balanced_cluster_scales_linearly() {
        let w = 2_000_000.0;
        let t10 = simulate_ingestion(
            &cfg(10),
            &uniform_shares(10),
            w,
            f64::INFINITY,
            ProxyMode::Buffered,
        )
        .throughput();
        let t20 = simulate_ingestion(
            &cfg(20),
            &uniform_shares(20),
            w,
            f64::INFINITY,
            ProxyMode::Buffered,
        )
        .throughput();
        let t30 = simulate_ingestion(
            &cfg(30),
            &uniform_shares(30),
            w,
            f64::INFINITY,
            ProxyMode::Buffered,
        )
        .throughput();
        assert!(
            t20 / t10 > 1.8 && t20 / t10 < 2.2,
            "10→20 ratio {}",
            t20 / t10
        );
        assert!(
            t30 / t10 > 2.7 && t30 / t10 < 3.3,
            "10→30 ratio {}",
            t30 / t10
        );
    }

    #[test]
    fn paper_calibration_reaches_399k_at_30_nodes() {
        let w = 4_000_000.0;
        let r = simulate_ingestion(
            &cfg(30),
            &uniform_shares(30),
            w,
            f64::INFINITY,
            ProxyMode::Buffered,
        );
        let t = r.throughput();
        assert!(t > 350_000.0 && t < 450_000.0, "throughput {t}");
        assert_eq!(r.crashes, 0);
        assert_eq!(r.dropped, 0.0);
        assert!((r.ingested - w).abs() < 1.0);
    }

    #[test]
    fn hotspot_throttles_throughput_to_one_server() {
        let w = 1_000_000.0;
        let hot = simulate_ingestion(
            &cfg(30),
            &hotspot_shares(30, 0.95),
            w,
            f64::INFINITY,
            ProxyMode::Buffered,
        );
        let balanced = simulate_ingestion(
            &cfg(30),
            &uniform_shares(30),
            w,
            f64::INFINITY,
            ProxyMode::Buffered,
        );
        // A 95% hotspot cannot beat ~1/0.95 of a single server's rate.
        assert!(hot.throughput() < balanced.throughput() / 10.0);
        assert!(hot.max_server_share() > 0.9);
        assert!(balanced.max_server_share() < 0.05);
    }

    #[test]
    fn no_proxy_firehose_crashes_servers() {
        let mut c = cfg(5);
        c.crash_overflow_threshold = 10;
        let r = simulate_ingestion(
            &c,
            &uniform_shares(5),
            5_000_000.0,
            f64::INFINITY,
            ProxyMode::None,
        );
        assert!(r.crashes > 0, "expected crashes under unthrottled load");
        assert!(r.dropped > 0.0);
    }

    #[test]
    fn proxy_prevents_crashes_under_same_load() {
        let mut c = cfg(5);
        c.crash_overflow_threshold = 10;
        let r = simulate_ingestion(
            &c,
            &uniform_shares(5),
            5_000_000.0,
            f64::INFINITY,
            ProxyMode::Buffered,
        );
        assert_eq!(r.crashes, 0);
        assert_eq!(r.dropped, 0.0);
        assert!((r.ingested - 5_000_000.0).abs() < 1.0);
    }

    #[test]
    fn moderate_offered_rate_never_overflows_without_proxy() {
        let c = cfg(10);
        // Offered rate well under cluster capacity: no overloads either way.
        let r = simulate_ingestion(
            &c,
            &uniform_shares(10),
            500_000.0,
            50_000.0,
            ProxyMode::None,
        );
        assert_eq!(r.crashes, 0);
        assert_eq!(r.dropped, 0.0);
    }

    #[test]
    fn timeline_is_monotone_and_rate_stable() {
        let r = simulate_ingestion(
            &cfg(15),
            &uniform_shares(15),
            3_000_000.0,
            f64::INFINITY,
            ProxyMode::Buffered,
        );
        assert!(r.timeline.len() >= 3);
        for w in r.timeline.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 > w[0].0);
        }
        // Steady-state slope between interior snapshots within 10% of mean throughput.
        let t = r.throughput();
        for w in r
            .timeline
            .windows(2)
            .take(r.timeline.len().saturating_sub(2))
        {
            let slope = (w[1].1 - w[0].1) / (w[1].0 - w[0].0);
            assert!((slope - t).abs() / t < 0.1, "slope {slope} vs {t}");
        }
    }

    #[test]
    fn effective_rate_below_raw_rate() {
        let c = cfg(1);
        assert!(c.effective_rate() < c.per_node_rate);
        assert!(c.effective_rate() > 0.9 * c.per_node_rate);
    }

    #[test]
    #[should_panic(expected = "one share per node")]
    fn share_length_mismatch_panics() {
        simulate_ingestion(&cfg(3), &[0.5, 0.5], 10.0, 1.0, ProxyMode::Buffered);
    }

    #[test]
    fn e18_controlled_storm_keeps_goodput_and_bounded_p99() {
        let r = simulate_overload(&OverloadConfig::e18(5, OverloadMode::Controlled));
        assert!(r.conserves_samples(), "ledger leak: {r:?}");
        assert!(
            r.goodput_fraction >= 0.8,
            "goodput fraction {} under storm",
            r.goodput_fraction
        );
        // Bounded tail: proxy wait is capped by the deadline, queue wait
        // by watermark backlog at the slowest node's rate.
        let cfg = OverloadConfig::e18(5, OverloadMode::Controlled);
        let slow_rate = cfg.cluster.effective_rate() * cfg.slow_factor;
        let bound = cfg.deadline_secs
            + cfg.shed_watermark * cfg.cluster.queue_capacity / slow_rate
            + 2.0 * cfg.cluster.dt_secs;
        assert!(
            r.p99_latency_secs <= bound,
            "p99 {} exceeds bound {bound}",
            r.p99_latency_secs
        );
        // Every mechanism actually fired.
        assert!(r.busy_rejected > 0.0, "submit admission never pushed back");
        assert!(r.deadline_expired > 0.0, "deadlines never fired");
        assert!(r.breaker_trips > 0, "breakers never tripped");
        assert_eq!(r.crashes, 0);
        assert_eq!(r.dropped, 0.0, "controlled mode never drops silently");
        assert_eq!(r.lost_in_queue, 0.0, "no admitted work may die");
    }

    #[test]
    fn e18_seed_buffered_latency_collapses_without_feedback() {
        let controlled = simulate_overload(&OverloadConfig::e18(5, OverloadMode::Controlled));
        let seed = simulate_overload(&OverloadConfig::e18(5, OverloadMode::SeedBuffered));
        assert!(seed.conserves_samples(), "ledger leak: {seed:?}");
        // The seed stack tells the producer nothing...
        assert_eq!(seed.busy_rejected, 0.0);
        assert_eq!(seed.deadline_expired, 0.0);
        // ...and pays with an unbounded tail: p99 an order of magnitude
        // past the controlled stack's, max latency far past the storm.
        assert!(
            seed.p99_latency_secs > 10.0 * controlled.p99_latency_secs,
            "seed p99 {} vs controlled {}",
            seed.p99_latency_secs,
            controlled.p99_latency_secs
        );
        assert!(
            seed.max_latency_secs > 30.0,
            "seed max latency {} should dwarf the storm",
            seed.max_latency_secs
        );
    }

    #[test]
    fn e18_seed_direct_storm_crashes_servers() {
        let r = simulate_overload(&OverloadConfig::e18(5, OverloadMode::SeedDirect));
        assert!(r.conserves_samples(), "ledger leak: {r:?}");
        assert!(r.crashes > 0, "direct firehose must crash servers");
        assert!(r.dropped > 0.0, "direct overflow drops silently");
        assert!(
            r.goodput_fraction < 0.8,
            "seed-direct goodput {} should collapse",
            r.goodput_fraction
        );
    }

    #[test]
    fn e18_is_deterministic() {
        for mode in [
            OverloadMode::Controlled,
            OverloadMode::SeedBuffered,
            OverloadMode::SeedDirect,
        ] {
            let a = simulate_overload(&OverloadConfig::e18(5, mode));
            let b = simulate_overload(&OverloadConfig::e18(5, mode));
            assert_eq!(a, b, "mode {mode:?} replay diverged");
        }
    }

    #[test]
    fn deterministic_repeatability() {
        let a = simulate_ingestion(
            &cfg(7),
            &uniform_shares(7),
            100_000.0,
            f64::INFINITY,
            ProxyMode::Buffered,
        );
        let b = simulate_ingestion(
            &cfg(7),
            &uniform_shares(7),
            100_000.0,
            f64::INFINITY,
            ProxyMode::Buffered,
        );
        assert_eq!(a.ingested, b.ingested);
        assert_eq!(a.duration_secs, b.duration_secs);
        assert_eq!(a.timeline, b.timeline);
    }
}
